# Development entry points. Everything is plain pytest / python -m.

PYTHON ?= python

.PHONY: test bench bench-shapes bench-json serve-bench trace-smoke trace-parallel-smoke \
	report fuzz examples all \
	perf-report perf-gate metrics-smoke introspection-smoke cache-smoke \
	bench-vectorized bench-parallel parity

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-shapes:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

bench-json:
	$(PYTHON) -m repro.bench --json BENCH_report.json

serve-bench:
	$(PYTHON) -m repro serve-bench --json SERVE_report.json

# Timed workload benchmarks in the stable perf schema (docs/benchmarking.md).
perf-report:
	$(PYTHON) -m repro.bench --perf-only --json BENCH_report.json

# Diff BENCH_report.json against the committed baseline. CI passes
# PERF_GATE_FLAGS=--shape-only (shared runners have unstable clocks).
perf-gate: perf-report
	$(PYTHON) scripts/perf_gate.py $(PERF_GATE_FLAGS)

# Batch-vs-row throughput on the workload queries (docs/vectorized.md).
bench-vectorized:
	$(PYTHON) -m repro.bench.vectorized --json VECTORIZED_report.json

# Parallel scatter-gather vs sequential batch on the join-heavy queries
# (docs/parallel.md). The speedup floor applies only with cores >= parts.
bench-parallel:
	$(PYTHON) -m repro.bench.parallel --json PARALLEL_report.json

# The execution-mode parity suites: batch/row property tests
# (hypothesis-chosen batch sizes) and parallel/sequential scatter-gather.
parity:
	$(PYTHON) -m pytest tests/engine/test_batch_parity.py tests/engine/test_batch.py \
		tests/engine/test_parallel.py -q

# Start a metrics endpoint over a live service, scrape once, validate.
metrics-smoke:
	$(PYTHON) scripts/metrics_smoke.py

# Cache memory accounting end to end: warm every cache layer, check
# GET /caches and the cache_bytes families report nonzero bytes with
# entry identity, then re-run under a tiny byte budget and check budget
# evictions fire without changing any result (docs/observability.md).
cache-smoke:
	$(PYTHON) scripts/cache_smoke.py

# Live introspection end to end: scrape a slow query mid-flight via
# GET /queries, cancel it by id, and check the admit->cancel event trail
# (sequential and parallel execution modes; docs/observability.md).
introspection-smoke:
	$(PYTHON) scripts/introspection_smoke.py

trace-smoke:
	$(PYTHON) scripts/trace_smoke.py

# Multi-process tracing: a parallel query's merged Chrome export must
# show per-worker pid lanes and telemetry columns (docs/parallel.md).
trace-parallel-smoke:
	$(PYTHON) scripts/trace_parallel_smoke.py

report:
	$(PYTHON) -m repro.bench

fuzz:
	$(PYTHON) -m repro fuzz --n 1000

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

all: test bench-shapes examples
