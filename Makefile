# Development entry points. Everything is plain pytest / python -m.

PYTHON ?= python

.PHONY: test bench bench-shapes bench-json serve-bench trace-smoke report fuzz examples all

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-shapes:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

bench-json:
	$(PYTHON) -m repro.bench --json BENCH_report.json

serve-bench:
	$(PYTHON) -m repro serve-bench --json SERVE_report.json

trace-smoke:
	$(PYTHON) scripts/trace_smoke.py

report:
	$(PYTHON) -m repro.bench

fuzz:
	$(PYTHON) -m repro fuzz --n 1000

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

all: test bench-shapes examples
