"""End-to-end workflow: DDL → data → prepared queries → EXPLAIN ANALYZE.

Shows the pieces a downstream application would use together:

1. define a schema with the paper's TM DDL,
2. build and persist a catalog as JSON,
3. reload it, prepare a nested query once, execute it repeatedly,
4. inspect the optimizer's work with EXPLAIN and EXPLAIN ANALYZE,
5. export the plan as Graphviz dot.

Run with::

    python examples/full_workflow.py
"""

import random
import tempfile
from pathlib import Path

from repro import Catalog, PreparedQuery, Tup
from repro.algebra.dot import plan_to_dot
from repro.engine.analyze import explain_analyze
from repro.io import dump_catalog, load_catalog
from repro.model.ddl import parse_schema

DDL = """
CLASS Product WITH EXTENSION PRODUCTS
ATTRIBUTES
    sku : STRING,
    price : INT,
    tags : P STRING
END Product

CLASS Sale WITH EXTENSION SALES
ATTRIBUTES
    sku : STRING,
    qty : INT
END Sale
"""

#: Products whose recorded stock-out count matches reality: the number of
#: sales rows for the product. Products never sold (dangling!) with
#: expected 0 must be in the answer — the COUNT-bug shape, on real-ish data.
QUERY = """
SELECT p.sku FROM PRODUCTS p
WHERE p.price % 3 = COUNT(SELECT s FROM SALES s WHERE p.sku = s.sku) % 3
"""


def build_catalog(seed: int = 0) -> Catalog:
    rng = random.Random(seed)
    schema = parse_schema(DDL)
    catalog = Catalog(schema)
    skus = [f"sku-{i:03d}" for i in range(40)]
    catalog.add_rows(
        "PRODUCTS",
        [
            Tup(
                sku=sku,
                price=rng.randrange(1, 50),
                tags=frozenset(rng.sample(["new", "sale", "eco", "bulk"], k=rng.randrange(3))),
            )
            for sku in skus
        ],
    )
    catalog.add_rows(
        "SALES",
        [
            Tup(sku=rng.choice(skus[: len(skus) // 2]), qty=rng.randrange(1, 5))
            for _ in range(120)
        ],
    )
    return catalog


def main() -> None:
    # 1-2. schema + data, persisted to JSON
    catalog = build_catalog()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "shop.json"
        dump_catalog(catalog, path)
        print(f"catalog written to {path.name}: "
              f"{len(catalog['PRODUCTS'])} products, {len(catalog['SALES'])} sales")

        # 3. reload and prepare once
        reloaded = load_catalog(path, validate=False)
        prepared = PreparedQuery(QUERY, reloaded)
        print("\ntranslation / logical plan:")
        print(prepared.explain())

        result = prepared.execute(reloaded)
        print(f"\n{len(result)} matching products")

        # repeated execution reuses the compiled plan
        for _ in range(3):
            assert prepared.execute(reloaded) == result

        # 4. instrumented run: estimates vs actual row counts per operator
        run = prepared.analyze(reloaded)
        print("\nEXPLAIN ANALYZE:")
        print(explain_analyze(run))

        # 5. plan as Graphviz dot (pipe through `dot -Tsvg` to render)
        dot = plan_to_dot(prepared.plan)
        print(f"\nGraphviz dot output: {len(dot.splitlines())} lines "
              f"(render with `dot -Tsvg`)")


if __name__ == "__main__":
    main()
