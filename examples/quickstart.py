"""Quickstart: nested queries over complex objects in a few lines.

Run with::

    python examples/quickstart.py
"""

from repro import Catalog, Tup, explain_query, run_query


def main() -> None:
    # A tiny database: orders with set-valued tags, and a shipment table.
    catalog = Catalog()
    catalog.add_rows(
        "ORDERS",
        [
            Tup(id=1, customer="ada", tags=frozenset({"rush", "gift"}), items=2),
            Tup(id=2, customer="bob", tags=frozenset({"rush"}), items=0),
            Tup(id=3, customer="cyd", tags=frozenset(), items=0),
        ],
    )
    catalog.add_rows(
        "SHIPMENTS",
        [
            Tup(order_id=1, box="A"),
            Tup(order_id=1, box="B"),
            Tup(order_id=2, box="C"),
        ],
    )

    # 1. A nested query with an aggregate between blocks — the COUNT-bug
    #    shape. Orders whose `items` count equals their shipment count:
    #    order 3 has no shipments and items = 0, so it belongs to the answer.
    query = """
        SELECT o FROM ORDERS o
        WHERE o.items = COUNT(SELECT s FROM SHIPMENTS s WHERE o.id = s.order_id)
    """
    result = run_query(query, catalog)
    print("orders whose items equal their shipment count:")
    for order in sorted(result.value, key=lambda t: t["id"]):
        print("  ", order)

    # 2. How was it computed? The translator chose a nest join, which keeps
    #    dangling orders (their shipment set is simply ∅ — no NULLs needed).
    print("\nhow the optimizer processed it:")
    print(explain_query(query, catalog))

    # 3. Set predicates between blocks work the same way; rewritable ones
    #    become flat semijoins/antijoins (Theorem 1 of the paper).
    flat = """
        SELECT o.customer FROM ORDERS o
        WHERE 'A' IN (SELECT s.box FROM SHIPMENTS s WHERE o.id = s.order_id)
    """
    print("\ncustomers with a shipment in box A:", sorted(run_query(flat, catalog).value))
    print(explain_query(flat, catalog))

    # 4. Every engine agrees with the naive nested-loop semantics.
    for engine in ("interpret", "logical", "physical"):
        assert run_query(query, catalog, engine=engine).value == result.value
    print("\nall engines agree ✔")


if __name__ == "__main__":
    main()
