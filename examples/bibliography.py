"""A second domain: nested queries over a bibliographic database.

Papers carry set-valued authors, citations, and keywords — the data shape
complex-object models were invented for. Each query below lands in a
different row of the paper's Table 2, and the pipeline picks a different
operator accordingly.

Run with::

    python examples/bibliography.py
"""

from repro import explain_query, run_query
from repro.workloads import LIBRARY_QUERIES, make_library


def main() -> None:
    catalog = make_library(n_papers=60, n_authors=25, n_venues=6, seed=2)
    print(
        f"library: {len(catalog['PAPERS'])} papers, "
        f"{len(catalog['AUTHORS'])} authors, {len(catalog['VENUES'])} venues"
    )

    descriptions = {
        "self_contained_venues": "⊆ between blocks → nest join (grouping)",
        "citation_count_parity": "COUNT between blocks → nest join (the COUNT-bug shape)",
        "cited_in_venue": "∃-form → semijoin (Theorem 1)",
        "venue_portfolios": "SELECT-clause nesting → nest join",
        "twente_papers": "uncorrelated subquery → interpreted constant",
    }
    for name, query in LIBRARY_QUERIES.items():
        result = run_query(query, catalog)
        print(f"\n== {name} — {descriptions[name]}")
        print(f"   {len(result.value)} results")
        first_line = explain_query(query, catalog).splitlines()
        for line in first_line[:3]:
            print("  ", line)

    # Cross-engine agreement, as everywhere in this library.
    for name, query in LIBRARY_QUERIES.items():
        values = {
            engine: run_query(query, catalog, engine=engine).value
            for engine in ("interpret", "logical", "physical")
        }
        assert values["interpret"] == values["logical"] == values["physical"], name
    print("\nall queries agree on all engines ✔")


if __name__ == "__main__":
    main()
