"""The paper's running example: the Employee/Department database.

Reproduces queries Q1 and Q2 from Section 3.2 of the paper on a generated
company, plus further TM-style queries over set-valued attributes
(children) and nested paths (address sorts).

Run with::

    python examples/company_queries.py
"""

from repro import explain_query, run_query
from repro.model.values import value_repr
from repro.workloads import Q1_SAME_STREET, Q2_EMPS_BY_CITY, make_company


def main() -> None:
    catalog = make_company(n_departments=6, n_employees=40, p_same_street=0.5, seed=7)

    # Q1: departments with an employee living in the department's street.
    # The subquery ranges over the set-valued attribute d.emps, so the paper
    # (and the translator) keep it nested — set-valued attributes are stored
    # with the objects themselves.
    q1 = run_query(Q1_SAME_STREET, catalog)
    print("Q1 — departments with an employee in the same street:")
    for dept in sorted(q1.value, key=lambda d: d["name"]):
        print(f"   {dept['name']} ({dept['address']['street']}, {dept['address']['city']})")
    print("\nQ1 plan decision:")
    print(explain_query(Q1_SAME_STREET, catalog))

    # Q2: for each department, the employees living in the department's
    # city. SELECT-clause nesting over the stored table EMP → nest join.
    q2 = run_query(Q2_EMPS_BY_CITY, catalog)
    print("\nQ2 — employees living in their department's city (first 3 rows):")
    for row in sorted(q2.value, key=lambda t: t["dname"])[:3]:
        names = sorted(e["name"] for e in row["emps"])
        print(f"   {row['dname']}: {len(names)} employees {names[:2]}{'...' if len(names) > 2 else ''}")
    print("\nQ2 plan decision:")
    print(explain_query(Q2_EMPS_BY_CITY, catalog))

    # A TM-specific predicate: departments whose employees *all* earn
    # at least 40k — FORALL over a set-valued attribute.
    well_paid = run_query(
        """
        SELECT d.name FROM DEPT d
        WHERE FORALL e IN d.emps (e.sal >= 40000)
        """,
        catalog,
    )
    print("\ndepartments where everyone earns ≥ 40k:", sorted(well_paid.value))

    # Set-valued children: employees whose children's names include one of
    # the parent's colleagues' names (deliberately contrived nesting).
    kids_named_like_colleagues = run_query(
        """
        SELECT e.name FROM EMP e
        WHERE (SELECT k.name FROM e.children k) INTERSECT
              (SELECT c.name FROM EMP c WHERE c.address.city = e.address.city) <> {}
        """,
        catalog,
        typecheck=False,
    )
    print(
        "employees sharing a child's name with a colleague's full name:",
        sorted(kids_named_like_colleagues.value) or "(none)",
    )

    # Aggregates over nested sets: the city with the most employees.
    per_city = run_query(
        """
        SELECT (city = c, n = COUNT(SELECT e FROM EMP e WHERE e.address.city = c))
        FROM (SELECT e2.address.city FROM EMP e2) c
        """,
        catalog,
    )
    busiest = max(per_city.value, key=lambda t: t["n"])
    print(f"busiest city: {busiest['city']} with {busiest['n']} employees")


if __name__ == "__main__":
    main()
