"""The COUNT bug, live: watch Kim's algorithm drop rows and the fixes keep them.

This is the worked example of Section 2 of the paper, executed:

* the nested query evaluated naively (correct, slow),
* Kim's two unnesting variants (fast, WRONG — the COUNT bug),
* the Ganski–Wong outerjoin fix and Muralikrishna's antijoin fix (correct),
* the paper's nest join (correct, no NULLs, one operator).

Run with::

    python examples/count_bug_demo.py
"""

from repro import Catalog, Tup, run_query
from repro.algebra.interpreter import result_set, run_logical
from repro.algebra.pretty import explain_plan
from repro.baselines import (
    ganski_wong_plan,
    kim_ja_group_first_plan,
    kim_ja_join_first_plan,
    mural_plan,
)
from repro.workloads import COUNT_BUG_NESTED


def main() -> None:
    # The textbook instance: r2 has NO matching S row and b = 0 — the
    # nested query counts an empty set, 0 = 0, so r2 IS in the answer.
    catalog = Catalog()
    catalog.add_rows(
        "R",
        [
            Tup(a=1, b=2, c=10),  # two partners, honest count → in answer
            Tup(a=2, b=0, c=99),  # dangling, b = 0 → in answer (the victim)
            Tup(a=3, b=5, c=20),  # one partner, wrong count → not in answer
        ],
    )
    catalog.add_rows(
        "S",
        [Tup(c=10, d=1), Tup(c=10, d=2), Tup(c=20, d=3)],
    )

    oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
    print("the nested query:", COUNT_BUG_NESTED.strip())
    print("\ncorrect answer (naive nested-loop):")
    for t in sorted(oracle, key=lambda t: t["a"]):
        print("  ", t)

    strategies = [
        ("Kim variant (1): group S first, then join", kim_ja_group_first_plan()),
        ("Kim variant (2): join first, then group", kim_ja_join_first_plan()),
        ("Ganski–Wong: outerjoin + ν* + HAVING", ganski_wong_plan()),
        ("Muralikrishna: outerjoin + antijoin predicate", mural_plan()),
    ]
    for name, plan in strategies:
        got = result_set(run_logical(plan, catalog))
        verdict = "correct" if got == oracle else f"WRONG — lost {sorted(t['a'] for t in oracle - got)}"
        print(f"\n{name}: {verdict}")
        print(explain_plan(plan, 1))

    nest = run_query(COUNT_BUG_NESTED, catalog, engine="physical")
    print("\nnest join translation (this paper):", "correct" if nest.value == oracle else "WRONG")
    print(explain_plan(nest.translation.plan, 1))
    print(
        "\nthe dangling tuple survives because the nest join extends it with ∅"
        " — the empty set is part of the model, no NULL detour required."
    )


if __name__ == "__main__":
    main()
