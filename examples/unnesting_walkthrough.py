"""A tour of the unnesting machinery: Table 2 and the Section 8 pipeline.

Shows, for a range of predicates between query blocks, what the classifier
decides (∃-form → semijoin, ¬∃-form → antijoin, otherwise grouping → nest
join), and then walks the three-block Section 8 query through translation
and execution on all engines.

Run with::

    python examples/unnesting_walkthrough.py
"""

from repro import explain_query, run_query
from repro.core.classify import classify
from repro.core.normalize import normalize_predicate
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.workloads import SECTION8_FLAT_VARIANT, SECTION8_QUERY, make_chain_workload

Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"

PREDICATES = [
    "x.c IN {z}",
    "x.c NOT IN {z}",
    "{z} = {{}}",
    "COUNT({z}) > 0",
    "x.a SUPSETEQ {z}",
    "x.a SUBSETEQ {z}",
    "x.c = COUNT({z})",
    "FORALL w IN x.a (w NOT IN {z})",
]


def main() -> None:
    print("classifying predicates P(x, z) against z =", Z)
    print()
    sub = parse(Z)
    for template in PREDICATES:
        pred = normalize_predicate(parse(template.format(z=Z)))
        cls = classify(pred, sub)
        shown = template.format(z="z")
        if cls.kind.value == "exists":
            print(f"  {shown:35s} →  semijoin   on ∃{cls.var}∈z ({pretty(cls.member_pred)})")
        elif cls.kind.value == "not_exists":
            print(f"  {shown:35s} →  antijoin   on ¬∃{cls.var}∈z ({pretty(cls.member_pred)})")
        else:
            print(f"  {shown:35s} →  NEST JOIN  (needs the whole subquery result)")

    catalog = make_chain_workload(n_x=30, n_y=30, n_z=30, set_size=1, seed=3)
    print("\n--- Section 8: both inter-block predicates need grouping ---")
    print(explain_query(SECTION8_QUERY, catalog))
    for engine in ("interpret", "logical", "physical"):
        result = run_query(SECTION8_QUERY, catalog, engine=engine)
        print(f"  {engine:10s}: {len(result.value)} rows")

    print("\n--- the ∈/∉ variant: both blocks flatten (antijoin + semijoin) ---")
    print(explain_query(SECTION8_FLAT_VARIANT, catalog))
    for engine in ("interpret", "physical"):
        result = run_query(SECTION8_FLAT_VARIANT, catalog, engine=engine)
        print(f"  {engine:10s}: {len(result.value)} rows")


if __name__ == "__main__":
    main()
