#!/usr/bin/env python
"""Diff a fresh BENCH_report.json against the committed BENCH_baseline.json.

The gate compares the ``perf`` section of two reports produced by
``python -m repro.bench --perf-only --json ...`` (see ``make perf-report``)
and fails when the fresh report regresses beyond the tolerances:

* schema checks (always): matching ``schema_version``, every baseline
  benchmark present in the report, per-benchmark keys intact;
* throughput: each benchmark's ``throughput_qps`` must reach at least
  ``(1 - --throughput-tolerance)`` of the baseline;
* plan quality: each benchmark's ``qerror_max`` must not exceed the
  baseline by more than ``--qerror-tolerance`` (absolute slack);
* introspection: the report's ``introspection.overhead_pct`` (live
  registry progress counters + structured event log, on vs off) must not
  exceed ``--introspection-max-pct``. This is an absolute budget against
  the fresh report — not a baseline diff — so it stays active under
  ``--shape-only``;
* cache accounting: the report's ``caches.accounting_overhead_pct``
  (per-insert deep sizing of cached artifacts, on vs off over a serving
  lifecycle) must not exceed ``--caches-max-pct`` — an absolute budget
  like the introspection one, active under ``--shape-only``.

``--shape-only`` skips the two numeric checks — shared CI runners have
wildly variable clocks, so CI proves the report's *shape* while local
runs (and perf-focused PRs) compare the numbers. ``--update-baseline``
copies the report over the baseline after a passing shape check.

Exit status: 0 all checks pass, 1 regression or shape mismatch,
2 usage/IO error — including a report whose ``schema_version`` is newer
than the baseline's (the committed baseline predates the code; regenerate
it with ``--update-baseline`` rather than diffing mismatched shapes).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REQUIRED_BENCH_KEYS = (
    "runs",
    "rows",
    "throughput_qps",
    "row_throughput_qps",
    "batch_speedup",
    "parallel_throughput_qps",
    "parallel_speedup",
    "latency_ms",
    "qerror_max",
)


def load_perf(path: Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "perf" not in report:
        raise ValueError(f"{path}: no 'perf' section (run: make perf-report)")
    return report


def check(baseline: dict, report: dict, args) -> list[tuple[str, str, bool, str]]:
    """Return rows of (benchmark, check, ok, detail)."""
    rows: list[tuple[str, str, bool, str]] = []
    b_perf, r_perf = baseline["perf"], report["perf"]

    same_schema = baseline.get("schema_version") == report.get("schema_version")
    rows.append(
        (
            "<report>",
            "schema_version",
            same_schema,
            f"baseline={baseline.get('schema_version')} report={report.get('schema_version')}",
        )
    )
    if not same_schema:
        return rows

    intro = r_perf.get("introspection") or {}
    overhead = intro.get("overhead_pct")
    present = isinstance(overhead, (int, float))
    rows.append(
        (
            "<report>",
            "introspection",
            present,
            "overhead_pct present" if present else "missing introspection.overhead_pct",
        )
    )
    if present:
        # An absolute budget on the fresh report — a within-process ratio,
        # stable enough to enforce even on shared (shape-only) runners.
        ok = overhead <= args.introspection_max_pct
        rows.append(
            (
                "<report>",
                "introspection_overhead",
                ok,
                f"{overhead:.2f}% vs budget {args.introspection_max_pct:.2f}%",
            )
        )

    caches = r_perf.get("caches") or {}
    acct = caches.get("accounting_overhead_pct")
    present = isinstance(acct, (int, float))
    rows.append(
        (
            "<report>",
            "caches",
            present,
            "accounting_overhead_pct present"
            if present
            else "missing caches.accounting_overhead_pct",
        )
    )
    if present:
        ok = acct <= args.caches_max_pct
        rows.append(
            (
                "<report>",
                "accounting_overhead",
                ok,
                f"{acct:.2f}% vs budget {args.caches_max_pct:.2f}%",
            )
        )

    for name, base in sorted(b_perf["benchmarks"].items()):
        fresh = r_perf["benchmarks"].get(name)
        if fresh is None:
            rows.append((name, "present", False, "missing from report"))
            continue
        missing = [k for k in REQUIRED_BENCH_KEYS if k not in fresh]
        rows.append(
            (name, "keys", not missing, f"missing {missing}" if missing else "all present")
        )
        if missing or args.shape_only:
            continue

        floor = base["throughput_qps"] * (1.0 - args.throughput_tolerance)
        ok = fresh["throughput_qps"] >= floor
        rows.append(
            (
                name,
                "throughput",
                ok,
                f"{fresh['throughput_qps']:.1f} q/s vs floor {floor:.1f}"
                f" (baseline {base['throughput_qps']:.1f})",
            )
        )

        ceiling = base["qerror_max"] + args.qerror_tolerance
        ok = fresh["qerror_max"] <= ceiling
        rows.append(
            (
                name,
                "qerror_max",
                ok,
                f"{fresh['qerror_max']:.2f} vs ceiling {ceiling:.2f}"
                f" (baseline {base['qerror_max']:.2f})",
            )
        )
    return rows


def render(rows: list[tuple[str, str, bool, str]]) -> str:
    widths = (
        max(len(r[0]) for r in rows),
        max(len(r[1]) for r in rows),
        4,
    )
    out = [
        f"{'benchmark':<{widths[0]}}  {'check':<{widths[1]}}  {'ok':<{widths[2]}}  detail",
        f"{'-' * widths[0]}  {'-' * widths[1]}  {'-' * widths[2]}  {'-' * 6}",
    ]
    for name, what, ok, detail in rows:
        mark = "PASS" if ok else "FAIL"
        out.append(f"{name:<{widths[0]}}  {what:<{widths[1]}}  {mark:<{widths[2]}}  {detail}")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json", type=Path)
    parser.add_argument("--report", default="BENCH_report.json", type=Path)
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.6,
        help="allowed fractional throughput drop per benchmark (default 0.6; "
        "wide because shared machines show ~2x wall-clock swings — the gate "
        "targets multi-x regressions, CI uses --shape-only)",
    )
    parser.add_argument(
        "--qerror-tolerance",
        type=float,
        default=0.5,
        help="allowed absolute increase of per-benchmark qerror_max (default 0.5)",
    )
    parser.add_argument(
        "--introspection-max-pct",
        type=float,
        default=5.0,
        help="maximum allowed introspection.overhead_pct in the fresh report "
        "(default 5.0; enforced even under --shape-only — it is a "
        "within-process ratio, not a wall-clock comparison across runs)",
    )
    parser.add_argument(
        "--caches-max-pct",
        type=float,
        default=5.0,
        help="maximum allowed caches.accounting_overhead_pct in the fresh "
        "report (default 5.0; enforced even under --shape-only, same "
        "reasoning as the introspection budget)",
    )
    parser.add_argument(
        "--shape-only",
        action="store_true",
        help="check schema and coverage only; skip timing comparisons (CI mode)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="after a passing shape check, copy the report over the baseline",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_perf(args.baseline)
        report = load_perf(args.report)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"perf-gate: {exc}", file=sys.stderr)
        return 2

    b_schema = baseline.get("schema_version")
    r_schema = report.get("schema_version")
    if isinstance(b_schema, int) and isinstance(r_schema, int) and r_schema > b_schema:
        # A newer report schema means the committed baseline predates this
        # code; diffing mismatched shapes would only produce misleading
        # failures. With --update-baseline the fresh report (after a
        # self-contained shape check) becomes the new baseline; otherwise
        # fail loudly with the remediation.
        if args.update_baseline:
            broken = {
                name: [k for k in REQUIRED_BENCH_KEYS if k not in bench]
                for name, bench in report["perf"]["benchmarks"].items()
                if any(k not in bench for k in REQUIRED_BENCH_KEYS)
            }
            if broken:
                print(
                    f"perf-gate: report schema v{r_schema} is missing keys "
                    f"{broken}; not adopting it as baseline",
                    file=sys.stderr,
                )
                return 2
            shutil.copyfile(args.report, args.baseline)
            print(
                f"perf-gate: baseline adopted report schema v{r_schema} "
                f"(was v{b_schema}); commit {args.baseline}"
            )
            return 0
        print(
            f"perf-gate: report schema v{r_schema} is newer than baseline "
            f"schema v{b_schema}; regenerate the baseline "
            "(make perf-gate PERF_GATE_FLAGS=--update-baseline) and commit it",
            file=sys.stderr,
        )
        return 2

    rows = check(baseline, report, args)
    print(render(rows))
    failed = [r for r in rows if not r[2]]
    if failed:
        print(f"\nperf-gate: FAIL ({len(failed)} check(s) failed)")
        return 1
    mode = "shape-only" if args.shape_only else "full"
    print(f"\nperf-gate: PASS ({len(rows)} checks, {mode})")
    if args.update_baseline:
        shutil.copyfile(args.report, args.baseline)
        print(f"perf-gate: baseline updated from {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
