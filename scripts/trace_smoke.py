"""Smoke-test the tracing surface end to end (``make trace-smoke``).

Builds a small join catalog, then drives the real CLI as a subprocess:

1. ``repro query --analyze`` — the plan tree must show per-operator
   rows in/out, wall time, the build-cache account, and the peak group
   size for the nest join;
2. ``repro trace --format=chrome`` — the output must be valid Chrome
   ``trace_event`` JSON (every event carries name/cat/ph/ts/pid/tid);
3. ``repro trace`` (text) — the rewrite-decision log must name the
   Table 2 row and the nest-join verdict.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args], capture_output=True, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"command failed: repro {' '.join(args)}\n{proc.stderr}")
        sys.exit(1)
    return proc.stdout


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.stderr.write(f"trace-smoke FAILED: {message}\n")
        sys.exit(1)


def main() -> None:
    from repro.io import dump_catalog
    from repro.workloads import COUNT_BUG_NESTED, make_join_workload

    tmp = Path(tempfile.mkdtemp(prefix="trace-smoke-"))
    db = tmp / "catalog.json"
    dump_catalog(make_join_workload(n_left=30, n_right=100, seed=7).catalog, db)
    query = " ".join(COUNT_BUG_NESTED.split())

    analyzed = run_cli("query", query, "--db", str(db), "--analyze")
    for needle in ("NestJoin", "est=", "act=", "q=", "ms", "cache", "peak group"):
        expect(needle in analyzed, f"--analyze output lacks {needle!r}:\n{analyzed}")

    trace_path = tmp / "trace.json"
    run_cli(
        "trace", query, "--db", str(db), "--format", "chrome", "--out", str(trace_path)
    )
    doc = json.loads(trace_path.read_text())
    events = doc.get("traceEvents")
    expect(bool(events), "chrome export has no traceEvents")
    for event in events:
        missing = {"name", "cat", "ph", "ts", "pid", "tid"} - set(event)
        expect(not missing, f"trace event missing fields {missing}: {event}")
        expect(event["ph"] in ("X", "i"), f"unexpected event phase {event['ph']!r}")
        if event["ph"] == "X":
            expect(event["dur"] >= 0, f"negative duration: {event}")
    expect(
        doc.get("otherData", {}).get("query") == query,
        "chrome export does not echo the query",
    )
    expect(
        any(event["tid"] == 2 for event in events),
        "chrome export lacks operator spans (tid 2)",
    )

    text = run_cli("trace", query, "--db", str(db))
    for needle in ("table2:", "verdict=grouping", "nestjoin"):
        expect(needle in text, f"text trace lacks {needle!r}:\n{text}")

    print(
        f"trace-smoke ok: {len(events)} chrome events, "
        f"analyze and text trace validated ({db})"
    )


if __name__ == "__main__":
    main()
