"""Smoke-test live query introspection end to end (``make introspection-smoke``).

For each execution mode (sequential batch, then parallel scatter-gather):

1. start a real :class:`QueryService` over a large R/S catalog and
   attach the admin endpoint with :func:`serve_metrics`;
2. submit a deliberately slow query (the COUNT-bug join over ~400k
   rows) and scrape ``GET /queries`` until the request shows up
   mid-flight — for the sequential service, keep scraping until its
   progress fraction is strictly inside (0, 1);
3. cancel it by id with ``POST /queries/<id>/cancel`` and require the
   response future to resolve to outcome ``"cancelled"`` within a
   deadline — the admin cancel must actually stop the operators, not
   just flip a flag;
4. require the structured event log (``stats()["events"]``) to carry
   the correlated ``admit`` → ``cancel`` story for that ``query_id``,
   and ``/healthz`` to report uptime/in-flight/queue-depth.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

#: The query execution must be dead (future resolved) this many seconds
#: after the admin cancel lands. Generous for shared CI runners; local
#: cancellation latency is one POLL_INTERVAL of rows.
CANCEL_DEADLINE_SECONDS = 15.0

#: How long we are willing to poll /queries for the mid-flight snapshot.
SCRAPE_DEADLINE_SECONDS = 20.0


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.stderr.write(f"introspection-smoke FAILED: {message}\n")
        sys.exit(1)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.loads(resp.read())


def post(url: str) -> tuple[int, dict]:
    request = urllib.request.Request(url, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=5) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:  # 404 etc. still carry JSON
        return exc.code, json.loads(exc.read())


def run_mode(catalog, slow_query: str, execution: str) -> None:
    from repro.server.exposition import serve_metrics
    from repro.server.request import QueryRequest
    from repro.server.service import QueryService

    with QueryService(catalog, workers=2, execution=execution) as service:
        with serve_metrics(service) as server:
            health = get_json(f"{server.url}/healthz")
            for key in ("status", "uptime_seconds", "in_flight", "queue_depth"):
                expect(key in health, f"[{execution}] /healthz lacks {key!r}: {health}")

            request = QueryRequest(slow_query, timeout=120.0)
            future = service.submit(request)

            # Scrape until the request is visibly mid-flight. Sequential
            # execution feeds the progress sink from operator polls, so
            # also require a progress fraction strictly inside (0, 1);
            # parallel fragments run in worker processes and fold their
            # counts only at gather, so there presence suffices.
            deadline = time.monotonic() + SCRAPE_DEADLINE_SECONDS
            entry = None
            while time.monotonic() < deadline:
                snapshot = get_json(f"{server.url}/queries")
                live = [
                    e
                    for e in snapshot["active"]
                    if e["query_id"] == request.request_id
                ]
                if live:
                    entry = live[0]
                    if execution == "parallel" or 0.0 < entry["progress"] < 1.0:
                        break
                if future.done():
                    expect(
                        False,
                        f"[{execution}] query finished before it could be "
                        f"observed mid-flight: {future.result().outcome}",
                    )
                time.sleep(0.05)
            expect(
                entry is not None,
                f"[{execution}] query never appeared in GET /queries",
            )
            expect(
                entry["state"] == "running",
                f"[{execution}] expected a running entry, got {entry['state']}",
            )
            if execution != "parallel":
                expect(
                    0.0 < entry["progress"] < 1.0,
                    f"[{execution}] mid-flight progress not in (0,1): "
                    f"{entry['progress']} ({entry['rows_processed']} of "
                    f"{entry['estimated_rows']} estimated rows)",
                )

            in_flight = get_json(f"{server.url}/healthz")["in_flight"]
            expect(
                in_flight >= 1,
                f"[{execution}] /healthz in_flight should be >= 1, got {in_flight}",
            )

            status, body = post(
                f"{server.url}/queries/{request.request_id}/cancel"
            )
            expect(
                status == 200 and body.get("cancelled") is True,
                f"[{execution}] cancel POST failed: {status} {body}",
            )

            start = time.monotonic()
            response = future.result(timeout=CANCEL_DEADLINE_SECONDS)
            cancel_latency = time.monotonic() - start
            expect(
                response.outcome == "cancelled",
                f"[{execution}] expected outcome 'cancelled', got "
                f"{response.outcome!r} ({response.error})",
            )

            # Unknown ids must 404, not crash the endpoint.
            status, body = post(f"{server.url}/queries/no-such-id/cancel")
            expect(
                status == 404 and body.get("cancelled") is False,
                f"[{execution}] unknown-id cancel should 404: {status} {body}",
            )

            events = [
                e
                for e in service.stats()["events"]
                if e.get("query_id") == request.request_id
            ]
            kinds = [e["event"] for e in events]
            expect(
                "admit" in kinds and "cancel" in kinds,
                f"[{execution}] event log lacks admit->cancel for "
                f"{request.request_id}: {kinds}",
            )
            expect(
                kinds.index("admit") < kinds.index("cancel"),
                f"[{execution}] admit must precede cancel: {kinds}",
            )

            recent = get_json(f"{server.url}/queries")["recent"]
            finished = [
                e for e in recent if e["query_id"] == request.request_id
            ]
            expect(
                bool(finished) and finished[0]["state"] == "cancelled",
                f"[{execution}] cancelled query missing from recent pane",
            )

    print(
        f"introspection-smoke [{execution}] ok: observed "
        f"progress={entry['progress']:.3f} "
        f"({entry['rows_processed']} rows, op={entry['current_op']}), "
        f"cancelled in {cancel_latency * 1e3:.0f}ms, "
        f"events={kinds}"
    )


def main() -> None:
    from repro.core.log import clear_events
    from repro.server.workload import mixed_catalog
    from repro.workloads import COUNT_BUG_NESTED

    # Big enough that the COUNT-bug join runs for O(1s) warm — slow
    # enough to scrape mid-flight, fast enough for CI if cancel fails.
    catalog = mixed_catalog(seed=3, n_left=40000, n_right=240000)
    clear_events()
    run_mode(catalog, COUNT_BUG_NESTED, "batch")
    run_mode(catalog, COUNT_BUG_NESTED, "parallel")
    print("introspection-smoke ok: sequential and parallel modes")


if __name__ == "__main__":
    main()
