"""Smoke-test multi-process tracing end to end (``make trace-parallel-smoke``).

Builds a small join catalog, then drives the real CLI as a subprocess:

1. ``repro trace --format chrome --execution parallel --parts N`` — the
   merged export must be valid Chrome ``trace_event`` JSON whose span
   events land on at least two distinct pids (the coordinator plus N
   worker lanes), with ``process_name`` metadata labelling every lane
   and one fragment span per partition;
2. ``repro query --execution parallel --analyze`` — the EXPLAIN ANALYZE
   tree must carry the worker-side resource telemetry columns
   (``cpu=`` / ``peak_mem=`` / ``shipped=``) and the shard-skew note.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

PARTS = 4


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args], capture_output=True, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"command failed: repro {' '.join(args)}\n{proc.stderr}")
        sys.exit(1)
    return proc.stdout


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.stderr.write(f"trace-parallel-smoke FAILED: {message}\n")
        sys.exit(1)


def main() -> None:
    from repro.io import dump_catalog
    from repro.workloads import COUNT_BUG_NESTED, make_join_workload

    tmp = Path(tempfile.mkdtemp(prefix="trace-parallel-smoke-"))
    db = tmp / "catalog.json"
    dump_catalog(make_join_workload(n_left=60, n_right=240, seed=7).catalog, db)
    query = " ".join(COUNT_BUG_NESTED.split())

    trace_path = tmp / "trace.json"
    run_cli(
        "trace",
        query,
        "--db",
        str(db),
        "--format",
        "chrome",
        "--execution",
        "parallel",
        "--parts",
        str(PARTS),
        "--out",
        str(trace_path),
    )
    doc = json.loads(trace_path.read_text())
    events = doc.get("traceEvents")
    expect(bool(events), "chrome export has no traceEvents")
    spans = [e for e in events if e.get("ph") != "M"]
    meta = [e for e in events if e.get("ph") == "M"]
    for event in spans:
        missing = {"name", "cat", "ph", "ts", "pid", "tid"} - set(event)
        expect(not missing, f"trace event missing fields {missing}: {event}")
        expect(event["ph"] in ("X", "i"), f"unexpected event phase {event['ph']!r}")
        if event["ph"] == "X":
            expect(event["dur"] >= 0, f"negative duration: {event}")
    pids = {e["pid"] for e in spans}
    expect(
        len(pids) >= 2,
        f"merged trace is single-process: pids {sorted(pids)}",
    )
    expect(1 in pids, "coordinator lane (pid 1) missing from the merged trace")
    worker_pids = pids - {1}
    expect(
        len(worker_pids) == PARTS,
        f"expected {PARTS} worker lanes, saw pids {sorted(worker_pids)}",
    )
    lane_names = {
        e["args"]["name"] for e in meta if e.get("name") == "process_name"
    }
    expect("coordinator" in lane_names, "coordinator lane is unlabelled")
    expect(
        sum(1 for n in lane_names if n.startswith("worker pid=")) == PARTS,
        f"expected {PARTS} labelled worker lanes, saw {sorted(lane_names)}",
    )
    fragments = [e for e in spans if e["cat"] == "fragment"]
    expect(
        {e["name"] for e in fragments} == {f"part={i}" for i in range(PARTS)},
        f"expected one fragment span per partition, saw {fragments}",
    )
    expect(
        all(e["pid"] != 1 for e in fragments),
        "fragment spans must live on worker lanes, not the coordinator's",
    )
    expect(
        any(e["cat"] == "operator" and e["pid"] != 1 for e in spans),
        "no worker-side operator spans in the merged trace",
    )

    analyzed = run_cli(
        "query",
        query,
        "--db",
        str(db),
        "--execution",
        "parallel",
        "--parts",
        str(PARTS),
        "--analyze",
    )
    for needle in (f"Gather parts={PARTS}", "cpu=", "peak_mem=", "shipped=", "shard skew:"):
        expect(needle in analyzed, f"parallel --analyze output lacks {needle!r}:\n{analyzed}")

    print(
        f"trace-parallel-smoke ok: {len(spans)} spans across "
        f"{len(pids)} process lanes, telemetry columns validated ({db})"
    )


if __name__ == "__main__":
    main()
