"""Smoke-test cache memory accounting end to end (``make cache-smoke``).

Starts a real :class:`QueryService` over the mixed workload catalog,
warms every cache layer — plan, build, result, and the parallel pool's
shard catalogs (one query is forced through ``execution="parallel"``) —
then validates the three accounting surfaces:

1. ``GET /caches`` reports every registered cache with nonzero bytes and
   top entries that carry identity (kind/uid/version/keys for the build
   cache, the query text for plan and result entries);
2. the ``/metrics`` scrape carries the ``repro_cache_bytes`` /
   ``repro_cache_evictions_total`` families and parses under the strict
   validator;
3. re-serving the workload under a deliberately tiny byte budget
   triggers budget evictions (counter + ``cache_evict`` events +
   memory-pressure counter) while every response still matches the
   unbudgeted run.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import sys
import urllib.request


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.stderr.write(f"cache-smoke FAILED: {message}\n")
        sys.exit(1)


def main() -> None:
    from repro.core.log import clear_events, events_snapshot
    from repro.core.pipeline import prepared, set_plan_cache_budget
    from repro.engine.cache import set_build_cache_budget
    from repro.server.exposition import parse_prometheus, serve_metrics
    from repro.server.service import QueryService
    from repro.server.workload import make_requests, mixed_catalog
    from repro.workloads import COUNT_BUG_NESTED

    catalog = mixed_catalog(seed=13, n_left=60, n_right=240, n_chain=12)
    requests = make_requests(150, seed=13)

    # -- phase 1: warm every layer, scrape both surfaces -------------------
    with QueryService(catalog, workers=4, queue_limit=256) as service:
        responses = service.serve_all(requests)
        expect(
            all(r.error is None for r in responses),
            "workload produced request errors",
        )
        # One parallel execution populates the worker shard catalogs.
        parallel_rows = prepared(COUNT_BUG_NESTED, catalog).execute(
            catalog, execution="parallel", parts=2
        )
        with serve_metrics(service) as server:
            with urllib.request.urlopen(f"{server.url}/caches", timeout=5) as resp:
                expect(resp.status == 200, f"/caches returned {resp.status}")
                snap = json.loads(resp.read())
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                text = resp.read().decode("utf-8")

    caches = snap["caches"]
    for name in ("plan", "build", "result", "shard-catalog"):
        expect(name in caches, f"cache {name!r} not registered")
        expect(
            caches[name].get("bytes", 0) > 0,
            f"cache {name!r} reports zero bytes after warming",
        )
    expect(snap["total_bytes"] >= sum(c["bytes"] for c in caches.values()) > 0,
           "total_bytes inconsistent")

    build_top = caches["build"]["top_entries"]
    expect(bool(build_top), "build cache has no top entries")
    expect(
        all("kind" in e and "uid" in e and "version" in e and "keys" in e
            for e in build_top),
        f"build top entries lack identity: {build_top}",
    )
    plan_top = caches["plan"]["top_entries"]
    expect(
        bool(plan_top) and "query" in plan_top[0]["key"],
        f"plan top entries lack the query text: {plan_top}",
    )
    result_top = caches["result"]["top_entries"]
    expect(
        bool(result_top) and "catalog_version" in result_top[0]["key"],
        f"result top entries lack identity: {result_top}",
    )
    shard_top = caches["shard-catalog"]["top_entries"]
    expect(
        bool(shard_top) and all("tables" in e and "workers" in e for e in shard_top),
        f"shard-catalog top entries lack identity: {shard_top}",
    )

    samples = parse_prometheus(text)  # raises ValueError on malformed output
    byte_caches = {
        dict(key[1]).get("cache")
        for key in samples
        if key[0] == "repro_cache_bytes"
    }
    expect(
        {"plan", "build", "result", "shard-catalog"} <= byte_caches,
        f"cache_bytes family incomplete: {sorted(byte_caches)}",
    )
    expect(
        any(key[0] == "repro_cache_evictions_total" for key in samples)
        or caches["build"]["evictions"] == 0,
        "evictions happened but no cache_evictions family rendered",
    )

    # -- phase 2: tiny budget, identical results, visible pressure ---------
    baseline = {r.request_id: r.value for r in responses}
    clear_events()
    try:
        with QueryService(
            catalog, workers=4, queue_limit=256, cache_budget_mb=0.002
        ) as squeezed:
            squeezed_responses = squeezed.serve_all(requests)
            expect(
                all(r.error is None for r in squeezed_responses),
                "budgeted workload produced request errors",
            )
            for r in squeezed_responses:
                expect(
                    r.value == baseline[r.request_id],
                    f"budgeted result diverged for {r.request_id}",
                )
            parallel_again = prepared(COUNT_BUG_NESTED, catalog).execute(
                catalog, execution="parallel", parts=2
            )
            expect(parallel_again == parallel_rows, "budgeted parallel run diverged")
            squeezed_caches = squeezed.caches()["caches"]
    finally:
        set_plan_cache_budget(None)
        set_build_cache_budget(None)

    budget_evictions = sum(
        c.get("evictions_by_reason", {}).get("budget", 0)
        for c in squeezed_caches.values()
    )
    pressure = sum(c.get("memory_pressure", 0) for c in squeezed_caches.values())
    events = events_snapshot(events=["cache_evict"])
    expect(budget_evictions > 0, "tiny budget triggered no budget evictions")
    expect(pressure > 0, "memory-pressure counters never moved")
    expect(bool(events), "no structured cache_evict events recorded")
    expect(
        events[0].get("reason") == "budget" and events[0].get("bytes", 0) > 0,
        f"malformed cache_evict event: {events[0]}",
    )

    print(
        f"cache-smoke ok: {len(caches)} caches, "
        f"{snap['total_bytes']} bytes warmed; under a 2KiB budget: "
        f"{budget_evictions} budget evictions, {len(events)} cache_evict "
        f"events, results identical across {len(requests)} requests"
    )


if __name__ == "__main__":
    main()
