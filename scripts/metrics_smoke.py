"""Smoke-test the metrics endpoint end to end (``make metrics-smoke``).

Starts a real :class:`QueryService` over the mixed workload catalog,
serves a few hundred requests so the q-error and rewrite families are
populated, attaches the ``/metrics`` endpoint with
:func:`repro.server.exposition.serve_metrics`, scrapes it once over
HTTP, and validates the payload:

1. the response carries the Prometheus text content type and parses
   under the strict :func:`parse_prometheus` validator;
2. the scrape contains ``repro_queries_by_rewrite_total`` samples and a
   ``repro_qerror`` summary with a nonzero ``_count``;
3. ``GET /healthz`` answers with JSON ``status: ok``.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import sys
import urllib.request


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.stderr.write(f"metrics-smoke FAILED: {message}\n")
        sys.exit(1)


def main() -> None:
    from repro.server.exposition import CONTENT_TYPE, parse_prometheus, serve_metrics
    from repro.server.service import QueryService
    from repro.server.workload import make_requests, mixed_catalog

    catalog = mixed_catalog(seed=11, n_left=60, n_right=240, n_chain=12)
    with QueryService(
        catalog, workers=4, queue_limit=256, feedback_every=1
    ) as service:
        responses = service.serve_all(make_requests(200, seed=11))
        expect(
            all(r.error is None for r in responses),
            "workload produced request errors",
        )
        with serve_metrics(service) as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                expect(resp.status == 200, f"/metrics returned {resp.status}")
                content_type = resp.headers.get("Content-Type")
                expect(
                    content_type == CONTENT_TYPE,
                    f"unexpected content type {content_type!r}",
                )
                text = resp.read().decode("utf-8")
            with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as resp:
                expect(resp.status == 200, f"/healthz returned {resp.status}")
                health = json.loads(resp.read())
            expect(health.get("status") == "ok", f"bad health payload {health}")

    samples = parse_prometheus(text)  # raises ValueError on malformed output
    rewrite_samples = [
        key for key in samples if key[0] == "repro_queries_by_rewrite_total"
    ]
    expect(bool(rewrite_samples), "no repro_queries_by_rewrite_total samples")
    qerror_count = samples.get(("repro_qerror_count", ()))
    expect(
        qerror_count is not None and qerror_count > 0,
        f"repro_qerror_count missing or zero: {qerror_count}",
    )
    qerror_ops = {
        dict(key[1]).get("op") for key in samples if key[0] == "repro_qerror_by_op"
    }
    expect(bool(qerror_ops), "no repro_qerror_by_op quantile samples")

    print(
        f"metrics-smoke ok: {len(samples)} samples, "
        f"{len(rewrite_samples)} rewrite kinds, "
        f"qerror count {qerror_count:.0f} across ops {sorted(qerror_ops)}"
    )


if __name__ == "__main__":
    main()
