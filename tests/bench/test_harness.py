"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import ResultTable, fmt_seconds, speedup, time_best


class TestResultTable:
    def test_add_and_column(self):
        t = ResultTable("T", ("a", "b"))
        t.add(1, "x")
        t.add(2, "y")
        assert t.column("a") == [1, 2]
        assert t.column("b") == ["x", "y"]

    def test_add_rejects_wrong_arity(self):
        t = ResultTable("T", ("a", "b"))
        with pytest.raises(ValueError):
            t.add(1)

    def test_render_aligns_columns(self):
        t = ResultTable("Title", ("name", "n"))
        t.add("short", 1)
        t.add("a-much-longer-name", 22)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        # header and data rows share column boundaries
        header = lines[2]
        assert header.startswith("name")
        widths = {len(line) for line in lines[3:5]}
        assert len(widths) >= 1  # rendered without raising

    def test_notes_rendered(self):
        t = ResultTable("T", ("a",))
        t.add(1)
        t.note("hello note")
        assert "* hello note" in t.render()

    def test_float_formatting(self):
        t = ResultTable("T", ("v",))
        t.add(3.14159265)
        assert "3.142" in t.render()

    def test_str_is_render(self):
        t = ResultTable("T", ("a",))
        t.add(1)
        assert str(t) == t.render()


class TestTiming:
    def test_time_best_returns_positive(self):
        assert time_best(lambda: sum(range(100)), repeat=2) > 0

    def test_time_best_takes_minimum(self):
        calls = []

        def fn():
            calls.append(1)

        time_best(fn, repeat=4)
        assert len(calls) == 4

    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(0.0000005).endswith("µs")
        assert fmt_seconds(0.005).endswith("ms")
        assert fmt_seconds(2.5).endswith("s")

    def test_speedup_guards_zero(self):
        assert speedup(1.0, 0.0) > 0
        assert speedup(2.0, 1.0) == 2.0
