"""Smoke tests for the experiment suite at tiny scales.

The benchmarks assert shapes at report scale; these tests keep every
experiment function covered and correct in the ordinary unit-test run.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    e1_table1,
    e2_table2,
    e3_count_bug,
    e4_subseteq_bug,
    e5_q1_q2,
    e6_unnest_collapse,
    e7_section8,
    e8_nested_vs_flat,
    e9_nestjoin_impls,
    e10_outerjoin_detour,
    e11_semijoin_vs_nestjoin,
    e12_scaling,
)


class TestExactExperiments:
    def test_e1_table1(self):
        table = e1_table1()
        assert len(table.rows) == 3
        assert "dangling tuple preserved with s = ∅: True" in table.notes

    def test_e2_table2(self):
        table = e2_table2()
        assert len(table.rows) == 16
        classes = set(table.column("class"))
        assert classes == {"exists", "not_exists", "grouping"}


class TestTimedExperimentsAtTinyScale:
    def test_e3(self):
        table = e3_count_bug(n_left=40)
        correct = dict(zip(table.column("strategy"), table.column("correct")))
        assert correct["naive nested-loop"] is True
        assert correct["Kim (1) group-first"] is False
        assert correct["Ganski–Wong outerjoin"] is True
        assert correct["Muralikrishna antijoin"] is True
        assert correct["nest join (this paper)"] is True

    def test_e4(self):
        table = e4_subseteq_bug(n_left=40, n_right=30)
        correct = dict(zip(table.column("strategy"), table.column("correct")))
        assert correct["Kim-style group+join"] is False
        assert correct["nest join (this paper)"] is True

    def test_e5(self):
        table = e5_q1_q2(n_departments=4, n_employees=25)
        assert all(table.column("correct"))

    def test_e6(self):
        table = e6_unnest_collapse(n=60)
        assert all(table.column("correct"))

    def test_e7(self):
        table = e7_section8(n=25)
        assert all(table.column("correct"))
        strategies = table.column("strategy")
        assert "nestjoin+nestjoin" in strategies
        assert "antijoin+semijoin" in strategies

    def test_e8(self):
        table = e8_nested_vs_flat(sizes=(20, 40))
        assert all(table.column("correct"))

    def test_e9(self):
        table = e9_nestjoin_impls(sizes=(30,))
        assert all(table.column("agree"))

    def test_e10(self):
        table = e10_outerjoin_detour(sizes=(30,))
        assert all(table.column("equal"))

    def test_e11(self):
        table = e11_semijoin_vs_nestjoin(sizes=(40,))
        assert all(table.column("equal"))

    def test_e12(self):
        table = e12_scaling(sizes=(20, 40))
        assert all(table.column("correct"))


class TestExtensionAblations:
    def test_e13(self):
        from repro.bench.experiments import e13_rewrite_ablation

        table = e13_rewrite_ablation(n_left=60, n_right=50)
        assert "equal results: True" in table.notes[0]

    def test_e14(self):
        from repro.bench.experiments import e14_index_join

        table = e14_index_join(n_left=60)
        assert "equal results: True" in table.notes[0]

    def test_e15(self):
        from repro.bench.experiments import e15_plan_enumeration

        table = e15_plan_enumeration()
        assert "equal results: True" in table.notes[0]
        assert table.column("shape") == ["(X ⋈ Y) Δ Z", "(X Δ Z) ⋈ Y"]


class TestRegistryAndMain:
    def test_registry_complete(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 17)]
        for key, (title, fn) in EXPERIMENTS.items():
            assert callable(fn) and title

    def test_main_runs_selected(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E99"]) == 2
