"""Tests for the perf report schema and the regression gate script."""

import copy
import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.perf import PERF_QUERIES, SCHEMA_VERSION, collect_perf

REPO_ROOT = Path(__file__).resolve().parents[2]
GATE = REPO_ROOT / "scripts" / "perf_gate.py"


@pytest.fixture(scope="module")
def perf():
    # Tiny catalog + few repeats: the schema is under test, not the clock.
    perf = collect_perf(repeats=2, n_left=20, n_right=80, n_chain=4)
    # On a catalog this small the overhead measurement is pure scheduler
    # noise; pin it so the gate tests below exercise the budget check
    # deterministically. The real number comes from the full-size report.
    perf["introspection"]["overhead_pct"] = 1.0
    perf["caches"]["accounting_overhead_pct"] = 1.0
    return perf


class TestCollectPerf:
    def test_schema_top_level(self, perf):
        assert perf["schema_version"] == SCHEMA_VERSION
        assert set(perf) == {
            "schema_version",
            "config",
            "benchmarks",
            "qerror",
            "introspection",
            "caches",
        }

    def test_introspection_section_keys(self, perf):
        intro = perf["introspection"]
        assert intro["sweeps"] >= 1
        assert intro["queries_per_sweep"] >= 1
        assert intro["baseline_sweep_ms"] > 0
        assert intro["instrumented_sweep_ms"] > 0
        assert math.isfinite(intro["overhead_pct"])

    def test_caches_section_keys(self, perf):
        caches = perf["caches"]
        assert caches["sweeps"] >= 1
        assert caches["serves_per_sweep"] >= 1
        assert caches["queries_per_serve"] >= 1
        assert caches["baseline_sweep_ms"] > 0
        assert caches["accounted_sweep_ms"] > 0
        assert math.isfinite(caches["accounting_overhead_pct"])

    def test_covers_every_workload_query(self, perf):
        assert set(perf["benchmarks"]) == set(PERF_QUERIES)

    def test_per_benchmark_keys(self, perf):
        for name, bench in perf["benchmarks"].items():
            assert bench["runs"] == 2
            assert bench["rows"] >= 0
            assert bench["throughput_qps"] > 0
            assert bench["row_throughput_qps"] > 0
            assert bench["batch_speedup"] > 0
            assert bench["parallel_throughput_qps"] > 0
            assert bench["parallel_speedup"] > 0
            assert set(bench["latency_ms"]) == {"mean", "p50", "p95", "p99", "max"}
            assert bench["qerror_max"] >= 1.0 and math.isfinite(bench["qerror_max"])
            assert bench["rewrite_kinds"], name

    def test_qerror_summary(self, perf):
        q = perf["qerror"]
        assert q["count"] > 0
        assert 1.0 <= q["p50"] <= q["max"]
        assert math.isfinite(q["mean"])

    def test_report_is_json_serializable(self, perf):
        json.loads(json.dumps(perf))


def run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(GATE), *args], capture_output=True, text=True
    )


def write_report(path: Path, perf: dict) -> Path:
    path.write_text(json.dumps({"schema_version": SCHEMA_VERSION, "perf": perf}))
    return path


class TestPerfGate:
    def test_identical_reports_pass(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        rep = write_report(tmp_path / "rep.json", perf)
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "perf-gate: PASS" in proc.stdout

    def test_doctored_throughput_regression_fails(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        doctored = copy.deepcopy(perf)
        for bench in doctored["benchmarks"].values():
            bench["throughput_qps"] /= 10.0
        rep = write_report(tmp_path / "rep.json", doctored)
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "perf-gate: FAIL" in proc.stdout
        assert "throughput" in proc.stdout

    def test_shape_only_ignores_doctored_numbers(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        doctored = copy.deepcopy(perf)
        for bench in doctored["benchmarks"].values():
            bench["throughput_qps"] /= 100.0
        rep = write_report(tmp_path / "rep.json", doctored)
        proc = run_gate("--baseline", str(base), "--report", str(rep), "--shape-only")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "shape-only" in proc.stdout

    def test_missing_benchmark_fails_even_shape_only(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        pruned = copy.deepcopy(perf)
        pruned["benchmarks"].popitem()
        rep = write_report(tmp_path / "rep.json", pruned)
        proc = run_gate("--baseline", str(base), "--report", str(rep), "--shape-only")
        assert proc.returncode == 1
        assert "missing from report" in proc.stdout

    def test_newer_report_schema_is_usage_error(self, perf, tmp_path):
        """A report schema ahead of the baseline means the baseline is
        stale, not that perf regressed — exit 2 with the remediation."""
        base = write_report(tmp_path / "base.json", perf)
        rep = tmp_path / "rep.json"
        rep.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1, "perf": perf}))
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 2, proc.stdout + proc.stderr
        assert "newer than baseline" in proc.stderr
        assert "--update-baseline" in proc.stderr

    def test_newer_report_schema_update_baseline_adopts_it(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        rep = tmp_path / "rep.json"
        rep.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1, "perf": perf}))
        proc = run_gate(
            "--baseline", str(base), "--report", str(rep), "--update-baseline"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(base.read_text()) == json.loads(rep.read_text())

    def test_older_report_schema_fails_the_diff(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        rep = tmp_path / "rep.json"
        rep.write_text(json.dumps({"schema_version": SCHEMA_VERSION - 1, "perf": perf}))
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 1
        assert "schema_version" in proc.stdout

    def test_introspection_over_budget_fails_even_shape_only(self, perf, tmp_path):
        """The overhead budget is absolute (within one report), so it
        stays active when the cross-report diffs are shape-only."""
        base = write_report(tmp_path / "base.json", perf)
        bloated = copy.deepcopy(perf)
        bloated["introspection"]["overhead_pct"] = 50.0
        rep = write_report(tmp_path / "rep.json", bloated)
        proc = run_gate("--baseline", str(base), "--report", str(rep), "--shape-only")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "introspection_overhead" in proc.stdout

    def test_introspection_budget_is_configurable(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        bloated = copy.deepcopy(perf)
        bloated["introspection"]["overhead_pct"] = 50.0
        rep = write_report(tmp_path / "rep.json", bloated)
        proc = run_gate(
            "--baseline", str(base), "--report", str(rep),
            "--shape-only", "--introspection-max-pct", "60",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_caches_over_budget_fails_even_shape_only(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        bloated = copy.deepcopy(perf)
        bloated["caches"]["accounting_overhead_pct"] = 50.0
        rep = write_report(tmp_path / "rep.json", bloated)
        proc = run_gate("--baseline", str(base), "--report", str(rep), "--shape-only")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "accounting_overhead" in proc.stdout

    def test_caches_budget_is_configurable(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        bloated = copy.deepcopy(perf)
        bloated["caches"]["accounting_overhead_pct"] = 50.0
        rep = write_report(tmp_path / "rep.json", bloated)
        proc = run_gate(
            "--baseline", str(base), "--report", str(rep),
            "--shape-only", "--caches-max-pct", "60",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_qerror_regression_fails(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        worse = copy.deepcopy(perf)
        name = next(iter(worse["benchmarks"]))
        worse["benchmarks"][name]["qerror_max"] += 10.0
        rep = write_report(tmp_path / "rep.json", worse)
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 1
        assert "qerror_max" in proc.stdout

    def test_missing_perf_section_is_usage_error(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        rep = tmp_path / "rep.json"
        rep.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        proc = run_gate("--baseline", str(base), "--report", str(rep))
        assert proc.returncode == 2
        assert "no 'perf' section" in proc.stderr

    def test_update_baseline_copies_report(self, perf, tmp_path):
        base = write_report(tmp_path / "base.json", perf)
        changed = copy.deepcopy(perf)
        changed["benchmarks"][next(iter(changed["benchmarks"]))]["rows"] += 1
        rep = write_report(tmp_path / "rep.json", changed)
        proc = run_gate(
            "--baseline", str(base), "--report", str(rep), "--update-baseline"
        )
        assert proc.returncode == 0
        assert json.loads(base.read_text()) == json.loads(rep.read_text())

    def test_committed_baseline_matches_schema(self):
        baseline = json.loads((REPO_ROOT / "BENCH_baseline.json").read_text())
        assert baseline["schema_version"] == SCHEMA_VERSION
        assert set(baseline["perf"]["benchmarks"]) == set(PERF_QUERIES)
