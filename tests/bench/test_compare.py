"""Tests for the strategy comparator and its CLI subcommand."""

import pytest

from repro.bench.compare import compare_strategies
from repro.engine.table import Catalog
from repro.model.values import Tup
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


@pytest.fixture(scope="module")
def catalog():
    return make_join_workload(n_left=40, match_rate=0.5, fanout=2, seed=2).catalog


class TestCompareStrategies:
    def test_all_strategies_listed_and_correct(self, catalog):
        table = compare_strategies(COUNT_BUG_NESTED, catalog, repeat=1)
        names = table.column("strategy")
        assert names[0] == "naive nested-loop (interpret)"
        assert any("reference executor" in n for n in names)
        assert any("rewrites on" in n for n in names)
        assert any("nested_loop" in n for n in names)
        assert any("hash" in n for n in names)
        assert any("sort_merge" in n for n in names)
        assert any("index_nested_loop" in n for n in names)
        assert all(table.column("correct"))
        # Every strategy returns the same number of rows.
        assert len(set(table.column("rows"))) == 1

    def test_translation_note(self, catalog):
        table = compare_strategies(COUNT_BUG_NESTED, catalog, repeat=1)
        assert any("nestjoin" in note for note in table.notes)

    def test_without_forced_algorithms(self, catalog):
        table = compare_strategies(
            COUNT_BUG_NESTED, catalog, repeat=1, include_forced_algorithms=False
        )
        assert not any("all joins" in n for n in table.column("strategy"))

    def test_unplannable_query(self):
        cat = Catalog()
        cat.add_rows("U", [Tup(items=frozenset({1}), k=1)])
        table = compare_strategies(
            "SELECT v FROM (SELECT u.items FROM U u) s WITH v = s", cat, repeat=1
        )
        # Falls back to interpretation-only with a note.
        assert any("no plan" in note for note in table.notes)


class TestCli:
    def test_compare_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import dump_catalog

        cat = make_join_workload(n_left=15, match_rate=0.5, fanout=1, seed=1).catalog
        path = tmp_path / "db.json"
        dump_catalog(cat, path)
        assert main(["compare", COUNT_BUG_NESTED, "--db", str(path), "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "strategy comparison" in out
        assert "naive nested-loop (interpret)" in out
