"""Tests for the logical rewrite pass: correctness and effect."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import run_logical
from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.algebra.rewrite import optimize_logical, push_selection
from repro.engine.table import Catalog
from repro.lang.ast import TRUE
from repro.lang.parser import parse
from repro.model.values import Tup


X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.b = y.d")


def catalog(seed=0, n=20):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=rng.randrange(4), b=rng.randrange(5)) for _ in range(n)])
    cat.add_rows("Y", [Tup(c=rng.randrange(4), d=rng.randrange(5)) for _ in range(n)])
    return cat


class TestPushdownStructure:
    def test_left_only_conjunct_sinks_below_join(self):
        plan = Select(Join(X, Y, EQUI), parse("x.a = 1"))
        out = optimize_logical(plan)
        assert out == Join(Select(X, parse("x.a = 1")), Y, EQUI)

    def test_right_only_conjunct_sinks_into_inner_join_right(self):
        plan = Select(Join(X, Y, EQUI), parse("y.c = 2"))
        out = optimize_logical(plan)
        assert out == Join(X, Select(Y, parse("y.c = 2")), EQUI)

    def test_mixed_conjunct_stays(self):
        pred = parse("x.a < y.c")
        plan = Select(Join(X, Y, EQUI), pred)
        assert optimize_logical(plan) == plan

    def test_conjuncts_travel_independently(self):
        plan = Select(Join(X, Y, EQUI), parse("x.a = 1 AND y.c = 2 AND x.a < y.c"))
        out = optimize_logical(plan)
        assert out == Select(
            Join(Select(X, parse("x.a = 1")), Select(Y, parse("y.c = 2")), EQUI),
            parse("x.a < y.c"),
        )

    @pytest.mark.parametrize(
        "mk",
        [
            lambda: SemiJoin(X, Y, EQUI),
            lambda: AntiJoin(X, Y, EQUI),
            lambda: OuterJoin(X, Y, EQUI),
            lambda: NestJoin(X, Y, EQUI, None, "zs"),
        ],
        ids=["semi", "anti", "outer", "nest"],
    )
    def test_left_pushdown_through_every_join_mode(self, mk):
        plan = Select(mk(), parse("x.a = 1"))
        out = optimize_logical(plan)
        join = out
        assert type(join) is type(mk())
        assert join.left == Select(X, parse("x.a = 1"))

    def test_no_right_pushdown_for_outer_or_nest(self):
        # A selection above OuterJoin referencing y is legal (y is bound);
        # it must NOT sink into the right operand.
        plan = Select(OuterJoin(X, Y, EQUI), parse("y.c = 2"))
        out = optimize_logical(plan)
        assert isinstance(out, Select)
        assert isinstance(out.child, OuterJoin)
        assert out.child.right == Y

    def test_pushdown_through_extend_drop_distinct(self):
        inner = Distinct(Drop(Extend(Join(X, Y, EQUI), parse("x.a + 1"), "e"), ("e",)))
        plan = Select(inner, parse("x.a = 1"))
        out = optimize_logical(plan)
        # The selection ends up directly above the X scan.
        node = out
        while not isinstance(node, Join):
            node = node.children()[0]
        assert node.left == Select(X, parse("x.a = 1"))

    def test_selection_on_extend_label_stays_above_extend(self):
        plan = Select(Extend(X, parse("x.a + 1"), "e"), parse("e = 2"))
        assert optimize_logical(plan) == plan

    def test_pushdown_through_unnest_unless_var_used(self):
        nj = NestJoin(X, Y, EQUI, None, "zs")
        flat = Unnest(nj, "zs", "y2")
        sinkable = Select(flat, parse("x.a = 1"))
        out = optimize_logical(sinkable)
        assert isinstance(out, Unnest)
        stuck = Select(flat, parse("y2.c = 1"))
        assert optimize_logical(stuck) == stuck

    def test_pushdown_into_nest_on_group_keys_only(self):
        grouped = Nest(Join(X, Y, EQUI), by=("x",), nest="y", label="g")
        sinkable = Select(grouped, parse("x.a = 1"))
        out = optimize_logical(sinkable)
        assert isinstance(out, Nest)
        stuck = Select(grouped, parse("COUNT(g) = 0"))
        assert optimize_logical(stuck) == stuck

    def test_true_selection_removed(self):
        assert optimize_logical(Select(X, TRUE)) == X

    def test_stacked_selects_merge_and_sink(self):
        plan = Select(Select(Join(X, Y, EQUI), parse("x.a = 1")), parse("y.c = 2"))
        out = optimize_logical(plan)
        assert out == Join(Select(X, parse("x.a = 1")), Select(Y, parse("y.c = 2")), EQUI)

    def test_nested_distinct_collapses(self):
        assert optimize_logical(Distinct(Distinct(X))) == Distinct(X)

    def test_push_selection_returns_none_when_stuck(self):
        assert push_selection(X, parse("x.a = 1")) is None


PLAN_BUILDERS = [
    lambda: Select(Join(X, Y, EQUI), parse("x.a = 1 AND y.c = 2")),
    lambda: Select(NestJoin(X, Y, EQUI, parse("y.c"), "zs"), parse("x.a = 1 AND COUNT(zs) >= 0")),
    lambda: Select(SemiJoin(X, Y, EQUI), parse("x.a <> 3")),
    lambda: Select(OuterJoin(X, Y, EQUI), parse("x.b >= 1")),
    lambda: Map(
        Select(Drop(NestJoin(X, Y, EQUI, parse("y.c"), "zs"), ("zs",)), parse("x.a = 1")),
        parse("x.b"),
        "v",
    ),
    lambda: Select(
        Nest(OuterJoin(X, Y, EQUI), by=("x",), nest="y", label="g", null_to_empty=True),
        parse("x.a = 2 AND COUNT(g) = 0"),
    ),
]


@pytest.mark.parametrize("mk", range(len(PLAN_BUILDERS)))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(0, 25))
def test_rewrites_preserve_semantics(mk, seed, n):
    cat = catalog(seed, n)
    plan = PLAN_BUILDERS[mk]()
    before = Counter(run_logical(plan, cat))
    after = Counter(run_logical(optimize_logical(plan), cat))
    assert before == after


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_rewrites_preserve_random_query_results(seed):
    import random

    from repro.core.pipeline import run_query
    from repro.testing import random_catalog, random_query

    rng = random.Random(seed)
    cat = random_catalog(rng)
    query = random_query(rng)
    with_rewrite = run_query(query, cat, engine="physical", rewrite=True).value
    without = run_query(query, cat, engine="physical", rewrite=False).value
    assert with_rewrite == without
