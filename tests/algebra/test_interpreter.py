"""Unit tests for the logical plan reference executor."""

import pytest

from repro.algebra.interpreter import result_set, result_values, run_logical
from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.engine.table import Catalog, Table
from repro.errors import PlanError
from repro.lang.parser import parse
from repro.model.values import NULL, Tup


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=1, b=1), Tup(a=1, b=2), Tup(a=2, b=3)])
    cat.add_rows("Y", [Tup(c=1, d=1), Tup(c=2, d=1), Tup(c=3, d=3)])
    return cat


X = Scan("X", "x")
Y = Scan("Y", "y")


class TestBasics:
    def test_scan(self, catalog):
        rows = run_logical(X, catalog)
        assert rows == [Tup(x=Tup(a=1, b=1)), Tup(x=Tup(a=1, b=2)), Tup(x=Tup(a=2, b=3))]

    def test_select(self, catalog):
        rows = run_logical(Select(X, parse("x.a = 1")), catalog)
        assert len(rows) == 2

    def test_map(self, catalog):
        rows = run_logical(Map(X, parse("x.a * 10"), "v"), catalog)
        assert result_values(rows) == [10, 10, 20]

    def test_extend_and_drop(self, catalog):
        plan = Drop(Extend(X, parse("x.a + x.b"), "s"), ("x",))
        assert result_values(run_logical(plan, catalog)) == [2, 3, 5]

    def test_distinct(self, catalog):
        plan = Distinct(Map(X, parse("x.a"), "v"))
        assert result_values(run_logical(plan, catalog)) == [1, 2]


class TestJoins:
    def test_inner_join(self, catalog):
        rows = run_logical(Join(X, Y, parse("x.b = y.d")), catalog)
        # X(1,1) matches two Y rows; X(2,3) matches one; X(1,2) dangles.
        assert len(rows) == 3

    def test_semijoin(self, catalog):
        rows = run_logical(SemiJoin(X, Y, parse("x.b = y.d")), catalog)
        assert result_set(rows) == frozenset({Tup(a=1, b=1), Tup(a=2, b=3)})

    def test_antijoin(self, catalog):
        rows = run_logical(AntiJoin(X, Y, parse("x.b = y.d")), catalog)
        assert result_set(rows) == frozenset({Tup(a=1, b=2)})

    def test_semijoin_antijoin_partition_left(self, catalog):
        semi = result_set(run_logical(SemiJoin(X, Y, parse("x.b = y.d")), catalog))
        anti = result_set(run_logical(AntiJoin(X, Y, parse("x.b = y.d")), catalog))
        assert semi | anti == catalog["X"].as_set()
        assert semi & anti == frozenset()

    def test_outer_join_pads_with_null(self, catalog):
        rows = run_logical(OuterJoin(X, Y, parse("x.b = y.d")), catalog)
        assert len(rows) == 4  # 3 matches + 1 dangling
        dangling = [t for t in rows if t["y"] == NULL]
        assert len(dangling) == 1
        assert dangling[0]["x"] == Tup(a=1, b=2)


class TestNestJoinTable1:
    """Reproduction of Table 1 of the paper (E1).

    X and Y are flat relations equijoined on the second attribute with the
    identity nest-join function; the dangling X-tuple survives with s = ∅.
    """

    def test_table1(self, catalog):
        plan = Map(
            NestJoin(X, Y, parse("x.b = y.d"), None, "s"),
            parse("(a = x.a, b = x.b, s = s)"),
            "row",
        )
        result = result_set(run_logical(plan, catalog))
        expected = frozenset(
            {
                Tup(a=1, b=1, s=frozenset({Tup(c=1, d=1), Tup(c=2, d=1)})),
                Tup(a=1, b=2, s=frozenset()),
                Tup(a=2, b=3, s=frozenset({Tup(c=3, d=3)})),
            }
        )
        assert result == expected

    def test_nest_join_function_projects(self, catalog):
        plan = NestJoin(X, Y, parse("x.b = y.d"), parse("y.c"), "cs")
        rows = run_logical(plan, catalog)
        by_x = {t["x"]: t["cs"] for t in rows}
        assert by_x[Tup(a=1, b=1)] == frozenset({1, 2})
        assert by_x[Tup(a=1, b=2)] == frozenset()

    def test_every_left_tuple_survives_exactly_once(self, catalog):
        rows = run_logical(NestJoin(X, Y, parse("x.b = y.d"), None, "s"), catalog)
        assert len(rows) == len(catalog["X"])

    def test_nest_join_function_may_use_left_bindings(self, catalog):
        plan = NestJoin(X, Y, parse("x.b = y.d"), parse("x.a + y.c"), "ss")
        rows = run_logical(plan, catalog)
        by_x = {t["x"]: t["ss"] for t in rows}
        assert by_x[Tup(a=1, b=1)] == frozenset({2, 3})


class TestNestUnnest:
    def test_nest_groups(self, catalog):
        plan = Nest(Join(X, Y, parse("x.b = y.d")), by=("x",), nest="y", label="ys")
        rows = run_logical(plan, catalog)
        by_x = {t["x"]: t["ys"] for t in rows}
        # The dangling X-tuple never reaches Nest — the classic loss.
        assert Tup(a=1, b=2) not in by_x
        assert by_x[Tup(a=1, b=1)] == frozenset({Tup(c=1, d=1), Tup(c=2, d=1)})

    def test_nest_star_maps_null_group_to_empty(self, catalog):
        plan = Nest(
            OuterJoin(X, Y, parse("x.b = y.d")),
            by=("x",),
            nest="y",
            label="ys",
            null_to_empty=True,
        )
        rows = run_logical(plan, catalog)
        by_x = {t["x"]: t["ys"] for t in rows}
        assert by_x[Tup(a=1, b=2)] == frozenset()

    def test_unnest_flattens(self, catalog):
        nj = NestJoin(X, Y, parse("x.b = y.d"), None, "s")
        rows = run_logical(Unnest(nj, "s", "y"), catalog)
        join_rows = run_logical(Join(X, Y, parse("x.b = y.d")), catalog)
        assert frozenset(rows) == frozenset(join_rows)

    def test_unnest_loses_dangling(self, catalog):
        nj = NestJoin(X, Y, parse("x.b = y.d"), None, "s")
        flattened = run_logical(Unnest(nj, "s", "y"), catalog)
        xs = {t["x"] for t in flattened}
        assert Tup(a=1, b=2) not in xs  # the dangling tuple is gone


class TestResultHelpers:
    def test_result_values_requires_single_binding(self, catalog):
        rows = run_logical(Join(X, Y, parse("x.b = y.d")), catalog)
        with pytest.raises(PlanError):
            result_values(rows)
