"""Tests for static typing of logical plans."""

import pytest

from repro.algebra.plan import (
    AntiJoin,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.algebra.typing import check_plan, plan_types
from repro.errors import TypeCheckError
from repro.lang.parser import parse
from repro.model.types import ANY, BOOL, INT, STRING, SetType, TupleType

X_ROW = TupleType({"a": INT, "b": INT})
Y_ROW = TupleType({"c": INT, "d": STRING})
TABLES = {"X": X_ROW, "Y": Y_ROW}

X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.a = y.c")


class TestBindingTypes:
    def test_scan(self):
        assert plan_types(X, TABLES) == {"x": X_ROW}

    def test_unknown_table(self):
        with pytest.raises(TypeCheckError, match="unknown table"):
            plan_types(Scan("GHOST", "g"), TABLES)

    def test_join_merges(self):
        assert plan_types(Join(X, Y, EQUI), TABLES) == {"x": X_ROW, "y": Y_ROW}

    def test_semi_anti_keep_left(self):
        assert plan_types(SemiJoin(X, Y, EQUI), TABLES) == {"x": X_ROW}
        assert plan_types(AntiJoin(X, Y, EQUI), TABLES) == {"x": X_ROW}

    def test_outer_join_right_becomes_any(self):
        types = plan_types(OuterJoin(X, Y, EQUI), TABLES)
        assert types["x"] == X_ROW
        assert types["y"] == ANY

    def test_nest_join_label_is_set_of_func_type(self):
        nj = NestJoin(X, Y, EQUI, parse("y.d"), "zs")
        types = plan_types(nj, TABLES)
        assert types["zs"] == SetType(STRING)

    def test_identity_nest_join(self):
        nj = NestJoin(X, Y, EQUI, None, "zs")
        assert plan_types(nj, TABLES)["zs"] == SetType(Y_ROW)

    def test_map_and_extend(self):
        assert plan_types(Map(X, parse("x.a + 1"), "v"), TABLES) == {"v": INT}
        types = plan_types(Extend(X, parse("x.a = 1"), "flag"), TABLES)
        assert types == {"x": X_ROW, "flag": BOOL}

    def test_drop(self):
        types = plan_types(Drop(Join(X, Y, EQUI), ("y",)), TABLES)
        assert types == {"x": X_ROW}

    def test_nest_and_unnest(self):
        grouped = Nest(Join(X, Y, EQUI), by=("x",), nest="y", label="g")
        types = plan_types(grouped, TABLES)
        assert types == {"x": X_ROW, "g": SetType(Y_ROW)}
        flat = Unnest(grouped, "g", "y2")
        types = plan_types(flat, TABLES)
        assert types == {"x": X_ROW, "y2": Y_ROW}


class TestChecking:
    def test_non_boolean_select_rejected(self):
        with pytest.raises(TypeCheckError):
            check_plan(Select(X, parse("x.a + 1")), TABLES)

    def test_non_boolean_join_pred_rejected(self):
        with pytest.raises(TypeCheckError):
            check_plan(Join(X, Y, parse("x.a + y.c")), TABLES)

    def test_bad_attribute_in_pred_rejected(self):
        with pytest.raises(TypeCheckError):
            check_plan(Select(X, parse("x.zzz = 1")), TABLES)

    def test_incompatible_join_keys_rejected(self):
        with pytest.raises(TypeCheckError):
            check_plan(Join(X, Y, parse("x.a = y.d")), TABLES)  # INT vs STRING

    def test_unnest_of_scalar_rejected(self):
        plan = Unnest(Extend(X, parse("x.a"), "s"), "s", "v")
        with pytest.raises(TypeCheckError, match="non-set"):
            check_plan(plan, TABLES)


class TestTranslatorOutputTypes:
    """Every plan the translator emits must type-check."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_translations_type_check(self, seed):
        import random

        from repro.core.pipeline import prepare
        from repro.testing import random_catalog, random_query

        rng = random.Random(seed)
        catalog = random_catalog(rng)
        tr = prepare(random_query(rng), catalog)
        if tr is not None:
            check_plan(tr.plan, catalog.row_types())

    def test_paper_query_translations_type_check(self):
        from repro.core.pipeline import prepare
        from repro.workloads import (
            COUNT_BUG_NESTED,
            SECTION8_FLAT_VARIANT,
            SECTION8_QUERY,
            SUBSETEQ_BUG_NESTED,
            make_chain_workload,
            make_join_workload,
            make_set_workload,
        )

        wl = make_join_workload(n_left=10, seed=0)
        check_plan(prepare(COUNT_BUG_NESTED, wl.catalog).plan, wl.catalog.row_types())
        cat = make_set_workload(n_left=10, n_right=10, seed=0)
        check_plan(prepare(SUBSETEQ_BUG_NESTED, cat).plan, cat.row_types())
        chain = make_chain_workload(n_x=5, n_y=5, n_z=5, seed=0)
        check_plan(prepare(SECTION8_QUERY, chain).plan, chain.row_types())
        check_plan(prepare(SECTION8_FLAT_VARIANT, chain).plan, chain.row_types())

    def test_rewritten_plans_type_check(self):
        import random

        from repro.algebra.rewrite import optimize_logical
        from repro.core.pipeline import prepare
        from repro.testing import random_catalog, random_query

        for seed in range(20):
            rng = random.Random(seed)
            catalog = random_catalog(rng)
            tr = prepare(random_query(rng), catalog)
            if tr is not None:
                check_plan(optimize_logical(tr.plan), catalog.row_types())
