"""Typing soundness: statically computed binding types describe runtime rows.

For random translated (and rewritten) plans, every row the reference
executor produces must *conform* to the types :func:`plan_types` predicted
— the classic "well-typed programs don't go wrong" property, here for the
algebra.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import run_logical
from repro.algebra.rewrite import optimize_logical
from repro.algebra.typing import plan_types
from repro.core.pipeline import prepare
from repro.model.validate import conforms
from repro.testing import random_catalog, random_query


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_runtime_rows_conform_to_static_types(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    tr = prepare(random_query(rng), catalog)
    if tr is None:
        return
    types = plan_types(tr.plan, catalog.row_types())
    rows = run_logical(tr.plan, catalog)
    for row in rows:
        assert set(row.labels()) == set(types)
        for label, value in row.items():
            assert conforms(value, types[label]), (
                f"binding {label!r} = {value!r} does not conform to {types[label]!r}"
            )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_rewritten_plans_keep_typing_soundness(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    tr = prepare(random_query(rng), catalog)
    if tr is None:
        return
    plan = optimize_logical(tr.plan)
    types = plan_types(plan, catalog.row_types())
    for row in run_logical(plan, catalog):
        for label, value in row.items():
            assert conforms(value, types[label])
