"""Plan-level fuzzing: random operator trees on every join algorithm.

The query fuzzer only reaches plan shapes the translator emits; this suite
generates arbitrary well-formed plans (outer-join + ν* chains, stacked
Unnest, Distinct towers, Drop of nested attributes) and checks that the
physical engine — under every forced join algorithm and under cost-based
selection — agrees with the reference executor as a multiset.
"""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import run_logical
from repro.algebra.rewrite import optimize_logical
from repro.algebra.typing import check_plan
from repro.engine.executor import run_physical
from repro.testing import random_catalog, random_plan

ALGORITHMS = ("nested_loop", "hash", "sort_merge", "index_nested_loop")


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_random_plans_agree_across_algorithms(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, max_rows=6)
    plan = random_plan(rng)
    reference = Counter(run_logical(plan, catalog))
    for algo in ALGORITHMS:
        assert Counter(run_physical(plan, catalog, force_algorithm=algo)) == reference, algo
    assert Counter(run_physical(plan, catalog)) == reference  # cost-based


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_random_plans_survive_rewriting(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, max_rows=6)
    plan = random_plan(rng)
    rewritten = optimize_logical(plan)
    assert Counter(run_logical(rewritten, catalog)) == Counter(run_logical(plan, catalog))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_random_plans_type_check(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, max_rows=4)
    plan = random_plan(rng)
    check_plan(plan, catalog.row_types())


def test_generator_is_deterministic_and_varied():
    plans = [random_plan(random.Random(s)) for s in range(40)]
    again = [random_plan(random.Random(s)) for s in range(40)]
    assert plans == again
    assert len(set(plans)) > 25
