"""Tests for cost-based plan enumeration over the Section 6 laws."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.enumerate import choose_plan, enumerate_plans, local_rewrites
from repro.algebra.interpreter import run_logical
from repro.algebra.plan import Join, NestJoin, Scan
from repro.engine.plan_cost import plan_cost
from repro.engine.stats import StatsCatalog
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup


X = Scan("X", "x")
Y = Scan("Y", "y")
Z = Scan("Z", "z")

R_XY = parse("x.b = y.d")  # join predicate touching x and y
S_XZ = parse("x.a = z.f")  # nest-join predicate touching x and z
S_YZ = parse("y.c = z.e")  # nest-join predicate touching y and z


def catalog(nx=8, ny=8, nz=8, seed=0):
    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=rng.randrange(4), b=rng.randrange(4)) for _ in range(nx)])
    cat.add_rows("Y", [Tup(c=rng.randrange(4), d=rng.randrange(4)) for _ in range(ny)])
    cat.add_rows("Z", [Tup(e=rng.randrange(4), f=rng.randrange(4)) for _ in range(nz)])
    return cat


class TestLocalRewrites:
    def test_exchange_forward(self):
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        variants = list(local_rewrites(plan))
        assert Join(NestJoin(X, Z, S_XZ, None, "zs"), Y, R_XY) in variants

    def test_exchange_reverse(self):
        plan = Join(NestJoin(X, Z, S_XZ, None, "zs"), Y, R_XY)
        variants = list(local_rewrites(plan))
        assert NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs") in variants

    def test_associate_forward(self):
        plan = Join(X, NestJoin(Y, Z, S_YZ, None, "zs"), R_XY)
        variants = list(local_rewrites(plan))
        assert NestJoin(Join(X, Y, R_XY), Z, S_YZ, None, "zs") in variants

    def test_associate_reverse(self):
        plan = NestJoin(Join(X, Y, R_XY), Z, S_YZ, None, "zs")
        variants = list(local_rewrites(plan))
        assert Join(X, NestJoin(Y, Z, S_YZ, None, "zs"), R_XY) in variants

    def test_exchange_blocked_when_pred_touches_y(self):
        # s references y: the nest join cannot move below the join with Y.
        plan = NestJoin(Join(X, Y, R_XY), Z, parse("y.c = z.e AND x.a = z.f"), None, "zs")
        for variant in local_rewrites(plan):
            # associate-reverse may fire only if pred ignores x — it doesn't.
            assert not isinstance(variant, Join) or variant.left != NestJoin(
                X, Z, plan.pred, None, "zs"
            )

    def test_join_pred_on_label_blocks_reverse_exchange(self):
        plan = Join(NestJoin(X, Z, S_XZ, None, "zs"), Y, parse("COUNT(zs) = y.c"))
        assert list(local_rewrites(plan)) == []


class TestEnumeration:
    def test_closure_contains_original(self):
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        plans = enumerate_plans(plan)
        assert plan in plans
        assert len(plans) >= 2

    def test_budget_respected(self):
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        assert len(enumerate_plans(plan, budget=1)) == 1

    def test_all_variants_share_binding_set(self):
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        for variant in enumerate_plans(plan):
            assert set(variant.bindings()) == set(plan.bindings())


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5000))
def test_enumerated_variants_are_equivalent(seed):
    cat = catalog(seed=seed)
    plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
    reference = frozenset(run_logical(plan, cat))
    for variant in enumerate_plans(plan):
        assert frozenset(run_logical(variant, cat)) == reference


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5000))
def test_associate_variants_are_equivalent(seed):
    cat = catalog(seed=seed)
    plan = Join(X, NestJoin(Y, Z, S_YZ, None, "zs"), R_XY)
    reference = frozenset(run_logical(plan, cat))
    for variant in enumerate_plans(plan):
        assert frozenset(run_logical(variant, cat)) == reference


class TestChoosePlan:
    def test_chosen_plan_is_cheapest(self):
        cat = catalog(nx=50, ny=50, nz=50, seed=3)
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        chosen = choose_plan(plan, cat)
        stats = StatsCatalog(cat)
        for variant in enumerate_plans(plan):
            assert plan_cost(chosen, stats) <= plan_cost(variant, stats)

    def test_chosen_plan_still_correct(self):
        cat = catalog(nx=30, ny=30, nz=30, seed=4)
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        chosen = choose_plan(plan, cat)
        assert frozenset(run_logical(chosen, cat)) == frozenset(run_logical(plan, cat))

    def test_expanding_join_pushes_nestjoin_below(self):
        # Y joins X with high fanout: nest-joining X with Z *before* the
        # expanding join avoids grouping multiplied rows; the cost model
        # must prefer the exchanged plan.
        cat = Catalog()
        cat.add_rows("X", [Tup(a=i % 3, b=0) for i in range(10)])
        cat.add_rows("Y", [Tup(c=i, d=0) for i in range(200)])  # fanout 200
        cat.add_rows("Z", [Tup(e=0, f=i % 3) for i in range(10)])
        plan = NestJoin(Join(X, Y, R_XY), Z, S_XZ, None, "zs")
        chosen = choose_plan(plan, cat)
        assert isinstance(chosen, Join)  # nest join moved below the join
        assert isinstance(chosen.left, NestJoin)
