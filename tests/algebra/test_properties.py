"""Property tests for the Section 6 algebraic laws of the nest join.

Each law is executed on randomly generated relations (hypothesis) and the
two sides compared as sets of binding tuples. The *non-laws* the paper
warns about (commutativity, Unnest∘NestJoin = Join) are demonstrated with
explicit counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import run_logical
from repro.algebra.plan import Join, NestJoin, Scan
from repro.algebra.properties import (
    ALL_LAWS,
    join_nestjoin_assoc,
    nestjoin_join_exchange,
    nestjoin_via_outerjoin,
    outerjoin_nest_expansion,
    project_collapse,
    unnest_of_nestjoin,
)
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup


def rows(labels, max_size=5):
    """Strategy: a small relation over the given labels with tiny int domains."""
    row = st.builds(
        lambda *vals: Tup(dict(zip(labels, vals))),
        *[st.integers(0, 3) for _ in labels],
    )
    return st.lists(row, max_size=max_size, unique=True)


def catalog_of(**tables):
    cat = Catalog()
    for name, rs in tables.items():
        cat.add_rows(name, rs)
    return cat


def as_set(plan, catalog):
    return frozenset(run_logical(plan, catalog))


X = Scan("X", "x")
Y = Scan("Y", "y")
Z = Scan("Z", "z")


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")))
def test_project_collapse(xs, ys):
    cat = catalog_of(X=xs, Y=ys)
    pred = parse("x.b = y.d")
    lhs = project_collapse.lhs(X, Y, pred)
    rhs = project_collapse.rhs(X, Y, pred)
    assert as_set(lhs, cat) == as_set(rhs, cat)


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")), rows(("e", "f")))
def test_nestjoin_join_exchange(xs, ys, zs):
    cat = catalog_of(X=xs, Y=ys, Z=zs)
    r_xy = parse("x.b = y.d")
    s_xz = parse("x.a = z.f")
    lhs = nestjoin_join_exchange.lhs(X, Y, Z, r_xy, s_xz)
    rhs = nestjoin_join_exchange.rhs(X, Y, Z, r_xy, s_xz)
    assert as_set(lhs, cat) == as_set(rhs, cat)


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")), rows(("e", "f")))
def test_join_nestjoin_assoc(xs, ys, zs):
    cat = catalog_of(X=xs, Y=ys, Z=zs)
    r_xy = parse("x.b = y.d")
    s_yz = parse("y.c = z.e")
    lhs = join_nestjoin_assoc.lhs(X, Y, Z, r_xy, s_yz)
    rhs = join_nestjoin_assoc.rhs(X, Y, Z, r_xy, s_yz)
    assert as_set(lhs, cat) == as_set(rhs, cat)


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")))
def test_outerjoin_nest_expansion(xs, ys):
    cat = catalog_of(X=xs, Y=ys)
    pred = parse("x.b = y.d")
    lhs = outerjoin_nest_expansion.lhs(X, Y, pred)
    rhs = outerjoin_nest_expansion.rhs(X, Y, pred)
    assert as_set(lhs, cat) == as_set(rhs, cat)


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")))
def test_nestjoin_via_outerjoin_rewrite(xs, ys):
    cat = catalog_of(X=xs, Y=ys)
    nj = NestJoin(X, Y, parse("x.b = y.d"), None, "zs")
    rewritten = nestjoin_via_outerjoin(nj)
    assert as_set(nj, cat) == as_set(rewritten, cat)


@settings(max_examples=60)
@given(rows(("a", "b")), rows(("c", "d")))
def test_unnest_of_nestjoin_equals_join_exactly_on_matching_tuples(xs, ys):
    cat = catalog_of(X=xs, Y=ys)
    unnest_plan, join_plan = unnest_of_nestjoin(X, Y, parse("x.b = y.d"))
    assert as_set(unnest_plan, cat) == as_set(join_plan, cat)


class TestNonLaws:
    """Counterexamples for the properties the paper says do NOT hold."""

    def test_nest_join_is_not_commutative(self):
        cat = catalog_of(X=[Tup(a=1, b=1)], Y=[Tup(c=1, d=1)])
        xy = run_logical(NestJoin(X, Y, parse("x.b = y.d"), None, "zs"), cat)
        yx = run_logical(NestJoin(Y, X, parse("x.b = y.d"), None, "zs"), cat)
        # Different shapes entirely: x ++ zs vs y ++ zs.
        assert frozenset(xy) != frozenset(yx)

    def test_unnest_nestjoin_loses_dangling_tuples(self):
        # With a dangling X-tuple the two sides of unnest_of_nestjoin agree
        # (both drop it); but NestJoin itself retains it — showing why the
        # nest join cannot be replaced by join + nest when dangling matter.
        cat = catalog_of(X=[Tup(a=1, b=99)], Y=[Tup(c=1, d=1)])
        nj_rows = run_logical(NestJoin(X, Y, parse("x.b = y.d"), None, "zs"), cat)
        join_rows = run_logical(Join(X, Y, parse("x.b = y.d")), cat)
        assert len(nj_rows) == 1 and nj_rows[0]["zs"] == frozenset()
        assert join_rows == []

    def test_nestjoin_does_not_associate_with_join_in_other_grouping(self):
        # X Δ (Y ⋈ Z) is typed differently from (X Δ Y) ⋈ Z: the former
        # nests y-z pairs, the latter nests y alone then joins z flat.
        cat = catalog_of(
            X=[Tup(a=1, b=1)],
            Y=[Tup(c=1, d=1)],
            Z=[Tup(e=1, f=1)],
        )
        lhs = NestJoin(X, Join(Y, Z, parse("y.c = z.e")), parse("x.b = y.d"), parse("(y = y, z = z)"), "zs")
        rhs = Join(NestJoin(X, Y, parse("x.b = y.d"), None, "zs"), Z, parse("z.f = x.a"))
        left_rows = frozenset(run_logical(lhs, cat))
        right_rows = frozenset(run_logical(rhs, cat))
        assert left_rows != right_rows

    def test_all_laws_registry(self):
        names = {law.name for law in ALL_LAWS}
        assert names == {
            "project_collapse",
            "nestjoin_join_exchange",
            "join_nestjoin_assoc",
            "outerjoin_nest_expansion",
        }
        for law in ALL_LAWS:
            assert law.description
