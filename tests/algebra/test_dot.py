"""Tests for Graphviz plan rendering."""

from repro.algebra.dot import physical_to_dot, plan_to_dot
from repro.algebra.plan import Join, NestJoin, Scan, Select
from repro.engine.physical import compile_plan
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup


def make_plan():
    return Select(
        NestJoin(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), None, "zs"),
        parse("COUNT(zs) = 0"),
    )


def test_logical_dot_structure():
    dot = plan_to_dot(make_plan())
    assert dot.startswith("digraph logical_plan {")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") == 3  # select→nestjoin, nestjoin→2 scans
    assert "NestJoin" in dot
    assert "Scan X AS x" in dot

def test_quotes_are_escaped():
    plan = Select(Scan("X", "x"), parse("x.b = 'say \"hi\"'"))
    dot = plan_to_dot(plan)
    assert '\\"hi\\"' in dot


def test_physical_dot_includes_algorithm_and_estimates():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=1, b=1)] )
    cat.add_rows("Y", [Tup(c=1, d=1)])
    compiled = compile_plan(Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d")), cat)
    dot = physical_to_dot(compiled)
    assert "rows" in dot
    assert "Join(" in dot
    assert dot.count("->") == 2
