"""Unit tests for logical plan construction and binding bookkeeping."""

import pytest

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.errors import PlanError
from repro.lang.parser import parse


X = Scan("X", "x")
Y = Scan("Y", "y")


class TestBindings:
    def test_scan(self):
        assert X.bindings() == ("x",)

    def test_select_preserves(self):
        assert Select(X, parse("x.a = 1")).bindings() == ("x",)

    def test_map_rebinds(self):
        assert Map(X, parse("x.a"), "out").bindings() == ("out",)

    def test_extend_appends(self):
        assert Extend(X, parse("x.a + 1"), "b").bindings() == ("x", "b")

    def test_drop_removes(self):
        plan = Drop(Join(X, Y, parse("x.a = y.a")), ("y",))
        assert plan.bindings() == ("x",)

    def test_join_concatenates(self):
        assert Join(X, Y).bindings() == ("x", "y")

    def test_semi_anti_keep_left_only(self):
        assert SemiJoin(X, Y).bindings() == ("x",)
        assert AntiJoin(X, Y).bindings() == ("x",)

    def test_outer_join_concatenates(self):
        assert OuterJoin(X, Y).bindings() == ("x", "y")

    def test_nest_join_adds_label(self):
        assert NestJoin(X, Y, parse("x.a = y.a"), None, "zs").bindings() == ("x", "zs")

    def test_nest(self):
        plan = Nest(Join(X, Y), by=("x",), nest="y", label="ys")
        assert plan.bindings() == ("x", "ys")

    def test_unnest(self):
        nj = NestJoin(X, Y, parse("x.a = y.a"), None, "zs")
        assert Unnest(nj, "zs", "v").bindings() == ("x", "v")

    def test_distinct(self):
        assert Distinct(X).bindings() == ("x",)


class TestValidation:
    def test_join_rejects_overlapping_bindings(self):
        with pytest.raises(PlanError, match="overlap"):
            Join(X, Scan("X2", "x"))

    def test_nestjoin_rejects_label_collision(self):
        with pytest.raises(PlanError, match="collides"):
            NestJoin(X, Y, parse("TRUE"), None, "x")

    def test_extend_rejects_bound_label(self):
        with pytest.raises(PlanError):
            Extend(X, parse("1"), "x")

    def test_drop_rejects_unknown(self):
        with pytest.raises(PlanError, match="unknown"):
            Drop(X, ("ghost",))

    def test_drop_rejects_total(self):
        with pytest.raises(PlanError, match="every binding"):
            Drop(X, ("x",))

    def test_nest_rejects_unknown_bindings(self):
        with pytest.raises(PlanError):
            Nest(X, by=("ghost",), nest="x", label="g")

    def test_nest_rejects_nest_in_by(self):
        with pytest.raises(PlanError):
            Nest(Join(X, Y), by=("x", "y"), nest="y", label="g")

    def test_unnest_rejects_unknown_label(self):
        with pytest.raises(PlanError):
            Unnest(X, "ghost", "v")

    def test_children(self):
        j = Join(X, Y)
        assert j.children() == (X, Y)
        assert Select(X, parse("TRUE")).children() == (X,)
        assert X.children() == ()
