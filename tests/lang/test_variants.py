"""Variant construction and elimination: <tag: e>, TAG(), PAYLOAD()."""

import pytest

from repro.errors import ExecutionError, TypeCheckError
from repro.lang.ast import PayloadOf, TagOf
from repro.lang.compile import compile_expr
from repro.lang.eval import Env, evaluate
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.typing import TypeEnv, type_of
from repro.model.types import INT, STRING, VariantType
from repro.model.values import Tup, Variant


class TestParsing:
    def test_tag_and_payload(self):
        assert parse("TAG(v)") == TagOf(parse("v"))
        assert parse("PAYLOAD(x.status)") == PayloadOf(parse("x.status"))

    def test_round_trip(self):
        for src in ["TAG(v)", "PAYLOAD(x.status)", "TAG(<ok: 1>) = 'ok'"]:
            assert parse(pretty(parse(src))) == parse(src)


class TestEvaluation:
    def test_tag(self):
        assert evaluate(parse("TAG(<ok: 42>)")) == "ok"

    def test_payload(self):
        assert evaluate(parse("PAYLOAD(<ok: 42>)")) == 42

    def test_dispatch_idiom(self):
        env = Env({"v": Variant("err", "boom")})
        assert evaluate(parse("TAG(v) = 'err' AND PAYLOAD(v) = 'boom'"), env) is True

    def test_tag_of_non_variant_raises(self):
        with pytest.raises(ExecutionError, match="non-variant"):
            evaluate(parse("TAG(1)"))
        with pytest.raises(ExecutionError, match="non-variant"):
            evaluate(parse("PAYLOAD({1})"))

    def test_compiled_agrees(self):
        for src in ["TAG(<ok: 42>)", "PAYLOAD(<ok: 42>)", "TAG(v)"]:
            expr = parse(src)
            env = {"v": Variant("a", 1)}
            assert compile_expr(expr)(env, {}) == evaluate(expr, Env(env))


class TestTyping:
    def test_tag_is_string(self):
        env = TypeEnv().bind("v", VariantType({"ok": INT, "err": STRING}))
        assert type_of(parse("TAG(v)"), env) == STRING

    def test_payload_unifies_cases(self):
        env = TypeEnv().bind("v", VariantType({"a": INT, "b": INT}))
        assert type_of(parse("PAYLOAD(v)"), env) == INT

    def test_payload_of_mixed_cases_is_any(self):
        from repro.model.types import ANY

        env = TypeEnv().bind("v", VariantType({"ok": INT, "err": STRING}))
        assert type_of(parse("PAYLOAD(v)"), env) == ANY

    def test_tag_of_scalar_rejected(self):
        with pytest.raises(TypeCheckError):
            type_of(parse("TAG(1)"), TypeEnv())


class TestEndToEnd:
    def test_query_dispatching_on_variants(self):
        from repro.core.pipeline import run_query
        from repro.engine.table import Catalog

        cat = Catalog()
        cat.add_rows(
            "EVENTS",
            [
                Tup(id=1, status=Variant("ok", 200)),
                Tup(id=2, status=Variant("err", "timeout")),
                Tup(id=3, status=Variant("ok", 201)),
            ],
        )
        query = "SELECT e.id FROM EVENTS e WHERE TAG(e.status) = 'ok'"
        for engine in ("interpret", "logical", "physical"):
            assert run_query(query, cat, engine=engine).value == frozenset({1, 3})

    def test_payload_filter(self):
        from repro.core.pipeline import run_query
        from repro.engine.table import Catalog

        cat = Catalog()
        cat.add_rows(
            "EVENTS",
            [Tup(id=1, status=Variant("ok", 200)), Tup(id=2, status=Variant("ok", 500))],
        )
        query = (
            "SELECT e.id FROM EVENTS e "
            "WHERE TAG(e.status) = 'ok' AND PAYLOAD(e.status) < 300"
        )
        assert run_query(query, cat, typecheck=False).value == frozenset({1})
