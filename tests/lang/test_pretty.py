"""Round-trip tests for the unparser: parse(pretty(e)) == e."""

import pytest

from repro.lang.parser import parse
from repro.lang.pretty import pretty

ROUND_TRIP_SOURCES = [
    "1",
    "1.5",
    "'a string'",
    "TRUE",
    "FALSE",
    "NULL",
    "{}",
    "{1, 2}",
    "[1, 2]",
    "(a = 1, b = x.c)",
    "x.a",
    "d.address.city",
    "x.a = 1",
    "x.a <> y.b",
    "x.a <= y.b AND x.c > 0",
    "a.p OR b.q AND NOT c.r",
    "1 + 2 * 3",
    "-(x.a)",
    "x.a IN z",
    "x.a NOT IN z",
    "x.s SUBSETEQ z",
    "x.s SUPSET z",
    "a UNION b INTERSECT c",
    "a DIFF b",
    "COUNT(z)",
    "SUM(x.s) + MIN(x.s)",
    "AVG({1, 2})",
    "EXISTS v IN z (v = x.a)",
    "FORALL w IN x.a (w IN z)",
    "NOT (EXISTS v IN z (TRUE))",
    "SELECT x FROM X x",
    "SELECT x.a FROM X x WHERE x.b = 1",
    "SELECT x FROM X x WHERE x.b IN (SELECT y.d FROM Y y WHERE x.c = y.c)",
    "SELECT (a = x.a, ys = (SELECT y FROM Y y WHERE y.a = x.a)) FROM X x",
    "UNNEST(SELECT (SELECT y.b FROM Y y WHERE x.b = y.a) FROM X x)",
    "x.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)",
    "<ok: 1>",
    "<err: x.a + 1>",
    "<ok: (x.a = 1)>",
]


@pytest.mark.parametrize("src", ROUND_TRIP_SOURCES)
def test_round_trip(src):
    e = parse(src)
    assert parse(pretty(e)) == e


@pytest.mark.parametrize("src", ROUND_TRIP_SOURCES)
def test_pretty_is_stable(src):
    e = parse(src)
    assert pretty(parse(pretty(e))) == pretty(e)


def test_string_escaping_round_trips():
    e = parse("'it\\'s'")
    assert parse(pretty(e)) == e


def test_const_set_rendering_is_sorted():
    assert pretty(parse("{3, 1, 2}")) == "{3, 1, 2}"  # literal order kept for SetExpr
    from repro.lang.ast import Const

    assert pretty(Const(frozenset({3, 1, 2}))) == "{1, 2, 3}"  # constants sorted
