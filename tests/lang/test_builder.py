"""Tests for the fluent expression builder: builders ≡ parsed text."""

import pytest

from repro.lang.builder import (
    E,
    and_,
    avg_,
    col,
    count_,
    exists,
    forall,
    list_,
    max_,
    min_,
    not_,
    or_,
    payload_,
    set_,
    sfw,
    sum_,
    tag_,
    tup,
    unnest,
    val,
    variant,
)
from repro.lang.parser import parse


def same(builder: E, text: str):
    assert builder.expr == parse(text)


class TestBasics:
    def test_paths(self):
        same(col("x").a, "x.a")
        same(col("d").address.city, "d.address.city")

    def test_comparisons(self):
        x = col("x")
        same(x.a == 1, "x.a = 1")
        same(x.a != 1, "x.a <> 1")
        same(x.a < col("y").b, "x.a < y.b")
        same(x.a >= 0, "x.a >= 0")

    def test_membership_and_inclusion(self):
        x, z = col("x"), col("z")
        same(x.a.in_(z), "x.a IN z")
        same(x.a.not_in(z), "x.a NOT IN z")
        same(x.a.subseteq(z), "x.a SUBSETEQ z")
        same(x.a.supset(z), "x.a SUPSET z")

    def test_arithmetic(self):
        x = col("x")
        same(x.a + 1, "x.a + 1")
        same(1 + x.a, "1 + x.a")
        same(-(x.a), "-(x.a)")
        same(x.a % 2, "x.a % 2")

    def test_set_algebra(self):
        a, b = col("a"), col("b")
        same(a | b, "a UNION b")
        same(a & b, "a INTERSECT b")
        same(a.diff(b), "a DIFF b")

    def test_constructors(self):
        same(tup(a=1, b=col("x").c), "(a = 1, b = x.c)")
        same(set_(1, 2), "{1, 2}")
        same(list_(1, 2), "[1, 2]")
        same(variant("ok", 1), "<ok: 1>")

    def test_val_coerces_python_data(self):
        from repro.lang.ast import Const

        assert val(frozenset({1})).expr == Const(frozenset({1}))
        assert val({"a": 1}).expr == Const({"a": 1})  # dict → Tup via Const

    def test_aggregates(self):
        z = col("z")
        same(count_(z), "COUNT(z)")
        same(sum_(z) + min_(z), "SUM(z) + MIN(z)")
        same(avg_(set_(1, 2)), "AVG({1, 2})")
        same(max_(z), "MAX(z)")

    def test_boolean_combinators(self):
        x = col("x")
        same(and_(x.a == 1, x.b == 2), "x.a = 1 AND x.b = 2")
        same(or_(x.a == 1, x.b == 2), "x.a = 1 OR x.b = 2")
        same(not_(x.a == 1), "NOT (x.a = 1)")

    def test_variant_elimination(self):
        same(tag_(col("v")) == "ok", "TAG(v) = 'ok'")
        same(payload_(col("v")) > 2, "PAYLOAD(v) > 2")


class TestQuantifiersAndBlocks:
    def test_exists_with_lambda(self):
        same(
            exists("v", col("z"), lambda v: v == col("x").a),
            "EXISTS v IN z (v = x.a)",
        )

    def test_forall_with_expression(self):
        same(
            forall("w", col("x").a, col("w").in_(col("z"))),
            "FORALL w IN x.a (w IN z)",
        )

    def test_sfw(self):
        y = col("y")
        same(
            sfw(select=y.a, var="y", source=col("Y"), where=col("x").b == y.b),
            "SELECT y.a FROM Y y WHERE x.b = y.b",
        )

    def test_unnest(self):
        same(unnest(col("z")), "UNNEST(z)")

    def test_count_bug_query(self):
        from repro.workloads import COUNT_BUG_NESTED

        r, s = col("r"), col("s")
        built = sfw(
            select=r,
            var="r",
            source=col("R"),
            where=r.b
            == count_(sfw(select=s, var="s", source=col("S"), where=r.c == s.c)),
        )
        assert built.expr == parse(COUNT_BUG_NESTED)


class TestBuilderHygiene:
    def test_immutable(self):
        with pytest.raises(AttributeError):
            col("x").expr = None

    def test_get_for_shadowed_labels(self):
        # 'expr', 'get', 'diff', 'in_' are builder attributes (and DIFF is
        # even a language keyword); .get() reaches same-named tuple fields.
        from repro.lang.ast import Attr, Var

        assert col("x").get("diff").expr == Attr(Var("x"), "diff")
        assert col("x").get("expr").expr == Attr(Var("x"), "expr")

    def test_repr_is_pretty(self):
        assert repr(col("x").a == 1) == "E(x.a = 1)"

    def test_end_to_end_execution(self):
        from repro.core.pipeline import run_query
        from repro.engine.table import Catalog
        from repro.model.values import Tup

        cat = Catalog()
        cat.add_rows("R", [Tup(b=0, c=9), Tup(b=1, c=1)])
        cat.add_rows("S", [Tup(c=1, d=1)])
        r, s = col("r"), col("s")
        query = sfw(
            select=r.b,
            var="r",
            source=col("R"),
            where=r.b
            == count_(sfw(select=s, var="s", source=col("S"), where=r.c == s.c)),
        )
        assert run_query(query.expr, cat).value == frozenset({0, 1})
