"""Unit tests for the tokenizer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import TokenKind, tokenize


def kinds_and_texts(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds_and_texts("SELECT select SeLeCt") == [
            (TokenKind.KEYWORD, "select")
        ] * 3

    def test_identifiers_case_sensitive(self):
        toks = kinds_and_texts("EMP emp Emp_2")
        assert toks == [
            (TokenKind.IDENT, "EMP"),
            (TokenKind.IDENT, "emp"),
            (TokenKind.IDENT, "Emp_2"),
        ]

    def test_numbers(self):
        toks = kinds_and_texts("1 42 3.14 1e3 2.5e-2")
        assert toks == [
            (TokenKind.INT, "1"),
            (TokenKind.INT, "42"),
            (TokenKind.FLOAT, "3.14"),
            (TokenKind.FLOAT, "1e3"),
            (TokenKind.FLOAT, "2.5e-2"),
        ]

    def test_attribute_dot_is_not_a_float(self):
        toks = kinds_and_texts("x.a")
        assert toks == [
            (TokenKind.IDENT, "x"),
            (TokenKind.SYMBOL, "."),
            (TokenKind.IDENT, "a"),
        ]

    def test_strings_with_escapes(self):
        toks = kinds_and_texts("'a\\'b' \"c\\nd\"")
        assert toks == [(TokenKind.STRING, "a'b"), (TokenKind.STRING, "c\nd")]

    def test_multi_char_symbols(self):
        toks = kinds_and_texts("<> <= >= != < > =")
        assert [t for _, t in toks] == ["<>", "<=", ">=", "!=", "<", ">", "="]

    def test_line_comments_ignored(self):
        toks = kinds_and_texts("1 -- comment here\n2")
        assert toks == [(TokenKind.INT, "1"), (TokenKind.INT, "2")]

    def test_positions_track_lines(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].column == 1
        assert toks[1].line == 2 and toks[1].column == 3

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == TokenKind.EOF


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'abc")

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_unknown_escape(self):
        with pytest.raises(LexError, match="unknown escape"):
            tokenize("'a\\qb'")
