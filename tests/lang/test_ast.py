"""Unit tests for AST utilities: traversal, transformation, substitution."""

from repro.lang.ast import (
    FALSE,
    SFW,
    TRUE,
    And,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Not,
    Or,
    Quant,
    QuantKind,
    Var,
    children,
    conjuncts,
    contains_sfw,
    fresh_name,
    make_and,
    make_or,
    negate,
    rename_var,
    substitute,
    transform,
    walk,
)
from repro.lang.freevars import free_vars
from repro.lang.parser import parse


class TestTraversal:
    def test_children_of_comparison(self):
        e = parse("x.a = y.b")
        assert children(e) == (Attr(Var("x"), "a"), Attr(Var("y"), "b"))

    def test_children_of_tuple_expr(self):
        e = parse("(a = 1, b = 2)")
        assert children(e) == (Const(1), Const(2))

    def test_walk_visits_everything(self):
        e = parse("x.a = 1 AND y.b IN {2}")
        names = {n.name for n in walk(e) if isinstance(n, Var)}
        assert names == {"x", "y"}

    def test_transform_bottom_up(self):
        e = parse("1 + 2")

        def bump(node):
            if isinstance(node, Const) and node.value == 1:
                return Const(10)
            return node

        assert transform(e, bump) == parse("10 + 2")

    def test_transform_preserves_identity_when_unchanged(self):
        e = parse("x.a = 1")
        assert transform(e, lambda n: n) is e


class TestSubstitution:
    def test_simple(self):
        e = parse("x.a = z")
        assert substitute(e, "z", parse("y.b")) == parse("x.a = y.b")

    def test_shadowed_by_quantifier(self):
        e = parse("EXISTS z IN {1} (z = 1) AND z = 2")
        out = substitute(e, "z", Const(9))
        # Bound z untouched, free z replaced.
        assert out == parse("EXISTS z IN {1} (z = 1) AND 9 = 2")

    def test_domain_of_binder_is_substituted(self):
        e = parse("EXISTS v IN z (v = 1)")
        out = substitute(e, "z", parse("{1, 2}"))
        assert out == parse("EXISTS v IN {1, 2} (v = 1)")

    def test_sfw_shadowing(self):
        e = parse("SELECT x FROM x x")  # inner var x shadows; source x is free
        out = substitute(e, "x", Var("T"))
        assert isinstance(out, SFW)
        assert out.source == Var("T")
        assert out.select == Var("x")  # bound occurrence untouched

    def test_capture_avoidance_in_quantifier(self):
        # Substituting an expression mentioning v into a binder of v must rename.
        e = parse("EXISTS v IN {1} (v = z)")
        out = substitute(e, "z", Var("v"))
        assert isinstance(out, Quant)
        assert out.var != "v"  # alpha-renamed
        # The substituted v refers to the *outer* v.
        assert free_vars(out) == {"v"}

    def test_capture_avoidance_in_sfw(self):
        e = parse("SELECT y FROM Y y WHERE y.a = z")
        out = substitute(e, "z", parse("y.b"))
        assert isinstance(out, SFW)
        assert out.var != "y"
        assert free_vars(out) == {"Y", "y"}

    def test_rename_var(self):
        e = parse("x.a = x.b")
        assert rename_var(e, "x", "t") == parse("t.a = t.b")


class TestBooleanHelpers:
    def test_conjuncts_flatten(self):
        e = parse("a.p AND (b.q AND c.r)")
        assert len(conjuncts(e)) == 3

    def test_conjuncts_of_true_and_none(self):
        assert conjuncts(TRUE) == ()
        assert conjuncts(None) == ()

    def test_make_and_simplifies(self):
        assert make_and([]) == TRUE
        p = parse("x.a = 1")
        assert make_and([p]) == p
        assert make_and([p, TRUE]) == p

    def test_make_or_simplifies(self):
        assert make_or([]) == FALSE
        p = parse("x.a = 1")
        assert make_or([p]) == p
        assert make_or([p, FALSE]) == p

    def test_negate(self):
        p = parse("x.a = 1")
        assert negate(p) == Not(p)
        assert negate(Not(p)) == p
        assert negate(TRUE) == FALSE
        assert negate(FALSE) == TRUE

    def test_contains_sfw(self):
        assert contains_sfw(parse("COUNT(SELECT y FROM Y y) = 1"))
        assert not contains_sfw(parse("x.a = 1"))


class TestFreshNames:
    def test_fresh_avoids(self):
        avoid = {"v_0", "v_1"}
        name = fresh_name("v", avoid)
        assert name not in avoid

    def test_fresh_names_never_repeat(self):
        names = {fresh_name("q") for _ in range(50)}
        assert len(names) == 50
