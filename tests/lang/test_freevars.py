"""Unit tests for free-variable and correlation analysis."""

from repro.lang.ast import SFW, Var
from repro.lang.freevars import (
    attr_root,
    correlation_vars,
    find_subqueries,
    free_vars,
    is_correlated,
    uses_only,
)
from repro.lang.parser import parse


class TestFreeVars:
    def test_var_is_free(self):
        assert free_vars(parse("x.a")) == {"x"}

    def test_const_has_none(self):
        assert free_vars(parse("1 + 2")) == frozenset()

    def test_quantifier_binds(self):
        e = parse("EXISTS v IN z (v = x.a)")
        assert free_vars(e) == {"z", "x"}

    def test_sfw_binds_var(self):
        e = parse("SELECT y.a FROM Y y WHERE y.b = x.b")
        assert free_vars(e) == {"Y", "x"}

    def test_source_is_outside_binding(self):
        # The FROM operand is evaluated outside the block's own variable.
        e = SFW(Var("y"), "y", Var("y"), None)
        assert free_vars(e) == {"y"}

    def test_shadowing(self):
        e = parse("SELECT x FROM X x WHERE EXISTS x IN {1} (x = 1)")
        assert free_vars(e) == {"X"}

    def test_complex_expression(self):
        e = parse("COUNT(SELECT y FROM Y y WHERE y.a = x.a) + z.b")
        assert free_vars(e) == {"Y", "x", "z"}


class TestCorrelation:
    def test_correlated_subquery(self):
        sub = parse("SELECT y FROM Y y WHERE y.a = x.a")
        assert is_correlated(sub, {"x"})
        assert correlation_vars(sub, {"x", "w"}) == {"x"}

    def test_uncorrelated_subquery_is_constant(self):
        sub = parse("SELECT y FROM Y y WHERE y.a = 1")
        assert not is_correlated(sub, {"x"})


class TestFindSubqueries:
    def test_finds_maximal_blocks_only(self):
        outer = parse(
            "SELECT x FROM X x WHERE x.a IN "
            "(SELECT y.a FROM Y y WHERE y.b IN (SELECT z.b FROM Z z))"
        )
        occs = find_subqueries(outer.where)
        assert len(occs) == 1  # the inner-inner block is *inside* the found one
        assert occs[0].subquery.var == "y"

    def test_multiple_subqueries(self):
        e = parse("COUNT(SELECT a FROM A a) = COUNT(SELECT b FROM B b)")
        occs = find_subqueries(e)
        assert {o.subquery.var for o in occs} == {"a", "b"}

    def test_root_sfw_is_not_its_own_subquery(self):
        e = parse("SELECT x FROM X x")
        assert find_subqueries(e) == ()


class TestHelpers:
    def test_attr_root(self):
        assert attr_root(parse("x.a.b")) == "x"
        assert attr_root(parse("x")) == "x"
        assert attr_root(parse("1 + 2")) is None

    def test_uses_only(self):
        e = parse("x.a = y.b")
        assert uses_only(e, {"x", "y"})
        assert not uses_only(e, {"x"})
