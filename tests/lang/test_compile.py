"""Differential tests: the closure compiler must match the interpreter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.lang.compile import compile_expr, compiled
from repro.lang.eval import Env, evaluate
from repro.lang.parser import parse
from repro.model.values import NULL, Tup

SOURCES = [
    "1 + 2 * 3",
    "7 / 2",
    "8 / 2",
    "7 % 3",
    "-(x.a)",
    "'a' + 'b'",
    "x.a = 1",
    "x.a <> y.b",
    "x.a < y.b AND x.a >= 0",
    "NOT (x.a = 1) OR x.a = 2",
    "x.a IN {1, 2, 3}",
    "x.a NOT IN s",
    "s SUBSETEQ {1, 2, 3}",
    "s SUBSET {1, 2}",
    "{1} SUPSETEQ s",
    "s UNION {9}",
    "s INTERSECT {1, 2}",
    "s DIFF {1}",
    "COUNT(s)",
    "SUM(s)",
    "MIN({3, 1})",
    "MAX({'a', 'b'})",
    "AVG({2, 4})",
    "(a = x.a, b = 's')",
    "(a = x.a, b = 's').a",
    "[1, x.a]",
    "<ok: x.a>",
    "EXISTS v IN s (v = x.a)",
    "FORALL v IN s (v < 10)",
    "UNNEST({{1}, {2, 3}})",
    "SELECT v + 1 FROM s v WHERE v > 0",
    "COUNT(SELECT v FROM s v WHERE v = x.a)",
    "NULL = NULL",
    "NULL = x.a",
]

ENV = {"x": Tup(a=1), "y": Tup(b=2), "s": frozenset({1, 2, 3})}


@pytest.mark.parametrize("src", SOURCES, ids=SOURCES)
def test_compiled_matches_interpreter(src):
    expr = parse(src)
    interpreted = evaluate(expr, Env(ENV))
    compiled_value = compile_expr(expr)(dict(ENV), {})
    assert compiled_value == interpreted
    assert type(compiled_value) is type(interpreted)


ERROR_SOURCES = [
    "1 / 0",
    "1 % 0",
    "AVG({})",
    "MIN({})",
    "1 < 'a'",
    "x.a AND x.a = 1",
    "{1}.a",
    "UNNEST({1, 2})",
    "SUM({'a'})",
]


@pytest.mark.parametrize("src", ERROR_SOURCES, ids=ERROR_SOURCES)
def test_compiled_raises_where_interpreter_raises(src):
    expr = parse(src)
    with pytest.raises(ExecutionError):
        evaluate(expr, Env(ENV))
    with pytest.raises(ExecutionError):
        compile_expr(expr)(dict(ENV), {})


class TestMemoisation:
    def test_compiled_is_cached_per_object(self):
        expr = parse("x.a = 1")
        assert compiled(expr) is compiled(expr)

    def test_equal_but_distinct_objects_compile_separately(self):
        a = parse("x.a = 1")
        b = parse("x.a = 1")
        assert a == b
        assert compiled(a) is not compiled(b)


class TestScoping:
    def test_quantifier_shadowing(self):
        expr = parse("EXISTS v IN {5} (EXISTS v IN {6} (v = 6))")
        assert compile_expr(expr)({}, {}) is True

    def test_sfw_shadowing_does_not_leak(self):
        expr = parse("SELECT v FROM {1, 2} v WHERE v = 2")
        env = {"v": 99}
        assert compile_expr(expr)(env, {}) == frozenset({2})
        assert env == {"v": 99}  # input env untouched

    def test_tables_resolved_through_mapping(self):
        expr = parse("SELECT t.a FROM T t")
        tables = {"T": frozenset({Tup(a=7)})}
        assert compile_expr(expr)({}, tables) == frozenset({7})


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_compiled_matches_interpreter_on_random_predicates(seed):
    """Generate random query WHERE clauses and compare evaluation."""
    from repro.lang.parser import parse_query
    from repro.testing import random_catalog, random_query

    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query = parse_query(random_query(rng))
    if query.where is None:
        return
    for row in list(catalog["X"])[:4]:
        env = {"x": row}
        try:
            interpreted = evaluate(query.where, Env(env), catalog)
        except ExecutionError:
            with pytest.raises(ExecutionError):
                compile_expr(query.where)(dict(env), catalog)
            continue
        assert compile_expr(query.where)(dict(env), catalog) == interpreted
