"""Unit tests for the recursive-descent parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    And,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    ListExpr,
    Neg,
    Not,
    Or,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TupleExpr,
    UnnestExpr,
    Var,
)
from repro.lang.parser import parse, parse_query
from repro.model.values import NULL


def attr(*path):
    expr = Var(path[0])
    for label in path[1:]:
        expr = Attr(expr, label)
    return expr


class TestLiterals:
    def test_numbers_and_strings(self):
        assert parse("42") == Const(42)
        assert parse("3.5") == Const(3.5)
        assert parse("'hi'") == Const("hi")

    def test_booleans_and_null(self):
        assert parse("TRUE") == Const(True)
        assert parse("false") == Const(False)
        assert parse("NULL") == Const(NULL)

    def test_set_and_list_literals(self):
        assert parse("{1, 2}") == SetExpr((Const(1), Const(2)))
        assert parse("{}") == SetExpr(())
        assert parse("[1, 2]") == ListExpr((Const(1), Const(2)))
        assert parse("[]") == ListExpr(())

    def test_tuple_constructor(self):
        assert parse("(a = 1, b = x.c)") == TupleExpr(
            (("a", Const(1)), ("b", attr("x", "c")))
        )


class TestOperators:
    def test_attribute_paths(self):
        assert parse("d.address.city") == attr("d", "address", "city")

    def test_comparisons(self):
        assert parse("x.a = 1") == Cmp(CmpOp.EQ, attr("x", "a"), Const(1))
        assert parse("x.a <> 1") == Cmp(CmpOp.NE, attr("x", "a"), Const(1))
        assert parse("x.a != 1") == Cmp(CmpOp.NE, attr("x", "a"), Const(1))
        assert parse("x.a <= y.b") == Cmp(CmpOp.LE, attr("x", "a"), attr("y", "b"))

    def test_membership(self):
        assert parse("x.a IN z") == Cmp(CmpOp.IN, attr("x", "a"), Var("z"))
        assert parse("x.a NOT IN z") == Cmp(CmpOp.NOT_IN, attr("x", "a"), Var("z"))

    def test_set_inclusion_keywords(self):
        assert parse("x.a SUBSETEQ z") == Cmp(CmpOp.SUBSETEQ, attr("x", "a"), Var("z"))
        assert parse("x.a SUPSET z") == Cmp(CmpOp.SUPSET, attr("x", "a"), Var("z"))

    def test_boolean_precedence(self):
        e = parse("a.p OR b.q AND NOT c.r")
        assert e == Or((attr("a", "p"), And((attr("b", "q"), Not(attr("c", "r"))))))

    def test_arithmetic_precedence(self):
        e = parse("1 + 2 * 3")
        assert e == Arith(ArithOp.ADD, Const(1), Arith(ArithOp.MUL, Const(2), Const(3)))

    def test_unary_minus(self):
        assert parse("-x.a") == Neg(attr("x", "a"))

    def test_set_operators(self):
        assert parse("a UNION b") == SetOp(SetOpKind.UNION, Var("a"), Var("b"))
        assert parse("a INTERSECT b") == SetOp(SetOpKind.INTERSECT, Var("a"), Var("b"))
        assert parse("a DIFF b") == SetOp(SetOpKind.DIFF, Var("a"), Var("b"))

    def test_intersect_binds_tighter_than_union(self):
        e = parse("a UNION b INTERSECT c")
        assert e == SetOp(
            SetOpKind.UNION, Var("a"), SetOp(SetOpKind.INTERSECT, Var("b"), Var("c"))
        )

    def test_aggregates(self):
        assert parse("COUNT(z)") == Agg(AggFunc.COUNT, Var("z"))
        assert parse("SUM(x.a)") == Agg(AggFunc.SUM, attr("x", "a"))

    def test_unnest(self):
        assert parse("UNNEST(z)") == UnnestExpr(Var("z"))

    def test_variant_constructor(self):
        from repro.lang.ast import VariantExpr

        assert parse("<ok: 1>") == VariantExpr("ok", Const(1))
        assert parse("<err: x.a + 1>") == VariantExpr(
            "err", Arith(ArithOp.ADD, attr("x", "a"), Const(1))
        )
        assert parse("<ok: (x.a = 1)>") == VariantExpr(
            "ok", Cmp(CmpOp.EQ, attr("x", "a"), Const(1))
        )

    def test_variant_does_not_clash_with_less_than(self):
        assert parse("x.a < b") == Cmp(CmpOp.LT, attr("x", "a"), Var("b"))
        assert parse("x.a < b.c") == Cmp(CmpOp.LT, attr("x", "a"), attr("b", "c"))


class TestQuantifiers:
    def test_exists(self):
        e = parse("EXISTS v IN z (v = x.a)")
        assert e == Quant(
            QuantKind.EXISTS, "v", Var("z"), Cmp(CmpOp.EQ, Var("v"), attr("x", "a"))
        )

    def test_forall(self):
        e = parse("FORALL w IN x.a (w IN z)")
        assert e == Quant(
            QuantKind.FORALL, "w", attr("x", "a"), Cmp(CmpOp.IN, Var("w"), Var("z"))
        )


class TestSFW:
    def test_basic(self):
        e = parse_query("SELECT x FROM X x WHERE x.a = 1")
        assert e == SFW(Var("x"), "x", Var("X"), Cmp(CmpOp.EQ, attr("x", "a"), Const(1)))

    def test_no_where(self):
        e = parse_query("SELECT x.a FROM X x")
        assert e.where is None

    def test_nested_in_where(self):
        e = parse_query(
            "SELECT x FROM X x WHERE x.b IN (SELECT y.d FROM Y y WHERE x.c = y.c)"
        )
        assert isinstance(e.where, Cmp)
        assert isinstance(e.where.right, SFW)

    def test_nested_in_select(self):
        e = parse_query(
            "SELECT (dname = d.name, emps = (SELECT e FROM EMP e WHERE e.c = d.c)) FROM DEPT d"
        )
        assert isinstance(e.select, TupleExpr)
        assert isinstance(e.select.fields[1][1], SFW)

    def test_with_clause_is_substituted(self):
        e = parse_query(
            "SELECT x FROM X x WHERE x.a SUBSETEQ z "
            "WITH z = SELECT y.a FROM Y y WHERE x.b = y.b"
        )
        assert isinstance(e.where, Cmp)
        assert e.where.op == CmpOp.SUBSETEQ
        assert isinstance(e.where.right, SFW)

    def test_with_clause_multiple_bindings_chain(self):
        e = parse_query(
            "SELECT x FROM X x WHERE COUNT(z2) = 1 "
            "WITH z1 = (SELECT y FROM Y y WHERE y.a = x.a), z2 = z1"
        )
        assert isinstance(e.where.left.operand, SFW)

    def test_from_over_attribute_path(self):
        e = parse_query("SELECT e.name FROM d.emps e")
        assert e.source == attr("d", "emps")

    def test_paper_query_q1(self):
        text = """
            SELECT d FROM DEPT d
            WHERE (s = d.address.street, c = d.address.city)
                  IN (SELECT (s = e.address.street, c = e.address.city) FROM d.emps e)
        """
        e = parse_query(text)
        assert isinstance(e.where, Cmp) and e.where.op == CmpOp.IN
        assert isinstance(e.where.left, TupleExpr)
        assert isinstance(e.where.right, SFW)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM X x",
            "SELECT x FROM X",
            "1 +",
            "x.a IN",
            "(a = 1",
            "{1, }",
            "SELECT x FROM X x WHERE",
            "EXISTS v z (true)",
            "1 2",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_parse_query_requires_sfw(self):
        with pytest.raises(ParseError):
            parse_query("1 + 2")

    def test_error_carries_location(self):
        try:
            parse("1 +")
        except ParseError as exc:
            assert exc.line >= 1
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
