"""Parser ↔ pretty-printer round trips over the whole fuzz corpus."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.testing import random_query


@settings(max_examples=300, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_random_queries_round_trip(seed):
    ast = parse(random_query(random.Random(seed)))
    assert parse(pretty(ast)) == ast


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 1_000_000))
def test_pretty_is_a_fixpoint(seed):
    ast = parse(random_query(random.Random(seed)))
    once = pretty(ast)
    assert pretty(parse(once)) == once
