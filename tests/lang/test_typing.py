"""Unit tests for the static type checker."""

import pytest

from repro.errors import TypeCheckError
from repro.lang.parser import parse
from repro.lang.typing import TypeEnv, type_of
from repro.model.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    ListType,
    SetType,
    TupleType,
)


X_ROW = TupleType({"a": INT, "b": STRING, "s": SetType(INT)})
Y_ROW = TupleType({"a": INT, "c": FLOAT})


@pytest.fixture
def env():
    return TypeEnv.with_tables({"X": X_ROW, "Y": Y_ROW})


def t(src, env):
    return type_of(parse(src), env)


class TestLiteralsAndVars:
    def test_constants(self, env):
        assert t("1", env) == INT
        assert t("1.5", env) == FLOAT
        assert t("'s'", env) == STRING
        assert t("TRUE", env) == BOOL

    def test_table_reference_is_a_set_of_rows(self, env):
        assert t("X", env) == SetType(X_ROW)

    def test_unbound_variable(self, env):
        with pytest.raises(TypeCheckError, match="unbound"):
            t("ghost", env)

    def test_set_literal_unifies_elements(self, env):
        assert t("{1, 2.5}", env) == SetType(FLOAT)

    def test_heterogeneous_set_rejected(self, env):
        with pytest.raises(TypeCheckError):
            t("{1, 's'}", env)

    def test_tuple_and_list(self, env):
        assert t("(a = 1, b = 's')", env) == TupleType({"a": INT, "b": STRING})
        assert t("[1, 2]", env) == ListType(INT)


class TestAttributes:
    def test_attribute_path(self, env):
        env2 = env.bind("x", X_ROW)
        assert t("x.a", env2) == INT
        assert t("x.s", env2) == SetType(INT)

    def test_missing_attribute(self, env):
        env2 = env.bind("x", X_ROW)
        with pytest.raises(TypeCheckError, match="no field"):
            t("x.zzz", env2)

    def test_attribute_on_scalar(self, env):
        with pytest.raises(TypeCheckError, match="non-tuple"):
            t("(1 + 2).a", env)


class TestPredicates:
    def test_comparison_types(self, env):
        env2 = env.bind("x", X_ROW).bind("y", Y_ROW)
        assert t("x.a = y.a", env2) == BOOL
        assert t("x.a < y.c", env2) == BOOL  # INT vs FLOAT fine

    def test_incompatible_equality(self, env):
        env2 = env.bind("x", X_ROW)
        with pytest.raises(TypeCheckError):
            t("x.a = x.b", env2)

    def test_ordering_requires_order(self, env):
        env2 = env.bind("x", X_ROW)
        with pytest.raises(TypeCheckError):
            t("x.s < x.s", env2)

    def test_membership(self, env):
        env2 = env.bind("x", X_ROW)
        assert t("x.a IN x.s", env2) == BOOL
        with pytest.raises(TypeCheckError):
            t("x.b IN x.s", env2)

    def test_inclusion_over_sets_only(self, env):
        env2 = env.bind("x", X_ROW)
        assert t("x.s SUBSETEQ x.s", env2) == BOOL
        with pytest.raises(TypeCheckError):
            t("x.a SUBSETEQ x.s", env2)

    def test_boolean_connectives_demand_booleans(self, env):
        with pytest.raises(TypeCheckError):
            t("1 AND 2 = 2", env)


class TestAggregatesAndQuantifiers:
    def test_count_is_int(self, env):
        assert t("COUNT(X)", env) == INT

    def test_sum_preserves_numeric(self, env):
        env2 = env.bind("x", X_ROW)
        assert t("SUM(x.s)", env2) == INT
        assert t("AVG(x.s)", env2) == FLOAT

    def test_sum_over_strings_rejected(self, env):
        with pytest.raises(TypeCheckError):
            t("SUM({'a'})", env)

    def test_min_over_strings_allowed(self, env):
        assert t("MIN({'a', 'b'})", env) == STRING

    def test_quantifier_binds_element(self, env):
        assert t("EXISTS x IN X (x.a = 1)", env) == BOOL

    def test_quantifier_pred_must_be_boolean(self, env):
        with pytest.raises(TypeCheckError):
            t("EXISTS x IN X (x.a)", env)

    def test_quantifier_domain_must_be_collection(self, env):
        with pytest.raises(TypeCheckError):
            t("EXISTS v IN 1 (TRUE)", env)


class TestSFWTyping:
    def test_result_type_is_set_of_select(self, env):
        assert t("SELECT x.a FROM X x", env) == SetType(INT)

    def test_nested_select_clause(self, env):
        q = "SELECT (a = x.a, ys = (SELECT y.c FROM Y y WHERE y.a = x.a)) FROM X x"
        assert t(q, env) == SetType(
            TupleType({"a": INT, "ys": SetType(FLOAT)})
        )

    def test_where_must_be_boolean(self, env):
        with pytest.raises(TypeCheckError):
            t("SELECT x FROM X x WHERE x.a + 1", env)

    def test_from_over_set_valued_attribute(self, env):
        assert t("SELECT v FROM x.s v", env.bind("x", X_ROW)) == SetType(INT)

    def test_unnest_collapses_one_level(self, env):
        q = "UNNEST(SELECT (SELECT y.a FROM Y y WHERE y.a = x.a) FROM X x)"
        assert t(q, env) == SetType(INT)

    def test_unnest_needs_set_of_sets(self, env):
        with pytest.raises(TypeCheckError):
            t("UNNEST(X)", env)

    def test_arith_result_types(self, env):
        assert t("1 + 2", env) == INT
        assert t("1 + 2.0", env) == FLOAT
        assert t("4 / 2", env) == FLOAT
        assert t("'a' + 'b'", env) == STRING
