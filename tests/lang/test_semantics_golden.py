"""Golden semantics: tricky corners of the language, pinned exactly.

Each case documents a semantic decision the rest of the stack depends on;
if one of these changes, every engine must change with it.
"""

import pytest

from repro.errors import ExecutionError
from repro.lang.eval import Env, evaluate
from repro.lang.parser import parse
from repro.model.values import NULL, Tup, Variant


def ev(src, **bindings):
    return evaluate(parse(src), Env(bindings))


class TestScoping:
    def test_three_level_shadowing(self):
        # Each SELECT rebinds v; the innermost one wins in its own block.
        result = ev(
            "SELECT (a = v, inner = (SELECT v * 10 FROM {7} v)) FROM {1, 2} v"
        )
        assert result == frozenset(
            {Tup(a=1, inner=frozenset({70})), Tup(a=2, inner=frozenset({70}))}
        )

    def test_quantifier_inside_sfw_sees_outer_var(self):
        result = ev("SELECT v FROM {1, 2, 3} v WHERE EXISTS w IN {2, 3} (w = v)")
        assert result == frozenset({2, 3})

    def test_with_chain_latest_binding_wins_inside_value(self):
        result = ev(
            "SELECT x FROM {1, 2} x WHERE x IN z2 "
            "WITH z1 = {1}, z2 = z1 UNION {2}"
        )
        assert result == frozenset({1, 2})

    def test_from_operand_evaluated_outside_block_binding(self):
        # The source expression cannot see the block's own variable.
        result = ev("SELECT s FROM outer s", outer=frozenset({5}))
        assert result == frozenset({5})


class TestSetSemantics:
    def test_select_deduplicates(self):
        assert ev("SELECT v % 2 FROM {1, 2, 3, 4} v") == frozenset({0, 1})

    def test_nested_empty_sets_are_distinct_from_absent(self):
        rows = frozenset({Tup(s=frozenset()), Tup(s=frozenset({1}))})
        assert ev("COUNT(SELECT r FROM rows r WHERE r.s = {})", rows=rows) == 1

    def test_sets_compare_by_extension(self):
        assert ev("(SELECT v FROM {1, 2} v) = {2, 1}") is True

    def test_count_counts_distinct_values(self):
        assert ev("COUNT(SELECT v % 2 FROM {1, 2, 3} v)") == 2


class TestAggregateCorners:
    def test_count_and_sum_of_empty_are_zero(self):
        assert ev("COUNT(SELECT v FROM {} v)") == 0
        assert ev("SUM(SELECT v FROM {} v)") == 0

    def test_min_of_empty_raises_in_any_position(self):
        with pytest.raises(ExecutionError):
            ev("SELECT v FROM {1} v WHERE MIN(SELECT w FROM {} w) = 0")

    def test_avg_is_float(self):
        assert ev("AVG({1, 2})") == 1.5
        assert isinstance(ev("AVG({2, 2, 4})"), float)

    def test_aggregates_over_lists_see_duplicates(self):
        assert ev("COUNT([1, 1, 1])") == 3
        assert ev("SUM([2, 2])") == 4


class TestHeterogeneity:
    def test_equality_across_types_is_false_not_an_error(self):
        assert ev("1 = 'a'") is False
        assert ev("{1} = (a = 1)") is False

    def test_ordering_across_types_raises(self):
        with pytest.raises(ExecutionError):
            ev("1 < 'a'")
        with pytest.raises(ExecutionError):
            ev("{1} < {2}")

    def test_membership_in_heterogeneous_set(self):
        assert ev("'a' IN {1, 'a', {2}}") is True


class TestNullCorners:
    def test_null_equality_is_two_valued(self):
        assert ev("NULL = NULL") is True
        assert ev("NULL <> NULL") is False
        assert ev("NULL = 0") is False

    def test_null_in_set(self):
        assert ev("NULL IN {NULL, 1}") is True


class TestVariantCorners:
    def test_dispatch_inside_quantifier(self):
        events = frozenset(
            {Tup(s=Variant("ok", 1)), Tup(s=Variant("err", 2)), Tup(s=Variant("ok", 3))}
        )
        assert (
            ev(
                "COUNT(SELECT e FROM events e WHERE TAG(e.s) = 'ok')",
                events=events,
            )
            == 2
        )

    def test_variants_with_same_payload_different_tags_are_distinct(self):
        assert ev("<ok: 1> = <err: 1>") is False
        assert ev("COUNT({<ok: 1>, <err: 1>})") == 2


class TestPathsAndArithmetic:
    def test_deep_attribute_path(self):
        v = Tup(a=Tup(b=Tup(c=42)))
        assert ev("x.a.b.c", x=v) == 42

    def test_integer_division_stays_integral_when_exact(self):
        assert ev("8 / 4") == 2
        assert isinstance(ev("8 / 4"), int)
        assert ev("9 / 4") == 2.25

    def test_modulo_of_negative(self):
        assert ev("-7 % 3") == ev("(0 - 7) % 3") == 2  # Python semantics

    def test_unnest_of_empty_outer(self):
        assert ev("UNNEST({})") == frozenset()
