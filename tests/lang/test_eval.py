"""Unit tests for the interpreter — the semantics oracle of the library."""

import pytest

from repro.errors import ExecutionError, NameError_
from repro.lang.ast import Quant, QuantKind, Var
from repro.lang.eval import Env, evaluate, evaluate_predicate
from repro.lang.parser import parse
from repro.model.values import NULL, Tup, make_value


def ev(src, env=None, tables=None):
    return evaluate(parse(src), env, tables)


class TestScalars:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("7 % 3") == 1
        assert ev("-(2 + 3)") == -5

    def test_division(self):
        assert ev("7 / 2") == 3.5
        assert ev("8 / 2") == 4  # exact division stays integral
        with pytest.raises(ExecutionError, match="division by zero"):
            ev("1 / 0")
        with pytest.raises(ExecutionError, match="modulo by zero"):
            ev("1 % 0")

    def test_string_concat(self):
        assert ev("'a' + 'b'") == "ab"

    def test_comparisons(self):
        assert ev("1 < 2") is True
        assert ev("'a' < 'b'") is True
        assert ev("2 >= 2") is True
        assert ev("1 <> 2") is True

    def test_mixed_order_comparison_rejected(self):
        with pytest.raises(ExecutionError):
            ev("1 < 'a'")

    def test_boolean_connectives(self):
        assert ev("TRUE AND NOT FALSE") is True
        assert ev("FALSE OR FALSE") is False

    def test_non_boolean_predicate_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate_predicate(parse("1 + 1"), Env.empty())


class TestCollections:
    def test_set_literal_dedupes(self):
        assert ev("{1, 1, 2}") == frozenset({1, 2})

    def test_membership(self):
        assert ev("2 IN {1, 2}") is True
        assert ev("3 NOT IN {1, 2}") is True

    def test_inclusion(self):
        assert ev("{1} SUBSETEQ {1, 2}") is True
        assert ev("{1} SUBSET {1}") is False
        assert ev("{1, 2} SUPSETEQ {1}") is True
        assert ev("{1, 2} SUPSET {1, 2}") is False

    def test_set_algebra(self):
        assert ev("{1, 2} UNION {3}") == frozenset({1, 2, 3})
        assert ev("{1, 2} INTERSECT {2, 3}") == frozenset({2})
        assert ev("{1, 2} DIFF {2}") == frozenset({1})

    def test_set_equality(self):
        assert ev("{1, 2} = {2, 1}") is True
        assert ev("{} = {}") is True

    def test_unnest(self):
        assert ev("UNNEST({{1, 2}, {2, 3}, {}})") == frozenset({1, 2, 3})

    def test_tuple_construction_and_access(self):
        assert ev("(a = 1, b = 2).b") == 2

    def test_attr_on_non_tuple_rejected(self):
        with pytest.raises(ExecutionError):
            ev("(1).a" if False else "{1}.a")


class TestAggregates:
    def test_count(self):
        assert ev("COUNT({})") == 0
        assert ev("COUNT({1, 2, 3})") == 3

    def test_sum_empty_is_zero(self):
        assert ev("SUM({})") == 0
        assert ev("SUM({1, 2, 3})") == 6

    def test_avg_min_max(self):
        assert ev("AVG({2, 4})") == 3
        assert ev("MIN({3, 1, 2})") == 1
        assert ev("MAX({'a', 'c'})") == "c"

    def test_empty_avg_raises(self):
        with pytest.raises(ExecutionError, match="empty"):
            ev("AVG({})")

    def test_aggregate_over_list_counts_duplicates(self):
        assert ev("COUNT([1, 1, 2])") == 3
        assert ev("SUM([1, 1])") == 2


class TestQuantifiers:
    def test_exists(self):
        assert ev("EXISTS v IN {1, 2} (v = 2)") is True
        assert ev("EXISTS v IN {} (TRUE)") is False

    def test_forall(self):
        assert ev("FORALL v IN {2, 4} (v % 2 = 0)") is True
        assert ev("FORALL v IN {} (FALSE)") is True  # vacuous truth

    def test_nested_scoping(self):
        assert ev("EXISTS v IN {1} (EXISTS v IN {2} (v = 2))") is True


class TestSFWSemantics:
    def test_select_from_where_over_literal_set(self):
        assert ev("SELECT v + 1 FROM {1, 2, 3} v WHERE v < 3") == frozenset({2, 3})

    def test_result_is_a_set_no_duplicates(self):
        assert ev("SELECT v * 0 FROM {1, 2, 3} v") == frozenset({0})

    def test_table_lookup(self):
        tables = {"X": frozenset({Tup(a=1), Tup(a=2)})}
        assert ev("SELECT x.a FROM X x", tables=tables) == frozenset({1, 2})

    def test_env_shadows_tables(self):
        tables = {"X": frozenset({Tup(a=1)})}
        env = Env({"X": frozenset({Tup(a=9)})})
        assert ev("SELECT x.a FROM X x", env=env, tables=tables) == frozenset({9})

    def test_correlated_nested_query(self):
        tables = {
            "X": frozenset({Tup(a=1, b=10), Tup(a=2, b=20)}),
            "Y": frozenset({Tup(a=1, c=10), Tup(a=1, c=30)}),
        }
        result = ev(
            "SELECT x.b FROM X x WHERE x.b IN (SELECT y.c FROM Y y WHERE x.a = y.a)",
            tables=tables,
        )
        assert result == frozenset({10})

    def test_count_between_blocks_keeps_dangling(self):
        # The COUNT-bug query of Section 2: dangling x with b = 0 must stay.
        tables = {
            "R": frozenset({Tup(b=0, c=99), Tup(b=1, c=1)}),
            "S": frozenset({Tup(c=1, d=1)}),
        }
        result = ev(
            "SELECT r FROM R r WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)",
            tables=tables,
        )
        assert result == frozenset({Tup(b=0, c=99), Tup(b=1, c=1)})

    def test_unknown_table(self):
        with pytest.raises(NameError_):
            ev("SELECT x FROM NOPE x")

    def test_from_non_collection_rejected(self):
        with pytest.raises(ExecutionError):
            ev("SELECT x FROM 1 x")

    def test_with_clause_desugaring_evaluates(self):
        tables = {
            "X": frozenset({Tup(a=frozenset({1}), b=1), Tup(a=frozenset({9}), b=2)}),
            "Y": frozenset({Tup(a=1, b=1)}),
        }
        result = ev(
            "SELECT x.b FROM X x WHERE x.a SUBSETEQ z "
            "WITH z = SELECT y.a FROM Y y WHERE x.b = y.b",
            tables=tables,
        )
        assert result == frozenset({1})


class TestEnv:
    def test_bind_and_lookup_chain(self):
        env = Env({"a": 1}).bind("b", 2)
        assert env.lookup("a") == 1
        assert env.lookup("b") == 2
        assert "a" in env and "c" not in env

    def test_inner_shadows_outer(self):
        env = Env({"a": 1}).bind("a", 2)
        assert env.lookup("a") == 2

    def test_unbound_raises(self):
        with pytest.raises(NameError_):
            Env.empty().lookup("ghost")


class TestNullSemantics:
    def test_null_equals_null(self):
        assert ev("NULL = NULL") is True
        assert ev("NULL = 1") is False
        assert ev("NULL <> 1") is True
