"""Observability of the parallel engine across the process boundary.

PR 6 made the hot path run inside multiprocess workers; this suite pins
the instrumentation that makes those workers visible again: worker spans
merged into the coordinator trace with per-pid Chrome lanes, per-fragment
resource telemetry (CPU, peak memory, bytes shipped), shard-skew stats on
the serving path, pool-health counters (crashes, restarts, catalog-ship
cache), and the structured sequential-fallback warning.
"""

import time

import pytest

from repro.bench.perf import PERF_QUERIES
from repro.core.pipeline import prepared, run_query
from repro.core.trace import QueryTrace, chrome_trace, trace_scope
from repro.engine.analyze import explain_analyze
from repro.errors import WorkerCrashError
from repro.parallel import (
    WorkerPool,
    consume_parallel_stats,
    parallel_analyze,
    plan_fragments,
    plan_fragments_ex,
    run_parallel,
    shutdown_pools,
)
from repro.parallel.partition import shard_payloads
from repro.parallel.pool import (
    POOL_METRICS,
    recent_crashes,
    set_telemetry,
    telemetry_enabled,
)
from repro.server.service import QueryService
from repro.server.workload import mixed_catalog

PARTS = 2

#: Shards the base table into a predicate that also reads the whole
#: table, so fragment planning must refuse ("base-in-predicate").
FALLBACK_QUERY = "SELECT r FROM R r WHERE r.a IN (SELECT s.a FROM R s WHERE s.b > 0)"


@pytest.fixture(scope="module")
def catalog():
    return mixed_catalog(seed=0, n_left=40, n_right=180, n_chain=10)


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


def _physical(catalog, name="count_bug_nested"):
    return prepared(PERF_QUERIES[name], catalog).compile_for(catalog)


class TestDistributedTracing:
    def test_trace_merges_worker_lanes(self, catalog):
        trace = QueryTrace(query=PERF_QUERIES["count_bug_nested"])
        result = run_query(
            PERF_QUERIES["count_bug_nested"],
            catalog,
            analyze=True,
            trace=trace,
            execution="parallel",
            parts=PARTS,
        )
        assert result.value == prepared(
            PERF_QUERIES["count_bug_nested"], catalog
        ).execute(catalog)
        worker_pids = {e.pid for e in trace.events if e.pid}
        assert len(worker_pids) == PARTS  # one lane per worker process
        # Each worker contributed a fragment span and operator spans.
        fragment_events = [e for e in trace.events if e.phase == "fragment"]
        assert {e.pid for e in fragment_events} == worker_pids
        assert any(e.phase == "operator" and e.pid for e in trace.events)
        # Worker clocks align with the coordinator's: spans land inside
        # the trace's lifetime, not at wild offsets.
        assert all(e.ts >= 0.0 for e in trace.events)

    def test_chrome_export_has_per_pid_lanes(self, catalog):
        trace = QueryTrace(query=PERF_QUERIES["count_bug_nested"])
        with trace_scope(trace):
            run_parallel(_physical(catalog), catalog, parts=PARTS)
        dump = chrome_trace(trace)
        pids = {e["pid"] for e in dump["traceEvents"] if e.get("ph") != "M"}
        assert 1 in pids and len(pids) >= 1 + PARTS  # coordinator + workers
        names = {
            e["args"]["name"]
            for e in dump["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert "coordinator" in names
        assert sum(1 for n in names if n.startswith("worker pid=")) == PARTS

    def test_sequential_chrome_export_unchanged(self, catalog):
        """Single-process traces keep their pre-parallel shape: no
        metadata events, everything on pid 1."""
        trace = QueryTrace(query=PERF_QUERIES["count_bug_nested"])
        run_query(
            PERF_QUERIES["count_bug_nested"], catalog, analyze=True, trace=trace
        )
        dump = chrome_trace(trace)
        assert all(e.get("ph") != "M" for e in dump["traceEvents"])
        assert {e["pid"] for e in dump["traceEvents"]} == {1}


class TestResourceTelemetry:
    def test_fragments_carry_telemetry(self, catalog):
        run = parallel_analyze(_physical(catalog), catalog, parts=PARTS)
        assert len(run.stats.children) == PARTS
        for child in run.stats.children:
            assert child.cpu_seconds is not None and child.cpu_seconds >= 0.0
            assert child.peak_mem_bytes is not None and child.peak_mem_bytes >= 0
            assert child.shipped_bytes is not None and child.shipped_bytes > 0
        text = explain_analyze(run)
        assert "cpu=" in text and "peak_mem=" in text and "shipped=" in text
        assert any(note.startswith("shard skew:") for note in run.notes)

    def test_consume_parallel_stats(self, catalog):
        consume_parallel_stats()  # drain anything a prior test left
        run_parallel(_physical(catalog), catalog, parts=PARTS)
        stats = consume_parallel_stats()
        assert stats is not None and stats.fallback is None
        assert stats.parts == PARTS
        assert stats.max_shard_seconds >= stats.mean_shard_seconds > 0.0
        assert 1 <= len(stats.skew) <= PARTS
        assert stats.skew[0][1] == stats.max_shard_seconds  # slowest first
        assert stats.rows_shipped > 0
        assert stats.reply_bytes is not None and stats.reply_bytes > 0
        assert consume_parallel_stats() is None  # consumed exactly once

    def test_telemetry_toggle(self, catalog):
        assert telemetry_enabled()
        set_telemetry(False)
        try:
            run = parallel_analyze(_physical(catalog), catalog, parts=PARTS)
            assert all(c.cpu_seconds is None for c in run.stats.children)
            assert all(c.shipped_bytes is None for c in run.stats.children)
        finally:
            set_telemetry(True)

    def test_catalog_ship_cache_counters(self, catalog):
        physical = _physical(catalog)
        fp = plan_fragments(physical, catalog)
        payloads = shard_payloads(fp, catalog, PARTS)
        pool = WorkerPool(PARTS)
        try:
            hits = POOL_METRICS.counter("pool_catalog_ship_hits")
            misses = POOL_METRICS.counter("pool_catalog_ship_misses")
            h0, m0 = hits.value, misses.value
            first = pool.run_fragments(fp.fragment, payloads, None)
            assert all(r.catalog_hit is False for r in first)
            assert misses.value == m0 + PARTS
            second = pool.run_fragments(fp.fragment, payloads, None)
            assert all(r.catalog_hit is True for r in second)
            assert hits.value == h0 + PARTS
        finally:
            pool.close()


class TestSequentialFallback:
    def test_fallback_reason_exposed(self, catalog):
        pq = prepared(FALLBACK_QUERY, catalog, typecheck=False)
        fp, reason = plan_fragments_ex(pq.compile_for(catalog), catalog)
        assert fp is None and reason == "base-in-predicate"

    def test_fallback_is_not_silent(self, catalog):
        pq = prepared(FALLBACK_QUERY, catalog, typecheck=False)
        physical = pq.compile_for(catalog)
        counter = POOL_METRICS.labeled_counter("pool_sequential_fallbacks")
        before = counter.get("base-in-predicate")
        trace = QueryTrace(query=FALLBACK_QUERY)
        with trace_scope(trace):
            rows = run_parallel(physical, catalog, parts=PARTS)
        assert frozenset(rows) == frozenset(physical.run(catalog))  # parity
        assert counter.get("base-in-predicate") == before + 1
        warnings = [e for e in trace.events if e.rule == "sequential-fallback"]
        assert len(warnings) == 1
        assert warnings[0].phase == "parallel"
        assert warnings[0].verdict == "base-in-predicate"
        stats = consume_parallel_stats()
        assert stats is not None and stats.fallback == "base-in-predicate"

    def test_fallback_reason_in_explain(self, catalog):
        pq = prepared(FALLBACK_QUERY, catalog, typecheck=False)
        run = parallel_analyze(pq.compile_for(catalog), catalog, parts=PARTS)
        assert "parallel fallback: base-in-predicate" in run.notes
        assert "parallel fallback: base-in-predicate" in explain_analyze(run)


class TestCrashObservability:
    def test_crash_counters_ring_and_respawn(self, catalog):
        physical = _physical(catalog)
        fp = plan_fragments(physical, catalog)
        payloads = shard_payloads(fp, catalog, PARTS)
        crashes = POOL_METRICS.counter("pool_worker_crashes")
        restarts = POOL_METRICS.counter("pool_worker_restarts")
        spawned = POOL_METRICS.counter("pool_workers_spawned")
        c0, r0, s0, ring0 = (
            crashes.value,
            restarts.value,
            spawned.value,
            len(recent_crashes()),
        )
        pool = WorkerPool(PARTS)
        try:
            first = pool.run_fragments(fp.fragment, payloads, None)
            assert pool.live_workers == PARTS
            assert spawned.value == s0 + PARTS
            pool._procs[0].terminate()
            pool._procs[0].join(timeout=2.0)
            with pytest.raises(WorkerCrashError):
                pool.run_fragments(fp.fragment, payloads, None)
            # The crash is counted and lands in the failure ring.
            assert crashes.value == c0 + 1
            ring = recent_crashes()
            assert len(ring) == ring0 + 1
            assert ring[-1]["parts"] == PARTS and ring[-1]["error"]
            assert not pool.running and pool.live_workers == 0
            # The next query respawns the workers — counted as restarts —
            # and serves correctly.
            again = pool.run_fragments(fp.fragment, payloads, None)
            assert [len(r.rows) for r in again] == [len(r.rows) for r in first]
            assert restarts.value == r0 + PARTS
            assert pool.live_workers == PARTS
        finally:
            pool.close()


class TestServiceAttribution:
    def test_parallel_labeled_end_to_end(self, catalog):
        """Misses, cache hits, and the slowlog all say exec_mode="parallel";
        the label is scrapeable from /metrics."""
        import urllib.request

        from repro.server.exposition import parse_prometheus, serve_metrics
        from repro.workloads import COUNT_BUG_NESTED

        with QueryService(
            catalog, workers=2, execution="parallel", parts=PARTS
        ) as service:
            miss = service.execute(COUNT_BUG_NESTED)
            assert miss.ok and miss.result_cache == "miss"
            assert miss.exec_mode == "parallel"
            assert miss.parallel is not None
            assert miss.parallel["parts"] == PARTS
            assert miss.parallel["max_shard_seconds"] > 0.0
            assert len(miss.parallel["skew"]) >= 1
            hit = service.execute(COUNT_BUG_NESTED)
            assert hit.ok and hit.result_cache == "hit"
            assert hit.exec_mode == "parallel"  # attribution survives the cache
            assert (
                service.metrics.labeled_counter("queries_by_exec_mode").get("parallel")
                >= 2
            )
            snapshot = service.stats()
            slowest = snapshot["slow_queries"]["slowest"]
            assert any(e.get("exec_mode") == "parallel" for e in slowest)
            assert any(e.get("parallel") for e in slowest)
            assert snapshot["parallel_pool"]["metrics"]["counters"]["pool_scatters"] > 0
            with serve_metrics(service) as endpoint:
                with urllib.request.urlopen(f"{endpoint.url}/metrics") as resp:
                    text = resp.read().decode("utf-8")
            samples = parse_prometheus(text)
            key = ("repro_queries_by_exec_mode_total", (("mode", "parallel"),))
            assert samples[key] >= 2
            assert samples[("repro_pool_scatters_total", ())] > 0
            assert ("repro_pool_live_workers", ()) in samples

    def test_fallback_reason_reaches_response(self, catalog):
        with QueryService(
            catalog, workers=2, execution="parallel", parts=PARTS, typecheck=False
        ) as service:
            response = service.execute(FALLBACK_QUERY)
            assert response.ok
            assert response.exec_mode == "parallel"
            assert response.parallel == {
                "parts": PARTS,
                "fallback": "base-in-predicate",
            }
