"""Differential tests for all join algorithms.

For each join mode, hash and sort-merge must produce the same *multiset* of
rows as nested-loop (the obviously correct spec) on random inputs, both
with pure equi predicates and with residual predicates. The nest join's
paper-mandated properties (one output per left tuple, complete groups,
dangling → ∅) are asserted directly.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.joins.common import analyse_join
from repro.engine.joins.hash_join import (
    hash_anti_join,
    hash_inner_join,
    hash_nest_join,
    hash_outer_join,
    hash_semi_join,
)
from repro.engine.joins.nested_loop import (
    nl_anti_join,
    nl_inner_join,
    nl_nest_join,
    nl_outer_join,
    nl_semi_join,
)
from repro.engine.joins.sort_merge import (
    sm_anti_join,
    sm_inner_join,
    sm_nest_join,
    sm_outer_join,
    sm_semi_join,
)
from repro.lang.parser import parse
from repro.model.values import Tup


def envs(var, labels, max_size=6):
    row = st.builds(
        lambda *vals: Tup({var: Tup(dict(zip(labels, vals)))}),
        *[st.integers(0, 3) for _ in labels],
    )
    return st.lists(row, max_size=max_size)


LEFT = envs("x", ("a", "b"))
RIGHT = envs("y", ("c", "d"))

EQUI_PRED = parse("x.b = y.d")
RESIDUAL_PRED = parse("x.b = y.d AND x.a < y.c")

L_BINDINGS = ("x",)
R_BINDINGS = ("y",)


def spec_of(pred):
    return analyse_join(pred, L_BINDINGS, R_BINDINGS)


@pytest.mark.parametrize("pred", [EQUI_PRED, RESIDUAL_PRED], ids=["equi", "residual"])
@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_inner_join_agreement(pred, left, right):
    spec = spec_of(pred)
    nl = Counter(nl_inner_join(left, right, pred, {}))
    assert Counter(hash_inner_join(left, right, spec, {})) == nl
    assert Counter(sm_inner_join(left, right, spec, {})) == nl


@pytest.mark.parametrize("pred", [EQUI_PRED, RESIDUAL_PRED], ids=["equi", "residual"])
@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_semi_join_agreement(pred, left, right):
    spec = spec_of(pred)
    nl = Counter(nl_semi_join(left, right, pred, {}))
    assert Counter(hash_semi_join(left, right, spec, {})) == nl
    assert Counter(sm_semi_join(left, right, spec, {})) == nl


@pytest.mark.parametrize("pred", [EQUI_PRED, RESIDUAL_PRED], ids=["equi", "residual"])
@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_anti_join_agreement(pred, left, right):
    spec = spec_of(pred)
    nl = Counter(nl_anti_join(left, right, pred, {}))
    assert Counter(hash_anti_join(left, right, spec, {})) == nl
    assert Counter(sm_anti_join(left, right, spec, {})) == nl


@pytest.mark.parametrize("pred", [EQUI_PRED, RESIDUAL_PRED], ids=["equi", "residual"])
@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_outer_join_agreement(pred, left, right):
    spec = spec_of(pred)
    nl = Counter(nl_outer_join(left, right, pred, {}, R_BINDINGS))
    assert Counter(hash_outer_join(left, right, spec, {}, R_BINDINGS)) == nl
    assert Counter(sm_outer_join(left, right, spec, {}, R_BINDINGS)) == nl


FUNC = parse("y.c")


@pytest.mark.parametrize("pred", [EQUI_PRED, RESIDUAL_PRED], ids=["equi", "residual"])
@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_nest_join_agreement(pred, left, right):
    spec = spec_of(pred)
    nl = Counter(nl_nest_join(left, right, pred, FUNC, "zs", {}))
    assert Counter(hash_nest_join(left, right, spec, FUNC, "zs", {})) == nl
    assert Counter(sm_nest_join(left, right, spec, FUNC, "zs", {})) == nl


@settings(max_examples=50, deadline=None)
@given(left=LEFT, right=RIGHT)
def test_nest_join_emits_each_left_tuple_exactly_once(left, right):
    for impl in (
        lambda: nl_nest_join(left, right, EQUI_PRED, FUNC, "zs", {}),
        lambda: hash_nest_join(left, right, spec_of(EQUI_PRED), FUNC, "zs", {}),
        lambda: sm_nest_join(left, right, spec_of(EQUI_PRED), FUNC, "zs", {}),
    ):
        out = list(impl())
        assert len(out) == len(left)
        assert Counter(t.drop("zs") for t in out) == Counter(left)


def test_dangling_left_tuples_get_empty_set():
    left = [Tup(x=Tup(a=1, b=99))]
    right = [Tup(y=Tup(c=1, d=1))]
    for rows in (
        nl_nest_join(left, right, EQUI_PRED, FUNC, "zs", {}),
        hash_nest_join(left, right, spec_of(EQUI_PRED), FUNC, "zs", {}),
        sm_nest_join(left, right, spec_of(EQUI_PRED), FUNC, "zs", {}),
    ):
        (row,) = list(rows)
        assert row["zs"] == frozenset()


def test_hash_and_nl_preserve_left_order_for_nest_join():
    left = [Tup(x=Tup(a=i, b=i % 2)) for i in range(6)]
    right = [Tup(y=Tup(c=9, d=0))]
    nl = [t["x"] for t in nl_nest_join(left, right, EQUI_PRED, FUNC, "zs", {})]
    hj = [t["x"] for t in hash_nest_join(left, right, spec_of(EQUI_PRED), FUNC, "zs", {})]
    assert nl == [t["x"] for t in left]
    assert hj == [t["x"] for t in left]


class TestAnalyseJoin:
    def test_pure_equi(self):
        spec = analyse_join(parse("x.a = y.c"), L_BINDINGS, R_BINDINGS)
        assert spec.has_equi_keys
        assert spec.left_keys == (parse("x.a"),)
        assert spec.right_keys == (parse("y.c"),)
        from repro.lang.ast import is_true_const

        assert is_true_const(spec.residual)

    def test_mirrored_equi(self):
        spec = analyse_join(parse("y.c = x.a"), L_BINDINGS, R_BINDINGS)
        assert spec.left_keys == (parse("x.a"),)

    def test_residual_kept(self):
        spec = analyse_join(parse("x.a = y.c AND x.b < y.d"), L_BINDINGS, R_BINDINGS)
        assert spec.has_equi_keys
        assert spec.residual == parse("x.b < y.d")

    def test_no_keys_for_theta(self):
        spec = analyse_join(parse("x.a < y.c"), L_BINDINGS, R_BINDINGS)
        assert not spec.has_equi_keys

    def test_constant_equality_is_residual(self):
        spec = analyse_join(parse("x.a = 1 AND x.b = y.d"), L_BINDINGS, R_BINDINGS)
        assert spec.left_keys == (parse("x.b"),)
        assert spec.residual == parse("x.a = 1")

    def test_same_side_equality_is_residual(self):
        spec = analyse_join(parse("x.a = x.b"), L_BINDINGS, R_BINDINGS)
        assert not spec.has_equi_keys

    def test_composite_keys(self):
        spec = analyse_join(parse("x.a = y.c AND x.b = y.d"), L_BINDINGS, R_BINDINGS)
        assert len(spec.left_keys) == 2
