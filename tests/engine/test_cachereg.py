"""The process-global cache registry: providers, normalization, pressure."""

from repro.engine.cachereg import (
    CACHE_REGISTRY,
    CacheRegistry,
    caches_snapshot,
    record_memory_pressure,
    register_cache,
)


class TestCacheRegistry:
    def test_register_snapshot_and_normalization(self):
        reg = CacheRegistry()
        reg.register("tiny", lambda top_k: {"bytes": 128, "entries": 2})
        snap = reg.snapshot()
        report = snap["tiny"]
        assert report["bytes"] == 128 and report["entries"] == 2
        # Omitted counters are zero-filled so consumers never KeyError.
        assert report["hits"] == report["misses"] == 0
        assert report["evictions"] == report["inserts"] == 0
        assert report["evictions_by_reason"] == {}
        assert report["hit_rate"] == 0.0
        assert report["memory_pressure"] == 0

    def test_hit_rate_computed_when_absent_kept_when_present(self):
        reg = CacheRegistry()
        reg.register("a", lambda top_k: {"hits": 3, "misses": 1})
        reg.register("b", lambda top_k: {"hits": 3, "misses": 1, "hit_rate": 0.9})
        snap = reg.snapshot()
        assert snap["a"]["hit_rate"] == 0.75
        assert snap["b"]["hit_rate"] == 0.9

    def test_top_k_forwarded_to_provider(self):
        seen = []
        reg = CacheRegistry()
        reg.register("c", lambda top_k: seen.append(top_k) or {})
        reg.snapshot(top_k=7)
        assert seen == [7]

    def test_raising_provider_is_isolated(self):
        reg = CacheRegistry()
        reg.register("bad", lambda top_k: 1 / 0)
        reg.register("good", lambda top_k: {"bytes": 5})
        snap = reg.snapshot()
        assert snap["bad"]["error"].startswith("ZeroDivisionError")
        assert snap["bad"]["bytes"] == 0  # zeroed gauges, scrape survives
        assert snap["good"]["bytes"] == 5

    def test_registration_is_last_writer_wins(self):
        reg = CacheRegistry()
        reg.register("x", lambda top_k: {"bytes": 1})
        reg.register("x", lambda top_k: {"bytes": 2})
        assert reg.snapshot()["x"]["bytes"] == 2
        assert reg.names() == ["x"]

    def test_unregister(self):
        reg = CacheRegistry()
        reg.register("x", lambda top_k: {})
        reg.unregister("x")
        reg.unregister("never-registered")  # no-op, no raise
        assert reg.names() == [] and reg.snapshot() == {}

    def test_pressure_counters_merge_into_reports(self):
        reg = CacheRegistry()
        reg.register("x", lambda top_k: {"bytes": 1})
        reg.record_pressure("x")
        reg.record_pressure("x", 2)
        reg.record_pressure("unregistered")
        assert reg.snapshot()["x"]["memory_pressure"] == 3
        assert reg.pressure_snapshot() == {"x": 3, "unregistered": 1}
        reg.reset_pressure()
        assert reg.pressure_snapshot() == {}


class TestGlobalRegistry:
    def test_global_helpers_round_trip(self):
        name = "test-cachereg-probe"
        try:
            register_cache(name, lambda top_k: {"bytes": 64, "entries": 1})
            record_memory_pressure(name)
            snap = caches_snapshot()
            assert snap["caches"][name]["bytes"] == 64
            assert snap["caches"][name]["memory_pressure"] >= 1
            assert snap["total_bytes"] >= 64
        finally:
            CACHE_REGISTRY.unregister(name)

    def test_engine_caches_register_on_import(self):
        # Importing the cache layers is enough; no traffic required.
        import repro.core.pipeline  # noqa: F401
        import repro.engine.cache  # noqa: F401
        import repro.parallel.pool  # noqa: F401

        names = CACHE_REGISTRY.names()
        assert {"build", "plan", "shard-catalog"} <= set(names)
