"""Tests for persistent table indexes and the index-nested-loop join."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import (
    AntiJoin,
    Join,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
)
from repro.engine.executor import run_physical
from repro.engine.physical import PJoin, compile_plan
from repro.engine.table import Catalog, Table
from repro.lang.parser import parse
from repro.model.values import Tup


def catalog(n=40, seed=0):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=rng.randrange(5), b=rng.randrange(8)) for _ in range(n)])
    cat.add_rows("Y", [Tup(c=rng.randrange(5), d=rng.randrange(8)) for _ in range(n)])
    return cat


X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.b = y.d")
RESIDUAL = parse("x.b = y.d AND x.a < y.c")


class TestTableIndex:
    def test_index_groups_rows(self):
        t = Table("T", [Tup(a=1, b=10), Tup(a=1, b=20), Tup(a=2, b=30)])
        index = t.hash_index(("a",))
        assert {k: len(v) for k, v in index.items()} == {(1,): 2, (2,): 1}

    def test_index_is_cached(self):
        t = Table("T", [Tup(a=1)])
        assert t.hash_index(("a",)) is t.hash_index(("a",))

    def test_composite_index(self):
        t = Table("T", [Tup(a=1, b=2), Tup(a=1, b=3)])
        index = t.hash_index(("a", "b"))
        assert set(index) == {(1, 2), (1, 3)}


MODES = [
    ("inner", lambda pred: Join(X, Y, pred)),
    ("semi", lambda pred: SemiJoin(X, Y, pred)),
    ("anti", lambda pred: AntiJoin(X, Y, pred)),
    ("outer", lambda pred: OuterJoin(X, Y, pred)),
    ("nest", lambda pred: NestJoin(X, Y, pred, parse("y.c"), "zs")),
]


class TestIndexNestedLoop:
    @pytest.mark.parametrize("name,mk", MODES, ids=[m for m, _ in MODES])
    @pytest.mark.parametrize("pred", [EQUI, RESIDUAL], ids=["equi", "residual"])
    def test_agrees_with_nested_loop(self, name, mk, pred):
        cat = catalog()
        plan = mk(pred)
        reference = Counter(run_physical(plan, cat, force_algorithm="nested_loop"))
        indexed = Counter(run_physical(plan, cat, force_algorithm="index_nested_loop"))
        assert indexed == reference

    def test_selected_when_right_is_bare_scan(self):
        cat = catalog(n=500)
        compiled = compile_plan(Join(X, Y, EQUI), cat)
        join = _find_join(compiled)
        assert join.index_target == ("Y", "y", ("d",))
        assert join.algorithm == "index_nested_loop"

    def test_not_available_when_right_is_filtered(self):
        cat = catalog()
        plan = Join(X, Select(Y, parse("y.c = 1")), EQUI)
        join = _find_join(compile_plan(plan, cat))
        assert join.index_target is None
        # Forcing it falls back to nested loop rather than mis-executing.
        forced = _find_join(compile_plan(plan, cat, force_algorithm="index_nested_loop"))
        assert forced.algorithm == "nested_loop"

    def test_not_available_for_computed_keys(self):
        cat = catalog()
        plan = Join(X, Y, parse("x.b = y.d + 1"))
        join = _find_join(compile_plan(plan, cat))
        assert join.index_target is None

    def test_composite_key_join(self):
        cat = catalog()
        pred = parse("x.b = y.d AND x.a = y.c")
        plan = Join(X, Y, pred)
        indexed = Counter(run_physical(plan, cat, force_algorithm="index_nested_loop"))
        reference = Counter(run_physical(plan, cat, force_algorithm="hash"))
        assert indexed == reference
        join = _find_join(compile_plan(plan, cat, force_algorithm="index_nested_loop"))
        assert join.index_target[2] == ("d", "c") or join.index_target[2] == ("c", "d")


def _find_join(op):
    if isinstance(op, PJoin):
        return op
    for c in op.children():
        j = _find_join(c)
        if j is not None:
            return j
    return None


@settings(max_examples=40, deadline=None)
@given(n=st.integers(0, 30), seed=st.integers(0, 20))
def test_index_join_property(n, seed):
    cat = catalog(n, seed)
    plan = NestJoin(X, Y, EQUI, parse("y.c"), "zs")
    a = Counter(run_physical(plan, cat, force_algorithm="index_nested_loop"))
    b = Counter(run_physical(plan, cat, force_algorithm="hash"))
    assert a == b


def test_end_to_end_queries_still_agree_with_oracle():
    import random

    from repro.testing import check_engines_agree, random_catalog, random_query

    for seed in range(40):
        rng = random.Random(seed)
        cat = random_catalog(rng)
        check_engines_agree(random_query(rng), cat)
