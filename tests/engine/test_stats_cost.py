"""Tests for statistics, cardinality estimation, and the cost model."""

import pytest

from repro.algebra.plan import (
    AntiJoin,
    Join,
    Map,
    NestJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.engine.cost import (
    cheapest_algorithm,
    hash_cost,
    nested_loop_cost,
    sort_merge_cost,
)
from repro.engine.stats import StatsCatalog, estimate_rows
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture
def stats():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i % 10, b=i) for i in range(100)])
    cat.add_rows("Y", [Tup(c=i % 5, d=i % 20) for i in range(60)])
    return StatsCatalog(cat)


X = Scan("X", "x")
Y = Scan("Y", "y")


class TestTableStats:
    def test_rows_and_distinct(self, stats):
        assert stats.table("X").rows == 100
        assert stats.table("X").distinct("a") == 10
        assert stats.table("X").distinct("b") == 100
        assert stats.table("Y").distinct("c") == 5

    def test_distinct_is_cached(self, stats):
        t = stats.table("X")
        assert t.distinct("a") == t.distinct("a")

    def test_missing_attr_distinct_is_at_least_one(self, stats):
        assert stats.table("X").distinct("zzz") == 1


class TestEstimates:
    def test_scan(self, stats):
        assert estimate_rows(X, stats) == 100

    def test_select_reduces(self, stats):
        est = estimate_rows(Select(X, parse("x.a = 1")), stats)
        assert 1 <= est < 100

    def test_equi_join_uses_distinct(self, stats):
        est = estimate_rows(Join(X, Y, parse("x.b = y.d")), stats)
        # sel = 1/max(distinct(b)=100, distinct(d)=20) = 1/100
        assert est == pytest.approx(100 * 60 / 100)

    def test_semijoin_bounded_by_left(self, stats):
        assert estimate_rows(SemiJoin(X, Y, parse("x.b = y.d")), stats) <= 100

    def test_antijoin_bounded_by_left(self, stats):
        assert estimate_rows(AntiJoin(X, Y, parse("x.b = y.d")), stats) <= 100

    def test_nestjoin_equals_left(self, stats):
        assert estimate_rows(NestJoin(X, Y, parse("x.b = y.d"), None, "zs"), stats) == 100

    def test_unnest_multiplies(self, stats):
        nj = NestJoin(X, Y, parse("x.b = y.d"), None, "zs")
        assert estimate_rows(Unnest(nj, "zs", "v"), stats) > 100

    def test_map_preserves(self, stats):
        assert estimate_rows(Map(X, parse("x.a"), "v"), stats) == 100


class TestCostModel:
    def test_nested_loop_is_quadratic(self):
        assert nested_loop_cost(100, 100) == pytest.approx(10_000)

    def test_hash_is_roughly_linear(self):
        small = hash_cost(100, 100, 100)
        big = hash_cost(1000, 1000, 1000)
        assert big / small == pytest.approx(10, rel=0.05)

    def test_sort_merge_is_nlogn(self):
        assert sort_merge_cost(1000, 1000, 0) > sort_merge_cost(100, 100, 0) * 10

    def test_cheapest_prefers_nl_for_tiny_inputs(self):
        assert cheapest_algorithm(2, 2, 2, True).algorithm == "nested_loop"

    def test_cheapest_prefers_hash_for_large_equi(self):
        assert cheapest_algorithm(10_000, 10_000, 10_000, True).algorithm == "hash"

    def test_theta_joins_only_have_nested_loop(self):
        assert cheapest_algorithm(10_000, 10_000, 10_000, False).algorithm == "nested_loop"

    def test_crossover_exists(self):
        # Somewhere between tiny and large the winner flips — the shape the
        # benchmarks (E8/E12) rely on.
        winners = {
            cheapest_algorithm(n, n, n, True).algorithm for n in (2, 10, 100, 10_000)
        }
        assert "nested_loop" in winners and "hash" in winners
