"""Properties and calibration of the deep size estimator (cache accounting)."""

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.memsize import CALIBRATION_FACTOR, calibrate, deep_sizeof
from repro.engine.table import Table
from repro.model.values import Tup, Variant

labels = st.sampled_from(["a", "b", "c", "d"])

atoms = st.one_of(
    st.booleans(),
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)

values = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.frozensets(inner, max_size=3),
        st.lists(inner, max_size=3).map(tuple),
        st.dictionaries(labels, inner, max_size=3).map(Tup),
    ),
    max_leaves=12,
)

tups = st.dictionaries(labels, values, min_size=1, max_size=4).map(Tup)


class TestDeepSizeofProperties:
    @settings(max_examples=150)
    @given(values)
    def test_at_least_the_shallow_size(self, v):
        assert deep_sizeof(v) >= sys.getsizeof(v)

    @settings(max_examples=100)
    @given(tups, values)
    def test_monotone_under_adding_an_attribute(self, t, extra):
        wider = Tup(**{**t._fields, "zz": extra})
        assert deep_sizeof(wider) >= deep_sizeof(t)

    @settings(max_examples=100)
    @given(st.lists(tups, max_size=5), tups)
    def test_monotone_under_adding_a_row(self, rows, new_row):
        assert deep_sizeof(rows + [new_row]) >= deep_sizeof(rows)

    @settings(max_examples=100)
    @given(values)
    def test_memo_counts_shared_substructure_once(self, v):
        # A second reference to the same object adds only the container
        # delta, never the referent's bytes again.
        one, two = [v], [v, v]
        assert deep_sizeof(two) - deep_sizeof(one) == sys.getsizeof(
            two
        ) - sys.getsizeof(one)

    @settings(max_examples=50)
    @given(values)
    def test_threaded_memo_extends_the_accounting_unit(self, v):
        memo: dict = {}
        first = deep_sizeof(v, memo)
        assert first > 0
        assert deep_sizeof(v, memo) == 0  # already charged to this unit

    @settings(max_examples=100)
    @given(values)
    def test_distinct_copies_cost_more_than_shared(self, v):
        import copy

        shared = deep_sizeof([v, v])
        copied = deep_sizeof([v, copy.deepcopy(v)])
        assert copied >= shared


class TestTraversalRobustness:
    def test_self_referential_cycle_terminates(self):
        loop: list = []
        loop.append(loop)
        assert deep_sizeof(loop) >= sys.getsizeof(loop)

    def test_mutual_cycle_through_dict(self):
        a: dict = {}
        b = {"a": a}
        a["b"] = b
        assert deep_sizeof(a) == deep_sizeof(b)  # same object set either way

    def test_nesting_beyond_the_recursion_limit(self):
        deep: list = []
        for _ in range(sys.getrecursionlimit() * 2):
            deep = [deep]
        assert deep_sizeof(deep) > 0  # iterative traversal: no RecursionError

    def test_opaque_objects_charged_shallow_only(self):
        # A function's referents (globals, code) are process-shared, not
        # cache-held data.
        assert deep_sizeof(deep_sizeof) == sys.getsizeof(deep_sizeof)

    def test_variant_counts_tag_and_payload(self):
        small = Variant("t", 1)
        big = Variant("t", "x" * 4096)
        assert deep_sizeof(big) - deep_sizeof(small) >= 4000

    def test_table_skips_derived_indexes(self):
        rows = [Tup(a=i, b=str(i)) for i in range(50)]
        table = Table("T", rows)
        before = deep_sizeof(table)
        frozenset(table)  # materialize the derived set view
        assert deep_sizeof(table) == before

    def test_batch_counts_columns(self):
        from repro.engine.batch import batches_from_rows

        rows = [Tup(a=i, b=str(i) * 8) for i in range(64)]
        (batch,) = batches_from_rows(rows, batch_size=64)
        # The columns alias the rows' payload values, so the batch is
        # charged for at least those bytes (sans the Tup wrappers).
        assert deep_sizeof(batch) >= deep_sizeof([t["b"] for t in rows])


class TestCalibration:
    """The documented accuracy band against tracemalloc ground truth."""

    def _check(self, factory):
        report = calibrate(factory)
        assert report["actual"] > 0, "factory allocated nothing measurable"
        assert (
            1.0 / CALIBRATION_FACTOR <= report["ratio"] <= CALIBRATION_FACTOR
        ), f"estimate off by more than {CALIBRATION_FACTOR}x: {report}"

    def test_table_of_distinct_rows(self):
        self._check(
            lambda: Table(
                "T",
                [
                    Tup(a=float(i) + 0.25, b=f"row-{i}-payload", c=i + 10**9)
                    for i in range(500)
                ],
            )
        )

    def test_group_table_shape(self):
        # The build-side cache's nest-join artifact: key tuple -> frozenset
        # of member rows.
        def factory():
            rows = [
                Tup(k=i % 20 + 10**9, v=float(i) * 1.5, s=f"member-{i}")
                for i in range(400)
            ]
            groups: dict = {}
            for row in rows:
                groups.setdefault((row["k"],), []).append(row)
            return {key: frozenset(members) for key, members in groups.items()}

        self._check(factory)
