"""Tests for cardinality feedback (q-error) and its metrics aggregation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import Map, NestJoin, Scan, Select
from repro.engine.analyze import analyze, explain_analyze
from repro.engine.feedback import (
    FEEDBACK,
    OpFeedback,
    clear_feedback,
    feedback_entries,
    op_kind,
    q_error,
    record_run,
    top_misestimates,
)
from repro.engine.physical import compile_plan
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup
from repro.server.metrics import MetricsRegistry


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=i % 3) for i in range(9)])
    cat.add_rows("Y", [Tup(c=i, d=i % 3) for i in range(6)])
    return cat


def plan():
    return Map(
        Select(
            NestJoin(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), None, "zs"),
            parse("COUNT(zs) = 2"),
        ),
        parse("x.a"),
        "v",
    )


class TestQError:
    @given(
        est=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        act=st.integers(min_value=0, max_value=10**12),
    )
    @settings(max_examples=200)
    def test_always_finite_and_at_least_one(self, est, act):
        q = q_error(est, act)
        assert q >= 1.0
        assert math.isfinite(q)

    @given(
        a=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_symmetric(self, a, b):
        assert q_error(a, b) == q_error(b, a)

    def test_exact_estimate_scores_one(self):
        assert q_error(42.0, 42) == 1.0
        # Sub-row values floor to one row: an empty actual is not infinite.
        assert q_error(0.0, 0) == 1.0
        assert q_error(50.0, 0) == 50.0

    def test_ratio(self):
        assert q_error(10.0, 40) == pytest.approx(4.0)
        assert q_error(40.0, 10) == pytest.approx(4.0)


class TestFeedbackEntries:
    def test_entries_cover_every_operator(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        entries = feedback_entries(run)
        # Map, Select, NestJoin, two Scans.
        assert len(entries) == 5
        kinds = {e.kind for e in entries}
        assert "join_nest" in kinds and "scan" in kinds

    def test_entry_invariants(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        for e in feedback_entries(run):
            assert e.q >= 1.0 and math.isfinite(e.q)
            assert e.est >= 0 and e.act >= 0
            assert e.kind and e.describe
            d = e.to_dict()
            assert set(d) == {"op", "kind", "est", "act", "q"}

    def test_top_misestimates_sorted_and_excludes_exact(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        top = top_misestimates(run, k=2)
        assert len(top) <= 2
        qs = [e.q for e in top]
        assert qs == sorted(qs, reverse=True)
        assert all(q > 1.0 for q in qs)

    def test_top_misestimates_accepts_entry_list(self):
        entries = [
            OpFeedback("scan", "Scan X", 10.0, 10, 1.0),
            OpFeedback("join_nest", "NestJoin", 5.0, 50, 10.0),
            OpFeedback("map", "Map", 4.0, 8, 2.0),
        ]
        top = top_misestimates(entries, k=3)
        assert [e.kind for e in top] == ["join_nest", "map"]


class TestRecordRun:
    def test_populates_registry(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        registry = MetricsRegistry()
        entries = record_run(run, rewrite_kinds=("nestjoin",), registry=registry)
        snap = registry.snapshot()
        assert snap["counters"]["analyzed_runs"] == 1
        assert snap["histograms"]["qerror"]["count"] == len(entries)
        assert set(snap["labeled_histograms"]["qerror_by_op"]) == {
            e.kind for e in entries
        }
        by_rewrite = snap["labeled_histograms"]["qerror_by_rewrite"]
        assert by_rewrite["nestjoin"]["count"] == 1
        # The rewrite family records the plan's worst operator q-error.
        assert by_rewrite["nestjoin"]["max"] == max(e.q for e in entries)

    def test_default_registry_is_module_global(self, catalog):
        clear_feedback()
        run = analyze(compile_plan(plan(), catalog), catalog)
        record_run(run)
        from repro.engine import feedback

        assert feedback.FEEDBACK.snapshot()["counters"]["analyzed_runs"] == 1
        clear_feedback()
        assert "analyzed_runs" not in feedback.FEEDBACK.snapshot()["counters"]

    def test_clear_feedback_reassigns(self):
        clear_feedback()
        from repro.engine import feedback

        assert feedback.FEEDBACK is not FEEDBACK or not FEEDBACK.snapshot()["counters"]


class TestOpKind:
    def test_kinds_from_analyzed_plan(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)

        def walk(op):
            yield op
            for child in getattr(op, "children", ()):
                yield child

        # op_kind is derived from the physical operator class / join mode;
        # every operator in the tree maps to a lowercase identifier.
        for entry in feedback_entries(run):
            assert entry.kind == entry.kind.lower()
            assert " " not in entry.kind


class TestExplainAnalyzeRendering:
    def test_subseteq_bug_nest_join_reports_est_act(self):
        # Regression: the SUBSETEQ-bug query (Section 4) goes through the
        # nest-join rewrite; its NestJoin line must carry the est/act/q keys.
        from repro.core.pipeline import prepared
        from repro.server.workload import mixed_catalog
        from repro.workloads.queries import SUBSETEQ_BUG_NESTED

        catalog = mixed_catalog(seed=3, n_left=40, n_right=160, n_chain=8)
        pq = prepared(SUBSETEQ_BUG_NESTED, catalog)
        assert pq.plan is not None
        run = pq.analyze(catalog)
        text = explain_analyze(run)
        join_lines = [l for l in text.splitlines() if "NestJoin" in l or "Join" in l]
        assert join_lines, text
        for line in join_lines:
            assert "est=" in line and "act=" in line and "q=" in line, line
