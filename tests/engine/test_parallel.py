"""Parallel/sequential parity, cancellation, and crash handling.

The contract of :mod:`repro.parallel`: for every workload query, every
partition count, and both fragment execution modes, scatter-gather over
hash shards produces exactly the sequential *result set* — parallel
execution is set-oriented (see the package docstring), so sets are the
comparison unit throughout. On top of parity: a cancelled parallel query
must return within its deadline budget (the multiprocess CancelToken
satellite), a killed worker must surface as WorkerCrashError and the pool
must recover, and the query service must serve ``execution="parallel"``
end to end with the exec-mode metric labelled accordingly.
"""

import time

import pytest

from repro.bench.perf import PERF_QUERIES
from repro.core.pipeline import prepared
from repro.engine.cancel import CancelToken, cancel_scope
from repro.errors import CancelledError, WorkerCrashError
from repro.parallel import (
    WorkerPool,
    parallel_analyze,
    plan_fragments,
    run_parallel,
    shutdown_pools,
)
from repro.parallel.partition import shard_payloads
from repro.server.service import QueryService
from repro.server.workload import mixed_catalog

PARTS = (1, 2, 4)
FRAGMENT_MODES = ("batch", "row")


@pytest.fixture(scope="module")
def catalog():
    return mixed_catalog(seed=0, n_left=40, n_right=180, n_chain=10)


@pytest.fixture(scope="module")
def sequential(catalog):
    return {
        name: frozenset(prepared(text, catalog).compile_for(catalog).run(catalog))
        for name, text in PERF_QUERIES.items()
    }


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


@pytest.mark.parametrize("parts", PARTS)
@pytest.mark.parametrize("mode", FRAGMENT_MODES)
def test_workload_parity(catalog, sequential, parts, mode):
    for name, text in PERF_QUERIES.items():
        physical = prepared(text, catalog).compile_for(catalog)
        rows = run_parallel(physical, catalog, parts=parts, fragment_execution=mode)
        assert frozenset(rows) == sequential[name], (name, parts, mode)


@pytest.mark.parametrize("parts", PARTS)
def test_prepared_execute_parity(catalog, parts):
    for name, text in PERF_QUERIES.items():
        pq = prepared(text, catalog)
        want = pq.execute(catalog)
        got = pq.execute(catalog, execution="parallel", parts=parts)
        assert got == want, (name, parts)


def test_parity_survives_catalog_mutation():
    """Version bumps invalidate cached shards; results must follow the data."""
    local = mixed_catalog(seed=5, n_left=30, n_right=120, n_chain=8)
    pq = prepared(PERF_QUERIES["count_bug_nested"], local)
    before = pq.execute(local, execution="parallel", parts=2)
    assert before == pq.execute(local)
    victim = min(row["a"] for row in before)  # an R row in the result
    local.table("R").delete(lambda row: row["a"] == victim)
    after = pq.execute(local, execution="parallel", parts=2)
    assert after == pq.execute(local)
    assert after != before  # the deletion was visible through the shards


def test_analyze_reports_fragments(catalog):
    from repro.engine.analyze import explain_analyze

    physical = prepared(PERF_QUERIES["count_bug_nested"], catalog).compile_for(catalog)
    run = parallel_analyze(physical, catalog, parts=2)
    assert run.exec_mode == "parallel"
    text = explain_analyze(run)
    assert "Gather parts=2" in text
    assert "part=0" in text and "part=1" in text
    # Fragment row counts add up to the gathered input.
    assert sum(child.rows for child in run.stats.children) == run.stats.rows_in


def test_cancelled_parallel_query_returns_within_budget():
    """A deadline must interrupt in-flight fragments, not wait them out."""
    big = mixed_catalog(seed=3, n_left=4000, n_right=60000, n_chain=20)
    physical = prepared(PERF_QUERIES["count_bug_nested"], big).compile_for(big)
    # Sanity: this query takes visibly longer than the deadline we set.
    deadline = 0.15
    start = time.monotonic()
    with pytest.raises(CancelledError):
        with cancel_scope(CancelToken.after(deadline)):
            run_parallel(physical, big, parts=2)
    elapsed = time.monotonic() - start
    # Budget: the deadline plus one cancellation round trip (workers poll
    # at batch granularity) plus pickling slack — far below the multi-
    # second full execution.
    assert elapsed < deadline + 2.0, elapsed


def test_worker_crash_surfaces_and_pool_recovers(catalog):
    physical = prepared(PERF_QUERIES["count_bug_nested"], catalog).compile_for(catalog)
    fp = plan_fragments(physical, catalog)
    assert fp is not None
    payloads = shard_payloads(fp, catalog, 2)
    pool = WorkerPool(2)
    try:
        first = pool.run_fragments(fp.fragment, payloads, None)
        assert len(first) == 2
        # Kill one worker out from under the pool.
        pool._procs[0].terminate()
        pool._procs[0].join(timeout=2.0)
        with pytest.raises(WorkerCrashError):
            pool.run_fragments(fp.fragment, payloads, None)
        assert not pool.running  # the broken pool discarded its workers
        # Next use respawns workers and serves again.
        again = pool.run_fragments(fp.fragment, payloads, None)
        assert [len(r.rows) for r in again] == [len(r.rows) for r in first]
    finally:
        pool.close()


def test_fragment_error_is_surfaced_not_partial(catalog):
    """A failing fragment raises; no partial result set leaks out."""
    from repro.errors import ExecutionError

    pq = prepared(
        "SELECT r FROM R r WHERE r.a = 1 AND r.missing = 2", catalog, typecheck=False
    )
    try:
        physical = pq.compile_for(catalog)
    except Exception:
        pytest.skip("query rejected at compile time; nothing to scatter")
    with pytest.raises(ExecutionError):
        run_parallel(physical, catalog, parts=2)


def test_service_parallel_mode(catalog):
    from repro.workloads import COUNT_BUG_NESTED

    with QueryService(catalog, workers=2, execution="parallel", parts=2) as service:
        response = service.execute(COUNT_BUG_NESTED)
        assert response.ok
        want = prepared(COUNT_BUG_NESTED, catalog).execute(catalog)
        assert response.value == want
        assert (
            service.metrics.labeled_counter("queries_by_exec_mode").get("parallel") >= 1
        )


def test_service_rejects_bad_parts(catalog):
    with pytest.raises(ValueError):
        QueryService(catalog, parts=0)
