"""Joins on complex-object keys — a TM-specific engine capability.

Join keys may be set-valued or tuple-valued attributes: hashing works
because model values are deeply hashable, and sort-merge works because the
total order covers all values. These tests pin that capability for every
algorithm.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import Join, NestJoin, Scan, SemiJoin
from repro.engine.executor import run_physical
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup

ALGORITHMS = ("nested_loop", "hash", "sort_merge", "index_nested_loop")


def set_key_catalog(n=12, seed=0):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows(
        "X",
        [
            Tup(k=frozenset(rng.sample(range(4), rng.randrange(3))), n=i)
            for i in range(n)
        ],
    )
    cat.add_rows(
        "Y",
        [
            Tup(k=frozenset(rng.sample(range(4), rng.randrange(3))), m=i)
            for i in range(n)
        ],
    )
    return cat


def tuple_key_catalog(n=10, seed=1):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows(
        "X",
        [Tup(k=Tup(a=rng.randrange(3), b=rng.randrange(3)), n=i) for i in range(n)],
    )
    cat.add_rows(
        "Y",
        [Tup(k=Tup(a=rng.randrange(3), b=rng.randrange(3)), m=i) for i in range(n)],
    )
    return cat


X = Scan("X", "x")
Y = Scan("Y", "y")
SET_EQUI = parse("x.k = y.k")


class TestSetValuedKeys:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_equijoin_on_set_attribute(self, algo):
        cat = set_key_catalog()
        reference = Counter(run_physical(Join(X, Y, SET_EQUI), cat, force_algorithm="nested_loop"))
        got = Counter(run_physical(Join(X, Y, SET_EQUI), cat, force_algorithm=algo))
        assert got == reference
        assert reference  # workload produces matches

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_nest_join_on_set_attribute(self, algo):
        cat = set_key_catalog(seed=3)
        plan = NestJoin(X, Y, SET_EQUI, parse("y.m"), "zs")
        reference = Counter(run_physical(plan, cat, force_algorithm="nested_loop"))
        assert Counter(run_physical(plan, cat, force_algorithm=algo)) == reference

    def test_subset_predicate_join_falls_back_to_nested_loop(self):
        from repro.engine.physical import PJoin, compile_plan

        cat = set_key_catalog()
        plan = Join(X, Y, parse("x.k SUBSETEQ y.k"))
        compiled = compile_plan(plan, cat)

        def find(op):
            return op if isinstance(op, PJoin) else find(op.children()[0])

        assert find(compiled).algorithm == "nested_loop"
        rows = run_physical(plan, cat)
        for t in rows:
            assert t["x"]["k"] <= t["y"]["k"]


class TestTupleValuedKeys:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_equijoin_on_tuple_attribute(self, algo):
        cat = tuple_key_catalog()
        plan = SemiJoin(X, Y, parse("x.k = y.k"))
        reference = Counter(run_physical(plan, cat, force_algorithm="nested_loop"))
        assert Counter(run_physical(plan, cat, force_algorithm=algo)) == reference


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500), n=st.integers(0, 15))
def test_set_key_join_property(seed, n):
    cat = set_key_catalog(n=n, seed=seed)
    plan = Join(X, Y, SET_EQUI)
    reference = Counter(run_physical(plan, cat, force_algorithm="nested_loop"))
    for algo in ("hash", "sort_merge", "index_nested_loop"):
        assert Counter(run_physical(plan, cat, force_algorithm=algo)) == reference
