"""Cooperative cancellation: tokens, scopes, and executor checkpoints."""

import dataclasses
import time

import pytest

from repro.core.pipeline import prepared, run_query
from repro.engine.cancel import CancelToken, cancel_scope, checkpoint, current_token
from repro.engine.physical import PhysicalOp, PJoin, PNest
from repro.errors import CancelledError
from repro.model.values import Tup
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


class TestToken:
    def test_fresh_token_passes(self):
        CancelToken().check()  # no deadline, not cancelled: no raise

    def test_explicit_cancel(self):
        token = CancelToken()
        token.cancel("shutting down")
        assert token.cancelled
        with pytest.raises(CancelledError, match="shutting down"):
            token.check()

    def test_past_deadline_raises(self):
        token = CancelToken(deadline=time.monotonic() - 1)
        assert token.expired()
        assert token.remaining() == 0.0
        with pytest.raises(CancelledError, match="deadline"):
            token.check()

    def test_after_constructor(self):
        assert CancelToken.after(None).deadline is None
        token = CancelToken.after(60)
        assert token.remaining() > 0
        token.check()


class TestScope:
    def test_scope_installs_and_restores(self):
        assert current_token() is None
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            assert current_token() is outer
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_checkpoint_without_scope_is_a_noop(self):
        checkpoint()

    def test_checkpoint_raises_inside_scope(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                checkpoint()


class TestExecutionCancellation:
    @pytest.fixture
    def catalog(self):
        return make_join_workload(n_left=50, n_right=200, seed=4).catalog

    def test_expired_deadline_stops_physical_execution(self, catalog):
        pq = prepared(COUNT_BUG_NESTED, catalog)
        with cancel_scope(CancelToken(deadline=time.monotonic() - 1)):
            with pytest.raises(CancelledError):
                pq.execute(catalog)

    def test_cancel_flag_stops_run_query(self, catalog):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                run_query(COUNT_BUG_NESTED, catalog)

    def test_execution_unaffected_without_scope(self, catalog):
        value = prepared(COUNT_BUG_NESTED, catalog).execute(catalog)
        assert value == run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value


class _NoPollRows(PhysicalOp):
    """A stub child that yields pre-built rows and never polls the token."""

    def __init__(self, rows):
        self.rows = list(rows)
        self.est_rows = float(len(self.rows))

    def run(self, tables):
        yield from self.rows

    def describe(self):
        return "NoPollRows"


def _find_join(op, mode):
    if isinstance(op, PJoin) and op.mode == mode:
        return op
    for child in op.children():
        found = _find_join(child, mode)
        if found is not None:
            return found
    return None


class TestRowBoundaryPolls:
    """Probe/grouping loops must poll even when no child ever does.

    Index and cached-group-table probes bypass the right child's scan —
    the usual checkpoint — and a left operand need not be a scan either.
    Feeding a non-polling stub as the left/child input proves the loops
    themselves notice cancellation at row boundaries.
    """

    SEMI_QUERY = "SELECT r.a FROM R r WHERE r.c IN (SELECT s.c FROM S s WHERE s.d = r.b)"

    @pytest.fixture
    def catalog(self):
        return make_join_workload(n_left=50, n_right=200, seed=4).catalog

    def _stub_left(self, text, mode, catalog):
        join = _find_join(prepared(text, catalog).compile_for(catalog), mode)
        assert join is not None and join.algorithm == "index_nested_loop"
        left_rows = list(join.left.run(catalog))  # no scope: scan completes
        return dataclasses.replace(join, left=_NoPollRows(left_rows))

    def test_nest_join_group_probe_polls(self, catalog):
        stubbed = self._stub_left(COUNT_BUG_NESTED, "nest", catalog)
        assert stubbed.group_source is not None  # cached-group probe path
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                list(stubbed.run(catalog))

    def test_semi_join_index_probe_polls(self, catalog):
        stubbed = self._stub_left(self.SEMI_QUERY, "semi", catalog)
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                list(stubbed.run(catalog))

    def test_stubbed_joins_still_correct_without_scope(self, catalog):
        for text, mode in ((COUNT_BUG_NESTED, "nest"), (self.SEMI_QUERY, "semi")):
            join = _find_join(prepared(text, catalog).compile_for(catalog), mode)
            expected = list(join.run(catalog))
            stubbed = dataclasses.replace(
                join, left=_NoPollRows(join.left.run(catalog))
            )
            assert list(stubbed.run(catalog)) == expected

    def test_pnest_grouping_polls(self):
        rows = [Tup(a=i % 3, b=i) for i in range(10)]
        op = PNest(
            child=_NoPollRows(rows), by=("a",), nest="b", label="zs", null_to_empty=False
        )
        assert len(list(op.run({}))) == 3  # sanity: groups fine un-cancelled
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                list(op.run({}))
