"""Cooperative cancellation: tokens, scopes, and executor checkpoints."""

import time

import pytest

from repro.core.pipeline import prepared, run_query
from repro.engine.cancel import CancelToken, cancel_scope, checkpoint, current_token
from repro.errors import CancelledError
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


class TestToken:
    def test_fresh_token_passes(self):
        CancelToken().check()  # no deadline, not cancelled: no raise

    def test_explicit_cancel(self):
        token = CancelToken()
        token.cancel("shutting down")
        assert token.cancelled
        with pytest.raises(CancelledError, match="shutting down"):
            token.check()

    def test_past_deadline_raises(self):
        token = CancelToken(deadline=time.monotonic() - 1)
        assert token.expired()
        assert token.remaining() == 0.0
        with pytest.raises(CancelledError, match="deadline"):
            token.check()

    def test_after_constructor(self):
        assert CancelToken.after(None).deadline is None
        token = CancelToken.after(60)
        assert token.remaining() > 0
        token.check()


class TestScope:
    def test_scope_installs_and_restores(self):
        assert current_token() is None
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            assert current_token() is outer
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_checkpoint_without_scope_is_a_noop(self):
        checkpoint()

    def test_checkpoint_raises_inside_scope(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                checkpoint()


class TestExecutionCancellation:
    @pytest.fixture
    def catalog(self):
        return make_join_workload(n_left=50, n_right=200, seed=4).catalog

    def test_expired_deadline_stops_physical_execution(self, catalog):
        pq = prepared(COUNT_BUG_NESTED, catalog)
        with cancel_scope(CancelToken(deadline=time.monotonic() - 1)):
            with pytest.raises(CancelledError):
                pq.execute(catalog)

    def test_cancel_flag_stops_run_query(self, catalog):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(CancelledError):
                run_query(COUNT_BUG_NESTED, catalog)

    def test_execution_unaffected_without_scope(self, catalog):
        value = prepared(COUNT_BUG_NESTED, catalog).execute(catalog)
        assert value == run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
