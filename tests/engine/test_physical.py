"""Tests for physical compilation, algorithm selection, and execution."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import run_logical
from repro.algebra.plan import (
    AntiJoin,
    Drop,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.engine.executor import run_physical
from repro.engine.physical import PJoin, compile_plan
from repro.engine.table import Catalog
from repro.errors import PlanError
from repro.lang.parser import parse
from repro.model.values import Tup


def catalog_sizes(n_left, n_right, seed=0):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=rng.randrange(4), b=rng.randrange(max(1, n_left // 2))) for _ in range(n_left)])
    cat.add_rows("Y", [Tup(c=rng.randrange(4), d=rng.randrange(max(1, n_right // 2))) for _ in range(n_right)])
    return cat


X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.b = y.d")
THETA = parse("x.a < y.c")


def find_join(op):
    if isinstance(op, PJoin):
        return op
    for c in op.children():
        j = find_join(c)
        if j is not None:
            return j
    return None


class TestAlgorithmSelection:
    def test_large_equi_join_avoids_nested_loop(self):
        cat = catalog_sizes(300, 300)
        op = compile_plan(Join(X, Y, EQUI), cat)
        assert find_join(op).algorithm in ("hash", "sort_merge", "index_nested_loop")

    def test_theta_join_forces_nested_loop(self):
        cat = catalog_sizes(300, 300)
        op = compile_plan(Join(X, Y, THETA), cat)
        assert find_join(op).algorithm == "nested_loop"

    def test_force_algorithm(self):
        cat = catalog_sizes(10, 10)
        for algo in ("nested_loop", "hash", "sort_merge"):
            op = compile_plan(Join(X, Y, EQUI), cat, force_algorithm=algo)
            assert find_join(op).algorithm == algo

    def test_force_falls_back_without_keys(self):
        cat = catalog_sizes(10, 10)
        op = compile_plan(Join(X, Y, THETA), cat, force_algorithm="hash")
        assert find_join(op).algorithm == "nested_loop"

    def test_unknown_forced_algorithm_rejected(self):
        cat = catalog_sizes(5, 5)
        with pytest.raises(PlanError):
            compile_plan(Join(X, Y, EQUI), cat, force_algorithm="quantum")


PLANS = [
    ("join", lambda: Join(X, Y, EQUI)),
    ("semi", lambda: SemiJoin(X, Y, EQUI)),
    ("anti", lambda: AntiJoin(X, Y, EQUI)),
    ("outer", lambda: OuterJoin(X, Y, EQUI)),
    ("nest", lambda: NestJoin(X, Y, EQUI, parse("y.c"), "zs")),
    ("nest-select", lambda: Select(NestJoin(X, Y, EQUI, parse("y.c"), "zs"), parse("COUNT(zs) >= 0"))),
    ("nest-op", lambda: Nest(Join(X, Y, EQUI), by=("x",), nest="y", label="g")),
    ("unnest-op", lambda: Unnest(NestJoin(X, Y, EQUI, None, "g"), "g", "y")),
    ("map-drop", lambda: Map(Drop(NestJoin(X, Y, EQUI, parse("y.c"), "zs"), ("zs",)), parse("x.a"), "v")),
]


@pytest.mark.parametrize("name,mk", PLANS, ids=[n for n, _ in PLANS])
@pytest.mark.parametrize("algo", ["nested_loop", "hash", "sort_merge"])
def test_physical_matches_logical_reference(name, mk, algo):
    cat = catalog_sizes(40, 40, seed=7)
    plan = mk()
    logical = Counter(run_logical(plan, cat))
    physical = Counter(run_physical(plan, cat, force_algorithm=algo))
    assert physical == logical


@settings(max_examples=30, deadline=None)
@given(
    n_left=st.integers(0, 30),
    n_right=st.integers(0, 30),
    seed=st.integers(0, 5),
)
def test_physical_matches_logical_on_random_sizes(n_left, n_right, seed):
    cat = catalog_sizes(n_left, n_right, seed)
    plan = Select(NestJoin(X, Y, EQUI, parse("y.c"), "zs"), parse("COUNT(zs) = 0"))
    assert Counter(run_physical(plan, cat)) == Counter(run_logical(plan, cat))


class TestEstimates:
    def test_estimates_attached(self):
        cat = catalog_sizes(100, 50)
        op = compile_plan(Join(X, Y, EQUI), cat)
        assert op.est_rows > 0
        join = find_join(op)
        assert join.left.est_rows == 100
        assert join.right.est_rows == 50

    def test_nest_join_estimate_is_left_cardinality(self):
        cat = catalog_sizes(80, 20)
        op = compile_plan(NestJoin(X, Y, EQUI, None, "zs"), cat)
        assert op.est_rows == 80


class TestExplainPhysical:
    def test_explain_shows_algorithms_and_estimates(self):
        from repro.engine.explain import explain_physical

        cat = catalog_sizes(200, 200)
        op = compile_plan(SemiJoin(X, Y, EQUI), cat)
        text = explain_physical(op)
        assert "SemiJoin(" in text
        assert "rows" in text
        assert "Scan X AS x" in text
