"""Unit tests for the column-batch container and the batched pull protocol."""

import pytest

from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    Batch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.physical import PScan, PhysicalOp, has_batch_kernel
from repro.engine.table import Catalog
from repro.errors import ExecutionError
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("R", [Tup(a=i, b=Tup(c=i * 10)) for i in range(5)])
    return cat


class TestBatch:
    def test_dense_live_and_indices(self):
        batch = Batch({"x": [1, 2, 3]}, 3)
        assert batch.live == 3
        assert list(batch.indices()) == [0, 1, 2]
        assert batch.sel is None

    def test_selection_vector_narrows(self):
        batch = Batch({"x": [1, 2, 3, 4]}, 4, [1, 3])
        assert batch.live == 2
        assert list(batch.indices()) == [1, 3]
        assert [t["x"] for t in batch.to_tups()] == [2, 4]

    def test_compact_gathers_live_rows(self):
        batch = Batch({"x": [1, 2, 3, 4], "y": list("abcd")}, 4, [0, 2])
        dense = batch.compact()
        assert dense.sel is None
        assert dense.n == 2
        assert dense.columns == {"x": [1, 3], "y": ["a", "c"]}

    def test_compact_is_identity_when_dense(self):
        batch = Batch({"x": [1, 2]}, 2)
        assert batch.compact() is batch

    def test_round_trip_rows(self):
        rows = [Tup(a=i, b=i % 2) for i in range(10)]
        batches = list(batches_from_rows(iter(rows), 3))
        assert [b.n for b in batches] == [3, 3, 3, 1]
        assert list(rows_from_batches(iter(batches))) == rows

    def test_getter_attr_chain(self, catalog):
        batch = Batch({"r": list(catalog["R"].rows)}, 5)
        get = batch.getter(parse("r.b.c"), catalog)
        assert [get(i) for i in range(5)] == [0, 10, 20, 30, 40]

    def test_getter_attr_on_non_tuple_raises(self):
        batch = Batch({"r": [Tup(a=1), 7]}, 2)
        get = batch.getter(parse("r.a"), {})
        assert get(0) == 1
        with pytest.raises(ExecutionError):
            get(1)

    def test_getter_missing_attribute_raises(self):
        batch = Batch({"r": [Tup(a=1)]}, 1)
        get = batch.getter(parse("r.nope"), {})
        with pytest.raises(ExecutionError):
            get(0)

    def test_getter_general_expression(self, catalog):
        batch = Batch({"r": list(catalog["R"].rows)}, 5)
        get = batch.getter(parse("r.a + 1"), catalog)
        assert [get(i) for i in range(5)] == [1, 2, 3, 4, 5]


class TestProtocol:
    def test_scan_has_batch_kernel(self):
        assert has_batch_kernel(PScan("R", "r"))

    def test_base_class_fallback_wraps_run(self, catalog):
        class RowOnly(PhysicalOp):
            est_rows = 0.0

            def run(self, tables):
                yield from (Tup(v=i) for i in range(7))

            def children(self):
                return ()

            def describe(self):
                return "RowOnly"

        op = RowOnly()
        assert not has_batch_kernel(op)
        batches = list(op.run_batches(catalog, batch_size=4))
        assert [b.n for b in batches] == [4, 3]
        assert [t["v"] for t in rows_from_batches(iter(batches))] == list(range(7))

    def test_scan_batches_respect_batch_size(self, catalog):
        batches = list(PScan("R", "r").run_batches(catalog, batch_size=2))
        assert [b.n for b in batches] == [2, 2, 1]
        assert all(set(b.columns) == {"r"} for b in batches)

    def test_default_batch_size_is_sane(self):
        assert DEFAULT_BATCH_SIZE >= 64
