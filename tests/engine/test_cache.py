"""The execution-time cache layer: LRU, build-side reuse, invalidation."""

import pytest

from repro.algebra.plan import Join, NestJoin, Scan
from repro.engine.cache import (
    BUILD_CACHE,
    BuildSideCache,
    CacheStats,
    LRUCache,
    build_cache_stats,
    clear_build_cache,
    set_build_cache_budget,
    set_build_cache_capacity,
)
from repro.engine.executor import run_physical
from repro.engine.physical import PJoin, compile_plan
from repro.engine.table import Catalog, Table
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_build_cache()
    yield
    clear_build_cache()
    set_build_cache_capacity(64)


def catalog(nx=20, ny=30):
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=i % 5) for i in range(nx)])
    cat.add_rows("Y", [Tup(c=i, d=i % 5) for i in range(ny)])
    return cat


def find_join(op):
    if isinstance(op, PJoin):
        return op
    for child in op.children():
        found = find_join(child)
        if found:
            return found
    return None


class TestLRUCache:
    def test_get_put_and_counters(self):
        lru = LRUCache(capacity=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats.hits == 1 and lru.stats.misses == 1
        assert lru.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b is now LRU
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.stats.evictions == 1

    def test_zero_capacity_disables(self):
        lru = LRUCache(capacity=0)
        lru.put("a", 1)
        assert len(lru) == 0 and lru.get("a") is None

    def test_clear_resets_counters(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0 and lru.stats == CacheStats()


class TestBuildSideKey:
    def test_key_uses_uid_and_version(self):
        t = Table("T", [Tup(a=1)])
        k1 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        t.bump_version()
        k2 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        assert k1 != k2

    def test_same_name_distinct_tables_never_alias(self):
        t1 = Table("T", [Tup(a=1)])
        t2 = Table("T", [Tup(a=2)])
        assert BuildSideCache.key("hash-build", t1, "x", ("x.a",)) != (
            BuildSideCache.key("hash-build", t2, "x", ("x.a",))
        )

    def test_unversioned_source_is_uncacheable(self):
        assert BuildSideCache.key("hash-build", [Tup(a=1)], "x", ("x.a",)) is None


class TestBuildSideReuse:
    def _compiled_hash_join(self, cat):
        plan = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"))
        return compile_plan(plan, cat, force_algorithm="hash")

    def test_second_execution_hits(self, ):
        cat = catalog(nx=200, ny=50)  # large right: builds right
        op = self._compiled_hash_join(cat)
        join = find_join(op)
        assert join.cache_source is not None
        first = frozenset(op.run(cat))
        second = frozenset(op.run(cat))
        assert first == second
        assert join.cache_misses == 1 and join.cache_hits == 1
        assert build_cache_stats().hits == 1

    def test_two_plans_share_one_build(self):
        cat = catalog(nx=200, ny=50)
        op1 = self._compiled_hash_join(cat)
        op2 = self._compiled_hash_join(cat)
        frozenset(op1.run(cat))
        frozenset(op2.run(cat))
        assert find_join(op1).cache_misses == 1
        assert find_join(op2).cache_hits == 1

    def test_mutation_invalidates(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        before = frozenset(op.run(cat))
        cat["Y"].insert([Tup(c=999, d=1)])
        after = frozenset(op.run(cat))
        join = find_join(op)
        assert join.cache_misses == 2 and join.cache_hits == 0
        assert len(after) > len(before)

    def test_results_stable_across_sort_merge_reuse(self):
        cat = catalog(nx=30, ny=40)
        plan = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"))
        op = compile_plan(plan, cat, force_algorithm="sort_merge")
        assert frozenset(op.run(cat)) == frozenset(op.run(cat))
        assert find_join(op).cache_hits == 1

    def test_nest_join_group_table_reused(self):
        cat = catalog(nx=30, ny=40)
        plan = NestJoin(
            Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), parse("y.c"), "ys"
        )
        op = compile_plan(plan, cat)
        join = find_join(op)
        assert join.group_source is not None
        naive = frozenset(run_physical(plan, cat))
        assert frozenset(op.run(cat)) == naive
        assert frozenset(op.run(cat)) == naive
        assert join.cache_hits >= 1

    def test_eviction_under_tiny_capacity(self):
        set_build_cache_capacity(1)
        cat = catalog(nx=200, ny=50)
        op1 = self._compiled_hash_join(cat)
        plan2 = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.a = y.c"))
        op2 = compile_plan(plan2, cat, force_algorithm="hash")
        frozenset(op1.run(cat))
        frozenset(op2.run(cat))  # different keys: evicts op1's build
        frozenset(op1.run(cat))  # must rebuild, still correct
        assert BUILD_CACHE.stats.evictions >= 1
        assert find_join(op1).cache_misses == 2

    def test_explain_shows_counters(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        frozenset(op.run(cat))
        frozenset(op.run(cat))
        from repro.engine.explain import explain_physical

        text = explain_physical(op)
        assert "1 hits, 1 misses" in text

    def test_plain_mapping_catalog_never_cached(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        plain = {"X": list(cat["X"]), "Y": list(cat["Y"])}
        assert frozenset(op.run(plain)) == frozenset(op.run(cat))
        # Only the Table-backed run used the cache.
        assert find_join(op).cache_misses == 1


class TestEvictionReasons:
    def test_capacity_evictions_are_labeled(self):
        lru = LRUCache(capacity=1)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.stats.evictions_by_reason == {"capacity": 1}

    def test_remove_defaults_to_version_reason(self):
        lru = LRUCache(capacity=4)
        lru.put("a", 1)
        assert lru.remove("a")
        assert not lru.remove("a")  # already gone
        assert lru.stats.evictions_by_reason == {"version": 1}

    def test_resize_to_zero_counts_clears(self):
        lru = LRUCache(capacity=4)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.resize(0)
        assert len(lru) == 0
        assert lru.stats.evictions_by_reason == {"clear": 2}

    def test_build_cache_version_displacement_is_labeled(self):
        cache = BuildSideCache(capacity=8)
        t = Table("T", [Tup(a=1)])
        k1 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        cache.put(k1, {"build": 1}, nbytes=10)
        t.bump_version()
        k2 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        cache.put(k2, {"build": 2}, nbytes=10)
        # The stale version was displaced eagerly, not LRU'd out later.
        assert cache.get(k1) is None
        assert cache.stats.evictions_by_reason.get("version") == 1
        report = cache.report()
        assert report["entries"] == 1 and report["bytes"] == 10

    def test_workload_under_tiny_budget_splits_reasons(self):
        set_build_cache_budget(1024)  # far below one build artifact
        try:
            cat = catalog(nx=200, ny=50)
            plan = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"))
            op = compile_plan(plan, cat, force_algorithm="hash")
            baseline = frozenset(run_physical(plan, cat))
            assert frozenset(op.run(cat)) == baseline
            assert frozenset(op.run(cat)) == baseline  # rebuild, still right
            reasons = BUILD_CACHE.stats.evictions_by_reason
            assert reasons.get("budget", 0) >= 1
        finally:
            set_build_cache_budget(None)


class TestByteBudget:
    def test_entry_sizes_accumulate_and_report(self):
        lru = LRUCache(capacity=8, name="probe")
        lru.put("a", "x" * 1000)
        lru.put("b", "y" * 2000)
        assert lru.entry_bytes("a") and lru.entry_bytes("b")
        assert lru.total_bytes == lru.entry_bytes("a") + lru.entry_bytes("b")
        report = lru.report(top_k=1)
        assert report["bytes"] == lru.total_bytes
        assert report["top_entries"][0]["bytes"] == lru.entry_bytes("b")

    def test_explicit_nbytes_skips_the_sizer(self):
        lru = LRUCache(capacity=4, sizer=lambda value: 1 / 0)
        lru.put("a", object(), nbytes=77)
        assert lru.entry_bytes("a") == 77 and lru.total_bytes == 77

    def test_budget_is_a_hard_invariant(self):
        lru = LRUCache(capacity=100, max_bytes=5000, name="probe")
        for i in range(20):
            lru.put(i, "z" * 1000)
            assert lru.total_bytes <= 5000
        assert lru.stats.evictions_by_reason["budget"] >= 1

    def test_oversized_entry_evicts_itself(self):
        lru = LRUCache(capacity=10, max_bytes=100, name="probe")
        lru.put("big", "x" * 10_000)
        assert len(lru) == 0 and lru.total_bytes == 0

    def test_budget_eviction_emits_event_and_pressure(self):
        from repro.core.log import clear_events, events_snapshot
        from repro.engine.cachereg import CACHE_REGISTRY

        clear_events()
        CACHE_REGISTRY.reset_pressure()
        lru = LRUCache(capacity=10, max_bytes=2000, name="probe")
        for i in range(4):
            lru.put(i, "x" * 1000)
        events = events_snapshot(events=["cache_evict"])
        assert events, "expected structured cache_evict events"
        assert events[0]["cache"] == "probe"
        assert events[0]["reason"] == "budget" and events[0]["bytes"] > 0
        pressure = CACHE_REGISTRY.pressure_snapshot()
        assert pressure.get("probe", 0) >= 1

    def test_set_budget_evicts_immediately(self):
        lru = LRUCache(capacity=10, name="probe")
        for i in range(4):
            lru.put(i, "x" * 1000)
        held = lru.total_bytes
        lru.set_budget(held // 2)
        assert lru.total_bytes <= held // 2
        lru.set_budget(None)  # unbounded again
        assert lru.max_bytes is None

    def test_reinsert_replaces_recorded_size(self):
        lru = LRUCache(capacity=4)
        lru.put("a", "x" * 4000)
        lru.put("a", "x" * 10)
        assert lru.total_bytes == lru.entry_bytes("a") < 1000

    def test_accounting_switch_disables_sizing(self):
        from repro.engine.cache import accounting_enabled, set_accounting

        assert accounting_enabled()
        set_accounting(False)
        try:
            lru = LRUCache(capacity=4)
            lru.put("a", "x" * 4000)
            assert lru.total_bytes == 0  # sizing pass skipped
        finally:
            set_accounting(True)

    def test_budget_still_enforced_with_accounting_off(self):
        # An explicit max_bytes keeps sizing on for that cache: budgets
        # are a correctness bound, not telemetry.
        from repro.engine.cache import set_accounting

        set_accounting(False)
        try:
            lru = LRUCache(capacity=10, max_bytes=100, name="probe")
            lru.put("big", "x" * 10_000)
            assert lru.total_bytes <= 100
        finally:
            set_accounting(True)
