"""The execution-time cache layer: LRU, build-side reuse, invalidation."""

import pytest

from repro.algebra.plan import Join, NestJoin, Scan
from repro.engine.cache import (
    BUILD_CACHE,
    BuildSideCache,
    CacheStats,
    LRUCache,
    build_cache_stats,
    clear_build_cache,
    set_build_cache_capacity,
)
from repro.engine.executor import run_physical
from repro.engine.physical import PJoin, compile_plan
from repro.engine.table import Catalog, Table
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_build_cache()
    yield
    clear_build_cache()
    set_build_cache_capacity(64)


def catalog(nx=20, ny=30):
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=i % 5) for i in range(nx)])
    cat.add_rows("Y", [Tup(c=i, d=i % 5) for i in range(ny)])
    return cat


def find_join(op):
    if isinstance(op, PJoin):
        return op
    for child in op.children():
        found = find_join(child)
        if found:
            return found
    return None


class TestLRUCache:
    def test_get_put_and_counters(self):
        lru = LRUCache(capacity=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats.hits == 1 and lru.stats.misses == 1
        assert lru.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b is now LRU
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.stats.evictions == 1

    def test_zero_capacity_disables(self):
        lru = LRUCache(capacity=0)
        lru.put("a", 1)
        assert len(lru) == 0 and lru.get("a") is None

    def test_clear_resets_counters(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0 and lru.stats == CacheStats()


class TestBuildSideKey:
    def test_key_uses_uid_and_version(self):
        t = Table("T", [Tup(a=1)])
        k1 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        t.bump_version()
        k2 = BuildSideCache.key("hash-build", t, "x", ("x.a",))
        assert k1 != k2

    def test_same_name_distinct_tables_never_alias(self):
        t1 = Table("T", [Tup(a=1)])
        t2 = Table("T", [Tup(a=2)])
        assert BuildSideCache.key("hash-build", t1, "x", ("x.a",)) != (
            BuildSideCache.key("hash-build", t2, "x", ("x.a",))
        )

    def test_unversioned_source_is_uncacheable(self):
        assert BuildSideCache.key("hash-build", [Tup(a=1)], "x", ("x.a",)) is None


class TestBuildSideReuse:
    def _compiled_hash_join(self, cat):
        plan = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"))
        return compile_plan(plan, cat, force_algorithm="hash")

    def test_second_execution_hits(self, ):
        cat = catalog(nx=200, ny=50)  # large right: builds right
        op = self._compiled_hash_join(cat)
        join = find_join(op)
        assert join.cache_source is not None
        first = frozenset(op.run(cat))
        second = frozenset(op.run(cat))
        assert first == second
        assert join.cache_misses == 1 and join.cache_hits == 1
        assert build_cache_stats().hits == 1

    def test_two_plans_share_one_build(self):
        cat = catalog(nx=200, ny=50)
        op1 = self._compiled_hash_join(cat)
        op2 = self._compiled_hash_join(cat)
        frozenset(op1.run(cat))
        frozenset(op2.run(cat))
        assert find_join(op1).cache_misses == 1
        assert find_join(op2).cache_hits == 1

    def test_mutation_invalidates(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        before = frozenset(op.run(cat))
        cat["Y"].insert([Tup(c=999, d=1)])
        after = frozenset(op.run(cat))
        join = find_join(op)
        assert join.cache_misses == 2 and join.cache_hits == 0
        assert len(after) > len(before)

    def test_results_stable_across_sort_merge_reuse(self):
        cat = catalog(nx=30, ny=40)
        plan = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"))
        op = compile_plan(plan, cat, force_algorithm="sort_merge")
        assert frozenset(op.run(cat)) == frozenset(op.run(cat))
        assert find_join(op).cache_hits == 1

    def test_nest_join_group_table_reused(self):
        cat = catalog(nx=30, ny=40)
        plan = NestJoin(
            Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), parse("y.c"), "ys"
        )
        op = compile_plan(plan, cat)
        join = find_join(op)
        assert join.group_source is not None
        naive = frozenset(run_physical(plan, cat))
        assert frozenset(op.run(cat)) == naive
        assert frozenset(op.run(cat)) == naive
        assert join.cache_hits >= 1

    def test_eviction_under_tiny_capacity(self):
        set_build_cache_capacity(1)
        cat = catalog(nx=200, ny=50)
        op1 = self._compiled_hash_join(cat)
        plan2 = Join(Scan("X", "x"), Scan("Y", "y"), parse("x.a = y.c"))
        op2 = compile_plan(plan2, cat, force_algorithm="hash")
        frozenset(op1.run(cat))
        frozenset(op2.run(cat))  # different keys: evicts op1's build
        frozenset(op1.run(cat))  # must rebuild, still correct
        assert BUILD_CACHE.stats.evictions >= 1
        assert find_join(op1).cache_misses == 2

    def test_explain_shows_counters(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        frozenset(op.run(cat))
        frozenset(op.run(cat))
        from repro.engine.explain import explain_physical

        text = explain_physical(op)
        assert "1 hits, 1 misses" in text

    def test_plain_mapping_catalog_never_cached(self):
        cat = catalog(nx=200, ny=50)
        op = self._compiled_hash_join(cat)
        plain = {"X": list(cat["X"]), "Y": list(cat["Y"])}
        assert frozenset(op.run(plain)) == frozenset(op.run(cat))
        # Only the Table-backed run used the cache.
        assert find_join(op).cache_misses == 1
