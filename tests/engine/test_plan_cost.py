"""Unit tests for whole-plan cost estimation."""

import pytest

from repro.algebra.plan import Join, Map, NestJoin, Scan, Select, SemiJoin
from repro.engine.plan_cost import plan_cost
from repro.engine.stats import StatsCatalog
from repro.engine.table import Catalog
from repro.errors import PlanError
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i % 5, b=i % 3) for i in range(100)])
    cat.add_rows("Y", [Tup(c=i % 5, d=i % 3) for i in range(50)])
    return cat


X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.b = y.d")
THETA = parse("x.a < y.c")


class TestPlanCost:
    def test_scan_cost_is_cardinality(self, catalog):
        assert plan_cost(X, catalog) == 100.0

    def test_accepts_raw_catalog_or_stats(self, catalog):
        assert plan_cost(X, catalog) == plan_cost(X, StatsCatalog(catalog))

    def test_filters_add_per_row_work(self, catalog):
        assert plan_cost(Select(X, parse("x.a = 1")), catalog) > plan_cost(X, catalog)

    def test_equi_join_cheaper_than_theta_join(self, catalog):
        equi = plan_cost(Join(X, Y, EQUI), catalog)
        theta = plan_cost(Join(X, Y, THETA), catalog)
        assert equi < theta  # hash/index beats forced nested-loop

    def test_cost_is_monotone_in_tree_size(self, catalog):
        base = Join(X, Y, EQUI)
        bigger = Map(Select(base, parse("x.a = 1")), parse("x.a"), "v")
        assert plan_cost(bigger, catalog) > plan_cost(base, catalog)

    def test_semijoin_no_more_expensive_than_join(self, catalog):
        assert plan_cost(SemiJoin(X, Y, EQUI), catalog) <= plan_cost(Join(X, Y, EQUI), catalog)

    def test_nest_join_costed(self, catalog):
        cost = plan_cost(NestJoin(X, Y, EQUI, None, "zs"), catalog)
        assert cost > 0

    def test_unknown_node_rejected(self, catalog):
        class Weird:
            pass

        with pytest.raises(PlanError):
            plan_cost(Weird(), catalog)  # type: ignore[arg-type]
