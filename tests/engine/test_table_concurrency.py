"""Table mutation atomicity: versions, derived artifacts, concurrent readers."""

import threading

import pytest

from repro.engine.table import Catalog, Table
from repro.errors import CatalogError
from repro.model.values import Tup

pytestmark = pytest.mark.thread_stress


class TestAtomicMutation:
    def test_failed_insert_leaves_table_untouched(self):
        table = Table("T", [Tup(a=1), Tup(a=2)], key=("a",))
        version = table.version
        with pytest.raises(CatalogError):
            table.insert([Tup(a=3), Tup(a=1)])  # duplicate key in the batch
        assert table.rows == [Tup(a=1), Tup(a=2)]
        assert table.version == version

    def test_successful_mutations_bump_version_once(self):
        table = Table("T", [Tup(a=1)])
        v0 = table.version
        table.insert([Tup(a=2)])
        assert table.version == v0 + 1
        table.delete(lambda row: row["a"] == 1)
        assert table.version == v0 + 2
        table.replace_rows([Tup(a=9)])
        assert table.version == v0 + 3
        assert table.rows == [Tup(a=9)]

    def test_mutation_drops_derived_artifacts(self):
        table = Table("T", [Tup(a=1, c=1), Tup(a=2, c=1)])
        index = table.hash_index(("c",))
        assert len(index[(1,)]) == 2
        table.insert([Tup(a=3, c=1)])
        assert len(table.hash_index(("c",))[(1,)]) == 3
        assert len(table.as_set()) == 3


class TestConcurrentReaders:
    def test_readers_never_observe_mixed_snapshots(self):
        # Two catalog states: all rows have d=0, or all have d=1.  Readers
        # build derived artifacts (hash index, row set) while a writer flips
        # between the states; a stale index published against fresh rows
        # would surface as a mixed d-value within one artifact.
        rows_a = [Tup(a=i, d=0) for i in range(50)]
        rows_b = [Tup(a=i, d=1) for i in range(50)]
        table = Table("T", list(rows_a), key=("a",))
        stop = threading.Event()
        violations = []

        def writer():
            flip = False
            while not stop.is_set():
                table.replace_rows(rows_b if flip else rows_a)
                flip = not flip

        def index_reader():
            while not stop.is_set():
                index = table.hash_index(("d",))
                if len(index) != 1:
                    violations.append(("index", sorted(index)))

        def set_reader():
            while not stop.is_set():
                seen = {row["d"] for row in table.as_set()}
                if len(seen) != 1:
                    violations.append(("set", sorted(seen)))

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=index_reader),
            threading.Thread(target=set_reader),
        ]
        for t in threads:
            t.start()
        timer = threading.Timer(0.4, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert violations == []

    def test_catalog_version_is_sum_of_table_versions(self):
        catalog = Catalog()
        t1 = catalog.add(Table("T", [Tup(a=1)]))
        t2 = catalog.add(Table("U", [Tup(b=1)]))
        before = catalog.version
        t1.bump_version()
        t2.bump_version()
        assert catalog.version == before + 2
