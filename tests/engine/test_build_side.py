"""Hash-join build-side choice (Section 6's aside on the regular join)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import Join, NestJoin, Scan, SemiJoin
from repro.engine.executor import run_physical
from repro.engine.joins.common import analyse_join
from repro.engine.joins.hash_join import hash_inner_join, hash_inner_join_build_left
from repro.engine.physical import PJoin, compile_plan
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup

X = Scan("X", "x")
Y = Scan("Y", "y")
EQUI = parse("x.b = y.d")
SPEC = analyse_join(EQUI, ("x",), ("y",))


def catalog(nx, ny, seed=0):
    import random

    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=rng.randrange(5)) for i in range(nx)])
    cat.add_rows("Y", [Tup(c=i, d=rng.randrange(5)) for i in range(ny)])
    return cat


def find_join(op):
    if isinstance(op, PJoin):
        return op
    for c in op.children():
        j = find_join(c)
        if j:
            return j
    return None


class TestBuildSideChoice:
    def test_small_left_builds_left(self):
        cat = catalog(10, 500)
        join = find_join(compile_plan(Join(X, Y, EQUI), cat, force_algorithm="hash"))
        assert join.hash_build_left is True

    def test_small_right_builds_right(self):
        cat = catalog(500, 10)
        join = find_join(compile_plan(Join(X, Y, EQUI), cat, force_algorithm="hash"))
        assert join.hash_build_left is False

    @pytest.mark.parametrize(
        "mk", [lambda: SemiJoin(X, Y, EQUI), lambda: NestJoin(X, Y, EQUI, None, "zs")],
        ids=["semi", "nest"],
    )
    def test_asymmetric_modes_never_build_left(self, mk):
        cat = catalog(10, 500)
        join = find_join(compile_plan(mk(), cat, force_algorithm="hash"))
        assert join.hash_build_left is False

    def test_results_agree_regardless_of_build_side(self):
        cat = catalog(10, 500, seed=3)
        small_left = Counter(run_physical(Join(X, Y, EQUI), cat, force_algorithm="hash"))
        reference = Counter(run_physical(Join(X, Y, EQUI), cat, force_algorithm="nested_loop"))
        assert small_left == reference


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(
        st.builds(lambda a, b: Tup(x=Tup(a=a, b=b)), st.integers(0, 3), st.integers(0, 3)),
        max_size=8,
    ),
    right=st.lists(
        st.builds(lambda c, d: Tup(y=Tup(c=c, d=d)), st.integers(0, 3), st.integers(0, 3)),
        max_size=8,
    ),
)
def test_build_sides_produce_identical_multisets(left, right):
    a = Counter(hash_inner_join(left, list(right), SPEC, {}))
    b = Counter(hash_inner_join_build_left(list(left), right, SPEC, {}))
    assert a == b
