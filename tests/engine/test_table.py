"""Unit tests for tables and the catalog."""

import pytest

from repro.engine.table import Catalog, Table
from repro.errors import CatalogError, ValidationError
from repro.model.schema import company_schema
from repro.model.types import ANY, INT, STRING, TupleType
from repro.model.values import Tup


class TestTable:
    def test_infers_row_type(self):
        t = Table("T", [Tup(a=1, b="x")])
        assert t.row_type == TupleType({"a": INT, "b": STRING})

    def test_empty_table_row_type_is_any(self):
        assert Table("T", []).row_type == ANY

    def test_incompatible_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("T", [Tup(a=1), Tup(b="x")])

    def test_non_tup_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("T", [{"a": 1}])

    def test_validate_against_declared_type(self):
        with pytest.raises(ValidationError):
            Table("T", [Tup(a="not int")], TupleType({"a": INT}), validate=True)

    def test_key_uniqueness_checked(self):
        with pytest.raises(CatalogError, match="duplicate key"):
            Table("T", [Tup(a=1, b=1), Tup(a=1, b=2)], key=("a",), validate=True)

    def test_as_set_dedupes_and_caches(self):
        t = Table("T", [Tup(a=1), Tup(a=1)])
        assert t.as_set() == frozenset({Tup(a=1)})
        assert t.as_set() is t.as_set()

    def test_len_iter(self):
        t = Table("T", [Tup(a=1), Tup(a=2)])
        assert len(t) == 2
        assert list(t) == [Tup(a=1), Tup(a=2)]


class TestVersioning:
    def test_fresh_table_starts_at_one(self):
        assert Table("T", [Tup(a=1)]).version == 1

    def test_uids_are_process_unique(self):
        assert Table("T", []).uid != Table("T", []).uid

    def test_insert_bumps_and_appends(self):
        t = Table("T", [Tup(a=1)])
        v = t.insert([Tup(a=2)])
        assert v == 2 and t.version == 2 and len(t) == 2

    def test_delete_bumps_only_on_removal(self):
        t = Table("T", [Tup(a=1), Tup(a=2)])
        assert t.delete(lambda row: row.a == 99) == 1  # no match: unchanged
        assert t.delete(lambda row: row.a == 1) == 2
        assert list(t) == [Tup(a=2)]

    def test_replace_rows_bumps(self):
        t = Table("T", [Tup(a=1)])
        t.replace_rows([Tup(a=7), Tup(a=8)])
        assert t.version == 2 and len(t) == 2

    def test_insert_validates_when_asked(self):
        t = Table("T", [Tup(a=1)])
        with pytest.raises(ValidationError):
            t.insert([Tup(a="not int")], validate=True)

    def test_insert_rechecks_declared_key(self):
        t = Table("T", [Tup(a=1)], key=("a",), validate=True)
        with pytest.raises(CatalogError, match="duplicate key"):
            t.insert([Tup(a=1)])

    def test_mutation_drops_derived_artifacts(self):
        t = Table("T", [Tup(a=1)])
        cached_set = t.as_set()
        index = t.hash_index(("a",))
        t.insert([Tup(a=2)])
        assert t.as_set() is not cached_set
        assert t.as_set() == frozenset({Tup(a=1), Tup(a=2)})
        assert t.hash_index(("a",)) is not index
        assert (2,) in t.hash_index(("a",))

    def test_catalog_version_sums_tables_and_structure(self):
        cat = Catalog()
        v0 = cat.version
        cat.add_rows("T", [Tup(a=1)])
        v1 = cat.version
        assert v1 > v0
        cat["T"].insert([Tup(a=2)])
        assert cat.version > v1

    def test_catalog_version_monotonic_across_drop(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        cat["T"].insert([Tup(a=2)])
        before = cat.version
        cat.drop("T")
        assert cat.version > before

    def test_schema_fingerprint_tracks_shape_not_data(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        fp = cat.schema_fingerprint()
        cat["T"].insert([Tup(a=2)])
        assert cat.schema_fingerprint() == fp
        cat.add_rows("U", [Tup(b="x")])
        assert cat.schema_fingerprint() != fp


class TestCatalog:
    def test_add_and_lookup(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        assert cat.table("T").name == "T"
        assert cat["T"] is cat.table("T")
        assert "T" in cat and len(cat) == 1

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.add_rows("T", [])
        with pytest.raises(CatalogError):
            cat.add_rows("T", [])

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().table("NOPE")

    def test_row_types_mapping(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        assert cat.row_types() == {"T": TupleType({"a": INT})}

    def test_schema_validation_on_add(self):
        cat = Catalog(company_schema())
        with pytest.raises(ValidationError):
            cat.add_rows("EMP", [Tup(name="x")])  # missing attributes

    def test_schema_declares_row_type(self):
        cat = Catalog(company_schema())
        addr = Tup(street="s", nr="1", city="c")
        emp = Tup(name="e", address=addr, sal=1000, children=frozenset())
        cat.add_rows("EMP", [emp])
        assert "children" in cat["EMP"].row_type.fields

    def test_works_as_eval_table_mapping(self):
        from repro.lang.eval import evaluate
        from repro.lang.parser import parse

        cat = Catalog()
        cat.add_rows("T", [Tup(a=1), Tup(a=2)])
        assert evaluate(parse("SELECT t.a FROM T t"), tables=cat) == frozenset({1, 2})
