"""Unit tests for tables and the catalog."""

import pytest

from repro.engine.table import Catalog, Table
from repro.errors import CatalogError, ValidationError
from repro.model.schema import company_schema
from repro.model.types import ANY, INT, STRING, TupleType
from repro.model.values import Tup


class TestTable:
    def test_infers_row_type(self):
        t = Table("T", [Tup(a=1, b="x")])
        assert t.row_type == TupleType({"a": INT, "b": STRING})

    def test_empty_table_row_type_is_any(self):
        assert Table("T", []).row_type == ANY

    def test_incompatible_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("T", [Tup(a=1), Tup(b="x")])

    def test_non_tup_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("T", [{"a": 1}])

    def test_validate_against_declared_type(self):
        with pytest.raises(ValidationError):
            Table("T", [Tup(a="not int")], TupleType({"a": INT}), validate=True)

    def test_key_uniqueness_checked(self):
        with pytest.raises(CatalogError, match="duplicate key"):
            Table("T", [Tup(a=1, b=1), Tup(a=1, b=2)], key=("a",), validate=True)

    def test_as_set_dedupes_and_caches(self):
        t = Table("T", [Tup(a=1), Tup(a=1)])
        assert t.as_set() == frozenset({Tup(a=1)})
        assert t.as_set() is t.as_set()

    def test_len_iter(self):
        t = Table("T", [Tup(a=1), Tup(a=2)])
        assert len(t) == 2
        assert list(t) == [Tup(a=1), Tup(a=2)]


class TestCatalog:
    def test_add_and_lookup(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        assert cat.table("T").name == "T"
        assert cat["T"] is cat.table("T")
        assert "T" in cat and len(cat) == 1

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.add_rows("T", [])
        with pytest.raises(CatalogError):
            cat.add_rows("T", [])

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().table("NOPE")

    def test_row_types_mapping(self):
        cat = Catalog()
        cat.add_rows("T", [Tup(a=1)])
        assert cat.row_types() == {"T": TupleType({"a": INT})}

    def test_schema_validation_on_add(self):
        cat = Catalog(company_schema())
        with pytest.raises(ValidationError):
            cat.add_rows("EMP", [Tup(name="x")])  # missing attributes

    def test_schema_declares_row_type(self):
        cat = Catalog(company_schema())
        addr = Tup(street="s", nr="1", city="c")
        emp = Tup(name="e", address=addr, sal=1000, children=frozenset())
        cat.add_rows("EMP", [emp])
        assert "children" in cat["EMP"].row_type.fields

    def test_works_as_eval_table_mapping(self):
        from repro.lang.eval import evaluate
        from repro.lang.parser import parse

        cat = Catalog()
        cat.add_rows("T", [Tup(a=1), Tup(a=2)])
        assert evaluate(parse("SELECT t.a FROM T t"), tables=cat) == frozenset({1, 2})
