"""Batch/row parity: every workload query, any batch size, same multiset.

The property the vectorized engine must uphold: for every workload query
and every batch size — including the degenerate size 1 and sizes that
misalign with the data (7) — batch execution produces exactly the row
engine's output multiset, under the cost-based algorithm choice and under
every forced join algorithm. Hypothesis drives the batch-size choice; the
catalog is small so the whole grid stays fast.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.perf import PERF_QUERIES
from repro.core.pipeline import prepared
from repro.engine.batch import rows_from_batches
from repro.engine.executor import execute, execute_set
from repro.engine.physical import JOIN_ALGORITHMS, compile_plan
from repro.server.workload import mixed_catalog

BATCH_SIZES = st.sampled_from((1, 7, 64, 1024))


@pytest.fixture(scope="module")
def catalog():
    return mixed_catalog(seed=0, n_left=40, n_right=180, n_chain=10)


@pytest.fixture(scope="module")
def row_results(catalog):
    return {
        name: Counter(prepared(text, catalog).compile_for(catalog).run(catalog))
        for name, text in PERF_QUERIES.items()
    }


@settings(max_examples=20, deadline=None)
@given(batch_size=BATCH_SIZES)
def test_workload_queries_batch_parity(catalog, row_results, batch_size):
    for name, text in PERF_QUERIES.items():
        physical = prepared(text, catalog).compile_for(catalog)
        got = Counter(rows_from_batches(physical.run_batches(catalog, batch_size)))
        assert got == row_results[name], (name, batch_size)


@settings(max_examples=8, deadline=None)
@given(batch_size=BATCH_SIZES)
def test_forced_algorithms_batch_parity(catalog, batch_size):
    for name, text in PERF_QUERIES.items():
        plan = prepared(text, catalog).plan
        for algorithm in JOIN_ALGORITHMS:
            physical = compile_plan(plan, catalog, force_algorithm=algorithm)
            want = Counter(physical.run(catalog))
            got = Counter(rows_from_batches(physical.run_batches(catalog, batch_size)))
            assert got == want, (name, algorithm, batch_size)


@settings(max_examples=10, deadline=None)
@given(batch_size=BATCH_SIZES)
def test_executor_modes_agree(catalog, batch_size):
    for name, text in PERF_QUERIES.items():
        physical = prepared(text, catalog).compile_for(catalog)
        batch_rows = execute(physical, catalog, execution="batch", batch_size=batch_size)
        row_rows = execute(physical, catalog, execution="row")
        assert Counter(batch_rows) == Counter(row_rows), name
        assert execute_set(
            physical, catalog, execution="batch", batch_size=batch_size
        ) == frozenset(t[t.labels()[0]] for t in row_rows), name
