"""Tests for EXPLAIN ANALYZE (instrumented execution)."""

from collections import Counter

import pytest

from repro.algebra.plan import Join, Map, NestJoin, Scan, Select
from repro.engine.analyze import analyze, explain_analyze
from repro.engine.executor import run_physical
from repro.engine.physical import compile_plan
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.model.values import Tup


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=i % 3) for i in range(9)])
    cat.add_rows("Y", [Tup(c=i, d=i % 3) for i in range(6)])
    return cat


def plan():
    return Map(
        Select(
            NestJoin(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), None, "zs"),
            parse("COUNT(zs) = 2"),
        ),
        parse("x.a"),
        "v",
    )


class TestAnalyze:
    def test_rows_match_uninstrumented_run(self, catalog):
        compiled = compile_plan(plan(), catalog)
        run = analyze(compiled, catalog)
        plain = run_physical(plan(), catalog)
        assert Counter(run.rows) == Counter(plain)

    def test_operator_row_counts(self, catalog):
        compiled = compile_plan(plan(), catalog)
        run = analyze(compiled, catalog)
        # Map at the root: its row count equals the result size.
        assert run.stats.rows == len(run.rows)
        # Below it the Select, then the NestJoin emitting one row per X row.
        select_stats = run.stats.children[0]
        nest_stats = select_stats.children[0]
        assert nest_stats.rows == len(catalog["X"])
        # Scans emit one binding per table row.
        scan_x = nest_stats.children[0]
        assert scan_x.rows == len(catalog["X"])

    def test_times_are_recorded(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        assert run.total_seconds > 0
        assert run.stats.seconds > 0

    def test_render(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        text = explain_analyze(run)
        assert "total:" in text
        assert "act=" in text
        assert "Scan X AS x" in text
        assert "NestJoin" in text

    def test_join_with_index_algorithm(self, catalog):
        compiled = compile_plan(
            Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d")),
            catalog,
            force_algorithm="index_nested_loop",
        )
        run = analyze(compiled, catalog)
        plain = run_physical(
            Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d")),
            catalog,
            force_algorithm="index_nested_loop",
        )
        assert Counter(run.rows) == Counter(plain)

    def test_estimate_vs_actual_visible(self, catalog):
        run = analyze(compile_plan(plan(), catalog), catalog)
        text = explain_analyze(run)
        # The cardinality-feedback triple renders on every operator line.
        assert "est=" in text and "act=" in text and "q=" in text

    def test_rendered_qerror_matches_feedback(self, catalog):
        import re

        from repro.engine.feedback import q_error

        run = analyze(compile_plan(plan(), catalog), catalog)
        for line in explain_analyze(run).splitlines()[1:]:
            m = re.search(r"est=(\d+), in=\d+, act=(\d+), q=([\d.]+)", line)
            assert m is not None, line
            est, act, q = float(m.group(1)), int(m.group(2)), float(m.group(3))
            assert q == pytest.approx(q_error(est, act), abs=0.005)
