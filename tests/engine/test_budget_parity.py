"""Byte budgets are invisible to query semantics.

A cache under memory pressure may evict any artifact at any time —
including the entry just inserted — so execution must never *depend* on a
cached value being retrievable. Run the whole perf workload with every
cache squeezed under a budget far below a single build artifact, in each
execution mode, and compare against the unbudgeted baseline.
"""

import pytest

from repro.bench.perf import PERF_QUERIES
from repro.core.pipeline import (
    clear_plan_cache,
    prepared,
    set_plan_cache_budget,
)
from repro.engine.cache import (
    BUILD_CACHE,
    clear_build_cache,
    set_build_cache_budget,
)
from repro.server.workload import mixed_catalog

TINY = 2048  # bytes: below any real plan or build artifact


@pytest.fixture(scope="module")
def catalog():
    return mixed_catalog(seed=3, n_left=40, n_right=180, n_chain=10)


@pytest.fixture(scope="module")
def baseline(catalog):
    clear_plan_cache()
    clear_build_cache()
    return {
        name: prepared(text, catalog).execute(catalog, execution="row")
        for name, text in PERF_QUERIES.items()
    }


@pytest.fixture
def tiny_budgets():
    set_plan_cache_budget(TINY)
    set_build_cache_budget(TINY)
    clear_plan_cache()
    clear_build_cache()
    yield
    set_plan_cache_budget(None)
    set_build_cache_budget(None)
    clear_plan_cache()
    clear_build_cache()


@pytest.mark.parametrize("execution", ["batch", "row"])
def test_budgets_never_change_results(catalog, baseline, tiny_budgets, execution):
    for name, text in PERF_QUERIES.items():
        got = prepared(text, catalog).execute(catalog, execution=execution)
        assert got == baseline[name], (name, execution)
        # Run each twice: the second execution exercises the rebuild path
        # after its artifacts were budget-evicted.
        again = prepared(text, catalog).execute(catalog, execution=execution)
        assert again == baseline[name], (name, execution)
    assert BUILD_CACHE.stats.evictions_by_reason.get("budget", 0) >= 1


def test_budgets_never_change_parallel_results(catalog, baseline, tiny_budgets):
    for name, text in PERF_QUERIES.items():
        got = prepared(text, catalog).execute(catalog, execution="parallel", parts=2)
        assert got == baseline[name], name
