"""Unit tests for the workload generators."""

from repro.core.pipeline import run_query
from repro.model.schema import company_schema
from repro.model.validate import check
from repro.workloads import (
    make_chain_workload,
    make_company,
    make_join_workload,
    make_set_workload,
)


class TestJoinWorkload:
    def test_sizes_and_structure(self):
        wl = make_join_workload(n_left=40, match_rate=0.5, fanout=3, seed=0)
        assert len(wl.catalog["R"]) == 40
        matching = int(40 * 0.5)
        assert len(wl.catalog["S"]) == matching * 3
        assert wl.dangling == 40 - matching

    def test_match_structure_is_exact(self):
        wl = make_join_workload(n_left=20, match_rate=0.5, fanout=2, seed=1)
        s_by_c = {}
        for s in wl.catalog["S"].rows:
            s_by_c.setdefault(s["c"], 0)
            s_by_c[s["c"]] += 1
        for r in wl.catalog["R"].rows:
            partners = s_by_c.get(r["c"], 0)
            assert partners in (0, 2)

    def test_b_attribute_mixes_honest_and_wrong_counts(self):
        wl = make_join_workload(n_left=60, match_rate=0.5, fanout=2, seed=2)
        bs = {r["b"] for r in wl.catalog["R"].rows}
        assert 0 in bs and 2 in bs

    def test_deterministic(self):
        a = make_join_workload(seed=5).catalog["R"].rows
        b = make_join_workload(seed=5).catalog["R"].rows
        assert a == b

    def test_right_padding(self):
        wl = make_join_workload(n_left=10, n_right=50, match_rate=0.5, fanout=1, seed=0)
        assert len(wl.catalog["S"]) == 50


class TestCompany:
    def test_conforms_to_paper_schema(self):
        cat = make_company(n_departments=4, n_employees=20, seed=0)
        schema = company_schema()
        for i, emp in enumerate(cat["EMP"].rows):
            check(emp, schema.extension_row_type("EMP"), f"EMP[{i}]")
        for i, dept in enumerate(cat["DEPT"].rows):
            check(dept, schema.extension_row_type("DEPT"), f"DEPT[{i}]")

    def test_employees_partition_over_departments(self):
        cat = make_company(n_departments=5, n_employees=30, seed=1)
        dept_members = [e for d in cat["DEPT"].rows for e in d["emps"]]
        assert len(dept_members) == 30
        assert set(dept_members) == set(cat["EMP"].rows)

    def test_same_street_guarantee(self):
        cat = make_company(n_departments=10, n_employees=60, p_same_street=1.0, seed=2)
        hits = 0
        for d in cat["DEPT"].rows:
            for e in d["emps"]:
                if (
                    e["address"]["street"] == d["address"]["street"]
                    and e["address"]["city"] == d["address"]["city"]
                ):
                    hits += 1
                    break
        # Departments with at least one member must qualify.
        non_empty = sum(1 for d in cat["DEPT"].rows if d["emps"])
        assert hits == non_empty

    def test_deterministic(self):
        assert (
            make_company(seed=9)["DEPT"].rows == make_company(seed=9)["DEPT"].rows
        )


class TestChainAndSetWorkloads:
    def test_chain_tables_exist_and_query_runs(self):
        cat = make_chain_workload(n_x=10, n_y=10, n_z=10, seed=0)
        assert set(cat) == {"X", "Y", "Z"}
        from repro.workloads import SECTION8_QUERY

        run_query(SECTION8_QUERY, cat, engine="interpret")  # should not raise

    def test_set_workload_produces_empty_sets_and_dangling(self):
        cat = make_set_workload(n_left=50, n_right=30, seed=3)
        has_empty = any(x["a"] == frozenset() for x in cat["X"].rows)
        y_bs = {y["b"] for y in cat["Y"].rows}
        has_dangling = any(x["b"] not in y_bs for x in cat["X"].rows)
        assert has_empty and has_dangling
