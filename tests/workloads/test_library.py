"""Tests for the bibliographic workload and its nested queries."""

import pytest

from repro.core.pipeline import prepare, run_query
from repro.model.ddl import parse_schema
from repro.model.validate import check
from repro.workloads import LIBRARY_DDL, LIBRARY_QUERIES, make_library


@pytest.fixture(scope="module")
def library():
    return make_library(n_papers=40, n_authors=15, n_venues=4, seed=5)


class TestGenerator:
    def test_conforms_to_ddl_schema(self, library):
        schema = parse_schema(LIBRARY_DDL)
        for i, paper in enumerate(library["PAPERS"].rows):
            check(paper, schema.extension_row_type("PAPERS"), f"PAPERS[{i}]")

    def test_citations_are_acyclic(self, library):
        order = {p["title"]: i for i, p in enumerate(library["PAPERS"].rows)}
        for paper in library["PAPERS"].rows:
            for cited in paper["cites"]:
                assert order[cited] < order[paper["title"]]

    def test_deterministic(self):
        a = make_library(seed=9)["PAPERS"].rows
        b = make_library(seed=9)["PAPERS"].rows
        assert a == b


@pytest.mark.parametrize("name", sorted(LIBRARY_QUERIES), ids=sorted(LIBRARY_QUERIES))
def test_queries_agree_across_engines(library, name):
    query = LIBRARY_QUERIES[name]
    oracle = run_query(query, library, engine="interpret").value
    assert run_query(query, library, engine="logical").value == oracle
    assert run_query(query, library, engine="physical").value == oracle


class TestPlanShapes:
    def test_self_contained_venues_uses_nestjoin(self, library):
        tr = prepare(LIBRARY_QUERIES["self_contained_venues"], library)
        assert "nestjoin" in tr.join_kinds()

    def test_cited_in_venue_uses_semijoin(self, library):
        tr = prepare(LIBRARY_QUERIES["cited_in_venue"], library)
        assert tr.join_kinds() == ["semijoin"]

    def test_venue_portfolios_uses_select_clause_nestjoin(self, library):
        tr = prepare(LIBRARY_QUERIES["venue_portfolios"], library)
        assert "nestjoin-select-clause" in [s.kind for s in tr.steps]

    def test_citation_count_parity_groups(self, library):
        tr = prepare(LIBRARY_QUERIES["citation_count_parity"], library)
        assert "nestjoin" in tr.join_kinds()

    def test_results_nonempty(self, library):
        # The workload should make each query's answer non-trivial.
        for name, query in LIBRARY_QUERIES.items():
            result = run_query(query, library, engine="physical").value
            assert result, f"{name} returned an empty answer at this scale"
