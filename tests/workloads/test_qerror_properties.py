"""Property tests: cardinality feedback is well-defined on every workload query.

For each named query in :mod:`repro.workloads.queries`, over randomized
catalog seeds and sizes, every operator's q-error must be finite and ≥1 —
the contract the metrics histograms and the perf report rely on.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import prepared
from repro.engine.feedback import feedback_entries
from repro.server.workload import mixed_catalog
from repro.workloads import queries as workload_queries

ALL_QUERIES = [(name, getattr(workload_queries, name)) for name in workload_queries.__all__]


@pytest.mark.parametrize("name,text", ALL_QUERIES, ids=[n for n, _ in ALL_QUERIES])
@given(seed=st.integers(min_value=0, max_value=1_000), scale=st.integers(1, 4))
@settings(max_examples=8, deadline=None)
def test_qerror_finite_and_at_least_one(name, text, seed, scale):
    catalog = mixed_catalog(
        seed=seed, n_left=10 * scale, n_right=40 * scale, n_chain=4 * scale
    )
    pq = prepared(text, catalog)
    if pq.plan is None:
        pytest.skip(f"{name} is interpreted (no physical plan)")
    entries = feedback_entries(pq.analyze(catalog))
    assert entries, f"{name}: no feedback entries"
    for entry in entries:
        assert math.isfinite(entry.q), f"{name}/{entry.kind}: q={entry.q}"
        assert entry.q >= 1.0, f"{name}/{entry.kind}: q={entry.q}"
        assert entry.est >= 0 and entry.act >= 0
