"""The serving metrics: counters, histograms, percentile math, registry."""

import threading

from hypothesis import given
from hypothesis import strategies as st

from repro.server.metrics import (
    Counter,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    percentile,
)

_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)
_quantiles = st.floats(min_value=-50.0, max_value=150.0, allow_nan=False)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 95) == 95

    def test_accepts_unsorted_iterables(self):
        assert percentile(iter([3.0, 1.0, 2.0]), 100) == 3.0

    def test_out_of_range_q_clamps(self):
        data = [1.0, 2.0, 3.0]
        assert percentile(data, -10) == 1.0
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0
        assert percentile(data, 250) == 3.0


class TestPercentileProperties:
    """Interpolating percentiles, under arbitrary samples and quantiles."""

    @given(_samples, _quantiles)
    def test_bounded_by_min_and_max(self, values, q):
        p = percentile(values, q)
        # Tiny tolerance: interpolation is two rounded float products.
        assert min(values) - 1e-6 <= p <= max(values) + 1e-6

    @given(_samples, _quantiles, _quantiles)
    def test_monotone_in_q(self, values, q1, q2):
        lo, hi = sorted((q1, q2))
        assert percentile(values, lo) <= percentile(values, hi) + 1e-6

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), _quantiles)
    def test_single_sample_is_its_own_percentile(self, value, q):
        assert percentile([value], q) == value

    @given(_samples)
    def test_endpoints_are_min_and_max(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        c = Counter()
        n, per_thread = 8, 2000

        def spin():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per_thread


class TestHistogram:
    def test_running_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_percentiles_over_window(self):
        h = Histogram()
        for v in range(100):
            h.observe(float(v))
        assert h.percentile(50) == 49.5
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["p95"] > summary["p50"] > 0

    def test_window_wraps_but_totals_stay_exact(self):
        h = Histogram(window=4)
        for v in range(10):
            h.observe(float(v))
        assert h.count == 10
        assert h.total == sum(range(10))
        # The window only holds the most recent 4 observations.
        assert sorted(h.values()) == [6.0, 7.0, 8.0, 9.0]

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["min"] == 0.0
        assert summary["max"] == 0.0
        assert summary["p99"] == 0.0

    def test_empty_window_percentile(self):
        h = Histogram()
        assert h.values() == []
        assert h.percentile(50) == 0.0

    def test_single_sample_summary(self):
        h = Histogram()
        h.observe(3.5)
        summary = h.summary()
        assert summary["min"] == summary["max"] == 3.5
        assert summary["p50"] == summary["p90"] == summary["p99"] == 3.5

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=40))
    def test_summary_consistent_for_any_observations(self, values):
        h = Histogram(window=16)
        for v in values:
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == len(values)
        if values:
            assert summary["min"] == min(values)
            assert summary["max"] == max(values)
            assert summary["min"] - 1e-6 <= summary["p50"] <= summary["max"] + 1e-6
            assert summary["p50"] <= summary["p90"] + 1e-6 <= summary["p99"] + 2e-6


class TestLabeledCounter:
    def test_labels_independent(self):
        c = LabeledCounter()
        c.inc("semijoin")
        c.inc("nestjoin", 3)
        assert c.get("semijoin") == 1
        assert c.get("nestjoin") == 3
        assert c.get("antijoin") == 0
        assert c.values() == {"semijoin": 1, "nestjoin": 3}

    def test_concurrent_increments_do_not_lose_updates(self):
        c = LabeledCounter()
        n, per_thread = 8, 2000

        def spin():
            for _ in range(per_thread):
                c.inc("k")

        threads = [threading.Thread(target=spin) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("k") == n * per_thread


class TestRegistry:
    def test_instruments_created_once(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.labeled_counter("l") is reg.labeled_counter("l")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.histogram("latency").observe(1.5)
        reg.labeled_counter("by_kind").inc("semijoin", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["labeled"] == {"by_kind": {"semijoin": 2}}
        assert snap["histograms"]["latency"]["count"] == 1
