"""The serving metrics: counters, histograms, percentile math, registry."""

import threading

from repro.server.metrics import Counter, Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 95) == 95

    def test_accepts_unsorted_iterables(self):
        assert percentile(iter([3.0, 1.0, 2.0]), 100) == 3.0


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        c = Counter()
        n, per_thread = 8, 2000

        def spin():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per_thread


class TestHistogram:
    def test_running_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_percentiles_over_window(self):
        h = Histogram()
        for v in range(100):
            h.observe(float(v))
        assert h.percentile(50) == 49.5
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["p95"] > summary["p50"] > 0

    def test_window_wraps_but_totals_stay_exact(self):
        h = Histogram(window=4)
        for v in range(10):
            h.observe(float(v))
        assert h.count == 10
        assert h.total == sum(range(10))
        # The window only holds the most recent 4 observations.
        assert sorted(h.values()) == [6.0, 7.0, 8.0, 9.0]

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p99"] == 0.0


class TestRegistry:
    def test_instruments_created_once(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.histogram("latency").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["latency"]["count"] == 1
