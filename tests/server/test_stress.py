"""Thread-stress tests: many clients, shared caches, a mutating catalog.

Everything here carries the ``thread_stress`` marker (CI runs the module
both in the normal suite and as a dedicated ``-m thread_stress`` step).
The invariants checked are the service's contract:

* every response to the full mixed workload equals the single-threaded
  oracle (``run_query`` on the interpreter engine);
* under concurrent mutation, every ``ok`` response is *version-stable* —
  it equals the oracle at one of the catalog states that actually
  existed, never a blend of two.
"""

import threading
import time

import pytest

from repro.core.pipeline import clear_plan_cache, prepared, run_query
from repro.engine.cache import clear_build_cache
from repro.server import QueryService
from repro.server.workload import MIXED_QUERIES, mixed_catalog
from repro.workloads import COUNT_BUG_NESTED, SECTION8_QUERY

pytestmark = pytest.mark.thread_stress


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_build_cache()
    yield


class TestConcurrentOracleAgreement:
    def test_many_clients_full_workload_static_catalog(self):
        catalog = mixed_catalog(seed=5, n_left=80, n_right=400, n_chain=25)
        oracle = {
            q: run_query(q, catalog, engine="interpret").value for q in MIXED_QUERIES
        }
        mismatches = []
        failures = []

        def client(rounds):
            for _ in range(rounds):
                for query in MIXED_QUERIES:
                    response = service.execute(query)
                    if not response.ok:
                        failures.append(response.error)
                    elif response.value != oracle[query]:
                        mismatches.append(query)

        with QueryService(catalog, workers=8, queue_limit=0) as service:
            threads = [
                threading.Thread(target=client, args=(3,)) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats()

        assert failures == []
        assert mismatches == []
        total = 8 * 3 * len(MIXED_QUERIES)
        assert stats["counters"]["completed"] == total
        assert stats["counters"]["ok"] == total
        # Repetition must actually hit the serving caches.
        assert stats["counters"]["result_hits"] + stats["counters"]["result_coalesced"] > 0

    def test_mutating_catalog_responses_are_version_stable(self):
        catalog = mixed_catalog(seed=6, n_left=60, n_right=250, n_chain=20)
        table = catalog.table("S")
        rows_a = list(table.rows)
        # State B drops every other S row, halving each join key's fanout
        # (a prefix slice would keep all joining rows and leave COUNT
        # results unchanged).
        rows_b = rows_a[::2]

        oracle_a = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        table.replace_rows(rows_b)
        oracle_b = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        table.replace_rows(rows_a)
        static_oracle = run_query(SECTION8_QUERY, catalog, engine="interpret").value
        assert oracle_a != oracle_b  # the mutation must be observable

        stop = threading.Event()

        def mutator():
            flip = False
            while not stop.is_set():
                table.replace_rows(rows_b if flip else rows_a)
                flip = not flip
                time.sleep(0.002)

        blends = []
        failures = []
        ok_count = [0]

        def client():
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                for query, allowed in (
                    (COUNT_BUG_NESTED, (oracle_a, oracle_b)),
                    (SECTION8_QUERY, (static_oracle,)),
                ):
                    response = service.execute(query)
                    if response.outcome == "error":
                        # Only a lost version race may fail, never anything else.
                        if "version moved" not in (response.error or ""):
                            failures.append(response.error)
                    elif response.ok:
                        ok_count[0] += 1
                        if response.value not in allowed:
                            blends.append(query)
                    else:
                        failures.append(response.outcome)

        with QueryService(
            catalog, workers=6, queue_limit=0, max_attempts=8, backoff_base=0.0005
        ) as service:
            writer = threading.Thread(target=mutator)
            clients = [threading.Thread(target=client) for _ in range(6)]
            writer.start()
            for t in clients:
                t.start()
            for t in clients:
                t.join()
            stop.set()
            writer.join()

        assert failures == []
        assert blends == []  # no response ever mixed two catalog versions
        assert ok_count[0] > 0


class TestPreparedPlanCacheUnderContention:
    def test_concurrent_first_preparation_yields_one_instance(self):
        catalog = mixed_catalog(seed=7, n_left=40, n_right=150, n_chain=15)
        barrier = threading.Barrier(8)
        instances = []

        def prepare_once():
            barrier.wait()
            instances.append(prepared(COUNT_BUG_NESTED, catalog))

        threads = [threading.Thread(target=prepare_once) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(instances) == 8
        assert len({id(pq) for pq in instances}) == 1
