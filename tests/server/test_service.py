"""The query service: outcomes, caching, admission control, retries.

Deterministic behaviors are forced through the ``_execute_leader`` seam
(wrapped per-instance to inject slowness or version races) rather than by
racing real threads; the genuinely concurrent paths live in
``test_stress.py`` under the ``thread_stress`` marker.
"""

import time

import pytest

from repro.core.pipeline import clear_plan_cache, run_query
from repro.engine.cache import clear_build_cache
from repro.errors import RejectedError
from repro.server import QueryRequest, QueryService
from repro.server.workload import PARAM_LOOKUP
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_build_cache()
    yield


@pytest.fixture
def catalog():
    return make_join_workload(n_left=60, n_right=200, fanout=2, seed=9).catalog


class TestBasicServing:
    def test_ok_response_matches_oracle(self, catalog):
        oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        with QueryService(catalog, workers=2) as service:
            response = service.execute(COUNT_BUG_NESTED)
        assert response.ok
        assert response.value == oracle
        assert response.catalog_version == catalog.version
        assert response.attempts == 1
        assert response.result_cache == "miss"
        assert response.worker is not None and response.worker.startswith("repro-serve-")
        assert response.total_seconds >= response.execute_seconds >= 0

    def test_repeated_request_hits_result_cache(self, catalog):
        with QueryService(catalog, workers=2) as service:
            first = service.execute(COUNT_BUG_NESTED)
            second = service.execute(COUNT_BUG_NESTED)
        assert first.result_cache == "miss"
        assert second.result_cache == "hit"
        assert second.value == first.value

    def test_mutation_invalidates_result_cache(self, catalog):
        with QueryService(catalog, workers=1) as service:
            first = service.execute(COUNT_BUG_NESTED)
            catalog.table("S").delete(lambda row: row["c"] == 0)
            second = service.execute(COUNT_BUG_NESTED)
            assert second.result_cache == "miss"
            assert second.catalog_version > first.catalog_version
            assert second.value == run_query(
                COUNT_BUG_NESTED, catalog, engine="interpret"
            ).value

    def test_parameterized_requests(self, catalog):
        with QueryService(catalog, workers=2) as service:
            hit = service.execute(PARAM_LOOKUP, params={"key": 3})
            miss = service.execute(PARAM_LOOKUP, params={"key": 10**6})
        assert len(hit.value) == 1
        assert miss.value == frozenset()

    def test_interpreted_fallback_query(self, catalog):
        # Outer FROM operand is not a stored table: served via the
        # interpreter, still a structured ok response.
        with QueryService(catalog, workers=1) as service:
            response = service.execute("SELECT x FROM {1, 2, 3} x WHERE x > 1")
        assert response.ok
        assert len(response.value) == 2

    def test_bad_query_is_an_error_response_not_a_crash(self, catalog):
        with QueryService(catalog, workers=1) as service:
            response = service.execute("SELECT r.nope FROM R r")
        assert response.outcome == "error"
        assert response.error

    def test_unbound_param_is_an_error_response(self, catalog):
        with QueryService(catalog, workers=1) as service:
            response = service.execute(PARAM_LOOKUP)  # $key never bound
        assert response.outcome == "error"
        assert "unbound" in response.error

    def test_stats_shape(self, catalog):
        with QueryService(catalog, workers=2) as service:
            service.execute(COUNT_BUG_NESTED)
            service.execute(COUNT_BUG_NESTED)
            stats = service.stats()
        assert stats["counters"]["admitted"] == 2
        assert stats["counters"]["completed"] == 2
        assert stats["counters"]["result_hits"] == 1
        assert stats["histograms"]["latency_ms"]["count"] == 2
        assert set(stats["caches"]) >= {"plan", "build", "result", "shard-catalog"}
        assert stats["caches"]["result"]["hits"] == 1
        # Every registered cache reports the byte axis alongside counters.
        for report in stats["caches"].values():
            assert "bytes" in report and "entries" in report
            assert "evictions_by_reason" in report
        assert stats["caches"]["result"]["bytes"] > 0
        assert stats["result_cache_bytes"] == stats["caches"]["result"]["bytes"]

    def test_result_cache_respects_byte_budget(self, catalog):
        from repro.core.pipeline import set_plan_cache_budget
        from repro.engine.cache import set_build_cache_budget

        oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        try:
            # ~2KiB: far below one large result set, so big results must
            # evict (possibly themselves) rather than grow the cache.
            with QueryService(catalog, workers=1, cache_budget_mb=0.002) as service:
                budget = service.cache_budget_bytes
                assert budget == int(0.002 * 1024 * 1024)
                for key in range(6):
                    assert service.execute(PARAM_LOOKUP, params={"key": key}).ok
                    assert service._results.total_bytes <= budget
                big = service.execute(COUNT_BUG_NESTED)
                assert big.ok and big.value == oracle
                assert service._results.total_bytes <= budget
                report = service.caches()["caches"]["result"]
                assert report["evictions_by_reason"].get("budget", 0) >= 1
                assert report["memory_pressure"] >= 1
                # Eviction under pressure never corrupts what is served.
                again = service.execute(COUNT_BUG_NESTED)
                assert again.ok and again.value == oracle
        finally:
            set_plan_cache_budget(None)
            set_build_cache_budget(None)

    def test_submit_after_stop_is_rejected(self, catalog):
        service = QueryService(catalog, workers=1)
        service.start()
        service.stop()
        with pytest.raises(RejectedError):
            service.submit(COUNT_BUG_NESTED)

    def test_hooks_observe_every_response(self, catalog):
        seen = []

        def bad_hook(request, response):
            raise RuntimeError("observer down")

        with QueryService(catalog, workers=1) as service:
            service.add_hook(lambda request, response: seen.append((request, response)))
            service.add_hook(bad_hook)
            service.execute(COUNT_BUG_NESTED)
            service.execute(COUNT_BUG_NESTED)
            stats = service.stats()
        assert len(seen) == 2
        assert all(response.ok for _, response in seen)
        assert stats["counters"]["hook_errors"] == 2


def _slow_leader(service, delay):
    """Wrap the service's leader execution with a sleep (test seam)."""
    original = service._execute_leader

    def wrapped(pq, version):
        time.sleep(delay)
        return original(pq, version)

    service._execute_leader = wrapped


class TestTimeouts:
    def test_deadline_expires_mid_execution(self, catalog):
        with QueryService(catalog, workers=1) as service:
            response = service.execute(COUNT_BUG_NESTED, timeout=0.0005)
        assert response.outcome == "timeout"
        assert "deadline" in response.error

    def test_deadline_expires_while_queued(self, catalog):
        with QueryService(catalog, workers=1) as service:
            _slow_leader(service, 0.08)
            # Occupy the only worker, then submit with a deadline shorter
            # than the head-of-line request's execution.
            head = service.submit(PARAM_LOOKUP, params={"key": 1})
            starved = service.submit(PARAM_LOOKUP, params={"key": 2}, timeout=0.01)
            assert head.result().ok
            response = starved.result()
        assert response.outcome == "timeout"
        assert "queued" in response.error
        assert service.stats()["counters"]["timeouts"] == 1

    def test_default_timeout_applies(self, catalog):
        with QueryService(catalog, workers=1, default_timeout=0.0001) as service:
            response = service.execute(COUNT_BUG_NESTED)
        assert response.outcome == "timeout"


class TestAdmissionControl:
    def test_load_shedding_and_no_lost_requests(self, catalog):
        service = QueryService(catalog, workers=1, queue_limit=2)
        with service:
            _slow_leader(service, 0.03)
            pendings, rejected = [], 0
            for key in range(12):
                try:
                    pendings.append(service.submit(PARAM_LOOKUP, params={"key": key}))
                except RejectedError:
                    rejected += 1
            responses = [p.result(timeout=10) for p in pendings]
        assert rejected > 0
        # Every admitted request got a response.
        assert len(responses) == len(pendings)
        assert all(r.ok for r in responses)
        stats = service.stats()
        assert stats["counters"]["shed"] == rejected
        assert stats["counters"]["admitted"] == len(pendings)
        assert stats["counters"]["submitted"] == 12
        assert stats["counters"]["completed"] == len(pendings)

    def test_serve_all_turns_sheds_into_responses(self, catalog):
        service = QueryService(catalog, workers=1, queue_limit=1)
        with service:
            _slow_leader(service, 0.02)
            batch = [
                QueryRequest(PARAM_LOOKUP, params={"key": k}) for k in range(10)
            ]
            responses = service.serve_all(batch)
        assert len(responses) == len(batch)
        outcomes = {r.outcome for r in responses}
        assert "rejected" in outcomes and "ok" in outcomes
        # Order is preserved: response i answers request i.
        for request, response in zip(batch, responses):
            if response.outcome != "rejected":
                assert response.request_id == request.request_id


class TestVersionRaceRetry:
    def _racy_leader(self, service, races):
        """Mutate the catalog mid-flight for the first *races* executions."""
        original = service._execute_leader
        state = {"calls": 0}

        def wrapped(pq, version):
            state["calls"] += 1
            if state["calls"] <= races:
                service.catalog.table("S").bump_version()
            return original(pq, version)

        service._execute_leader = wrapped
        return state

    def test_lost_race_retries_and_succeeds(self, catalog):
        oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        with QueryService(catalog, workers=1, backoff_base=0.0001) as service:
            self._racy_leader(service, races=2)
            response = service.execute(COUNT_BUG_NESTED)
        assert response.ok
        assert response.attempts == 3
        assert response.value == oracle
        assert response.catalog_version == catalog.version
        assert service.stats()["counters"]["retries"] == 2

    def test_retries_exhausted_is_an_error_response(self, catalog):
        with QueryService(
            catalog, workers=1, max_attempts=3, backoff_base=0.0001
        ) as service:
            self._racy_leader(service, races=100)
            response = service.execute(COUNT_BUG_NESTED)
        assert response.outcome == "error"
        assert "version moved" in response.error
        assert response.attempts == 3
        assert service.stats()["counters"]["version_race_failures"] == 1


class TestObservability:
    def test_responses_carry_trace_ids_and_rewrite_kinds(self, catalog):
        with QueryService(catalog, workers=1) as service:
            first = service.execute(COUNT_BUG_NESTED)
            second = service.execute(COUNT_BUG_NESTED)  # result-cache hit
        assert first.trace_id and second.trace_id
        assert first.trace_id != second.trace_id
        assert first.rewrite_kinds == ("nestjoin",)
        assert second.rewrite_kinds == ()  # served without executing
        assert first.to_dict()["rewrite_kinds"] == ["nestjoin"]

    def test_rewrite_kind_labeled_counter_counts_leaders_once(self, catalog):
        with QueryService(catalog, workers=1) as service:
            for _ in range(3):
                service.execute(COUNT_BUG_NESTED)
            stats = service.stats()
        # One leader execution despite three requests: hits don't count.
        assert stats["labeled"]["queries_by_rewrite"] == {"nestjoin": 1}

    def test_slow_query_log_keeps_n_slowest(self, catalog):
        with QueryService(catalog, workers=1, slow_query_capacity=2) as service:
            for key in range(5):
                service.execute(PARAM_LOOKUP, params={"key": key})
            slow = service.stats()["slow_queries"]
        assert len(slow["slowest"]) == 2
        totals = [entry["total_seconds"] for entry in slow["slowest"]]
        assert totals == sorted(totals, reverse=True)
        entry = slow["slowest"][0]
        assert entry["outcome"] == "ok"
        assert entry["trace_id"].startswith("t")
        assert entry["events"], "expected service-phase trace events"
        assert "prepare_trace" in entry  # embedded rewrite-decision trace

    def test_timeouts_and_rejections_are_always_captured(self, catalog):
        with QueryService(catalog, workers=1, queue_limit=1) as service:
            _slow_leader(service, 0.05)
            head = service.submit(PARAM_LOOKUP, params={"key": 1})
            # Let the worker dequeue the head so the one-slot queue is free.
            deadline = time.monotonic() + 1.0
            while service._queue.qsize() and time.monotonic() < deadline:
                time.sleep(0.001)
            backlog = service.submit(PARAM_LOOKUP, params={"key": 2}, timeout=0.001)
            shed = []
            # Saturate the one-slot queue so a submit is rejected.
            for key in range(3, 30):
                try:
                    shed.append(service.submit(PARAM_LOOKUP, params={"key": key}))
                except RejectedError:
                    break
            else:
                pytest.fail("queue never saturated")
            head.result()
            for pending in shed:
                pending.result()
            backlog.result()
            failures = service.stats()["slow_queries"]["failures"]
        outcomes = {entry["outcome"] for entry in failures}
        assert "rejected" in outcomes
        assert "timeout" in outcomes
        rejected = [e for e in failures if e["outcome"] == "rejected"]
        assert all("queue at capacity" in e["error"] for e in rejected)

    def test_slow_entries_are_json_serializable(self, catalog):
        import json

        with QueryService(catalog, workers=1) as service:
            service.execute(COUNT_BUG_NESTED)
            stats = service.stats()
        json.dumps(stats["slow_queries"])
