"""The active-query registry: progress accounting, snapshots, admin cancel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.cancel import CancelToken
from repro.errors import CancelledError
from repro.server.registry import (
    MIDFLIGHT_PROGRESS_CAP,
    ActiveQuery,
    ActiveQueryRegistry,
)


class TestActiveQuery:
    def test_initial_state(self):
        entry = ActiveQuery("q1", "SELECT 1")
        assert entry.state == "running"
        assert entry.rows_processed == 0
        assert entry.estimated_rows is None
        assert entry.progress == 0.0
        assert entry.current_op is None

    def test_advance_accumulates_and_stamps_operator(self):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.advance(100, "Scan R AS r")
        entry.advance(50)
        assert entry.rows_processed == 150
        assert entry.current_op == "Scan R AS r"
        entry.advance(1, "NestJoin")
        assert entry.current_op == "NestJoin"

    def test_progress_needs_an_estimate(self):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.advance(10_000)
        assert entry.progress == 0.0  # no denominator yet

    def test_progress_fraction(self):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.estimated_rows = 200.0
        entry.advance(50)
        assert entry.progress == pytest.approx(0.25)

    def test_progress_clamped_midflight(self):
        # Underestimates are routine; a live query must never read 100%.
        entry = ActiveQuery("q1", "SELECT 1")
        entry.estimated_rows = 10.0
        entry.advance(10_000)
        assert entry.progress == MIDFLIGHT_PROGRESS_CAP

    def test_progress_snaps_to_one_only_on_ok(self):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.estimated_rows = 100.0
        entry.advance(10)
        entry.finish("ok")
        assert entry.progress == 1.0

    def test_failed_outcome_keeps_fractional_progress(self):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.estimated_rows = 100.0
        entry.advance(40)
        entry.finish("cancelled")
        assert entry.state == "cancelled"
        assert entry.progress == pytest.approx(0.4)

    def test_snapshot_shape(self):
        token = CancelToken(None)
        entry = ActiveQuery("q1", "SELECT 1", params={"key": 3}, token=token)
        snap = entry.snapshot()
        assert snap["query_id"] == "q1"
        assert snap["params"] == {"key": 3}
        assert snap["state"] == "running"
        assert snap["elapsed_seconds"] >= 0
        assert set(snap) >= {
            "query",
            "trace_id",
            "exec_mode",
            "started_at",
            "remaining_seconds",
            "rows_processed",
            "estimated_rows",
            "progress",
            "current_op",
        }

    def test_cancel_through_token(self):
        token = CancelToken(None)
        entry = ActiveQuery("q1", "SELECT 1", token=token)
        assert entry.cancel("test") is True
        with pytest.raises(CancelledError):
            token.check()

    def test_cancel_without_token_is_refused(self):
        assert ActiveQuery("q1", "SELECT 1").cancel() is False


class TestRegistry:
    def test_register_installs_progress_sink(self):
        registry = ActiveQueryRegistry()
        token = CancelToken(None)
        entry = registry.register("q1", "SELECT 1", token=token)
        assert token.progress is entry
        assert len(registry) == 1
        assert registry.get("q1") is entry

    def test_token_polls_feed_the_entry(self):
        registry = ActiveQueryRegistry()
        token = CancelToken(None)
        entry = registry.register("q1", "SELECT 1", token=token)
        token.check(512, "Scan R AS r")
        token.check(512)
        assert entry.rows_processed == 1024
        assert entry.current_op == "Scan R AS r"

    def test_finish_moves_to_recent(self):
        registry = ActiveQueryRegistry()
        registry.register("q1", "SELECT 1")
        entry = registry.finish("q1", "ok")
        assert entry.state == "ok"
        assert len(registry) == 0
        snap = registry.snapshot()
        assert snap["active"] == []
        assert [e["query_id"] for e in snap["recent"]] == ["q1"]

    def test_finish_unknown_id_is_none(self):
        assert ActiveQueryRegistry().finish("ghost", "ok") is None

    def test_recent_ring_is_bounded(self):
        registry = ActiveQueryRegistry(recent_capacity=3)
        for i in range(5):
            registry.register(f"q{i}", "SELECT 1")
            registry.finish(f"q{i}", "ok")
        recent = registry.snapshot()["recent"]
        assert [e["query_id"] for e in recent] == ["q2", "q3", "q4"]

    def test_cancel_by_id(self):
        registry = ActiveQueryRegistry()
        token = CancelToken(None)
        registry.register("q1", "SELECT 1", token=token)
        assert registry.cancel("q1") is True
        assert token.cancelled
        assert registry.cancel("ghost") is False

    def test_active_snapshot_ordered_by_admission(self):
        registry = ActiveQueryRegistry()
        registry.register("q1", "SELECT 1")
        registry.register("q2", "SELECT 2")
        snap = registry.snapshot()
        starts = [e["started_at"] for e in snap["active"]]
        assert starts == sorted(starts)


class TestProgressProperties:
    @given(
        rows=st.lists(st.integers(min_value=0, max_value=50_000), max_size=40),
        estimate=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
        ),
    )
    def test_progress_monotone_and_bounded(self, rows, estimate):
        entry = ActiveQuery("q1", "SELECT 1")
        entry.estimated_rows = estimate
        seen_rows = [entry.rows_processed]
        seen_progress = [entry.progress]
        for n in rows:
            entry.advance(n)
            seen_rows.append(entry.rows_processed)
            seen_progress.append(entry.progress)
        assert seen_rows == sorted(seen_rows)
        assert seen_progress == sorted(seen_progress)
        assert all(0.0 <= p < 1.0 for p in seen_progress)  # capped while running
        entry.finish("ok")
        assert entry.progress == 1.0
