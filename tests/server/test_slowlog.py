"""The slow-query log: slowest-N retention and the failure ring."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.server.slowlog import SlowQueryLog


def entry(seconds, name="q"):
    return {"query": name, "total_seconds": seconds, "outcome": "ok"}


class TestSlowestN:
    def test_keeps_only_the_slowest(self):
        log = SlowQueryLog(capacity=3)
        for s in (0.5, 0.1, 0.9, 0.3, 0.7):
            log.record_ok(entry(s))
        kept = [e["total_seconds"] for e in log.snapshot()["slowest"]]
        assert kept == [0.9, 0.7, 0.5]

    def test_under_capacity_keeps_everything(self):
        log = SlowQueryLog(capacity=10)
        log.record_ok(entry(0.2))
        log.record_ok(entry(0.1))
        assert len(log.snapshot()["slowest"]) == 2

    def test_latency_ties_never_compare_entries(self):
        log = SlowQueryLog(capacity=2)
        for _ in range(5):
            log.record_ok(entry(0.5))  # identical latency, dict payloads
        assert len(log.snapshot()["slowest"]) == 2

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(failure_capacity=0)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False)))
    def test_always_the_true_top_n(self, latencies):
        log = SlowQueryLog(capacity=4)
        for s in latencies:
            log.record_ok(entry(s))
        kept = [e["total_seconds"] for e in log.snapshot()["slowest"]]
        expected = sorted(latencies, reverse=True)[:4]
        assert sorted(kept, reverse=True) == kept
        assert sorted(kept) == sorted(expected)


class TestFailureRing:
    def test_recency_bounded(self):
        log = SlowQueryLog(capacity=2, failure_capacity=3)
        for i in range(6):
            log.record_failure({"query": f"q{i}", "outcome": "rejected"})
        failures = log.snapshot()["failures"]
        assert [f["query"] for f in failures] == ["q3", "q4", "q5"]

    def test_failures_do_not_compete_with_ok_entries(self):
        log = SlowQueryLog(capacity=1)
        log.record_ok(entry(9.0))
        log.record_failure({"query": "shed", "outcome": "rejected"})
        snap = log.snapshot()
        assert len(snap["slowest"]) == 1
        assert len(snap["failures"]) == 1
