"""Live introspection through the service: events, registry, admin cancel.

Deterministic behaviors are forced through the ``_execute_leader`` seam
(wrapped per-instance to hold a query mid-flight or inject a cancelled
leader); the sampler-thread progress tests at the bottom run the real
workload under the ``thread_stress`` marker.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.log import clear_events
from repro.core.pipeline import clear_plan_cache
from repro.engine.cache import clear_build_cache
from repro.engine.cancel import current_token
from repro.server import QueryRequest, QueryService
from repro.server.exposition import serve_metrics
from repro.server.workload import MIXED_QUERIES, mixed_catalog
from repro.workloads import COUNT_BUG_NESTED


@pytest.fixture(autouse=True)
def fresh_state():
    clear_plan_cache()
    clear_build_cache()
    clear_events()
    yield
    clear_events()


@pytest.fixture
def catalog():
    return mixed_catalog(seed=9, n_left=60, n_right=240, n_chain=12)


def hold_leader(service, entered: threading.Event, release: threading.Event):
    """Wrap the leader seam so the first execution parks mid-flight,
    polling its token — an admin cancel must be able to stop it."""
    original = service._execute_leader
    state = {"first": True}

    def wrapped(pq, version):
        if state["first"]:
            state["first"] = False
            entered.set()
            token = current_token()
            while not release.is_set():
                token.check()
                time.sleep(0.002)
        return original(pq, version)

    service._execute_leader = wrapped


class TestLifecycleEvents:
    def test_admit_and_complete_are_correlated(self, catalog):
        with QueryService(catalog, workers=1) as service:
            request = QueryRequest(COUNT_BUG_NESTED)
            response = service.submit(request).result()
            events = [
                e
                for e in service.stats()["events"]
                if e.get("query_id") == request.request_id
            ]
        assert response.ok
        kinds = [e["event"] for e in events]
        assert kinds == ["admit", "complete"]
        admit, complete = events
        assert admit["query"] == COUNT_BUG_NESTED
        assert "queue_depth" in admit  # admit predates the trace
        assert complete["trace_id"] == response.trace_id
        assert complete["outcome"] == "ok"
        assert complete["exec_mode"] == response.exec_mode
        assert complete["seconds"] >= 0
        assert complete["rows_processed"] >= 0

    def test_rejection_emits_warning_event(self, catalog):
        service = QueryService(catalog, workers=1)
        service.start()
        service.stop()
        with pytest.raises(Exception):
            service.execute(COUNT_BUG_NESTED)
        rejects = [
            e for e in service.stats()["events"] if e["event"] == "reject"
        ]
        assert rejects and rejects[-1]["level"] == "warning"

    def test_stats_carries_introspection_sections(self, catalog):
        with QueryService(catalog, workers=1) as service:
            service.execute(COUNT_BUG_NESTED)
            snap = service.stats()
        assert snap["in_flight"] == 0
        assert snap["active_queries"] == []
        assert any(e["event"] == "complete" for e in snap["events"])


class TestAdminCancel:
    def test_registry_cancel_produces_cancelled_outcome(self, catalog):
        entered, release = threading.Event(), threading.Event()
        with QueryService(catalog, workers=1) as service:
            hold_leader(service, entered, release)
            request = QueryRequest(COUNT_BUG_NESTED, timeout=30.0)
            future = service.submit(request)
            assert entered.wait(5.0)
            active = service.registry.snapshot()["active"]
            assert [e["query_id"] for e in active] == [request.request_id]
            assert active[0]["state"] == "running"
            assert service.registry.cancel(request.request_id)
            response = future.result(timeout=5.0)
            stats = service.stats()
        assert response.outcome == "cancelled"
        assert stats["counters"]["cancelled"] == 1
        assert stats["counters"]["timeouts"] == 0
        kinds = [
            e["event"]
            for e in stats["events"]
            if e.get("query_id") == request.request_id
        ]
        assert kinds == ["admit", "cancel"]
        # The failure ring keeps the cancelled request, correlated by id.
        failures = stats["slow_queries"]["failures"]
        assert any(
            f["query_id"] == request.request_id and f["outcome"] == "cancelled"
            for f in failures
        )

    def test_cancelled_query_lands_in_recent_pane(self, catalog):
        entered, release = threading.Event(), threading.Event()
        with QueryService(catalog, workers=1) as service:
            hold_leader(service, entered, release)
            request = QueryRequest(COUNT_BUG_NESTED, timeout=30.0)
            future = service.submit(request)
            assert entered.wait(5.0)
            service.registry.cancel(request.request_id)
            future.result(timeout=5.0)
            recent = service.registry.snapshot()["recent"]
        entry = next(e for e in recent if e["query_id"] == request.request_id)
        assert entry["state"] == "cancelled"
        assert entry["progress"] < 1.0


class TestAdminEndpoint:
    def test_queries_and_cancel_over_http(self, catalog):
        entered, release = threading.Event(), threading.Event()
        with QueryService(catalog, workers=1) as service:
            hold_leader(service, entered, release)
            with serve_metrics(service) as server:
                request = QueryRequest(COUNT_BUG_NESTED, timeout=30.0)
                future = service.submit(request)
                assert entered.wait(5.0)

                with urllib.request.urlopen(f"{server.url}/queries", timeout=5) as resp:
                    assert resp.status == 200
                    snapshot = json.loads(resp.read())
                assert [e["query_id"] for e in snapshot["active"]] == [
                    request.request_id
                ]

                health = json.loads(
                    urllib.request.urlopen(f"{server.url}/healthz", timeout=5).read()
                )
                assert health["status"] == "ok"
                assert health["uptime_seconds"] >= 0
                assert health["in_flight"] == 1
                assert "queue_depth" in health and "workers" in health

                post = urllib.request.Request(
                    f"{server.url}/queries/{request.request_id}/cancel",
                    method="POST",
                )
                with urllib.request.urlopen(post, timeout=5) as resp:
                    assert resp.status == 200
                    body = json.loads(resp.read())
                assert body == {
                    "query_id": request.request_id,
                    "cancelled": True,
                }
                assert future.result(timeout=5.0).outcome == "cancelled"

                ghost = urllib.request.Request(
                    f"{server.url}/queries/ghost/cancel", method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(ghost, timeout=5)
                assert exc_info.value.code == 404
                assert json.loads(exc_info.value.read())["cancelled"] is False

    def test_queries_404_without_registry(self, catalog):
        from repro.server.exposition import MetricsServer

        with MetricsServer(lambda: {}) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{server.url}/queries", timeout=5)
            assert exc_info.value.code == 404


class TestCoalesceLeaderCancel:
    def test_follower_survives_cancelled_leader(self, catalog):
        """A follower must not inherit its leader's admin cancel: it
        retries as the new leader, and the drop leaves a warning event."""
        entered, release = threading.Event(), threading.Event()
        with QueryService(catalog, workers=2, max_attempts=3) as service:
            original = service._execute_leader
            state = {"first": True}

            def wrapped(pq, version):
                if state["first"]:
                    state["first"] = False
                    entered.set()
                    token = current_token()
                    while not release.is_set():
                        token.check()
                        time.sleep(0.002)
                return original(pq, version)

            service._execute_leader = wrapped
            leader_req = QueryRequest(COUNT_BUG_NESTED, timeout=30.0)
            leader_future = service.submit(leader_req)
            assert entered.wait(5.0)
            follower_req = QueryRequest(COUNT_BUG_NESTED, timeout=30.0)
            follower_future = service.submit(follower_req)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with service._inflight_lock:
                    if any(e.waiters >= 1 for e in service._inflight.values()):
                        break
                time.sleep(0.005)
            else:
                pytest.fail("follower never coalesced onto the leader")

            assert service.registry.cancel(leader_req.request_id)
            leader_resp = leader_future.result(timeout=5.0)
            follower_resp = follower_future.result(timeout=10.0)
            stats = service.stats()

        assert leader_resp.outcome == "cancelled"
        assert follower_resp.ok
        assert follower_resp.attempts >= 2  # retried as the new leader
        assert follower_resp.result_cache == "miss"
        drops = [e for e in stats["events"] if e["event"] == "coalesce_dropped"]
        assert len(drops) == 1
        assert drops[0]["level"] == "warning"
        assert drops[0]["query_id"] == leader_req.request_id
        assert drops[0]["waiters"] == 1


@pytest.mark.thread_stress
class TestProgressMonotonicity:
    @pytest.mark.parametrize("execution", ["batch", "row", "parallel"])
    def test_rows_monotone_and_progress_bounded(self, execution):
        catalog = mixed_catalog(seed=4, n_left=400, n_right=2400, n_chain=60)
        samples: dict[str, list[tuple[int, float]]] = {}
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                for entry in service.registry.active():
                    samples.setdefault(entry.query_id, []).append(
                        (entry.rows_processed, entry.progress)
                    )
                time.sleep(0.001)

        with QueryService(catalog, workers=2, execution=execution) as service:
            thread = threading.Thread(target=sampler, daemon=True)
            thread.start()
            try:
                responses = service.serve_all(list(MIXED_QUERIES) * 3)
            finally:
                stop.set()
                thread.join(timeout=5.0)
            recent = service.registry.snapshot()["recent"]

        assert all(r.ok for r in responses), [r.error for r in responses]
        for query_id, seen in samples.items():
            rows = [r for r, _ in seen]
            fractions = [p for _, p in seen]
            assert rows == sorted(rows), f"{query_id}: rows_processed regressed"
            assert all(0.0 <= p < 1.0 for p in fractions), (
                f"{query_id}: mid-flight progress out of [0,1): {fractions}"
            )
        # Every ok query reaches exactly 1.0 once finished.
        assert recent, "no finished queries in the recent pane"
        assert all(e["progress"] == 1.0 for e in recent if e["state"] == "ok")
