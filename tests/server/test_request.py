"""Request shapes and parameter binding."""

import pytest

from repro.errors import ParseError
from repro.server.request import QueryRequest, QueryResponse, bind_params, render_literal


class TestRenderLiteral:
    def test_scalars(self):
        assert render_literal(42) == "42"
        assert render_literal(True) == "true"
        assert render_literal(False) == "false"
        assert render_literal(1.5) == "1.5"
        assert render_literal("abc") == "'abc'"

    def test_string_escaping(self):
        assert render_literal("o'clock") == r"'o\'clock'"
        assert render_literal("a\\b") == r"'a\\b'"

    def test_unsupported_type_raises(self):
        with pytest.raises(ParseError):
            render_literal(frozenset())


class TestBindParams:
    def test_no_params_passthrough(self):
        text = "SELECT r FROM R r"
        assert bind_params(text, None) is text

    def test_substitution(self):
        bound = bind_params("SELECT r FROM R r WHERE r.a = $key", {"key": 7})
        assert bound == "SELECT r FROM R r WHERE r.a = 7"

    def test_multiple_and_repeated(self):
        bound = bind_params("$a + $b + $a", {"a": 1, "b": 2})
        assert bound == "1 + 2 + 1"

    def test_unbound_raises(self):
        with pytest.raises(ParseError, match="unbound query parameter"):
            bind_params("SELECT r FROM R r WHERE r.a = $key", {})

    def test_unused_params_ignored(self):
        assert bind_params("SELECT r FROM R r", {"x": 1}) == "SELECT r FROM R r"

    def test_string_param_round_trips_through_parser(self):
        from repro.lang.parser import parse

        bound = bind_params("SELECT r FROM R r WHERE r.name = $n", {"n": "o'clock"})
        parse(bound)  # must lex/parse cleanly


class TestShapes:
    def test_request_ids_unique(self):
        a, b = QueryRequest("SELECT r FROM R r"), QueryRequest("SELECT r FROM R r")
        assert a.request_id != b.request_id

    def test_bound_query_uses_params(self):
        request = QueryRequest("SELECT r FROM R r WHERE r.a = $k", params={"k": 3})
        assert request.bound_query().endswith("r.a = 3")

    def test_response_ok_and_dict(self):
        response = QueryResponse("q1", "ok", value=frozenset({1}), catalog_version=9)
        assert response.ok
        d = response.to_dict()
        assert d["rows"] == 1
        assert d["catalog_version"] == 9
        assert not QueryResponse("q2", "timeout").ok
