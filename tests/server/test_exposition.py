"""Tests for Prometheus text exposition and the scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.server.exposition import (
    CONTENT_TYPE,
    MetricsServer,
    parse_prometheus,
    prometheus_text,
    serve_metrics,
)
from repro.server.metrics import MetricsRegistry
from repro.server.service import QueryService
from repro.server.workload import make_requests, mixed_catalog


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("served").inc(7)
    reg.labeled_counter("queries_by_rewrite").inc("nestjoin", 3)
    reg.labeled_counter("queries_by_rewrite").inc("flat", 4)
    hist = reg.histogram("latency_ms")
    for v in (1.0, 2.0, 3.0, 4.0):
        hist.observe(v)
    fam = reg.labeled_histogram("qerror_by_op")
    fam.observe("scan", 1.0)
    fam.observe("join_nest", 12.5)
    return reg


class TestPrometheusText:
    def test_counters_get_total_suffix(self, registry):
        text = prometheus_text(registry.snapshot())
        samples = parse_prometheus(text)
        assert samples[("repro_served_total", ())] == 7.0

    def test_labeled_counters_use_declared_label_name(self, registry):
        samples = parse_prometheus(prometheus_text(registry.snapshot()))
        assert samples[("repro_queries_by_rewrite_total", (("kind", "nestjoin"),))] == 3.0
        assert samples[("repro_queries_by_rewrite_total", (("kind", "flat"),))] == 4.0

    def test_histogram_summary_quantiles_and_totals(self, registry):
        samples = parse_prometheus(prometheus_text(registry.snapshot()))
        assert samples[("repro_latency_ms_count", ())] == 4.0
        assert samples[("repro_latency_ms_sum", ())] == pytest.approx(10.0)
        assert ("repro_latency_ms", (("quantile", "0.5"),)) in samples

    def test_labeled_histogram_families(self, registry):
        samples = parse_prometheus(prometheus_text(registry.snapshot()))
        assert samples[("repro_qerror_by_op_count", (("op", "join_nest"),))] == 1.0
        assert samples[
            ("repro_qerror_by_op", (("op", "join_nest"), ("quantile", "0.95")))
        ] == pytest.approx(12.5)

    def test_gauges(self, registry):
        text = prometheus_text(registry.snapshot(), gauges={"queue_depth": 5})
        samples = parse_prometheus(text)
        assert samples[("repro_queue_depth", ())] == 5.0
        assert "# TYPE repro_queue_depth gauge" in text

    def test_empty_snapshot_renders(self):
        assert parse_prometheus(prometheus_text({})) == {}

    def test_prefix_override(self, registry):
        samples = parse_prometheus(prometheus_text(registry.snapshot(), prefix="x_"))
        assert ("x_served_total", ()) in samples


class TestParsePrometheus:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("not a metric line at all{")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus("repro_served_total seven")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus("# not a type line")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('m{kind=unquoted} 1')

    def test_accepts_escaped_label_values(self):
        samples = parse_prometheus('m{kind="a\\"b"} 1')
        assert samples[("m", (("kind", 'a\\"b'),))] == 1.0


class TestMetricsServer:
    def test_scrape_and_health_over_http(self, registry):
        with MetricsServer(registry.snapshot, gauge_source=lambda: {"g": 1}) as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                samples = parse_prometheus(resp.read().decode())
            assert samples[("repro_served_total", ())] == 7.0
            assert samples[("repro_g", ())] == 1.0
            with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert exc_info.value.code == 404

    def test_port_requires_started_server(self, registry):
        server = MetricsServer(registry.snapshot)
        with pytest.raises(RuntimeError):
            server.port

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry.snapshot).start()
        server.stop()
        server.stop()


class TestServeMetrics:
    def test_live_service_scrape_has_qerror_and_rewrites(self):
        catalog = mixed_catalog(seed=5, n_left=40, n_right=160, n_chain=8)
        with QueryService(
            catalog, workers=2, queue_limit=256, feedback_every=1
        ) as service:
            service.serve_all(make_requests(60, seed=5))
            with serve_metrics(service) as server:
                with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                    samples = parse_prometheus(resp.read().decode())
        rewrites = [k for k in samples if k[0] == "repro_queries_by_rewrite_total"]
        assert rewrites
        assert samples[("repro_qerror_count", ())] > 0
        assert samples[("repro_workers", ())] == 2.0
        assert ("repro_queue_depth", ()) in samples

    def test_scrape_includes_pool_health_families(self):
        """The worker pool's process-global instruments merge into every
        service scrape and parse strictly — even before the first
        parallel query (pre-created families render at zero)."""
        catalog = mixed_catalog(seed=5, n_left=20, n_right=80, n_chain=4)
        with QueryService(catalog, workers=1) as service:
            with serve_metrics(service) as server:
                with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                    samples = parse_prometheus(resp.read().decode())
        for family in (
            "repro_pool_scatters_total",
            "repro_pool_fragments_total",
            "repro_pool_worker_crashes_total",
            "repro_pool_worker_restarts_total",
            "repro_pool_workers_spawned_total",
            "repro_pool_catalog_ship_hits_total",
            "repro_pool_catalog_ship_misses_total",
        ):
            assert (family, ()) in samples, family
        for family in (
            "repro_pool_dispatch_wait_ms",
            "repro_pool_scatter_ms",
            "repro_pool_gather_ms",
            "repro_pool_payload_bytes",
            "repro_pool_reply_bytes",
        ):
            assert (f"{family}_count", ()) in samples, family
            assert (family, (("quantile", "0.5"),)) in samples, family
        assert ("repro_pool_live_workers", ()) in samples
        assert ("repro_pool_count", ()) in samples

    def test_merged_snapshot_keeps_service_instruments(self):
        from repro.server.exposition import merged_service_snapshot

        catalog = mixed_catalog(seed=5, n_left=20, n_right=80, n_chain=4)
        with QueryService(catalog, workers=1) as service:
            service.execute("SELECT r FROM R r WHERE r.a = 1")
            snap = merged_service_snapshot(service)
        assert snap["counters"]["ok"] >= 1  # service side intact
        assert "pool_scatters" in snap["counters"]  # pool side merged
        assert "pool_sequential_fallbacks" in snap["labeled"]
        parse_prometheus(prometheus_text(snap))  # and it all renders cleanly


SAMPLE_CACHES = {
    "build": {
        "bytes": 900,
        "bytes_by_kind": {"hash-build": 600, "inl-groups": 300},
        "entries": 2,
        "hits": 4,
        "misses": 2,
        "inserts": 2,
        "evictions_by_reason": {"budget": 1, "version": 2},
        "memory_pressure": 1,
    },
    "plan": {"bytes": 100, "entries": 1, "hits": 9, "misses": 1, "inserts": 1},
}


class TestCacheFamilies:
    def test_families_from_snapshot(self):
        from repro.server.exposition import cache_families

        families = cache_families(SAMPLE_CACHES)
        assert families["cache_bytes"]["type"] == "gauge"
        assert ({"cache": "build", "kind": "hash-build"}, 600) in families[
            "cache_bytes"
        ]["samples"]
        # A cache without kinds reports one all-kind sample.
        assert ({"cache": "plan", "kind": "all"}, 100) in families["cache_bytes"][
            "samples"
        ]
        assert ({"cache": "build", "reason": "budget"}, 1) in families[
            "cache_evictions"
        ]["samples"]
        assert ({"cache": "build"}, 1) in families["memory_pressure"]["samples"]

    def test_families_render_and_parse(self):
        from repro.server.exposition import cache_families

        text = prometheus_text({"families": cache_families(SAMPLE_CACHES)})
        assert "# TYPE repro_cache_bytes gauge" in text
        assert "# TYPE repro_cache_evictions_total counter" in text
        samples = parse_prometheus(text)
        assert samples[
            ("repro_cache_bytes", (("cache", "build"), ("kind", "inl-groups")))
        ] == 300.0
        assert samples[
            ("repro_cache_evictions_total", (("cache", "build"), ("reason", "version")))
        ] == 2.0
        assert samples[("repro_cache_hits_total", (("cache", "plan"),))] == 9.0

    def test_live_scrape_carries_cache_families(self):
        catalog = mixed_catalog(seed=5, n_left=20, n_right=80, n_chain=4)
        with QueryService(catalog, workers=1) as service:
            service.execute("SELECT r FROM R r WHERE r.a = 1")
            with serve_metrics(service) as server:
                with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                    samples = parse_prometheus(resp.read().decode())
        by_cache = {
            labels
            for name, labels in samples
            if name == "repro_cache_bytes"
        }
        caches = {dict(labels)["cache"] for labels in by_cache}
        assert {"plan", "build", "result", "shard-catalog"} <= caches
        assert samples[("repro_cache_entries", (("cache", "result"),))] >= 1.0


class TestCachesEndpoint:
    def test_get_caches_over_http(self):
        catalog = mixed_catalog(seed=5, n_left=20, n_right=80, n_chain=4)
        with QueryService(catalog, workers=1) as service:
            service.execute("SELECT r FROM R r WHERE r.a = 1")
            with serve_metrics(service) as server:
                with urllib.request.urlopen(f"{server.url}/caches", timeout=5) as resp:
                    assert resp.status == 200
                    snap = json.loads(resp.read())
        assert {"plan", "build", "result", "shard-catalog"} <= set(snap["caches"])
        assert snap["total_bytes"] > 0
        result = snap["caches"]["result"]
        assert result["bytes"] > 0 and result["entries"] >= 1
        # Top entries carry identity, not just sizes.
        assert result["top_entries"][0]["key"]["query"].startswith("SELECT")
        build = snap["caches"]["build"]
        assert "bytes_by_kind" in build and "evictions_by_reason" in build

    def test_caches_404_without_source(self, registry):
        with MetricsServer(registry.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{server.url}/caches", timeout=5)
            assert exc_info.value.code == 404
