"""Multiple distinct subqueries per conjunct (the paper's future work).

The paper restricts predicates to one occurrence of z; this library
generalises by materializing each subquery with its own nest join. These
tests pin the plan shapes and prove semantics against the oracle.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import NestJoin
from repro.core.pipeline import prepare, run_query
from repro.testing import random_catalog

ZY = "(SELECT y.a FROM Y y WHERE x.b = y.b)"
ZW = "(SELECT w.a FROM W w WHERE x.b = w.b)"


def count_nestjoins(plan):
    n = int(isinstance(plan, NestJoin))
    return n + sum(count_nestjoins(c) for c in plan.children())


@pytest.fixture
def catalog():
    return random_catalog(random.Random(7), max_rows=8)


class TestPlanShapes:
    def test_count_comparison_across_two_subqueries(self, catalog):
        query = f"SELECT x FROM X x WHERE COUNT({ZY}) = COUNT({ZW})"
        tr = prepare(query, catalog)
        assert tr.fully_flattened
        assert count_nestjoins(tr.plan) == 2

    def test_set_operation_between_subqueries(self, catalog):
        query = f"SELECT x FROM X x WHERE ({ZY} INTERSECT {ZW}) = {{}}"
        tr = prepare(query, catalog)
        assert tr.fully_flattened
        assert count_nestjoins(tr.plan) == 2

    def test_mixed_with_materialized_reuse(self, catalog):
        query = f"SELECT x FROM X x WHERE x.c = COUNT({ZY}) AND {ZY} SUBSETEQ {ZW}"
        tr = prepare(query, catalog)
        # ZY materialized once by the first conjunct, reused by the second;
        # ZW gets its own nest join.
        assert count_nestjoins(tr.plan) == 2

    def test_untranslatable_member_falls_back(self, catalog):
        # One subquery ranges over a set-valued attribute: whole conjunct
        # is interpreted (correctly).
        query = (
            f"SELECT x FROM X x WHERE "
            f"COUNT({ZY}) = COUNT(SELECT v FROM x.a v WHERE v >= 0)"
        )
        tr = prepare(query, catalog)
        assert [s.kind for s in tr.steps] == ["interpreted"]


QUERIES = [
    f"SELECT x FROM X x WHERE COUNT({ZY}) = COUNT({ZW})",
    f"SELECT x FROM X x WHERE ({ZY} INTERSECT {ZW}) <> {{}}",
    f"SELECT x.c FROM X x WHERE {ZY} SUBSETEQ {ZW}",
    f"SELECT x FROM X x WHERE x.a SUBSETEQ ({ZY} UNION {ZW})",
    f"SELECT x FROM X x WHERE COUNT({ZY}) + COUNT({ZW}) = x.c",
]


@pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_multi_subquery_semantics(query, seed):
    catalog = random_catalog(random.Random(seed))
    oracle = run_query(query, catalog, engine="interpret").value
    assert run_query(query, catalog, engine="logical").value == oracle
    assert run_query(query, catalog, engine="physical").value == oracle
