"""The structured event log: ring semantics, filters, and the file sink."""

import json
import logging

import pytest

from repro.core import log as event_log
from repro.core.log import (
    EVENT_RING_CAPACITY,
    JsonLineFormatter,
    clear_events,
    emit_event,
    events_snapshot,
    reset_event_log,
)


@pytest.fixture(autouse=True)
def clean_ring():
    clear_events()
    yield
    clear_events()


class TestEmit:
    def test_payload_shape(self):
        payload = emit_event("admit", query_id="q1", trace_id="t1", queue_depth=3)
        assert payload["event"] == "admit"
        assert payload["query_id"] == "q1"
        assert payload["trace_id"] == "t1"
        assert payload["queue_depth"] == 3
        assert payload["level"] == "info"
        assert payload["ts"] > 0

    def test_optional_correlation_fields_omitted(self):
        payload = emit_event("reject", level="warning", reason="queue full")
        assert "query_id" not in payload
        assert "trace_id" not in payload
        assert payload["level"] == "warning"

    def test_emitted_payload_lands_in_ring(self):
        emit_event("admit", query_id="q1")
        emit_event("complete", query_id="q1")
        assert [e["event"] for e in events_snapshot()] == ["admit", "complete"]

    def test_payload_is_json_serializable(self):
        payload = emit_event("cancel", query_id="q1", reason="admin")
        json.dumps(payload)


class TestRing:
    def test_bounded_at_capacity_oldest_dropped(self):
        for i in range(EVENT_RING_CAPACITY + 25):
            emit_event("admit", query_id=f"q{i}")
        events = events_snapshot()
        assert len(events) == EVENT_RING_CAPACITY
        # The survivors are the most recent EVENT_RING_CAPACITY emits.
        assert events[0]["query_id"] == "q25"
        assert events[-1]["query_id"] == f"q{EVENT_RING_CAPACITY + 24}"

    def test_clear_events_empties_ring(self):
        emit_event("admit", query_id="q1")
        clear_events()
        assert events_snapshot() == []


class TestSnapshotFilters:
    def test_filter_by_query_id(self):
        emit_event("admit", query_id="a")
        emit_event("admit", query_id="b")
        emit_event("complete", query_id="a")
        events = events_snapshot(query_id="a")
        assert [e["event"] for e in events] == ["admit", "complete"]

    def test_filter_by_event_kinds(self):
        emit_event("admit", query_id="a")
        emit_event("cancel", query_id="a")
        emit_event("complete", query_id="b")
        events = events_snapshot(events=("cancel", "complete"))
        assert [e["event"] for e in events] == ["cancel", "complete"]

    def test_limit_keeps_most_recent_after_filtering(self):
        for i in range(6):
            emit_event("admit", query_id=f"q{i}")
        events = events_snapshot(limit=2)
        assert [e["query_id"] for e in events] == ["q4", "q5"]

    def test_combined_filters(self):
        for i in range(4):
            emit_event("admit", query_id="a")
            emit_event("admit", query_id="b")
        events = events_snapshot(limit=3, query_id="b")
        assert len(events) == 3
        assert all(e["query_id"] == "b" for e in events)


class TestFileSink:
    def test_no_file_sink_by_default(self, monkeypatch):
        monkeypatch.delenv(event_log.LOG_FILE_ENV, raising=False)
        reset_event_log()
        emit_event("admit", query_id="q1")
        assert events_snapshot()[-1]["query_id"] == "q1"

    def test_file_sink_writes_json_lines(self, tmp_path, monkeypatch):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv(event_log.LOG_FILE_ENV, str(path))
        reset_event_log()
        try:
            emit_event("admit", query_id="q1", query="SELECT 1")
            emit_event("cancel", query_id="q1", level="warning", reason="admin")
            lines = path.read_text(encoding="utf-8").strip().splitlines()
            assert len(lines) == 2
            first, second = (json.loads(line) for line in lines)
            assert first["event"] == "admit"
            assert first["query_id"] == "q1"
            assert second["event"] == "cancel"
            assert second["level"] == "warning"
            # Both sinks see the same payloads.
            assert [e["event"] for e in events_snapshot(query_id="q1")] == [
                "admit",
                "cancel",
            ]
        finally:
            monkeypatch.delenv(event_log.LOG_FILE_ENV)
            reset_event_log()


class TestJsonLineFormatter:
    def test_formats_event_payload(self):
        record = logging.LogRecord("repro.events", logging.INFO, __file__, 1, "admit", (), None)
        record.event_payload = {"ts": 1.0, "level": "info", "event": "admit"}
        line = JsonLineFormatter().format(record)
        assert json.loads(line) == {"ts": 1.0, "level": "info", "event": "admit"}

    def test_falls_back_for_foreign_records(self):
        record = logging.LogRecord(
            "other", logging.WARNING, __file__, 1, "plain message", (), None
        )
        parsed = json.loads(JsonLineFormatter().format(record))
        assert parsed["event"] == "plain message"
        assert parsed["level"] == "warning"

    def test_stringifies_unserializable_values(self):
        record = logging.LogRecord("repro.events", logging.INFO, __file__, 1, "x", (), None)
        record.event_payload = {"event": "x", "value": frozenset({1})}
        json.loads(JsonLineFormatter().format(record))
