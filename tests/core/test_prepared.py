"""Tests for the prepared-query API (compile once, execute many)."""

import pytest

from repro.core.pipeline import PreparedQuery, run_query
from repro.engine.table import Catalog
from repro.errors import TypeCheckError, UnsupportedQueryError
from repro.model.values import Tup
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


@pytest.fixture
def catalog():
    return make_join_workload(n_left=30, match_rate=0.5, fanout=2, seed=1).catalog


class TestPreparedQuery:
    def test_execute_matches_run_query(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        expected = run_query(COUNT_BUG_NESTED, catalog, engine="physical").value
        assert prepared.execute(catalog) == expected

    def test_physical_compilation_is_cached_per_catalog(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        assert prepared.compile_for(catalog) is prepared.compile_for(catalog)

    def test_runs_against_other_catalogs_of_same_schema(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        other = make_join_workload(n_left=40, match_rate=0.3, fanout=1, seed=9).catalog
        expected = run_query(COUNT_BUG_NESTED, other, engine="interpret").value
        assert prepared.execute(other) == expected
        # Distinct compilation per catalog (statistics differ).
        assert prepared.compile_for(catalog) is not prepared.compile_for(other)

    def test_typecheck_at_prepare_time(self, catalog):
        with pytest.raises(TypeCheckError):
            PreparedQuery("SELECT r.nope FROM R r", catalog)

    def test_non_sfw_rejected(self, catalog):
        with pytest.raises(UnsupportedQueryError):
            PreparedQuery("1 + 1", catalog)

    def test_explain(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        text = prepared.explain()
        assert "NestJoin" in text

    def test_analyze(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        run = prepared.analyze(catalog)
        assert frozenset(t["out"] for t in run.rows) == prepared.execute(catalog)

    def test_interpreted_fallback(self):
        cat = Catalog()
        cat.add_rows("U", [Tup(items=frozenset({1, 2}), k=1)])
        prepared = PreparedQuery(
            "SELECT u.k FROM U u WHERE COUNT(SELECT v FROM u.items v) = 2", cat
        )
        assert prepared.execute(cat) == frozenset({1})
        # Interpreted queries may still not flatten fully.
        assert "interpreted" in [s.kind for s in prepared.translation.steps]

    def test_no_plan_fallback(self):
        cat = Catalog()
        cat.add_rows("U", [Tup(items=frozenset({1, 2}))])
        # Outer FROM over an expression: no plan; execute still answers.
        prepared = PreparedQuery(
            "SELECT s FROM (SELECT u.items FROM U u) s", cat, typecheck=False
        )
        assert prepared.plan is None
        assert prepared.execute(cat) == frozenset({frozenset({1, 2})})
        with pytest.raises(UnsupportedQueryError):
            prepared.compile_for(cat)
        assert "interpreted" in prepared.explain()

    def test_prepare_once_is_faster_for_repeats(self, catalog):
        from repro.bench.harness import time_best

        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        prepared.execute(catalog)  # warm the compilation cache
        t_prepared = time_best(lambda: prepared.execute(catalog), 5)
        t_full = time_best(
            lambda: run_query(COUNT_BUG_NESTED, catalog, engine="physical"), 5
        )
        # Margin absorbs scheduler noise; preparation skips parse/typecheck/
        # translate/rewrite/compile, so the gap is structural.
        assert t_prepared < t_full * 1.2
