"""Tests for the prepared-query API (compile once, execute many)."""

import pytest

from repro.core.pipeline import (
    PreparedQuery,
    clear_plan_cache,
    plan_cache_stats,
    prepared,
    run_query,
)
from repro.engine.cache import clear_build_cache
from repro.engine.table import Catalog
from repro.errors import TypeCheckError, UnsupportedQueryError
from repro.model.values import Tup
from repro.workloads import (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SECTION8_FLAT_VARIANT,
    SECTION8_QUERY,
    SUBSETEQ_BUG_NESTED,
    make_chain_workload,
    make_company,
    make_join_workload,
    make_set_workload,
)


@pytest.fixture
def catalog():
    return make_join_workload(n_left=30, match_rate=0.5, fanout=2, seed=1).catalog


class TestPreparedQuery:
    def test_execute_matches_run_query(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        expected = run_query(COUNT_BUG_NESTED, catalog, engine="physical").value
        assert prepared.execute(catalog) == expected

    def test_physical_compilation_is_cached_per_catalog(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        assert prepared.compile_for(catalog) is prepared.compile_for(catalog)

    def test_runs_against_other_catalogs_of_same_schema(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        other = make_join_workload(n_left=40, match_rate=0.3, fanout=1, seed=9).catalog
        expected = run_query(COUNT_BUG_NESTED, other, engine="interpret").value
        assert prepared.execute(other) == expected
        # Distinct compilation per catalog (statistics differ).
        assert prepared.compile_for(catalog) is not prepared.compile_for(other)

    def test_typecheck_at_prepare_time(self, catalog):
        with pytest.raises(TypeCheckError):
            PreparedQuery("SELECT r.nope FROM R r", catalog)

    def test_non_sfw_rejected(self, catalog):
        with pytest.raises(UnsupportedQueryError):
            PreparedQuery("1 + 1", catalog)

    def test_explain(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        text = prepared.explain()
        assert "NestJoin" in text

    def test_analyze(self, catalog):
        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        run = prepared.analyze(catalog)
        assert frozenset(t["out"] for t in run.rows) == prepared.execute(catalog)

    def test_interpreted_fallback(self):
        cat = Catalog()
        cat.add_rows("U", [Tup(items=frozenset({1, 2}), k=1)])
        prepared = PreparedQuery(
            "SELECT u.k FROM U u WHERE COUNT(SELECT v FROM u.items v) = 2", cat
        )
        assert prepared.execute(cat) == frozenset({1})
        # Interpreted queries may still not flatten fully.
        assert "interpreted" in [s.kind for s in prepared.translation.steps]

    def test_no_plan_fallback(self):
        cat = Catalog()
        cat.add_rows("U", [Tup(items=frozenset({1, 2}))])
        # Outer FROM over an expression: no plan; execute still answers.
        prepared = PreparedQuery(
            "SELECT s FROM (SELECT u.items FROM U u) s", cat, typecheck=False
        )
        assert prepared.plan is None
        assert prepared.execute(cat) == frozenset({frozenset({1, 2})})
        with pytest.raises(UnsupportedQueryError):
            prepared.compile_for(cat)
        assert "interpreted" in prepared.explain()

    def test_mutation_triggers_recompilation(self, catalog):
        prep = PreparedQuery(COUNT_BUG_NESTED, catalog)
        first = prep.compile_for(catalog)
        assert prep.compile_for(catalog) is first
        catalog["S"].insert([Tup(c=0, d=999)])
        second = prep.compile_for(catalog)
        assert second is not first
        # The recompiled plan answers with the new data.
        oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        assert prep.execute(catalog) == oracle

    def test_prepare_once_is_faster_for_repeats(self, catalog):
        from repro.bench.harness import time_best

        prepared = PreparedQuery(COUNT_BUG_NESTED, catalog)
        prepared.execute(catalog)  # warm the compilation cache
        t_prepared = time_best(lambda: prepared.execute(catalog), 5)
        t_full = time_best(
            lambda: run_query(COUNT_BUG_NESTED, catalog, engine="physical"), 5
        )
        # Margin absorbs scheduler noise; preparation skips parse/typecheck/
        # translate/rewrite/compile, so the gap is structural.
        assert t_prepared < t_full * 1.2


class TestPlanCache:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_plan_cache()
        clear_build_cache()
        yield
        clear_plan_cache()
        clear_build_cache()

    def test_same_query_text_hits(self, catalog):
        first = prepared(COUNT_BUG_NESTED, catalog)
        second = prepared(COUNT_BUG_NESTED, catalog)
        assert second is first
        assert plan_cache_stats().hits == 1

    def test_formatting_differences_share_one_entry(self, catalog):
        a = prepared(
            "SELECT r FROM R r WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)",
            catalog,
        )
        b = prepared(
            "SELECT   r\nFROM R r\nWHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)",
            catalog,
        )
        assert b is a

    def test_same_schema_other_catalog_shares_plan(self, catalog):
        other = make_join_workload(n_left=50, match_rate=0.4, fanout=2, seed=4).catalog
        a = prepared(COUNT_BUG_NESTED, catalog)
        b = prepared(COUNT_BUG_NESTED, other)
        assert b is a
        # ... and still answers each catalog correctly.
        for cat in (catalog, other):
            oracle = run_query(COUNT_BUG_NESTED, cat, engine="interpret").value
            assert a.execute(cat) == oracle

    def test_different_schema_misses(self, catalog):
        chain = make_chain_workload(n_x=10, n_y=10, n_z=10, seed=2)
        prepared(COUNT_BUG_NESTED, catalog)
        prepared(SECTION8_QUERY, chain)
        assert plan_cache_stats().hits == 0
        assert plan_cache_stats().misses == 2

    def test_schema_change_invalidates(self, catalog):
        a = prepared(COUNT_BUG_NESTED, catalog)
        catalog.add_rows("EXTRA", [Tup(k=1)])
        b = prepared(COUNT_BUG_NESTED, catalog)
        assert b is not a

    def test_data_mutation_keeps_plan_but_refreshes_answer(self, catalog):
        prep = prepared(COUNT_BUG_NESTED, catalog)
        prep.execute(catalog)
        catalog["S"].insert([Tup(c=1, d=777)])
        assert prepared(COUNT_BUG_NESTED, catalog) is prep  # same shape
        oracle = run_query(COUNT_BUG_NESTED, catalog, engine="interpret").value
        assert prep.execute(catalog) == oracle

    def test_clear_resets(self, catalog):
        a = prepared(COUNT_BUG_NESTED, catalog)
        clear_plan_cache()
        assert prepared(COUNT_BUG_NESTED, catalog) is not a


class TestWarmColdDifferential:
    """Warm serving must agree with cold runs and the interpreter oracle."""

    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_plan_cache()
        clear_build_cache()
        yield
        clear_plan_cache()
        clear_build_cache()

    WORKLOADS = [
        (Q1_SAME_STREET, "company"),
        (Q2_EMPS_BY_CITY, "company"),
        (COUNT_BUG_NESTED, "join"),
        (SUBSETEQ_BUG_NESTED, "set"),
        (SECTION8_QUERY, "chain"),
        (SECTION8_FLAT_VARIANT, "chain"),
    ]

    @staticmethod
    def _catalog(kind):
        if kind == "company":
            return make_company(n_departments=6, n_employees=40, seed=3)
        if kind == "join":
            return make_join_workload(n_left=40, match_rate=0.5, fanout=2, seed=5).catalog
        if kind == "set":
            return make_set_workload(n_left=30, n_right=25, seed=6)
        return make_chain_workload(n_x=20, n_y=20, n_z=20, seed=7)

    @pytest.mark.parametrize("query,kind", WORKLOADS)
    def test_warm_equals_cold_equals_oracle(self, query, kind):
        catalog = self._catalog(kind)
        oracle = run_query(query, catalog, engine="interpret").value
        cold = run_query(query, catalog, engine="physical").value
        prep = prepared(query, catalog)
        warm1 = prep.execute(catalog)
        warm2 = prep.execute(catalog)  # second call: all cache layers hot
        assert cold == oracle
        assert warm1 == oracle
        assert warm2 == oracle

    @pytest.mark.parametrize("query,kind", WORKLOADS)
    def test_warm_survives_mutation(self, query, kind):
        catalog = self._catalog(kind)
        prep = prepared(query, catalog)
        prep.execute(catalog)
        # Mutate every table: bump versions so all cached artifacts orphan.
        for name in list(catalog):
            table = catalog[name]
            if len(table):
                table.replace_rows(list(table)[:-1])
        oracle = run_query(query, catalog, engine="interpret").value
        assert prep.execute(catalog) == oracle
