"""Unit tests for the unnesting translator: plan shapes and audit trail."""

import pytest

from repro.algebra.plan import (
    AntiJoin,
    Drop,
    Join,
    Map,
    NestJoin,
    Scan,
    Select,
    SemiJoin,
)
from repro.core.unnest import translate_query
from repro.engine.table import Catalog
from repro.lang.parser import parse, parse_query
from repro.model.values import Tup


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_rows("X", [Tup(a=frozenset({1}), b=1, c=1)])
    cat.add_rows("Y", [Tup(a=1, b=1)])
    cat.add_rows("W", [Tup(a=1, b=1)])
    return cat


Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"


def plan_of(query, catalog):
    tr = translate_query(parse_query(query) if not query.upper().startswith("UNNEST") else parse(query), catalog)
    assert tr is not None
    return tr


class TestJoinOperatorChoice:
    def test_membership_becomes_semijoin(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE x.c IN {Z}", catalog)
        assert tr.join_kinds() == ["semijoin"]
        assert isinstance(tr.plan, Map)
        assert isinstance(tr.plan.child, SemiJoin)

    def test_non_membership_becomes_antijoin(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE x.c NOT IN {Z}", catalog)
        assert tr.join_kinds() == ["antijoin"]
        assert isinstance(tr.plan.child, AntiJoin)

    def test_subseteq_becomes_nestjoin(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE x.a SUBSETEQ {Z}", catalog)
        assert tr.join_kinds() == ["nestjoin"]
        # NestJoin → Select over nested attr → Drop → Map
        m = tr.plan
        assert isinstance(m, Map)
        assert isinstance(m.child, Drop)
        assert isinstance(m.child.child, Select)
        assert isinstance(m.child.child.child, NestJoin)

    def test_count_comparison_becomes_nestjoin(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE x.c = COUNT({Z})", catalog)
        assert tr.join_kinds() == ["nestjoin"]

    def test_emptiness_becomes_antijoin(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE {Z} = {{}}", catalog)
        assert tr.join_kinds() == ["antijoin"]

    def test_plain_conjunct_is_selection(self, catalog):
        tr = plan_of("SELECT x FROM X x WHERE x.c = 1", catalog)
        assert [s.kind for s in tr.steps] == ["select"]
        assert tr.fully_flattened

    def test_join_predicate_contains_correlation_and_member_pred(self, catalog):
        tr = plan_of(f"SELECT x FROM X x WHERE x.c IN {Z}", catalog)
        semi = tr.plan.child
        assert semi.pred == parse("x.b = y.b AND y.a = x.c")


class TestSelectClause:
    def test_select_clause_subquery_becomes_nestjoin(self, catalog):
        tr = plan_of(f"SELECT (c = x.c, ys = {Z}) FROM X x", catalog)
        kinds = [s.kind for s in tr.steps]
        assert "nestjoin-select-clause" in kinds
        assert isinstance(tr.plan.child, NestJoin)

    def test_set_valued_attribute_subquery_stays_nested(self, catalog):
        # FROM x.a — not a stored table; must be left to the interpreter.
        tr = plan_of("SELECT (c = x.c, vs = (SELECT v FROM x.a v)) FROM X x", catalog)
        kinds = [s.kind for s in tr.steps]
        assert "interpreted" in kinds
        assert not tr.fully_flattened


class TestUnnestCollapse:
    def test_unnest_becomes_flat_join(self, catalog):
        q = "UNNEST(SELECT (SELECT (c = x.c, a = y.a) FROM Y y WHERE x.b = y.b) FROM X x)"
        tr = plan_of(q, catalog)
        assert [s.kind for s in tr.steps] == ["unnest-join"]
        assert isinstance(tr.plan, Map)
        assert isinstance(tr.plan.child, Join)

    def test_unnest_of_non_nested_select_falls_back(self, catalog):
        tr = translate_query(parse("UNNEST(SELECT x.a FROM X x)"), catalog)
        assert tr is None


class TestMultiLevel:
    def test_section8_style_pipeline(self, catalog):
        q = (
            "SELECT x FROM X x WHERE x.a SUBSETEQ "
            "(SELECT y.a FROM Y y WHERE x.b = y.b AND "
            "y.a IN (SELECT w.a FROM W w WHERE w.b = y.b))"
        )
        tr = plan_of(q, catalog)
        # Inner IN → semijoin on the right operand; outer ⊆ → nest join.
        assert tr.join_kinds() == ["semijoin", "nestjoin"]

    def test_shadowing_subquery_variable_means_no_correlation(self, catalog):
        # The inner block rebinds 'x', so it cannot reference the outer 'x':
        # the subquery is a constant and correctly left interpreted.
        q = "SELECT x FROM X x WHERE x.c IN (SELECT x.a FROM Y x WHERE x.b = 1)"
        tr = plan_of(q, catalog)
        assert [s.kind for s in tr.steps] == ["interpreted"]

    def test_sibling_subqueries_reusing_a_variable_are_renamed(self, catalog):
        q = (
            "SELECT x FROM X x WHERE "
            "x.c IN (SELECT y.a FROM Y y WHERE y.b = x.b) AND "
            "x.c IN (SELECT y.a FROM W y WHERE y.b = x.b)"
        )
        tr = plan_of(q, catalog)
        assert tr.join_kinds() == ["semijoin", "semijoin"]
        # Two Scans with distinct variables despite both blocks writing 'y'.
        scans = []

        def collect(p):
            if isinstance(p, Scan):
                scans.append(p)
            for c in p.children():
                collect(c)

        collect(tr.plan)
        variables = [s.var for s in scans]
        assert len(set(variables)) == len(variables)


class TestFallbacks:
    def test_outer_from_not_a_table(self, catalog):
        tr = translate_query(parse_query("SELECT v FROM s.items v"), catalog)
        assert tr is None

    def test_two_distinct_subqueries_in_one_conjunct_both_materialize(self, catalog):
        # Beyond the paper (its future-work list): each subquery gets its
        # own nest join instead of falling back to interpretation.
        q = (
            "SELECT x FROM X x WHERE "
            "COUNT(SELECT y.a FROM Y y WHERE y.b = x.b) = "
            "COUNT(SELECT w.a FROM W w WHERE w.b = x.b)"
        )
        tr = plan_of(q, catalog)
        assert [s.kind for s in tr.steps] == ["nestjoin", "nestjoin"]
        assert tr.fully_flattened

    def test_uncorrelated_subquery_is_interpreted(self, catalog):
        q = "SELECT x FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE y.b = 1)"
        tr = plan_of(q, catalog)
        assert [s.kind for s in tr.steps] == ["interpreted"]

    def test_table_named_like_variable(self, catalog):
        # A variable with the same name as a table must shadow it safely:
        # the translator renames rather than mis-binding.
        q = "SELECT Y FROM X Y WHERE Y.c = 1"
        tr = translate_query(parse_query(q), catalog)
        assert tr is not None
        scan = tr.plan
        while not isinstance(scan, Scan):
            scan = scan.children()[0]
        assert scan.var != "Y"
