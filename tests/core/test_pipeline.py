"""End-to-end tests: the paper's worked examples through the full pipeline."""

import pytest

from repro.core.pipeline import explain_query, prepare, run_query
from repro.engine.table import Catalog
from repro.errors import UnsupportedQueryError
from repro.model.values import Tup
from repro.workloads import (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SECTION8_FLAT_VARIANT,
    SECTION8_QUERY,
    SUBSETEQ_BUG_NESTED,
    make_chain_workload,
    make_company,
    make_join_workload,
    make_set_workload,
)


class TestPaperQueries:
    def test_q1_runs_interpreted_and_matches_itself(self):
        # Q1's subquery ranges over a set-valued attribute: stays nested.
        cat = make_company(n_departments=6, n_employees=40, seed=1)
        result = run_query(Q1_SAME_STREET, cat, engine="logical")
        oracle = run_query(Q1_SAME_STREET, cat, engine="interpret")
        assert result.value == oracle.value
        # At least one department qualifies with p_same_street defaulting on.
        tr = prepare(Q1_SAME_STREET, cat)
        assert tr is not None and not tr.fully_flattened

    def test_q1_selectivity_knob(self):
        none = make_company(n_departments=8, n_employees=30, p_same_street=0.0, seed=3)
        all_ = make_company(n_departments=8, n_employees=30, p_same_street=1.0, seed=3)
        r_none = run_query(Q1_SAME_STREET, none, engine="interpret").value
        r_all = run_query(Q1_SAME_STREET, all_, engine="interpret").value
        assert len(r_none) <= len(r_all)
        assert len(r_all) >= 1

    def test_q2_flattens_to_nestjoin_and_matches_oracle(self):
        cat = make_company(n_departments=5, n_employees=30, seed=2)
        tr = prepare(Q2_EMPS_BY_CITY, cat)
        assert tr is not None
        assert "nestjoin-select-clause" in [s.kind for s in tr.steps]
        result = run_query(Q2_EMPS_BY_CITY, cat, engine="logical")
        oracle = run_query(Q2_EMPS_BY_CITY, cat, engine="interpret")
        assert result.value == oracle.value
        # Every department appears (nest join preserves dangling).
        assert len(result.value) == len(cat["DEPT"])

    def test_count_bug_query_correct_via_nestjoin(self):
        wl = make_join_workload(n_left=60, match_rate=0.5, fanout=2, seed=4)
        result = run_query(COUNT_BUG_NESTED, wl.catalog, engine="logical")
        oracle = run_query(COUNT_BUG_NESTED, wl.catalog, engine="interpret")
        assert result.value == oracle.value
        tr = prepare(COUNT_BUG_NESTED, wl.catalog)
        assert tr.join_kinds() == ["nestjoin"]
        # Dangling rows with b = 0 are part of the answer.
        dangling_hits = {t for t in result.value if t["b"] == 0}
        assert dangling_hits, "workload should produce dangling b=0 winners"

    def test_subseteq_bug_query_correct_via_nestjoin(self):
        cat = make_set_workload(n_left=50, n_right=40, seed=5)
        result = run_query(SUBSETEQ_BUG_NESTED, cat, engine="logical")
        oracle = run_query(SUBSETEQ_BUG_NESTED, cat, engine="interpret")
        assert result.value == oracle.value
        empty_a_dangling = {t for t in result.value if t["a"] == frozenset()}
        assert empty_a_dangling, "workload should produce a=∅ winners"

    def test_section8_two_nestjoins(self):
        cat = make_chain_workload(n_x=20, n_y=20, n_z=20, seed=6)
        tr = prepare(SECTION8_QUERY, cat)
        assert tr.join_kinds() == ["nestjoin", "nestjoin"]
        assert (
            run_query(SECTION8_QUERY, cat, engine="logical").value
            == run_query(SECTION8_QUERY, cat, engine="interpret").value
        )

    def test_section8_flat_variant_semijoin_antijoin(self):
        cat = make_chain_workload(n_x=20, n_y=20, n_z=20, seed=6)
        tr = prepare(SECTION8_FLAT_VARIANT, cat)
        assert tr.join_kinds() == ["antijoin", "semijoin"]
        assert (
            run_query(SECTION8_FLAT_VARIANT, cat, engine="logical").value
            == run_query(SECTION8_FLAT_VARIANT, cat, engine="interpret").value
        )


class TestPipelineSurface:
    @pytest.fixture
    def cat(self):
        c = Catalog()
        c.add_rows("T", [Tup(a=1), Tup(a=2)])
        return c

    def test_run_query_accepts_ast(self, cat):
        from repro.lang.parser import parse

        assert run_query(parse("SELECT t.a FROM T t"), cat, engine="logical").value == frozenset({1, 2})

    def test_typecheck_catches_bad_query(self, cat):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            run_query("SELECT t.nope FROM T t", cat)

    def test_typecheck_can_be_disabled(self, cat):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            run_query("SELECT t.nope FROM T t", cat, typecheck=False, engine="logical")

    def test_non_sfw_top_level_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError):
            run_query("1 + 1", cat, engine="logical")

    def test_non_set_interpret_result_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError):
            run_query("COUNT(SELECT t.a FROM T t)", cat, engine="interpret")

    def test_unknown_engine(self, cat):
        with pytest.raises(UnsupportedQueryError):
            run_query("SELECT t FROM T t", cat, engine="quantum")

    def test_from_expression_falls_back_to_interpreter(self, cat):
        c = Catalog()
        c.add_rows("U", [Tup(items=frozenset({1, 2}))])
        # Outer FROM over an expression can't be planned; still answered.
        result = run_query(
            "SELECT v FROM (SELECT u.items FROM U u) s WHERE COUNT(s) = 2 WITH v = s",
            c,
            engine="logical",
            typecheck=False,
        )
        assert result.engine == "interpret"

    def test_explain_mentions_steps_and_plan(self, cat):
        c = Catalog()
        c.add_rows("R", [Tup(b=0, c=1)])
        c.add_rows("S", [Tup(c=1, d=1)])
        text = explain_query(COUNT_BUG_NESTED, c)
        assert "nestjoin" in text
        assert "Scan R AS r" in text

    def test_explain_interpreted_query(self):
        cat = make_company(n_departments=2, n_employees=5, seed=0)
        text = explain_query(Q1_SAME_STREET, cat)
        assert "interpreted" in text
