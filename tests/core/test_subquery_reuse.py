"""Common subquery elimination: identical subqueries materialize once."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.plan import NestJoin
from repro.core.pipeline import prepare, run_query
from repro.engine.table import Catalog
from repro.model.values import Tup
from repro.testing import random_catalog


Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"


@pytest.fixture
def catalog():
    rng = random.Random(3)
    return random_catalog(rng, max_rows=8)


def count_nestjoins(plan):
    n = int(isinstance(plan, NestJoin))
    return n + sum(count_nestjoins(c) for c in plan.children())


class TestReuse:
    def test_two_grouping_conjuncts_share_one_nestjoin(self, catalog):
        query = f"SELECT x FROM X x WHERE x.c = COUNT({Z}) AND x.a SUBSETEQ {Z}"
        tr = prepare(query, catalog)
        kinds = [s.kind for s in tr.steps]
        assert kinds.count("nestjoin") == 1
        assert kinds.count("reuse-nested") == 1
        assert count_nestjoins(tr.plan) == 1

    def test_flat_conjunct_reuses_materialized_subquery(self, catalog):
        # The first conjunct groups; the second would be a semijoin but the
        # set is already at hand, so it becomes a plain selection.
        query = f"SELECT x FROM X x WHERE x.c = COUNT({Z}) AND x.c IN {Z}"
        tr = prepare(query, catalog)
        kinds = [s.kind for s in tr.steps]
        assert kinds == ["nestjoin", "reuse-nested"]
        assert count_nestjoins(tr.plan) == 1

    def test_select_clause_reuses_where_clause_materialization(self, catalog):
        query = f"SELECT (c = x.c, zs = {Z}) FROM X x WHERE x.c = COUNT({Z})"
        tr = prepare(query, catalog)
        kinds = [s.kind for s in tr.steps]
        assert kinds.count("nestjoin") == 1
        assert "reuse-nested" in kinds
        assert count_nestjoins(tr.plan) == 1

    def test_different_subqueries_do_not_share(self, catalog):
        other = "(SELECT y.a FROM Y y WHERE x.c = y.b)"
        query = f"SELECT x FROM X x WHERE x.c = COUNT({Z}) AND x.a SUBSETEQ {other}"
        tr = prepare(query, catalog)
        assert count_nestjoins(tr.plan) == 2

    def test_semijoin_first_does_not_materialize(self, catalog):
        # A semijoin produces no nested attribute, so a later grouping
        # conjunct must build its own nest join.
        query = f"SELECT x FROM X x WHERE x.c IN {Z} AND x.c = COUNT({Z})"
        tr = prepare(query, catalog)
        kinds = [s.kind for s in tr.steps]
        assert kinds == ["semijoin", "nestjoin"]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_reuse_preserves_semantics(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query = (
        f"SELECT (c = x.c, zs = {Z}) FROM X x "
        f"WHERE x.c <= COUNT({Z}) AND x.a SUBSETEQ {Z}"
    )
    oracle = run_query(query, catalog, engine="interpret").value
    assert run_query(query, catalog, engine="logical").value == oracle
    assert run_query(query, catalog, engine="physical").value == oracle


def test_reuse_is_faster_than_double_materialization():
    # Indirect but robust check: the reused plan does half the join work.
    from repro.bench.harness import time_best
    from repro.workloads import make_join_workload

    wl = make_join_workload(n_left=300, match_rate=0.6, fanout=3, seed=5)
    cat = wl.catalog
    reused = (
        "SELECT r FROM R r WHERE r.b = COUNT(SELECT s.d FROM S s WHERE r.c = s.c) "
        "AND r.b <= COUNT(SELECT s.d FROM S s WHERE r.c = s.c)"
    )
    distinct = (
        "SELECT r FROM R r WHERE r.b = COUNT(SELECT s.d FROM S s WHERE r.c = s.c) "
        "AND r.b <= COUNT(SELECT s.d + 0 FROM S s WHERE r.c = s.c)"
    )
    assert prepare(reused, cat).join_kinds() == ["nestjoin"]
    assert prepare(distinct, cat).join_kinds() == ["nestjoin", "nestjoin"]
    t_reused = time_best(lambda: run_query(reused, cat, engine="physical"), 3)
    t_distinct = time_best(lambda: run_query(distinct, cat, engine="physical"), 3)
    assert t_reused < t_distinct
