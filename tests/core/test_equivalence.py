"""Differential proofs: translated plans ≡ naive nested-loop semantics.

For every Table 2 predicate form (and several composites), hypothesis
generates random relations and the translated plan (logical executor) is
compared against the interpreter. This is the machine-checked version of
the paper's Theorem 1 rewrites *and* of the claim that the nest join avoids
the COUNT/SUBSETEQ bugs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import run_query
from repro.engine.table import Catalog
from repro.model.values import Tup

Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"

# Every predicate template over x (outer) and z (correlated subquery).
PREDICATES = [
    "{z} = {{}}",
    "{z} <> {{}}",
    "COUNT({z}) = 0",
    "COUNT({z}) > 0",
    "x.c = COUNT({z})",
    "x.c < COUNT({z})",
    "x.c IN {z}",
    "x.c NOT IN {z}",
    "x.a SUBSETEQ {z}",
    "x.a SUBSET {z}",
    "x.a SUPSETEQ {z}",
    "x.a SUPSET {z}",
    "NOT (x.a SUPSETEQ {z})",
    "{z} SUBSETEQ x.a",
    "x.a = {z}",
    "x.a <> {z}",
    "(x.a INTERSECT {z}) = {{}}",
    "(x.a INTERSECT {z}) <> {{}}",
    "FORALL w IN x.a (w IN {z})",
    "FORALL w IN x.a (w NOT IN {z})",
    "EXISTS w IN x.a (w IN {z})",
    "EXISTS v IN {z} (v = x.c)",
    "NOT (EXISTS v IN {z} (v = x.c))",
    "FORALL v IN {z} (v > x.c)",
    "x.c = SUM({z})",
    "x.c <= COUNT({z}) + 1",
]


def x_rows():
    """Rows for X(a: set of int, b: int, c: int)."""
    return st.lists(
        st.builds(
            lambda a, b, c: Tup(a=frozenset(a), b=b, c=c),
            st.frozensets(st.integers(0, 3), max_size=3),
            st.integers(0, 2),
            st.integers(0, 3),
        ),
        max_size=5,
        unique=True,
    )


def y_rows():
    """Rows for Y(a: int, b: int)."""
    return st.lists(
        st.builds(lambda a, b: Tup(a=a, b=b), st.integers(0, 3), st.integers(0, 2)),
        max_size=5,
        unique=True,
    )


def make_catalog(xs, ys):
    cat = Catalog()
    cat.add_rows("X", xs)
    cat.add_rows("Y", ys)
    return cat


@pytest.mark.parametrize("engine", ["logical", "physical"])
@pytest.mark.parametrize("template", PREDICATES, ids=PREDICATES)
@settings(max_examples=40, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_where_clause_equivalence(template, engine, xs, ys):
    cat = make_catalog(xs, ys)
    query = f"SELECT x FROM X x WHERE {template.format(z=Z)}"
    oracle = run_query(query, cat, engine="interpret")
    translated = run_query(query, cat, engine=engine)
    assert translated.value == oracle.value


@settings(max_examples=40, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_conjunction_of_flat_and_grouping(xs, ys):
    cat = make_catalog(xs, ys)
    query = (
        f"SELECT x.c FROM X x WHERE x.c IN {Z} AND x.a SUBSETEQ {Z} AND x.c >= 0"
    )
    assert (
        run_query(query, cat, engine="logical").value
        == run_query(query, cat, engine="interpret").value
    )


@settings(max_examples=40, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_select_clause_nesting(xs, ys):
    cat = make_catalog(xs, ys)
    query = f"SELECT (c = x.c, ys = {Z}) FROM X x"
    assert (
        run_query(query, cat, engine="logical").value
        == run_query(query, cat, engine="interpret").value
    )


@settings(max_examples=40, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_unnest_collapse(xs, ys):
    cat = make_catalog(xs, ys)
    query = f"UNNEST(SELECT (SELECT (c = x.c, a = y.a) FROM Y y WHERE x.b = y.b) FROM X x)"
    assert (
        run_query(query, cat, engine="logical").value
        == run_query(query, cat, engine="interpret").value
    )


@pytest.mark.parametrize("engine", ["logical", "physical"])
@settings(max_examples=30, deadline=None)
@given(xs=x_rows(), ys=y_rows(), zs=y_rows())
def test_three_block_linear_query(engine, xs, ys, zs):
    """Section 8-style pipeline: nested subquery inside the subquery."""
    cat = make_catalog(xs, ys)
    cat.add_rows("W", zs)
    query = (
        "SELECT x FROM X x WHERE x.a SUBSETEQ "
        "(SELECT y.a FROM Y y WHERE x.b = y.b AND "
        "y.a IN (SELECT w.a FROM W w WHERE w.b = y.b))"
    )
    assert (
        run_query(query, cat, engine=engine).value
        == run_query(query, cat, engine="interpret").value
    )


@settings(max_examples=30, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_disjunction_is_interpreted_but_correct(xs, ys):
    # OR between a flat and a grouping predicate is outside the conjunct
    # machinery; the translator must fall back without changing semantics.
    cat = make_catalog(xs, ys)
    query = f"SELECT x FROM X x WHERE x.c IN {Z} OR x.a SUBSETEQ {Z}"
    assert (
        run_query(query, cat, engine="logical").value
        == run_query(query, cat, engine="interpret").value
    )


@settings(max_examples=30, deadline=None)
@given(xs=x_rows(), ys=y_rows())
def test_uncorrelated_subquery_constant(xs, ys):
    cat = make_catalog(xs, ys)
    query = "SELECT x FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE y.b = 0)"
    assert (
        run_query(query, cat, engine="logical").value
        == run_query(query, cat, engine="interpret").value
    )
