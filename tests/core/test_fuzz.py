"""Differential fuzzing: random nested queries on all three engines.

The generator covers the Table 2 predicate classes, multi-level nesting,
SELECT-clause nesting, quantifiers, disjunctions (interpreter fallback),
and empty tables. Any divergence between the interpreter (the semantics)
and the translated logical/physical plans fails loudly with the query.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import check_engines_agree, random_catalog, random_query


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 10_000_000))
def test_random_queries_agree_on_all_engines(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query = random_query(rng)
    check_engines_agree(query, catalog)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000_000))
def test_random_queries_on_empty_tables(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, max_rows=0)
    query = random_query(rng)
    result = check_engines_agree(query, catalog)
    assert result == frozenset()


@pytest.mark.parametrize("seed", range(12))
def test_generator_is_deterministic(seed):
    a = random_query(random.Random(seed))
    b = random_query(random.Random(seed))
    assert a == b


def test_generator_produces_variety():
    queries = {random_query(random.Random(s)) for s in range(200)}
    assert len(queries) > 150  # overwhelmingly distinct
    text = " ".join(queries)
    # All the interesting constructs appear somewhere in the corpus.
    for marker in ("SUBSETEQ", "COUNT", "INTERSECT", "FORALL", "EXISTS", " OR ", "NOT IN"):
        assert marker in text, f"{marker} never generated"


def test_check_engines_agree_returns_the_common_result():
    rng = random.Random(0)
    catalog = random_catalog(rng, max_rows=4)
    result = check_engines_agree("SELECT x.c FROM X x", catalog)
    assert result == frozenset(x["c"] for x in catalog["X"].rows)


def test_fuzz_campaign_clean_run():
    from repro.testing import fuzz_campaign

    assert fuzz_campaign(n_queries=25, seed=11) == []


def test_fuzz_campaign_reports_divergence(monkeypatch):
    import repro.testing as testing_mod
    from repro.testing import fuzz_campaign

    def always_diverge(query, catalog, engines):
        raise AssertionError("synthetic divergence")

    monkeypatch.setattr(testing_mod, "check_engines_agree", always_diverge)
    failures = fuzz_campaign(n_queries=3, seed=0)
    assert len(failures) == 3
    assert all("synthetic divergence" in msg for _, _, msg in failures)


def test_check_engines_agree_detects_divergence(monkeypatch):
    import repro.testing as testing_mod

    rng = random.Random(0)
    catalog = random_catalog(rng, max_rows=4)
    real_run_query = testing_mod.run_query

    def lying_run_query(query, cat, engine="physical", **kw):
        result = real_run_query(query, cat, engine=engine, **kw)
        if engine == "physical":
            result.value = frozenset()  # sabotage one engine
        return result

    monkeypatch.setattr(testing_mod, "run_query", lying_run_query)
    with pytest.raises(AssertionError, match="diverged"):
        check_engines_agree("SELECT x.c FROM X x", catalog)
