"""End-to-end query tracing: rewrite decisions, spans, and exports.

Covers the trace primitives themselves (events, scopes, spans), then the
load-bearing guarantee: for every row of the reconstructed Table 2 the
classifier's trace names the row it matched and the EXISTS / NOT_EXISTS /
GROUPING verdict, and full-pipeline traces show the translator's join
choice — including the SUBSETEQ-bug query tracing to a nest join.
"""

import json

import pytest

from repro.core.classify import classify
from repro.core.normalize import normalize_predicate
from repro.core.pipeline import clear_plan_cache, prepare, prepared, run_query
from repro.core.trace import (
    QueryTrace,
    chrome_trace,
    current_trace,
    emit,
    plan_fingerprint,
    span,
    trace_scope,
)
from repro.lang.ast import SFW
from repro.lang.parser import parse
from repro.workloads import (
    COUNT_BUG_NESTED,
    SUBSETEQ_BUG_NESTED,
    make_join_workload,
    make_set_workload,
)

from tests.core.test_classify import TABLE2, Z


class TestPrimitives:
    def test_emit_without_scope_is_a_noop(self):
        assert current_trace() is None
        emit("classify", "table2:in")  # must not raise, records nowhere

    def test_scope_installs_nests_and_restores(self):
        outer, inner = QueryTrace(), QueryTrace()
        with trace_scope(outer):
            assert current_trace() is outer
            emit("phase", "a")
            with trace_scope(inner):
                assert current_trace() is inner
                emit("phase", "b")
            assert current_trace() is outer
        assert current_trace() is None
        assert outer.rules() == ["a"]
        assert inner.rules() == ["b"]

    def test_span_records_duration(self):
        trace = QueryTrace()
        with trace_scope(trace):
            with span("parse"):
                pass
        (event,) = trace.events
        assert event.phase == "parse"
        assert event.dur >= 0.0

    def test_event_to_dict_elides_empty_fields(self):
        trace = QueryTrace()
        trace.record("classify", "table2:in", verdict="exists", table2_row="in")
        d = trace.events[0].to_dict()
        assert d["verdict"] == "exists"
        assert "before" not in d and "detail" not in d

    def test_trace_ids_are_unique(self):
        assert QueryTrace().trace_id != QueryTrace().trace_id

    def test_render_mentions_query_and_rules(self):
        trace = QueryTrace(query="SELECT 1")
        trace.record("classify", "table2:in", verdict="exists")
        text = trace.render()
        assert "SELECT 1" in text and "table2:in" in text and "verdict=exists" in text

    def test_plan_fingerprint_stable_and_discriminating(self):
        cat = make_join_workload(n_left=5, n_right=10, seed=0).catalog
        plan_a = prepare(COUNT_BUG_NESTED, cat).plan
        plan_b = prepare("SELECT r.a FROM R r", cat).plan
        assert plan_fingerprint(plan_a) == plan_fingerprint(plan_a)
        assert plan_fingerprint(plan_a) != plan_fingerprint(plan_b)


@pytest.mark.parametrize("template,expected", TABLE2, ids=[t for t, _ in TABLE2])
def test_table2_rows_trace_rule_and_verdict(template, expected):
    pred = normalize_predicate(parse(template.format(z=Z)))
    sub = parse(Z)
    assert isinstance(sub, SFW)
    trace = QueryTrace()
    with trace_scope(trace):
        result = classify(pred, sub)
    events = [e for e in trace.events if e.phase == "classify"]
    assert len(events) == 1
    (event,) = events
    # The rule names the Table 2 row that matched, and the verdict is the
    # classification the equivalence tests prove correct.
    assert event.rule == f"table2:{result.table2_row}"
    assert event.table2_row == result.table2_row
    assert event.verdict == expected.value
    assert trace.verdicts() == [expected.value]


class TestPipelineTraces:
    """prepared()/run_query() traces carry the translator's decisions."""

    @pytest.fixture
    def join_catalog(self):
        return make_join_workload(n_left=20, n_right=60, seed=1).catalog

    def _trace_of(self, text, catalog):
        clear_plan_cache()  # a plan-cache hit would skip preparation
        return prepared(text, catalog).trace

    def test_count_bug_traces_to_nest_join(self, join_catalog):
        trace = self._trace_of(COUNT_BUG_NESTED, join_catalog)
        assert "grouping" in trace.verdicts()
        assert "nestjoin" in trace.rewrite_kinds()
        assert any(e.table2_row == "count-positive" or e.table2_row for e in trace.events)

    def test_subseteq_bug_traces_to_nest_join(self):
        catalog = make_set_workload(n_left=10, n_right=10, seed=2)
        trace = self._trace_of(SUBSETEQ_BUG_NESTED, catalog)
        assert trace.verdicts() == ["grouping"]
        assert trace.rewrite_kinds() == ["nestjoin"]
        classify_events = [e for e in trace.events if e.phase == "classify"]
        # SUBSETEQ has no flat rewrite: it falls through to the grouping row.
        assert classify_events[0].rule == "table2:grouping"

    def test_semijoin_and_antijoin_trace(self, join_catalog):
        semi = self._trace_of(
            "SELECT r.a FROM R r WHERE r.c IN (SELECT s.c FROM S s WHERE s.d = r.b)",
            join_catalog,
        )
        assert semi.verdicts() == ["exists"]
        assert semi.rewrite_kinds() == ["semijoin"]
        anti = self._trace_of(
            "SELECT r.a FROM R r WHERE r.c NOT IN (SELECT s.c FROM S s WHERE s.d = r.b)",
            join_catalog,
        )
        assert anti.verdicts() == ["not_exists"]
        assert anti.rewrite_kinds() == ["antijoin"]

    def test_trace_has_phase_spans_and_fingerprints(self, join_catalog):
        trace = self._trace_of(COUNT_BUG_NESTED, join_catalog)
        phases = {e.phase for e in trace.events}
        assert {"parse", "typecheck", "translate", "classify", "rewrite"} <= phases
        fixpoints = [e for e in trace.events if e.rule == "fixpoint"]
        assert fixpoints and fixpoints[0].after  # final plan fingerprint

    def test_run_query_analyze_attaches_trace_and_stats(self, join_catalog):
        trace = QueryTrace(query=COUNT_BUG_NESTED)
        result = run_query(
            COUNT_BUG_NESTED, join_catalog, analyze=True, trace=trace
        )
        assert result.trace is trace
        assert result.analyzed is not None
        assert result.analyzed.stats.rows == len(result.value)
        assert "execute" in trace.rules()

    def test_chrome_export_shape(self, join_catalog):
        trace = QueryTrace(query=COUNT_BUG_NESTED)
        result = run_query(COUNT_BUG_NESTED, join_catalog, analyze=True, trace=trace)
        doc = chrome_trace(trace, result.analyzed)
        payload = json.loads(json.dumps(doc))  # must be JSON-serializable
        assert payload["otherData"]["trace_id"] == trace.trace_id
        events = payload["traceEvents"]
        assert events, "expected trace events"
        for event in events:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Operator spans (tid 2) are present alongside pipeline spans (tid 1).
        assert {e["tid"] for e in events} == {1, 2}
