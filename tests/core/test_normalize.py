"""Unit tests for predicate normalization."""

from repro.core.normalize import normalize_predicate, push_not
from repro.lang.ast import Cmp, CmpOp, Const, Not, Quant, QuantKind
from repro.lang.parser import parse


def norm(src):
    return normalize_predicate(parse(src))


class TestNegationPushing:
    def test_double_negation(self):
        assert norm("NOT (NOT (x.a = 1))") == parse("x.a = 1")

    def test_de_morgan_and(self):
        assert norm("NOT (x.a = 1 AND x.b = 2)") == parse("x.a <> 1 OR x.b <> 2")

    def test_de_morgan_or(self):
        assert norm("NOT (x.a = 1 OR x.b = 2)") == parse("x.a <> 1 AND x.b <> 2")

    def test_comparison_flipping(self):
        assert norm("NOT (x.a < 1)") == parse("x.a >= 1")
        assert norm("NOT (x.a IN z)") == parse("x.a NOT IN z")
        assert norm("NOT (x.a NOT IN z)") == parse("x.a IN z")

    def test_subset_ops_keep_not(self):
        # ⊆ has no dual operator in the language: NOT stays.
        assert norm("NOT (x.a SUBSETEQ z)") == Not(parse("x.a SUBSETEQ z"))

    def test_not_exists_is_kept(self):
        e = norm("NOT (EXISTS v IN z (v = 1))")
        assert isinstance(e, Not)
        assert isinstance(e.operand, Quant)

    def test_constants(self):
        assert norm("NOT TRUE") == Const(False)
        assert norm("NOT FALSE") == Const(True)


class TestForallElimination:
    def test_forall_becomes_not_exists(self):
        e = norm("FORALL v IN z (v = 1)")
        assert isinstance(e, Not)
        inner = e.operand
        assert isinstance(inner, Quant) and inner.kind == QuantKind.EXISTS
        assert inner.pred == parse("v <> 1")

    def test_nested_forall(self):
        e = norm("NOT (FORALL v IN z (v = 1))")
        # ¬∀v(p) = ∃v(¬p)
        assert isinstance(e, Quant) and e.kind == QuantKind.EXISTS
        assert e.pred == parse("v <> 1")


class TestCountCanonicalisation:
    def test_zero_on_left_is_mirrored(self):
        assert norm("0 = COUNT(z)") == parse("COUNT(z) = 0")

    def test_ge_one_becomes_gt_zero(self):
        assert norm("COUNT(z) >= 1") == parse("COUNT(z) > 0")

    def test_ne_zero_becomes_gt_zero(self):
        assert norm("COUNT(z) <> 0") == parse("COUNT(z) > 0")

    def test_lt_one_becomes_eq_zero(self):
        assert norm("COUNT(z) < 1") == parse("COUNT(z) = 0")

    def test_le_zero_becomes_eq_zero(self):
        assert norm("COUNT(z) <= 0") == parse("COUNT(z) = 0")

    def test_not_count_positive(self):
        assert norm("NOT (COUNT(z) > 0)") == parse("COUNT(z) = 0")

    def test_other_counts_untouched(self):
        assert norm("COUNT(z) = 3") == parse("COUNT(z) = 3")
        assert norm("x.a = COUNT(z)") == parse("x.a = COUNT(z)")


class TestPushNotDirect:
    def test_push_not_without_negation_is_identity_on_leaves(self):
        e = parse("x.a SUBSETEQ z")
        assert push_not(e) == e
