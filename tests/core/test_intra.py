"""Tests for intra-expression rewrites on the interpreted path."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intra import simplify_nested_predicates
from repro.core.pipeline import prepare, run_query
from repro.lang.ast import Not, Quant, QuantKind
from repro.lang.eval import Env, evaluate
from repro.lang.parser import parse
from repro.model.values import Tup


class TestRewriteShapes:
    def test_in_subquery_becomes_exists(self):
        e = simplify_nested_predicates(
            parse("x.c IN (SELECT v + 1 FROM x.a v WHERE v > 0)")
        )
        assert isinstance(e, Quant) and e.kind == QuantKind.EXISTS
        assert e.domain == parse("x.a")
        assert e.pred == parse("v > 0 AND (v + 1) = x.c")

    def test_not_in_becomes_not_exists(self):
        e = simplify_nested_predicates(parse("x.c NOT IN (SELECT v FROM x.a v)"))
        assert isinstance(e, Not) and isinstance(e.operand, Quant)

    def test_emptiness_becomes_not_exists(self):
        e = simplify_nested_predicates(parse("(SELECT v FROM x.a v WHERE v > 1) = {}"))
        assert isinstance(e, Not)
        assert e.operand == Quant(QuantKind.EXISTS, "v", parse("x.a"), parse("v > 1"))

    def test_count_zero_becomes_not_exists(self):
        e = simplify_nested_predicates(parse("COUNT(SELECT v FROM x.a v) = 0"))
        assert isinstance(e, Not) and isinstance(e.operand, Quant)

    def test_count_positive_becomes_exists(self):
        e = simplify_nested_predicates(parse("COUNT(SELECT v FROM x.a v) > 0"))
        assert isinstance(e, Quant)

    def test_capture_is_avoided(self):
        # The member expression mentions v; the subquery variable v must be
        # renamed before being pulled into a quantifier over it.
        e = simplify_nested_predicates(parse("v IN (SELECT v2 * 1 FROM s v2 WHERE v2 > v)"))
        # no rename needed here (member var differs) — now force a clash:
        e2 = simplify_nested_predicates(parse("v IN (SELECT v + 0 FROM s v)"))
        assert isinstance(e2, Quant)
        assert e2.var != "v"

    def test_untouched_shapes(self):
        for src in ["x.a SUBSETEQ (SELECT v FROM x.a v)", "x.c = COUNT(SELECT v FROM x.a v)"]:
            e = parse(src)
            assert simplify_nested_predicates(e) == e


@settings(max_examples=100, deadline=None)
@given(
    members=st.frozensets(st.integers(0, 5), max_size=5),
    c=st.integers(0, 6),
)
def test_membership_rewrite_is_equivalent(members, c):
    env = Env({"x": Tup(a=members, c=c)})
    original = parse("x.c IN (SELECT v + 1 FROM x.a v WHERE v > 0)")
    rewritten = simplify_nested_predicates(original)
    assert evaluate(original, env) == evaluate(rewritten, env)


@settings(max_examples=100, deadline=None)
@given(
    members=st.frozensets(st.integers(0, 5), max_size=5),
    c=st.integers(0, 6),
)
def test_emptiness_rewrite_is_equivalent(members, c):
    env = Env({"x": Tup(a=members, c=c)})
    for src in [
        "(SELECT v FROM x.a v WHERE v > x.c) = {}",
        "(SELECT v FROM x.a v WHERE v > x.c) <> {}",
        "COUNT(SELECT v FROM x.a v WHERE v < x.c) = 0",
        "COUNT(SELECT v FROM x.a v WHERE v < x.c) > 0",
    ]:
        original = parse(src)
        assert evaluate(original, env) == evaluate(
            simplify_nested_predicates(original), env
        )


class TestTranslatorIntegration:
    def test_q1_conjunct_gets_quantifier_form(self):
        from repro.workloads import Q1_SAME_STREET, make_company

        cat = make_company(n_departments=3, n_employees=12, seed=1)
        tr = prepare(Q1_SAME_STREET, cat)
        # The interpreted conjunct was rewritten: the plan's Select holds a
        # quantifier rather than an IN over a subquery.
        from repro.algebra.plan import Select

        node = tr.plan
        selects = []
        stack = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, Select):
                selects.append(n)
            stack.extend(n.children())
        assert any(isinstance(s.pred, Quant) for s in selects)

    def test_q1_results_unchanged(self):
        from repro.workloads import Q1_SAME_STREET, make_company

        cat = make_company(n_departments=5, n_employees=30, seed=3)
        oracle = run_query(Q1_SAME_STREET, cat, engine="interpret").value
        assert run_query(Q1_SAME_STREET, cat, engine="logical").value == oracle
        assert run_query(Q1_SAME_STREET, cat, engine="physical").value == oracle

    def test_fuzz_still_agrees(self):
        from repro.testing import check_engines_agree, random_catalog, random_query

        for seed in range(60):
            rng = random.Random(seed)
            check_engines_agree(random_query(rng), random_catalog(rng))
