"""Unit tests for the Table 2 classifier.

Each row of the reconstructed Table 2 (DESIGN.md §5) asserts the expected
classification; the semantic *equivalence* of the rewrites is proven
separately by the differential tests in test_equivalence.py.
"""

import pytest

from repro.core.classify import PredicateClass, classify, contains_expr, replace_expr
from repro.core.normalize import normalize_predicate
from repro.lang.ast import SFW, Cmp, CmpOp, Var, is_true_const
from repro.lang.parser import parse

Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"


def classify_text(template: str):
    pred = normalize_predicate(parse(template.format(z=Z)))
    sub = parse(Z)
    assert isinstance(sub, SFW)
    return classify(pred, sub)


TABLE2 = [
    # -- SQL-expressible rows (above the line in the paper's Table 2) -----
    ("{z} = {{}}", PredicateClass.NOT_EXISTS),
    ("{{}} = {z}", PredicateClass.NOT_EXISTS),
    ("{z} <> {{}}", PredicateClass.EXISTS),
    ("COUNT({z}) = 0", PredicateClass.NOT_EXISTS),
    ("0 = COUNT({z})", PredicateClass.NOT_EXISTS),
    ("COUNT({z}) > 0", PredicateClass.EXISTS),
    ("COUNT({z}) <> 0", PredicateClass.EXISTS),
    ("COUNT({z}) >= 1", PredicateClass.EXISTS),
    ("COUNT({z}) < 1", PredicateClass.NOT_EXISTS),
    ("x.c = COUNT({z})", PredicateClass.GROUPING),
    ("COUNT({z}) = x.c", PredicateClass.GROUPING),
    ("x.c < COUNT({z})", PredicateClass.GROUPING),
    ("x.c IN {z}", PredicateClass.EXISTS),
    ("x.c NOT IN {z}", PredicateClass.NOT_EXISTS),
    ("NOT (x.c IN {z})", PredicateClass.NOT_EXISTS),
    # -- TM-specific rows (set-valued attribute a) ------------------------
    ("x.a SUBSETEQ {z}", PredicateClass.GROUPING),
    ("x.a SUBSET {z}", PredicateClass.GROUPING),
    ("x.a SUPSET {z}", PredicateClass.GROUPING),
    ("x.a SUPSETEQ {z}", PredicateClass.NOT_EXISTS),
    ("NOT (x.a SUPSETEQ {z})", PredicateClass.EXISTS),
    ("{z} SUBSETEQ x.a", PredicateClass.NOT_EXISTS),
    ("x.a = {z}", PredicateClass.GROUPING),
    ("x.a <> {z}", PredicateClass.GROUPING),
    ("(x.a INTERSECT {z}) = {{}}", PredicateClass.NOT_EXISTS),
    ("({z} INTERSECT x.a) = {{}}", PredicateClass.NOT_EXISTS),
    ("(x.a INTERSECT {z}) <> {{}}", PredicateClass.EXISTS),
    ("FORALL w IN x.a (w IN {z})", PredicateClass.GROUPING),
    ("FORALL w IN x.a (w NOT IN {z})", PredicateClass.NOT_EXISTS),
    ("EXISTS w IN x.a (w IN {z})", PredicateClass.EXISTS),
    # -- explicit calculus forms ------------------------------------------
    ("EXISTS v IN {z} (TRUE)", PredicateClass.EXISTS),
    ("EXISTS v IN {z} (v = x.c)", PredicateClass.EXISTS),
    ("NOT (EXISTS v IN {z} (v = x.c))", PredicateClass.NOT_EXISTS),
    ("FORALL v IN {z} (v > x.c)", PredicateClass.NOT_EXISTS),
    # -- other aggregates always group -------------------------------------
    ("x.c = SUM({z})", PredicateClass.GROUPING),
    ("x.c <= MAX({z})", PredicateClass.GROUPING),
    ("AVG({z}) = x.c", PredicateClass.GROUPING),
    ("MIN({z}) <> x.c", PredicateClass.GROUPING),
]


@pytest.mark.parametrize("template,expected", TABLE2, ids=[t for t, _ in TABLE2])
def test_table2_classification(template, expected):
    assert classify_text(template).kind == expected


class TestRewriteShape:
    def test_membership_member_pred(self):
        cls = classify_text("x.c IN {z}")
        assert cls.kind == PredicateClass.EXISTS
        assert cls.member_pred == Cmp(CmpOp.EQ, Var(cls.var), parse("x.c"))

    def test_emptiness_member_pred_is_true(self):
        cls = classify_text("{z} = {{}}")
        assert is_true_const(cls.member_pred)

    def test_supseteq_member_pred(self):
        cls = classify_text("x.a SUPSETEQ {z}")
        assert cls.member_pred == Cmp(CmpOp.NOT_IN, Var(cls.var), parse("x.a"))

    def test_intersection_member_pred(self):
        cls = classify_text("(x.a INTERSECT {z}) <> {{}}")
        assert cls.member_pred == Cmp(CmpOp.IN, Var(cls.var), parse("x.a"))

    def test_explicit_exists_keeps_pred(self):
        cls = classify_text("EXISTS v IN {z} (v = x.c)")
        assert cls.var == "v"
        assert cls.member_pred == parse("v = x.c")

    def test_grouping_grouped_pred_replaces_subquery(self):
        cls = classify_text("x.a SUBSETEQ {z}")
        grouped = cls.grouped_pred("zs")
        assert grouped == parse("x.a SUBSETEQ zs")

    def test_fresh_member_var_avoids_collisions(self):
        cls = classify_text("x.c IN {z}")
        assert cls.var not in {"x", "y", "Y"}


class TestDomainGuards:
    def test_subquery_in_quantifier_domain_and_pred_groups(self):
        # ∃v∈z (v IN z): z occurs in domain *and* body — not a flat form.
        pred = normalize_predicate(parse(f"EXISTS v IN {Z} (v IN {Z})"))
        sub = parse(Z)
        assert classify(pred, sub).kind == PredicateClass.GROUPING

    def test_unknown_shape_groups(self):
        cls = classify_text("COUNT({z}) + 1 = x.c")
        assert cls.kind == PredicateClass.GROUPING


class TestExprHelpers:
    def test_contains_expr(self):
        sub = parse(Z)
        assert contains_expr(parse(f"x.c IN {Z}"), sub)
        assert not contains_expr(parse("x.c IN w"), sub)

    def test_replace_expr_all_occurrences(self):
        sub = parse(Z)
        pred = parse(f"COUNT({Z}) = COUNT({Z})")
        out = replace_expr(pred, sub, Var("zs"))
        assert out == parse("COUNT(zs) = COUNT(zs)")

    def test_replace_expr_at_root(self):
        sub = parse(Z)
        assert replace_expr(sub, sub, Var("zs")) == Var("zs")
