"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.engine.table import Catalog
from repro.io import dump_catalog
from repro.model.values import Tup


@pytest.fixture
def db(tmp_path):
    catalog = Catalog()
    catalog.add_rows("R", [Tup(a=1, b=2, c=10), Tup(a=2, b=0, c=99)])
    catalog.add_rows("S", [Tup(c=10, d=1), Tup(c=10, d=2)])
    path = tmp_path / "db.json"
    dump_catalog(catalog, path)
    return str(path)


COUNT_QUERY = "SELECT r FROM R r WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)"


class TestQueryCommand:
    def test_runs_and_prints_rows(self, db, capsys):
        assert main(["query", COUNT_QUERY, "--db", db]) == 0
        out = capsys.readouterr()
        assert "(a=1, b=2, c=10)" in out.out
        assert "(a=2, b=0, c=99)" in out.out  # the dangling row
        assert "2 rows" in out.err

    @pytest.mark.parametrize("engine", ["interpret", "logical", "physical"])
    def test_engines(self, db, capsys, engine):
        assert main(["query", COUNT_QUERY, "--db", db, "--engine", engine]) == 0
        assert engine in capsys.readouterr().err

    def test_type_error_is_reported(self, db, capsys):
        assert main(["query", "SELECT r.nope FROM R r", "--db", db]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_typecheck_flag(self, db, capsys):
        # Without typecheck the error surfaces at runtime instead.
        code = main(["query", "SELECT r.a FROM R r", "--db", db, "--no-typecheck"])
        assert code == 0

    def test_parse_error_is_reported(self, db, capsys):
        assert main(["query", "SELECT FROM", "--db", db]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyzeAndTrace:
    def test_query_analyze_prints_operator_stats(self, db, capsys):
        assert main(["query", COUNT_QUERY, "--db", db, "--analyze"]) == 0
        out = capsys.readouterr().out
        # Per-operator actuals for a nest-join plan, including the
        # build-cache account and the peak group size.
        assert "NestJoin" in out
        assert "act=" in out and "in=" in out and "q=" in out and "ms" in out
        assert "cache" in out and "miss" in out
        assert "peak group" in out

    def test_explain_analyze(self, db, capsys):
        assert main(["explain", COUNT_QUERY, "--db", db, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "analyze:" in out
        assert "act=" in out and "q=" in out

    def test_trace_text(self, db, capsys):
        assert main(["trace", COUNT_QUERY, "--db", db]) == 0
        out = capsys.readouterr().out
        assert "trace t" in out
        assert "table2:" in out and "verdict=grouping" in out
        assert "nestjoin" in out
        assert "act=" in out  # operator tree appended

    def test_trace_chrome_is_valid_trace_event_json(self, db, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(
            ["trace", COUNT_QUERY, "--db", db, "--format", "chrome", "--out", str(out_path)]
        ) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        assert doc["otherData"]["query"] == COUNT_QUERY

    def test_trace_chrome_to_stdout(self, db, capsys):
        assert main(["trace", COUNT_QUERY, "--db", db, "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]


class TestOtherCommands:
    def test_explain(self, db, capsys):
        assert main(["explain", COUNT_QUERY, "--db", db]) == 0
        out = capsys.readouterr().out
        assert "nestjoin" in out
        assert "Scan R AS r" in out

    def test_tables(self, db, capsys):
        assert main(["tables", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "R: 2 rows" in out
        assert "S: 2 rows" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "dangling" in out
        assert "(a=2, b=0, c=99)" in out

    def test_fuzz(self, capsys):
        assert main(["fuzz", "--n", "15", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "15 random queries agreed" in out

    def test_schema_option_validates(self, db, tmp_path, capsys):
        good = tmp_path / "good.ddl"
        good.write_text(
            "CLASS RRow WITH EXTENSION R ATTRIBUTES a : INT, b : INT, c : INT END RRow"
        )
        assert main(["tables", "--db", db, "--schema", str(good)]) == 0
        bad = tmp_path / "bad.ddl"
        bad.write_text(
            "CLASS RRow WITH EXTENSION R ATTRIBUTES a : STRING END RRow"
        )
        assert main(["tables", "--db", db, "--schema", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_repeat_reports_latency_percentiles(self, db, capsys):
        assert main(["query", COUNT_QUERY, "--db", db, "--repeat", "5"]) == 0
        err = capsys.readouterr().err
        assert "5 calls" in err
        assert "p50" in err and "p95" in err
        assert "plan cache" in err

    def test_serve_bench(self, tmp_path, capsys):
        out_json = tmp_path / "serve.json"
        code = main(
            [
                "serve-bench",
                "--workers", "2",
                "--requests", "30",
                "--no-oracle",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench: 30 requests" in out
        assert "result cache" in out
        report = json.loads(out_json.read_text())
        assert report["lost_requests"] == 0
        assert report["outcomes"].get("ok") == 30

    def test_caches_plain_renders_live_endpoint(self, capsys):
        from repro.server.exposition import serve_metrics
        from repro.server.service import QueryService
        from repro.server.workload import make_requests, mixed_catalog

        catalog = mixed_catalog(seed=0, n_left=20, n_right=80, n_chain=4)
        with QueryService(catalog, workers=2) as service:
            service.serve_all(make_requests(20, seed=0))
            with serve_metrics(service) as server:
                code = main(
                    ["caches", "--url", server.url, "--plain",
                     "--iterations", "1", "--top", "2"]
                )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro caches —" in out and "total=" in out
        for name in ("plan", "build", "result", "shard-catalog"):
            assert name in out
        assert "KiB" in out or "MiB" in out  # nonzero human-readable bytes
        assert "\x1b[2J" not in out  # --plain never clears the screen

    def test_caches_unreachable_endpoint_fails_cleanly(self, capsys):
        code = main(["caches", "--url", "http://127.0.0.1:9", "--iterations", "1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_bench_cache_budget_flag(self, capsys):
        from repro.core.pipeline import set_plan_cache_budget
        from repro.engine.cache import set_build_cache_budget

        try:
            code = main(
                ["serve-bench", "--workers", "2", "--requests", "20",
                 "--no-oracle", "--cache-budget-mb", "0.002"]
            )
        finally:
            set_plan_cache_budget(None)
            set_build_cache_budget(None)
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench: 20 requests" in out

    def test_missing_db_file(self, tmp_path, capsys):
        with pytest.raises(FileNotFoundError):
            main(["tables", "--db", str(tmp_path / "ghost.json")])

    def test_bad_catalog_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2]))
        assert main(["tables", "--db", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
