"""Every example script must run cleanly — examples are part of the API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "company_queries", "count_bug_demo", "unnesting_walkthrough", "full_workflow"} <= names
