"""The SUBSETEQ bug (Section 4) — the COUNT bug generalized (E4's correctness half)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import result_set, run_logical
from repro.baselines import kim_style_subseteq_plan
from repro.core.pipeline import run_query
from repro.engine.table import Catalog
from repro.model.values import Tup
from repro.workloads import SUBSETEQ_BUG_NESTED, make_set_workload


@pytest.fixture(scope="module")
def catalog():
    return make_set_workload(n_left=60, n_right=40, match_rate=0.5, seed=21)


@pytest.fixture(scope="module")
def oracle(catalog):
    return run_query(SUBSETEQ_BUG_NESTED, catalog, engine="interpret").value


class TestSubseteqBug:
    def test_kim_style_plan_loses_dangling_empty_set_tuples(self, catalog, oracle):
        got = result_set(run_logical(kim_style_subseteq_plan(), catalog))
        missing = oracle - got
        assert missing, "workload must trigger the SUBSETEQ bug"
        # Exactly the X-tuples with a = ∅ and no Y partner on b.
        y_bs = {y["b"] for y in catalog["Y"].rows}
        assert all(t["a"] == frozenset() and t["b"] not in y_bs for t in missing)
        assert got <= oracle
        assert got | missing == oracle

    def test_nest_join_translation_is_correct(self, catalog, oracle):
        assert run_query(SUBSETEQ_BUG_NESTED, catalog, engine="logical").value == oracle
        assert run_query(SUBSETEQ_BUG_NESTED, catalog, engine="physical").value == oracle


@settings(max_examples=40, deadline=None)
@given(
    xs=st.lists(
        st.builds(
            lambda a, b: Tup(a=frozenset(a), b=b),
            st.frozensets(st.integers(0, 3), max_size=2),
            st.integers(0, 3),
        ),
        max_size=8,
        unique=True,
    ),
    ys=st.lists(
        st.builds(lambda a, b: Tup(a=a, b=b), st.integers(0, 3), st.integers(0, 3)),
        max_size=8,
        unique=True,
    ),
)
def test_bug_is_only_ever_a_row_deficit(xs, ys):
    cat = Catalog()
    cat.add_rows("X", xs)
    cat.add_rows("Y", ys)
    oracle = run_query(SUBSETEQ_BUG_NESTED, cat, engine="interpret").value
    got = result_set(run_logical(kim_style_subseteq_plan(), cat))
    assert got <= oracle
    missing = oracle - got
    y_bs = {y["b"] for y in ys}
    assert all(t["a"] == frozenset() and t["b"] not in y_bs for t in missing)
