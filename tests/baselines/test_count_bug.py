"""The COUNT bug, demonstrated and fixed (E3's correctness half).

The nested query ``SELECT r FROM R r WHERE r.b = COUNT(...)`` is evaluated

* by the oracle (naive nested-loop — correct by definition),
* by Kim's two variants (buggy: they lose dangling R-tuples with b = 0),
* by the Ganski–Wong outerjoin fix (correct),
* by Muralikrishna's antijoin-predicate fix (correct),
* by this library's nest-join translation (correct).

The missing rows of Kim's plans are shown to be *exactly* the dangling
b = 0 tuples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import result_set, run_logical
from repro.baselines import (
    ganski_wong_plan,
    kim_ja_group_first_plan,
    kim_ja_join_first_plan,
    kim_type_nj_plan,
    mural_plan,
)
from repro.core.pipeline import run_query
from repro.engine.executor import run_physical
from repro.engine.table import Catalog
from repro.model.values import Tup
from repro.workloads import COUNT_BUG_NESTED, make_join_workload


@pytest.fixture(scope="module")
def workload():
    return make_join_workload(n_left=80, match_rate=0.5, fanout=2, seed=11)


@pytest.fixture(scope="module")
def oracle(workload):
    return run_query(COUNT_BUG_NESTED, workload.catalog, engine="interpret").value


def run_plan(plan, catalog):
    return result_set(run_logical(plan, catalog))


class TestKimIsBuggy:
    def test_group_first_loses_dangling_zero_rows(self, workload, oracle):
        got = run_plan(kim_ja_group_first_plan(), workload.catalog)
        missing = oracle - got
        assert missing, "the workload must trigger the COUNT bug"
        assert all(t["b"] == 0 for t in missing)
        # And nothing else is wrong: got ∪ missing == oracle, got ⊆ oracle.
        assert got <= oracle
        assert got | missing == oracle

    def test_join_first_loses_the_same_rows(self, workload, oracle):
        got = run_plan(kim_ja_join_first_plan(), workload.catalog)
        missing = oracle - got
        assert missing and all(t["b"] == 0 for t in missing)
        assert got <= oracle

    def test_both_variants_agree_with_each_other(self, workload):
        a = run_plan(kim_ja_group_first_plan(), workload.catalog)
        b = run_plan(kim_ja_join_first_plan(), workload.catalog)
        assert a == b

    def test_missing_rows_are_exactly_dangling_b0(self, workload, oracle):
        got = run_plan(kim_ja_group_first_plan(), workload.catalog)
        s_cs = {s["c"] for s in workload.catalog["S"].rows}
        expected_missing = {
            r
            for r in workload.catalog["R"].rows
            if r["b"] == 0 and r["c"] not in s_cs
        }
        assert oracle - got == expected_missing


class TestFixesAreCorrect:
    def test_ganski_wong(self, workload, oracle):
        assert run_plan(ganski_wong_plan(), workload.catalog) == oracle

    def test_mural(self, workload, oracle):
        assert run_plan(mural_plan(), workload.catalog) == oracle

    def test_nest_join_translation(self, workload, oracle):
        assert run_query(COUNT_BUG_NESTED, workload.catalog, engine="logical").value == oracle
        assert run_query(COUNT_BUG_NESTED, workload.catalog, engine="physical").value == oracle

    def test_fixes_work_on_physical_engine_too(self, workload, oracle):
        for plan in (ganski_wong_plan(), mural_plan()):
            assert result_set(run_physical(plan, workload.catalog)) == oracle


class TestTypeNJ:
    def test_in_subquery_flattening_is_correct(self):
        # Type-N/J has no aggregate → no bug (the contrast Kim relied on).
        wl = make_join_workload(n_left=60, match_rate=0.6, fanout=2, seed=3)
        query = "SELECT r FROM R r WHERE r.b IN (SELECT s.d FROM S s WHERE r.c = s.c)"
        oracle = run_query(query, wl.catalog, engine="interpret").value
        got = run_plan(kim_type_nj_plan(), wl.catalog)
        assert got == oracle


@settings(max_examples=40, deadline=None)
@given(
    r_rows=st.lists(
        st.builds(lambda b, c: Tup(b=b, c=c), st.integers(0, 3), st.integers(0, 4)),
        max_size=8,
        unique=True,
    ),
    s_rows=st.lists(
        st.builds(lambda c, d: Tup(c=c, d=d), st.integers(0, 4), st.integers(0, 3)),
        max_size=8,
        unique=True,
    ),
)
def test_fixes_match_oracle_on_random_data(r_rows, s_rows):
    cat = Catalog()
    cat.add_rows("R", r_rows)
    cat.add_rows("S", s_rows)
    oracle = run_query(COUNT_BUG_NESTED, cat, engine="interpret").value
    assert run_plan(ganski_wong_plan(), cat) == oracle
    assert run_plan(mural_plan(), cat) == oracle
    assert run_query(COUNT_BUG_NESTED, cat, engine="logical").value == oracle
    # Kim's variants may only ever lose rows, never invent them.
    assert run_plan(kim_ja_group_first_plan(), cat) <= oracle
    assert run_plan(kim_ja_join_first_plan(), cat) <= oracle
