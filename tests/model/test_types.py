"""Unit tests for the TM type system."""

import pytest

from repro.errors import TypeModelError
from repro.model.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NULL_T,
    STRING,
    BaseType,
    ClassType,
    ListType,
    SetType,
    TupleType,
    VariantType,
    is_numeric,
    is_subtype,
    type_of_value,
    unify,
)
from repro.model.values import NULL, Tup, Variant


class TestConstruction:
    def test_base_type_singletons_compare_equal(self):
        assert INT == BaseType("int")
        assert hash(STRING) == hash(BaseType("string"))

    def test_unknown_base_type_rejected(self):
        with pytest.raises(TypeModelError):
            BaseType("decimal")

    def test_tuple_type_duplicate_label_rejected(self):
        with pytest.raises(TypeModelError):
            TupleType([("a", INT), ("a", STRING)])

    def test_tuple_type_equality_order_insensitive(self):
        a = TupleType([("a", INT), ("b", STRING)])
        b = TupleType([("b", STRING), ("a", INT)])
        assert a == b
        assert hash(a) == hash(b)

    def test_variant_needs_cases(self):
        with pytest.raises(TypeModelError):
            VariantType({})

    def test_nested_constructors(self):
        t = SetType(TupleType({"kids": SetType(TupleType({"age": INT}))}))
        assert t.element.field("kids").element.field("age") == INT

    def test_field_lookup_error(self):
        with pytest.raises(TypeModelError):
            TupleType({"a": INT}).field("b")


class TestSubtyping:
    def test_reflexive(self):
        for t in (INT, STRING, SetType(INT), TupleType({"a": INT})):
            assert is_subtype(t, t)

    def test_int_subtype_of_float(self):
        assert is_subtype(INT, FLOAT)
        assert not is_subtype(FLOAT, INT)

    def test_any_is_top(self):
        assert is_subtype(INT, ANY)
        assert is_subtype(SetType(TupleType({"a": INT})), ANY)

    def test_null_is_bottom(self):
        assert is_subtype(NULL_T, INT)
        assert is_subtype(NULL_T, SetType(STRING))

    def test_tuple_width_subtyping(self):
        wide = TupleType({"a": INT, "b": STRING})
        narrow = TupleType({"a": INT})
        assert is_subtype(wide, narrow)
        assert not is_subtype(narrow, wide)

    def test_tuple_depth_subtyping(self):
        sub = TupleType({"a": INT})
        sup = TupleType({"a": FLOAT})
        assert is_subtype(sub, sup)

    def test_set_covariance(self):
        assert is_subtype(SetType(INT), SetType(FLOAT))
        assert not is_subtype(SetType(FLOAT), SetType(INT))

    def test_variant_fewer_cases(self):
        small = VariantType({"a": INT})
        big = VariantType({"a": INT, "b": STRING})
        assert is_subtype(small, big)
        assert not is_subtype(big, small)


class TestUnify:
    def test_identical(self):
        assert unify(INT, INT) == INT

    def test_numeric_promotion(self):
        assert unify(INT, FLOAT) == FLOAT

    def test_any_is_absorbing_top(self):
        # ANY is top: its LUB with anything is ANY (soundness — an ANY
        # that arose from a heterogeneous set must not be refined away).
        assert unify(ANY, INT) == ANY
        assert unify(SetType(ANY), SetType(INT)) == SetType(ANY)

    def test_null_absorbs(self):
        assert unify(NULL_T, STRING) == STRING

    def test_incompatible(self):
        assert unify(INT, STRING) is None
        assert unify(SetType(INT), ListType(INT)) is None

    def test_tuples_fieldwise(self):
        a = TupleType({"a": INT})
        b = TupleType({"a": FLOAT})
        assert unify(a, b) == TupleType({"a": FLOAT})
        assert unify(a, TupleType({"b": INT})) is None

    def test_variants_merge_cases(self):
        a = VariantType({"x": INT})
        b = VariantType({"y": STRING})
        assert unify(a, b) == VariantType({"x": INT, "y": STRING})


class TestTypeOfValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, BOOL),
            (3, INT),
            (2.5, FLOAT),
            ("s", STRING),
            (NULL, NULL_T),
            (Tup(a=1), TupleType({"a": INT})),
            (Variant("t", 1), VariantType({"t": INT})),
            (frozenset({1, 2}), SetType(INT)),
            ((1, 2), ListType(INT)),
            (frozenset(), SetType(ANY)),
        ],
    )
    def test_inference(self, value, expected):
        assert type_of_value(value) == expected

    def test_mixed_numeric_set(self):
        assert type_of_value(frozenset({1, 2.5})) == SetType(FLOAT)

    def test_heterogeneous_set_falls_back_to_any(self):
        assert type_of_value(frozenset({1, "s"})) == SetType(ANY)

    def test_is_numeric(self):
        assert is_numeric(INT) and is_numeric(FLOAT)
        assert not is_numeric(STRING)

    def test_class_type_identity(self):
        assert ClassType("Emp") == ClassType("Emp")
        assert ClassType("Emp") != ClassType("Dept")
