"""Tests for the TM DDL parser, including the paper's exact definitions."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.model.ddl import parse_schema, parse_type
from repro.model.schema import company_schema
from repro.model.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    ClassType,
    ListType,
    SetType,
    TupleType,
    VariantType,
)

#: Section 3.2 of the paper, verbatim (modulo the ℙ → P spelling).
PAPER_DDL = """
CLASS Employee WITH EXTENSION EMP
ATTRIBUTES
    name : STRING,
    address : Address,
    sal : INT,
    children : P(name : STRING, age : INT)
END Employee

CLASS Department WITH EXTENSION DEPT
ATTRIBUTES
    name : STRING,
    address : Address,
    emps : P Employee
END Department

SORT Address
TYPE (street : STRING, nr : STRING, city : STRING)
END Address
"""


class TestPaperSchema:
    def test_parses(self):
        schema = parse_schema(PAPER_DDL)
        assert set(schema.classes) == {"Employee", "Department"}
        assert set(schema.sorts) == {"Address"}

    def test_matches_builtin_company_schema(self):
        parsed = parse_schema(PAPER_DDL)
        builtin = company_schema()
        assert parsed.extension_row_type("EMP") == builtin.extension_row_type("EMP")
        assert parsed.extension_row_type("DEPT") == builtin.extension_row_type("DEPT")

    def test_extension_names(self):
        schema = parse_schema(PAPER_DDL)
        assert schema.class_by_extension("EMP").name == "Employee"
        assert schema.class_by_extension("DEPT").name == "Department"


class TestTypes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("STRING", STRING),
            ("int", INT),
            ("FLOAT", FLOAT),
            ("BOOL", BOOL),
            ("P INT", SetType(INT)),
            ("L STRING", ListType(STRING)),
            ("P P INT", SetType(SetType(INT))),
            ("(a : INT)", TupleType({"a": INT})),
            ("(a : INT, b : P STRING)", TupleType({"a": INT, "b": SetType(STRING)})),
            ("Address", ClassType("Address")),
            ("P Employee", SetType(ClassType("Employee"))),
            ("V(ok : INT | err : STRING)", VariantType({"ok": INT, "err": STRING})),
            ("V(ok : INT, err : STRING)", VariantType({"ok": INT, "err": STRING})),
        ],
    )
    def test_type_expressions(self, text, expected):
        assert parse_type(text) == expected

    def test_deep_nesting(self):
        t = parse_type("P(kids : P(age : INT), tags : L STRING)")
        assert t == SetType(
            TupleType({"kids": SetType(TupleType({"age": INT})), "tags": ListType(STRING)})
        )

    @pytest.mark.parametrize("bad", ["", "P", "(a INT)", "(: INT)", "V()", "INT extra"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_type(bad)


class TestErrors:
    def test_mismatched_end(self):
        with pytest.raises(ParseError, match="does not close"):
            parse_schema("CLASS A WITH EXTENSION AS ATTRIBUTES x : INT END B")

    def test_duplicate_class(self):
        ddl = (
            "CLASS A WITH EXTENSION AS ATTRIBUTES x : INT END A "
            "CLASS A WITH EXTENSION AS2 ATTRIBUTES x : INT END A"
        )
        with pytest.raises(SchemaError):
            parse_schema(ddl)

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError, match="CLASS or SORT"):
            parse_schema("HELLO")

    def test_keyword_as_name_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("CLASS class WITH EXTENSION C ATTRIBUTES x : INT END class")


class TestIntegration:
    def test_parsed_schema_validates_catalog(self):
        from repro.engine.table import Catalog
        from repro.model.values import Tup

        schema = parse_schema(
            "CLASS Point WITH EXTENSION POINTS ATTRIBUTES x : INT, y : INT END Point"
        )
        catalog = Catalog(schema)
        catalog.add_rows("POINTS", [Tup(x=1, y=2)])
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            catalog2 = Catalog(schema)
            catalog2.add_rows("POINTS", [Tup(x="not int", y=2)])

    def test_queries_over_ddl_defined_schema(self):
        from repro.core.pipeline import run_query
        from repro.engine.table import Catalog
        from repro.model.values import Tup

        schema = parse_schema(PAPER_DDL)
        catalog = Catalog(schema)
        addr = Tup(street="s", nr="1", city="c")
        emp = Tup(name="e1", address=addr, sal=50_000, children=frozenset())
        catalog.add_rows("EMP", [emp])
        catalog.add_rows("DEPT", [Tup(name="d1", address=addr, emps=frozenset({emp}))])
        result = run_query(
            "SELECT d.name FROM DEPT d WHERE EXISTS e IN d.emps (e.sal >= 50000)",
            catalog,
        )
        assert result.value == frozenset({"d1"})
