"""Unit tests for schemas, sorts, classes, and resolution."""

import pytest

from repro.errors import SchemaError
from repro.model.schema import Schema, company_schema
from repro.model.types import INT, STRING, ClassType, SetType, TupleType


class TestSchemaDefinition:
    def test_add_and_lookup(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"a": INT}))
        assert s.class_by_extension("CS").name == "C"
        assert s.extension_names() == ("CS",)

    def test_duplicate_class_name_rejected(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"a": INT}))
        with pytest.raises(SchemaError):
            s.add_class("C", "CS2", TupleType({"a": INT}))

    def test_duplicate_extension_rejected(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"a": INT}))
        with pytest.raises(SchemaError):
            s.add_class("D", "CS", TupleType({"a": INT}))

    def test_sort_and_class_share_namespace(self):
        s = Schema()
        s.add_sort("N", INT)
        with pytest.raises(SchemaError):
            s.add_class("N", "NS", TupleType({"a": INT}))

    def test_unknown_extension(self):
        with pytest.raises(SchemaError):
            Schema().class_by_extension("NOPE")


class TestResolution:
    def test_sort_reference_resolved(self):
        s = Schema()
        s.add_sort("Addr", TupleType({"city": STRING}))
        s.add_class("C", "CS", TupleType({"a": ClassType("Addr")}))
        row = s.extension_row_type("CS")
        assert row == TupleType({"a": TupleType({"city": STRING})})

    def test_class_reference_resolved_by_value(self):
        s = Schema()
        s.add_class("E", "ES", TupleType({"n": STRING}))
        s.add_class("D", "DS", TupleType({"emps": SetType(ClassType("E"))}))
        row = s.extension_row_type("DS")
        assert row == TupleType({"emps": SetType(TupleType({"n": STRING}))})

    def test_direct_recursion_rejected(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"self": ClassType("C")}))
        with pytest.raises(SchemaError):
            s.extension_row_type("CS")

    def test_recursion_through_set_allowed_one_level(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"peers": SetType(ClassType("C"))}))
        # A set constructor breaks the recursion at one materialisation level
        # per resolve step; resolution must terminate.
        row = s.extension_row_type("CS")
        assert "peers" in row.fields

    def test_unknown_reference(self):
        s = Schema()
        s.add_class("C", "CS", TupleType({"x": ClassType("Ghost")}))
        with pytest.raises(SchemaError):
            s.extension_row_type("CS")


class TestCompanySchema:
    def test_paper_classes_present(self):
        s = company_schema()
        assert set(s.classes) == {"Employee", "Department"}
        assert set(s.sorts) == {"Address"}
        assert s.class_by_extension("EMP").name == "Employee"
        assert s.class_by_extension("DEPT").name == "Department"

    def test_dept_row_type_materialises_employees(self):
        s = company_schema()
        dept = s.extension_row_type("DEPT")
        emps = dept.field("emps")
        assert isinstance(emps, SetType)
        emp_row = emps.element
        assert isinstance(emp_row, TupleType)
        assert set(emp_row.fields) == {"name", "address", "sal", "children"}
        assert emp_row.field("address") == TupleType(
            {"street": STRING, "nr": STRING, "city": STRING}
        )
