"""Pickle round-trips for everything the parallel engine ships cross-process.

A plan fragment crosses the process boundary as (physical operator tree,
shard tables, catalog tables); results come back as row lists / frozensets
of model values. Each of these has a pickle hazard the default protocol
trips over:

* ``Tup``/``Variant`` — immutable ``__setattr__`` breaks slot-state
  restore (and ``Tup.__getattr__`` recurses while ``_fields`` is unset);
* ``Table`` — holds an ``RLock`` plus process-local derived caches;
* ``JoinSpec`` — caches compiled closures in its instance ``__dict__``;
* physical operator trees — embed all of the above.

These tests pin the fixes: round-trip through every pickle protocol and
check both equality and *behaviour* (the restored object must still
execute / index / evaluate).
"""

import pickle

import pytest

from repro.core.pipeline import prepared
from repro.engine.batch import Batch, rows_from_batches
from repro.engine.joins.common import JoinSpec, analyse_join
from repro.engine.table import Table
from repro.lang.parser import parse
from repro.model.values import NULL, Tup, Variant, make_value
from repro.server.workload import mixed_catalog
from repro.workloads import COUNT_BUG_NESTED

PROTOCOLS = range(2, pickle.HIGHEST_PROTOCOL + 1)


def roundtrip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol))


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_tup_roundtrip(protocol):
    t = Tup(a=1, b=frozenset({2, 3}), c=Tup(d="x"))
    back = roundtrip(t, protocol)
    assert back == t
    assert hash(back) == hash(t)
    assert back.b == frozenset({2, 3})
    assert back.c.d == "x"
    # Still immutable after the round trip.
    with pytest.raises(Exception):
        back.a = 2


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_nested_value_roundtrip(protocol):
    v = make_value(
        {
            "xs": [{"a": 1}, {"a": 2}],
            "s": {1, 2, 3},
            "v": Variant("some", 7),
            "n": NULL,
        }
    )
    back = roundtrip(v, protocol)
    assert back == v
    assert back.n is NULL  # the singleton survives


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_variant_roundtrip(protocol):
    v = Variant("tag", frozenset({Tup(a=1)}))
    back = roundtrip(v, protocol)
    assert back == v
    assert hash(back) == hash(v)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_batch_roundtrip(protocol):
    batch = Batch({"x": [1, 2, 3], "y": [Tup(a=1), Tup(a=2), Tup(a=3)]}, 3, sel=[0, 2])
    back = roundtrip(batch, protocol)
    assert back.n == batch.n
    assert back.sel == batch.sel
    assert list(back.to_tups()) == list(batch.to_tups())


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_table_roundtrip(protocol):
    table = Table("R", [Tup(a=i, b=i % 3) for i in range(10)])
    # Populate the process-local derived state that must NOT be shipped.
    table.hash_index(("a",))
    back = roundtrip(table, protocol)
    assert back.name == table.name
    assert back.rows == table.rows
    assert back.version == table.version
    # A fresh uid in the receiving process: shards of one parent table must
    # never alias each other's build-cache entries.
    assert back.uid != table.uid
    # Derived state rebuilds lazily and behaves.
    assert back.hash_index(("a",))[(3,)] == table.hash_index(("a",))[(3,)]
    back.bump_version()
    assert back.version == table.version + 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_joinspec_roundtrip_recompiles(protocol):
    pred = parse("x.a = y.a AND x.b < y.b")
    spec = analyse_join(pred, ("x",), ("y",)).precompile()
    assert "_left_fns" in spec.__dict__  # closures are materialized...
    back = roundtrip(spec, protocol)
    assert isinstance(back, JoinSpec)
    assert "_left_fns" not in back.__dict__  # ...but never shipped
    assert back.left_keys == spec.left_keys
    assert back.right_keys == spec.right_keys
    assert back.residual == spec.residual
    # The restored spec recompiles lazily and evaluates.
    left = Tup(x=Tup(a=1, b=2))
    right = Tup(y=Tup(a=1, b=5))
    assert back.eval_left(left, {}) == spec.eval_left(left, {})
    assert back.eval_right(right, {}) == spec.eval_right(right, {})
    assert back.eval_residual(left.concat(right), {})


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_compiled_plan_roundtrip_executes(protocol):
    catalog = mixed_catalog(seed=0, n_left=12, n_right=30, n_chain=5)
    physical = prepared(COUNT_BUG_NESTED, catalog).compile_for(catalog)
    want = set(physical.run(catalog))
    back = roundtrip(physical, protocol)
    assert set(back.run(catalog)) == want
    assert set(rows_from_batches(back.run_batches(catalog, 16))) == want
