"""Unit tests for value/type conformance checking."""

import pytest

from repro.errors import ValidationError
from repro.model.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NULL_T,
    STRING,
    ClassType,
    ListType,
    SetType,
    TupleType,
    VariantType,
)
from repro.model.validate import check, conforms
from repro.model.values import NULL, Tup, Variant


class TestBasics:
    def test_int(self):
        assert conforms(3, INT)
        assert not conforms(3.5, INT)
        assert not conforms(True, INT)  # bools are not INTs

    def test_float_accepts_int(self):
        assert conforms(3, FLOAT)
        assert conforms(3.5, FLOAT)

    def test_bool_and_string(self):
        assert conforms(True, BOOL)
        assert not conforms(1, BOOL)
        assert conforms("s", STRING)
        assert not conforms(1, STRING)

    def test_any_accepts_everything(self):
        assert conforms(Tup(a=1), ANY)
        assert conforms(frozenset(), ANY)

    def test_null(self):
        assert conforms(NULL, NULL_T)
        assert not conforms(0, NULL_T)


class TestStructures:
    def test_tuple_exact_fields(self):
        t = TupleType({"a": INT, "b": STRING})
        assert conforms(Tup(a=1, b="x"), t)
        assert not conforms(Tup(a=1), t)  # missing
        assert not conforms(Tup(a=1, b="x", c=0), t)  # extra
        assert not conforms(Tup(a="no", b="x"), t)  # wrong type

    def test_set_members(self):
        t = SetType(INT)
        assert conforms(frozenset({1, 2}), t)
        assert conforms(frozenset(), t)
        assert not conforms(frozenset({"s"}), t)
        assert not conforms((1, 2), t)

    def test_list_members(self):
        t = ListType(STRING)
        assert conforms(("a", "b"), t)
        assert not conforms(frozenset({"a"}), t)

    def test_variant(self):
        t = VariantType({"ok": INT, "err": STRING})
        assert conforms(Variant("ok", 1), t)
        assert conforms(Variant("err", "boom"), t)
        assert not conforms(Variant("other", 1), t)
        assert not conforms(Variant("ok", "not int"), t)

    def test_deep_nesting(self):
        t = SetType(TupleType({"kids": SetType(TupleType({"age": INT}))}))
        good = frozenset({Tup(kids=frozenset({Tup(age=4)}))})
        bad = frozenset({Tup(kids=frozenset({Tup(age="x")}))})
        assert conforms(good, t)
        assert not conforms(bad, t)


class TestErrors:
    def test_unresolved_class_reference_reported(self):
        with pytest.raises(ValidationError, match="unresolved"):
            check(Tup(a=1), ClassType("C"))

    def test_error_paths_point_at_failure(self):
        t = TupleType({"a": SetType(TupleType({"b": INT}))})
        with pytest.raises(ValidationError, match=r"\$\.a"):
            check(Tup(a=frozenset({Tup(b="x")})), t)

    def test_missing_field_message(self):
        with pytest.raises(ValidationError, match="missing fields"):
            check(Tup(), TupleType({"a": INT}))
