"""Property tests for value-model laws and type inference consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.types import type_of_value
from repro.model.validate import conforms
from repro.model.values import Tup, make_value

labels = st.sampled_from(["a", "b", "c", "d"])

atoms = st.one_of(
    st.booleans(),
    st.integers(-50, 50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=4),
)

values = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.frozensets(inner, max_size=3),
        st.lists(inner, max_size=3).map(tuple),
        st.dictionaries(labels, inner, max_size=3).map(Tup),
    ),
    max_leaves=10,
)

tups = st.dictionaries(labels, values, min_size=1, max_size=4).map(Tup)


@settings(max_examples=200)
@given(values)
def test_every_value_conforms_to_its_inferred_type(v):
    assert conforms(v, type_of_value(v))


@settings(max_examples=150)
@given(tups)
def test_project_then_merge_is_identity(t):
    labels_list = list(t.labels())
    half = len(labels_list) // 2
    left = t.project(labels_list[:half])
    right = t.project(labels_list[half:])
    assert left.concat(right) == t


@settings(max_examples=150)
@given(tups, st.integers(0, 3))
def test_drop_removes_exactly_one_label(t, idx):
    label = t.labels()[idx % len(t.labels())]
    dropped = t.drop(label)
    assert label not in dropped
    assert set(dropped.labels()) == set(t.labels()) - {label}
    for other in dropped.labels():
        assert dropped[other] == t[other]


@settings(max_examples=150)
@given(tups)
def test_extend_then_drop_is_identity(t):
    extended = t.extend(zz_fresh=42)
    assert extended.drop("zz_fresh") == t


@settings(max_examples=150)
@given(tups)
def test_as_dict_round_trips(t):
    assert Tup(t.as_dict()) == t
    assert Tup(t.as_env()) == t


@settings(max_examples=150)
@given(values)
def test_make_value_is_idempotent(v):
    assert make_value(v) == v


@settings(max_examples=100)
@given(st.frozensets(tups, max_size=4))
def test_sets_of_tuples_behave_as_sets(s):
    # Rebuilding from a list with duplicates collapses them.
    doubled = frozenset(list(s) + list(s))
    assert doubled == s
