"""Unit tests for the immutable value model."""

import pytest

from repro.errors import ValueModelError
from repro.model.values import NULL, Null, Tup, Variant, is_value, make_value, value_repr


class TestTup:
    def test_field_access_by_item_and_attr(self):
        t = Tup(a=1, b="x")
        assert t["a"] == 1
        assert t.b == "x"

    def test_missing_field_raises(self):
        t = Tup(a=1)
        with pytest.raises(KeyError):
            t["nope"]
        with pytest.raises(AttributeError):
            t.nope

    def test_equality_is_order_insensitive(self):
        assert Tup(a=1, b=2) == Tup(b=2, a=1)
        assert hash(Tup(a=1, b=2)) == hash(Tup(b=2, a=1))

    def test_inequality_on_values_and_labels(self):
        assert Tup(a=1) != Tup(a=2)
        assert Tup(a=1) != Tup(b=1)
        assert Tup(a=1) != Tup(a=1, b=2)

    def test_labels_preserve_insertion_order(self):
        t = Tup(b=1, a=2)
        assert t.labels() == ("b", "a")
        assert t.values() == (1, 2)
        assert t.items() == (("b", 1), ("a", 2))

    def test_immutable(self):
        t = Tup(a=1)
        with pytest.raises(ValueModelError):
            t.a = 2

    def test_extend_concatenation(self):
        t = Tup(a=1).extend(b=2)
        assert t == Tup(a=1, b=2)

    def test_extend_rejects_label_collision(self):
        with pytest.raises(ValueModelError):
            Tup(a=1).extend(a=2)

    def test_concat(self):
        assert Tup(a=1).concat(Tup(b=2)) == Tup(a=1, b=2)
        with pytest.raises(ValueModelError):
            Tup(a=1).concat(Tup(a=2))

    def test_project_and_drop(self):
        t = Tup(a=1, b=2, c=3)
        assert t.project(["c", "a"]) == Tup(c=3, a=1)
        assert t.drop("b") == Tup(a=1, c=3)

    def test_replace(self):
        assert Tup(a=1, b=2).replace(a=9) == Tup(a=9, b=2)
        with pytest.raises(ValueModelError):
            Tup(a=1).replace(z=1)

    def test_rejects_plain_python_collections(self):
        with pytest.raises(ValueModelError):
            Tup(a=[1, 2])
        with pytest.raises(ValueModelError):
            Tup(a={1})
        with pytest.raises(ValueModelError):
            Tup(a={"k": 1})

    def test_nested_sets_of_tuples_hash(self):
        inner = frozenset({Tup(x=1), Tup(x=2)})
        t1 = Tup(s=inner)
        t2 = Tup(s=frozenset({Tup(x=2), Tup(x=1)}))
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert len({t1, t2}) == 1

    def test_get_and_contains_and_len(self):
        t = Tup(a=1, b=2)
        assert "a" in t and "z" not in t
        assert t.get("z", 42) == 42
        assert len(t) == 2
        assert list(t) == ["a", "b"]

    def test_empty_label_rejected(self):
        with pytest.raises(ValueModelError):
            Tup({"": 1})


class TestVariant:
    def test_equality(self):
        assert Variant("ok", 1) == Variant("ok", 1)
        assert Variant("ok", 1) != Variant("err", 1)
        assert Variant("ok", 1) != Variant("ok", 2)

    def test_hashable(self):
        assert len({Variant("a", 1), Variant("a", 1)}) == 1

    def test_immutable(self):
        v = Variant("a", 1)
        with pytest.raises(ValueModelError):
            v.tag = "b"

    def test_rejects_bad_payload(self):
        with pytest.raises(ValueModelError):
            Variant("a", [1])


class TestNull:
    def test_singleton(self):
        assert Null() is NULL
        assert NULL == Null()
        assert hash(NULL) == hash(Null())

    def test_repr(self):
        assert repr(NULL) == "NULL"


class TestMakeValue:
    def test_dict_to_tup(self):
        assert make_value({"a": 1}) == Tup(a=1)

    def test_nested_coercion(self):
        v = make_value({"a": [1, 2], "b": {3, 4}, "c": {"d": 5}})
        assert v == Tup(a=(1, 2), b=frozenset({3, 4}), c=Tup(d=5))

    def test_set_of_dicts(self):
        v = make_value({"rows": [{"x": 1}, {"x": 2}]})
        assert v.rows == (Tup(x=1), Tup(x=2))

    def test_passthrough(self):
        assert make_value(5) == 5
        assert make_value("s") == "s"
        assert make_value(True) is True
        assert make_value(NULL) is NULL

    def test_rejects_unknown(self):
        with pytest.raises(ValueModelError):
            make_value(object())


class TestIsValue:
    @pytest.mark.parametrize(
        "v",
        [1, 1.5, "s", True, NULL, Tup(a=1), Variant("t", 1), frozenset({1}), (1, 2)],
    )
    def test_accepts_model_values(self, v):
        assert is_value(v)

    @pytest.mark.parametrize("v", [[1], {1}, {"a": 1}, object()])
    def test_rejects_others(self, v):
        assert not is_value(v)


class TestValueRepr:
    def test_set_repr_is_sorted_and_stable(self):
        assert value_repr(frozenset({3, 1, 2})) == "{1, 2, 3}"

    def test_nested(self):
        v = Tup(a=frozenset({Tup(x=2), Tup(x=1)}), b=(1, "s"))
        assert value_repr(v) == "(a={(x=1), (x=2)}, b=[1, 's'])"
