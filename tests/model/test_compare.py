"""Unit and property tests for the total order over model values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.compare import compare, sort_key, value_max, value_min
from repro.model.values import NULL, Tup, Variant


def models(max_leaves=8):
    """Hypothesis strategy generating arbitrary model values."""
    atoms = st.one_of(
        st.just(NULL),
        st.booleans(),
        st.integers(-100, 100),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=4),
    )
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.frozensets(inner, max_size=3),
            st.lists(inner, max_size=3).map(tuple),
            st.dictionaries(st.sampled_from("abc"), inner, max_size=3).map(Tup),
            st.tuples(st.sampled_from(["l", "r"]), inner).map(lambda p: Variant(p[0], p[1])),
        ),
        max_leaves=max_leaves,
    )


class TestRankOrder:
    def test_kind_ranking(self):
        # NULL < number < string < list < tuple < variant < set
        ordering = [NULL, 0, "", (), Tup(), Variant("t", 0), frozenset()]
        for i, lo in enumerate(ordering):
            for hi in ordering[i + 1 :]:
                assert compare(lo, hi) < 0
                assert compare(hi, lo) > 0

    def test_bools_rank_with_numbers(self):
        # Python identifies True with 1; the order must agree with equality.
        assert compare(True, 1) == 0
        assert compare(False, 0) == 0
        assert compare(False, -1) > 0
        assert compare(True, 2) < 0

    def test_numbers_mix_int_float(self):
        assert compare(1, 1.0) == 0
        assert compare(1, 1.5) < 0
        assert compare(2.5, 2) > 0

    def test_strings(self):
        assert compare("a", "b") < 0
        assert compare("b", "a") > 0
        assert compare("a", "a") == 0

    def test_lists_lexicographic(self):
        assert compare((1, 2), (1, 3)) < 0
        assert compare((1, 2), (1, 2, 0)) < 0
        assert compare((2,), (1, 9)) > 0

    def test_tuples_by_label_then_value(self):
        assert compare(Tup(a=1), Tup(a=2)) < 0
        assert compare(Tup(a=1), Tup(b=0)) < 0  # label 'a' < 'b'
        assert compare(Tup(a=1, b=2), Tup(a=1, b=2)) == 0

    def test_variants(self):
        assert compare(Variant("a", 9), Variant("b", 0)) < 0
        assert compare(Variant("a", 1), Variant("a", 2)) < 0

    def test_sets_as_sorted_sequences(self):
        assert compare(frozenset({1, 2}), frozenset({1, 3})) < 0
        assert compare(frozenset(), frozenset({0})) < 0
        assert compare(frozenset({2, 1}), frozenset({1, 2})) == 0

    def test_non_value_raises(self):
        from repro.errors import ValueModelError

        with pytest.raises(ValueModelError):
            compare(object(), 1)


class TestMinMax:
    def test_value_min_max(self):
        vals = [3, 1, 2]
        assert value_min(vals) == 1
        assert value_max(vals) == 3

    def test_empty_default(self):
        assert value_min([], default="d") == "d"
        assert value_max([]) is None

    def test_heterogeneous(self):
        vals = ["s", 5, frozenset()]
        assert value_min(vals) == 5
        assert value_max(vals) == frozenset()


@settings(max_examples=200)
@given(models(), models())
def test_antisymmetry(a, b):
    assert compare(a, b) == -compare(b, a)


@settings(max_examples=200)
@given(models(), models())
def test_consistent_with_equality(a, b):
    if a == b and type(a) is type(b):
        assert compare(a, b) == 0


@settings(max_examples=150)
@given(models(), models(), models())
def test_transitivity(a, b, c):
    xs = sorted([a, b, c], key=sort_key)
    assert compare(xs[0], xs[1]) <= 0
    assert compare(xs[1], xs[2]) <= 0
    assert compare(xs[0], xs[2]) <= 0


@settings(max_examples=100)
@given(st.lists(models(), max_size=8))
def test_sorting_is_order_independent_up_to_ties(values):
    once = sorted(values, key=sort_key)
    twice = sorted(list(reversed(values)), key=sort_key)
    # Positions may swap tied values (e.g. False vs 0) but each position
    # must hold a compare-equal value.
    assert all(compare(a, b) == 0 for a, b in zip(once, twice))
