"""Round-trip tests: render types/schemas to DDL and parse them back."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TypeModelError
from repro.model.ddl import parse_schema, parse_type
from repro.model.render import render_schema, render_type
from repro.model.schema import company_schema
from repro.model.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NULL_T,
    STRING,
    ClassType,
    ListType,
    SetType,
    TupleType,
    VariantType,
)


def types(max_depth=3):
    base = st.sampled_from([INT, FLOAT, STRING, BOOL, ClassType("Ref")])
    labels = st.sampled_from(["a", "b", "c", "kids", "tags"])

    def extend(inner):
        return st.one_of(
            st.builds(SetType, inner),
            st.builds(ListType, inner),
            st.dictionaries(labels, inner, min_size=1, max_size=3).map(TupleType),
            st.dictionaries(labels, inner, min_size=1, max_size=2).map(VariantType),
        )

    return st.recursive(base, extend, max_leaves=8)


@settings(max_examples=200)
@given(types())
def test_type_round_trip(t):
    assert parse_type(render_type(t)) == t


@pytest.mark.parametrize(
    "t,text",
    [
        (SetType(INT), "P INT"),
        (TupleType({"a": INT, "b": SetType(STRING)}), "(a : INT, b : P STRING)"),
        (VariantType({"ok": INT}), "V(ok : INT)"),
        (ListType(ClassType("Emp")), "L Emp"),
    ],
)
def test_examples(t, text):
    assert render_type(t) == text


def test_unrenderable_types_rejected():
    with pytest.raises(TypeModelError):
        render_type(ANY)
    with pytest.raises(TypeModelError):
        render_type(NULL_T)


class TestSchemaRoundTrip:
    def test_company_schema(self):
        original = company_schema()
        back = parse_schema(render_schema(original))
        assert set(back.classes) == set(original.classes)
        assert set(back.sorts) == set(original.sorts)
        for name, cls in original.classes.items():
            assert back.classes[name].extension == cls.extension
            assert back.classes[name].attributes == cls.attributes
        for name, sort in original.sorts.items():
            assert back.sorts[name].type == sort.type

    def test_rendered_text_is_readable(self):
        text = render_schema(company_schema())
        assert "CLASS Employee WITH EXTENSION EMP" in text
        assert "children : P(name : STRING, age : INT)" in text
        assert "SORT Address" in text
