"""Tests for JSON import/export of values and catalogs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.table import Catalog
from repro.errors import ValueModelError
from repro.io import (
    dump_catalog,
    dumps_catalog,
    load_catalog,
    loads_catalog,
    value_from_json,
    value_to_json,
)
from repro.model.values import NULL, Tup, Variant


def json_values(max_leaves=10):
    atoms = st.one_of(
        st.just(NULL),
        st.booleans(),
        st.integers(-1000, 1000),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=6),
    )
    labels = st.text(
        alphabet="abcdefgh_", min_size=1, max_size=4
    )
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.frozensets(inner, max_size=3),
            st.lists(inner, max_size=3).map(tuple),
            st.dictionaries(labels, inner, max_size=3).map(Tup),
            st.builds(Variant, st.sampled_from(["l", "r"]), inner),
        ),
        max_leaves=max_leaves,
    )


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            1,
            2.5,
            "text",
            True,
            NULL,
            frozenset({1, 2}),
            frozenset(),
            (1, "a"),
            Tup(a=1, b=frozenset({Tup(x=1)})),
            Variant("ok", Tup(code=7)),
        ],
    )
    def test_examples(self, value):
        assert value_from_json(value_to_json(value)) == value

    @settings(max_examples=200)
    @given(json_values())
    def test_property_round_trip(self, value):
        assert value_from_json(value_to_json(value)) == value

    def test_null_is_json_null(self):
        assert value_to_json(NULL) is None
        assert value_from_json(None) == NULL

    def test_sets_are_serialised_deterministically(self):
        a = value_to_json(frozenset({3, 1, 2}))
        assert a == {"$set": [1, 2, 3]}

    def test_reserved_label_rejected(self):
        with pytest.raises(ValueModelError, match="collides"):
            value_to_json(Tup({"$set": 1}))

    def test_malformed_set_wrapper(self):
        with pytest.raises(ValueModelError, match="malformed"):
            value_from_json({"$set": [], "extra": 1})

    def test_malformed_variant_wrapper(self):
        with pytest.raises(ValueModelError, match="malformed"):
            value_from_json({"$variant": "t"})


class TestCatalogRoundTrip:
    def make_catalog(self):
        cat = Catalog()
        cat.add_rows("R", [Tup(a=1, b=frozenset({1, 2})), Tup(a=2, b=frozenset())])
        cat.add_rows("S", [Tup(c="x", kids=(Tup(n="k"),))])
        return cat

    def test_string_round_trip(self):
        cat = self.make_catalog()
        back = loads_catalog(dumps_catalog(cat))
        assert set(back) == {"R", "S"}
        assert back["R"].rows == cat["R"].rows
        assert back["S"].rows == cat["S"].rows

    def test_file_round_trip(self, tmp_path):
        cat = self.make_catalog()
        path = tmp_path / "db.json"
        dump_catalog(cat, path)
        back = load_catalog(path)
        assert back["R"].rows == cat["R"].rows

    def test_queries_run_on_loaded_catalog(self, tmp_path):
        from repro.core.pipeline import run_query

        cat = self.make_catalog()
        path = tmp_path / "db.json"
        dump_catalog(cat, path)
        back = load_catalog(path)
        result = run_query("SELECT r.a FROM R r WHERE 1 IN r.b", back)
        assert result.value == frozenset({1})

    def test_bad_top_level(self):
        with pytest.raises(ValueModelError):
            loads_catalog("[1, 2]")

    def test_non_tuple_row_rejected(self):
        with pytest.raises(ValueModelError, match="not a tuple"):
            loads_catalog('{"tables": {"R": [42]}}')
