"""Partitioned parallel execution: scatter a plan over hash shards.

The subsystem has three layers, documented in ``docs/parallel.md``:

* :mod:`repro.parallel.fragment` decides *whether and how* a physical
  plan shards: the spine analysis, co-partition vs broadcast decision,
  the re-group cut for non-local ``PNest``, and the gather merge.
* :mod:`repro.parallel.partition` builds the per-worker shard catalogs
  (the hash split itself lives on
  :meth:`repro.engine.table.Table.partitioned` and is cached in
  ``BUILD_CACHE``).
* :mod:`repro.parallel.pool` runs fragments on a persistent
  ``multiprocessing`` worker pool with ship-once data, cross-process
  cancellation, crash surfacing, and pool-health metrics
  (:data:`repro.parallel.pool.POOL_METRICS`).

This package front-door exposes the executor-facing entry points:
:func:`run_parallel` (rows), :func:`parallel_set` (the serving path's
frozenset terminal), and :func:`parallel_analyze` (EXPLAIN ANALYZE with
per-fragment ``part=`` rows carrying worker-side ``cpu=`` / ``peak_mem=``
/ ``shipped=`` telemetry). All three fall back to sequential execution —
same results, one process — when the plan doesn't shard
(:func:`repro.parallel.fragment.plan_fragments` returns None) or when
``parts <= 1``. A sharding-unsafe fallback is *not* silent: it emits a
``parallel/sequential-fallback`` trace event, increments the
``pool_sequential_fallbacks`` counter labeled with the planner's reason
slug, and the reason lands in EXPLAIN ANALYZE notes and on
:func:`consume_parallel_stats`.

**Observability**: when an ambient :class:`~repro.core.trace.QueryTrace`
is installed (:func:`repro.core.trace.trace_scope`), the scatter ships
the trace context to the workers, each worker runs instrumented and
returns per-operator spans stamped with its own pid/tid, and the spans
are merged into the coordinator trace — ``repro trace --chrome`` then
renders one lane per worker process. Worker clocks need no adjustment:
``time.perf_counter`` is CLOCK_MONOTONIC on Linux, system-wide, so
worker offsets against the coordinator trace's creation instant line up.

Each parallel attempt also leaves a thread-local
:class:`ParallelExecStats` — shard-time skew (max/mean, top-k slowest),
rows and bytes shipped, or the fallback reason — which the query service
pops via :func:`consume_parallel_stats` onto the
:class:`~repro.server.request.QueryResponse` and the slow-query log.

Parallel execution is *set-oriented*: fragments of a plan containing a
``Distinct`` or a re-grouped ``Nest`` merge by set semantics, and row
order across shards is not the sequential order. The serving layers
consume frozensets, so this is invisible there; row-list consumers get
the sequential multiset only up to cross-shard duplicates of ``Distinct``
outputs (which gather removes) and ordering.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.trace import current_trace, emit, span
from repro.engine.batch import DEFAULT_BATCH_SIZE
from repro.engine.cancel import current_token
from repro.model.values import Tup
from repro.parallel.fragment import (
    FragmentPlan,
    PFragment,
    PGather,
    PRows,
    merge_rows,
    plan_fragments,
    plan_fragments_ex,
)
from repro.parallel.partition import shard_payloads
from repro.parallel.pool import (
    POOL_METRICS,
    WorkerPool,
    get_pool,
    pool_health,
    shutdown_pools,
)

__all__ = [
    "run_parallel",
    "parallel_set",
    "parallel_analyze",
    "fold_fragment_progress",
    "plan_fragments",
    "plan_fragments_ex",
    "FragmentPlan",
    "get_pool",
    "shutdown_pools",
    "WorkerPool",
    "DEFAULT_PARTS",
    "ParallelExecStats",
    "consume_parallel_stats",
    "pool_health",
]

#: Partition count used when the caller does not choose one.
DEFAULT_PARTS = 4

#: Top-k slowest shards reported on responses and the slowlog.
SKEW_TOP_K = 3


@dataclass
class ParallelExecStats:
    """What one parallel attempt looked like, for the serving layer.

    Either a real scatter (skew and shipping figures populated) or a
    sequential fallback (``fallback`` holds the planner's reason slug).
    """

    parts: int
    max_shard_seconds: float = 0.0
    mean_shard_seconds: float = 0.0
    #: Top-k slowest shards, slowest first: ``(part, seconds)``.
    skew: tuple = ()
    rows_shipped: int = 0
    reply_bytes: int | None = None
    fallback: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"parts": self.parts}
        if self.fallback is not None:
            out["fallback"] = self.fallback
            return out
        out["max_shard_seconds"] = self.max_shard_seconds
        out["mean_shard_seconds"] = self.mean_shard_seconds
        out["skew"] = [{"part": p, "seconds": s} for p, s in self.skew]
        out["rows_shipped"] = self.rows_shipped
        if self.reply_bytes is not None:
            out["reply_bytes"] = self.reply_bytes
        return out


_stats_local = threading.local()


def _record_stats(stats: ParallelExecStats) -> None:
    _stats_local.value = stats


def consume_parallel_stats() -> ParallelExecStats | None:
    """Pop the stats of this thread's most recent parallel attempt."""
    stats = getattr(_stats_local, "value", None)
    _stats_local.value = None
    return stats


def fold_fragment_progress(token, fragments) -> None:
    """Credit worker-side row counts to the coordinator's progress sink.

    Worker processes count rows on their own tokens (they cannot reach
    the coordinator's :class:`~repro.server.registry.ActiveQueryRegistry`
    directly); each :class:`~repro.parallel.pool.FragmentResult` carries
    the count home and this folds them in at gather time, so a parallel
    query's live entry advances in per-fragment steps.
    """
    if token is None or token.progress is None:
        return
    for f in fragments:
        if f.rows_processed:
            token.progress.advance(f.rows_processed, f"Fragment part={f.part}")


def _scatter(
    physical,
    catalog: Mapping,
    parts: int,
    fragment_execution: str,
    batch_size: int,
):
    """Fragment, ship, and collect; None when the plan must run sequentially.

    A fallback is observable: trace event, labeled counter, and a
    fallback :class:`ParallelExecStats` for the serving layer.
    """
    fp, reason = plan_fragments_ex(physical, catalog)
    if fp is None:
        reason = reason or "unknown"
        emit(
            "parallel",
            "sequential-fallback",
            detail=f"plan does not shard: {reason}",
            verdict=reason,
        )
        POOL_METRICS.labeled_counter("pool_sequential_fallbacks").inc(reason)
        _record_stats(ParallelExecStats(parts=parts, fallback=reason))
        return None
    payloads = shard_payloads(fp, catalog, parts)
    token = current_token()
    deadline = token.deadline if token is not None else None
    trace = current_trace()
    trace_ctx = (trace.trace_id, trace.created) if trace is not None else None
    pool = get_pool(parts)
    with span("parallel", f"scatter parts={parts}", detail=fp.describe()):
        fragments = pool.run_fragments(
            fp.fragment,
            payloads,
            deadline,
            mode=fragment_execution,
            batch_size=batch_size,
            coordinator_token=token,
            trace_ctx=trace_ctx,
        )
    if trace is not None:
        # Merge the workers' per-operator spans into the coordinator
        # trace; their pid/tid stamps become lanes in the Chrome export.
        for f in fragments:
            if f.events:
                trace.events.extend(f.events)
    fold_fragment_progress(token, fragments)
    times = sorted(
        ((f.seconds, f.part) for f in fragments), reverse=True
    )
    reply_bytes = sum(f.reply_bytes for f in fragments if f.reply_bytes is not None)
    any_bytes = any(f.reply_bytes is not None for f in fragments)
    _record_stats(
        ParallelExecStats(
            parts=parts,
            max_shard_seconds=times[0][0] if times else 0.0,
            mean_shard_seconds=(
                sum(s for s, _ in times) / len(times) if times else 0.0
            ),
            skew=tuple((part, seconds) for seconds, part in times[:SKEW_TOP_K]),
            rows_shipped=sum(len(f.rows) for f in fragments),
            reply_bytes=reply_bytes if any_bytes else None,
        )
    )
    return fp, fragments


def run_parallel(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> list[Tup]:
    """Execute *physical* over *parts* hash shards and return the rows.

    Falls back to sequential execution (same results) when the plan does
    not shard or ``parts <= 1``.
    """
    from repro.engine.executor import execute

    if parts <= 1:
        return execute(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    scattered = _scatter(physical, catalog, parts, fragment_execution, batch_size)
    if scattered is None:
        return execute(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    fp, fragments = scattered
    return merge_rows(fp, [f.rows for f in fragments], catalog)


def parallel_set(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> frozenset:
    """The serving terminal: single-binding rows collapsed to a frozenset."""
    from repro.errors import PlanError

    rows = run_parallel(physical, catalog, parts, fragment_execution, batch_size)
    values = set()
    for row in rows:
        labels = row.labels()
        if len(labels) != 1:
            raise PlanError(
                f"result rows bind {sorted(labels)}; expected exactly one variable"
            )
        values.add(row[labels[0]])
    return frozenset(values)


def parallel_analyze(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
):
    """EXPLAIN ANALYZE for a parallel run.

    The stats tree is rooted at a :class:`PGather` pseudo-operator whose
    children are per-shard :class:`PFragment` nodes (``part=i``) carrying
    each worker's row count, wall time, and — when pool telemetry is on —
    CPU seconds, peak memory, and reply bytes shipped over the pipe.
    Shard-time skew (max/mean) is reported in the run's notes. A
    coordinator-side tail (when the plan re-groups) is *not* separately
    instrumented — its cost is inside the gather total. Sequential
    fallbacks return the ordinary instrumented run, with the fallback
    reason in its notes.
    """
    from repro.engine.analyze import AnalyzedRun, OpStats, analyze

    if parts <= 1:
        return analyze(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    start = time.perf_counter()
    scattered = _scatter(physical, catalog, parts, fragment_execution, batch_size)
    if scattered is None:
        run = analyze(
            physical, catalog, execution=fragment_execution, batch_size=batch_size
        )
        # Peek, don't consume: the serving layer pops these stats after
        # the (possibly analyzed) execution returns.
        stats = getattr(_stats_local, "value", None)
        reason = stats.fallback if stats is not None else "unknown"
        run.notes = (f"parallel fallback: {reason}",)
        return run
    fp, fragments = scattered
    rows = merge_rows(fp, [f.rows for f in fragments], catalog)
    total = time.perf_counter() - start

    per_part = physical.est_rows / parts if parts else physical.est_rows
    children = []
    for f in fragments:
        node = PFragment(part=f.part, inner=fp.fragment, est_rows=per_part)
        stats = OpStats(
            node,
            rows=len(f.rows),
            seconds=f.seconds,
            exec_mode=fragment_execution,
            cpu_seconds=f.cpu_seconds,
            peak_mem_bytes=f.peak_mem_bytes,
            shipped_bytes=f.reply_bytes,
        )
        children.append(stats)
    gather = PGather(
        parts=parts,
        detail=fp.describe(),
        fragments=tuple(s.op for s in children),
        est_rows=physical.est_rows,
    )
    root = OpStats(
        gather,
        rows=len(rows),
        seconds=total,
        exec_mode="parallel",
        children=children,
    )
    notes = ()
    shard_times = [f.seconds for f in fragments]
    if shard_times:
        worst = max(shard_times)
        mean = sum(shard_times) / len(shard_times)
        notes = (
            f"shard skew: max={worst * 1e3:.2f}ms mean={mean * 1e3:.2f}ms "
            f"({worst / mean:.2f}x)" if mean else "shard skew: n/a",
        )
    return AnalyzedRun(rows, root, total, exec_mode="parallel", notes=notes)
