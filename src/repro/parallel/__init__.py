"""Partitioned parallel execution: scatter a plan over hash shards.

The subsystem has three layers, documented in ``docs/parallel.md``:

* :mod:`repro.parallel.fragment` decides *whether and how* a physical
  plan shards: the spine analysis, co-partition vs broadcast decision,
  the re-group cut for non-local ``PNest``, and the gather merge.
* :mod:`repro.parallel.partition` builds the per-worker shard catalogs
  (the hash split itself lives on
  :meth:`repro.engine.table.Table.partitioned` and is cached in
  ``BUILD_CACHE``).
* :mod:`repro.parallel.pool` runs fragments on a persistent
  ``multiprocessing`` worker pool with ship-once data, cross-process
  cancellation, and crash surfacing.

This package front-door exposes the executor-facing entry points:
:func:`run_parallel` (rows), :func:`parallel_set` (the serving path's
frozenset terminal), and :func:`parallel_analyze` (EXPLAIN ANALYZE with
per-fragment ``part=`` rows). All three fall back to sequential
execution — same results, one process — when the plan doesn't shard
(:func:`repro.parallel.fragment.plan_fragments` returns None) or when
``parts <= 1``.

Parallel execution is *set-oriented*: fragments of a plan containing a
``Distinct`` or a re-grouped ``Nest`` merge by set semantics, and row
order across shards is not the sequential order. The serving layers
consume frozensets, so this is invisible there; row-list consumers get
the sequential multiset only up to cross-shard duplicates of ``Distinct``
outputs (which gather removes) and ordering.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.engine.batch import DEFAULT_BATCH_SIZE
from repro.engine.cancel import current_token
from repro.model.values import Tup
from repro.parallel.fragment import (
    FragmentPlan,
    PFragment,
    PGather,
    PRows,
    merge_rows,
    plan_fragments,
)
from repro.parallel.partition import shard_payloads
from repro.parallel.pool import WorkerPool, get_pool, shutdown_pools

__all__ = [
    "run_parallel",
    "parallel_set",
    "parallel_analyze",
    "plan_fragments",
    "FragmentPlan",
    "get_pool",
    "shutdown_pools",
    "WorkerPool",
    "DEFAULT_PARTS",
]

#: Partition count used when the caller does not choose one.
DEFAULT_PARTS = 4


def _scatter(
    physical,
    catalog: Mapping,
    parts: int,
    fragment_execution: str,
    batch_size: int,
):
    """Fragment, ship, and collect; None when the plan must run sequentially."""
    fp = plan_fragments(physical, catalog)
    if fp is None:
        return None
    payloads = shard_payloads(fp, catalog, parts)
    token = current_token()
    deadline = token.deadline if token is not None else None
    pool = get_pool(parts)
    fragments = pool.run_fragments(
        fp.fragment,
        payloads,
        deadline,
        mode=fragment_execution,
        batch_size=batch_size,
        coordinator_token=token,
    )
    return fp, fragments


def run_parallel(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> list[Tup]:
    """Execute *physical* over *parts* hash shards and return the rows.

    Falls back to sequential execution (same results) when the plan does
    not shard or ``parts <= 1``.
    """
    from repro.engine.executor import execute

    if parts <= 1:
        return execute(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    scattered = _scatter(physical, catalog, parts, fragment_execution, batch_size)
    if scattered is None:
        return execute(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    fp, fragments = scattered
    return merge_rows(fp, [f.rows for f in fragments], catalog)


def parallel_set(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> frozenset:
    """The serving terminal: single-binding rows collapsed to a frozenset."""
    from repro.errors import PlanError

    rows = run_parallel(physical, catalog, parts, fragment_execution, batch_size)
    values = set()
    for row in rows:
        labels = row.labels()
        if len(labels) != 1:
            raise PlanError(
                f"result rows bind {sorted(labels)}; expected exactly one variable"
            )
        values.add(row[labels[0]])
    return frozenset(values)


def parallel_analyze(
    physical,
    catalog: Mapping,
    parts: int = DEFAULT_PARTS,
    fragment_execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
):
    """EXPLAIN ANALYZE for a parallel run.

    The stats tree is rooted at a :class:`PGather` pseudo-operator whose
    children are per-shard :class:`PFragment` nodes (``part=i``) carrying
    each worker's row count and wall time; a coordinator-side tail (when
    the plan re-groups) is *not* separately instrumented — its cost is
    inside the gather total. Sequential fallbacks return the ordinary
    instrumented run.
    """
    from repro.engine.analyze import AnalyzedRun, OpStats, analyze

    if parts <= 1:
        return analyze(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    start = time.perf_counter()
    scattered = _scatter(physical, catalog, parts, fragment_execution, batch_size)
    if scattered is None:
        return analyze(physical, catalog, execution=fragment_execution, batch_size=batch_size)
    fp, fragments = scattered
    rows = merge_rows(fp, [f.rows for f in fragments], catalog)
    total = time.perf_counter() - start

    per_part = physical.est_rows / parts if parts else physical.est_rows
    children = []
    for f in fragments:
        node = PFragment(part=f.part, inner=fp.fragment, est_rows=per_part)
        stats = OpStats(node, rows=len(f.rows), seconds=f.seconds, exec_mode=fragment_execution)
        children.append(stats)
    gather = PGather(
        parts=parts,
        detail=fp.describe(),
        fragments=tuple(s.op for s in children),
        est_rows=physical.est_rows,
    )
    root = OpStats(
        gather,
        rows=len(rows),
        seconds=total,
        exec_mode="parallel",
        children=children,
    )
    return AnalyzedRun(rows, root, total, exec_mode="parallel")
