"""A persistent multiprocessing worker pool for plan fragments.

One pool per partition count, spawned lazily and reused across queries
(:func:`get_pool`). Each worker is a long-lived process connected by a
duplex pipe, running a small message loop:

* ``("load", key, tables)`` — install a shard catalog in the worker's
  registry (bounded LRU). The coordinator tracks which keys each worker
  holds and ships a catalog version's shards exactly once; subsequent
  queries against unchanged tables send only the pickled fragment.
* ``("run", key, fragment, deadline, mode, batch_size, part, opts)`` —
  execute the fragment over the loaded tables under a
  :class:`~repro.engine.cancel.CancelToken` and reply ``("ok", rows,
  seconds, extra)``, ``("cancelled", reason)``, or ``("error", message)``.
  ``opts`` switches per-run observability: with ``telemetry`` the worker
  measures its CPU time (``os.times``) and peak memory (rusage maxrss
  delta, or ``tracemalloc`` when the coordinator saw
  ``REPRO_TRACEMALLOC``); with a ``trace`` context ``(trace_id,
  base_instant)`` it runs instrumented and ships back per-operator spans
  stamped with its own pid/tid, offset against the coordinator trace's
  creation instant (``time.perf_counter`` is CLOCK_MONOTONIC on Linux,
  comparable across processes — the same property deadlines rely on).
* ``("stop",)`` — exit.

**Cancellation** maps the engine's cooperative protocol across the
process boundary: every worker token is backed by one shared
``multiprocessing.Event``, so a single ``set()`` in the coordinator is
observed by every in-flight fragment at its next poll. **Deadlines**
travel as absolute ``time.monotonic`` instants, which are comparable
across processes on Linux (CLOCK_MONOTONIC is system-wide). After a
cancelled scatter the coordinator still collects one reply per dispatched
fragment — workers answer ``("cancelled", ...)`` promptly because they
poll at batch granularity — and only then clears the shared event, so a
stale cancellation can never leak into the next query.

**Crashes**: a worker dying mid-fragment surfaces as ``EOFError`` on its
pipe; the pool terminates all workers, marks itself broken (it respawns
on next use), and raises :class:`~repro.errors.WorkerCrashError` — never
a partial result. Every crash increments ``pool_worker_crashes`` and is
recorded in a bounded failure ring (:func:`recent_crashes`); the respawn
on next use increments ``pool_worker_restarts``.

**Pool health** is instrumented in a process-global
:data:`POOL_METRICS` registry (counters ``pool_scatters``,
``pool_fragments``, ``pool_workers_spawned``, ``pool_worker_restarts``,
``pool_worker_crashes``, the shard-catalog ship cache
``pool_catalog_ship_hits``/``misses``, and the labeled
``pool_sequential_fallbacks`` by reason; histograms
``pool_dispatch_wait_ms``, ``pool_scatter_ms``, ``pool_gather_ms``,
``pool_payload_bytes``, ``pool_reply_bytes``). The query service merges
this registry into its ``/metrics`` exposition (see
:func:`repro.server.exposition.merged_service_snapshot`) and reports
:func:`pool_health` under ``stats()["parallel_pool"]``. Telemetry and
byte accounting can be switched off (:func:`set_telemetry`, or
``REPRO_POOL_TELEMETRY=0``) — the benchmark guard measures that the
default-on path stays within noise of the bare one.

The start method prefers ``fork`` (cheap, shares the code image) and
falls back to ``spawn`` where fork is unavailable; everything shipped is
pickle-clean either way (``tests/model/test_pickle.py``), so both work.
Scatters through one pool are serialized by a lock: concurrent service
threads queue rather than interleave fragments from different queries —
the wait for that lock is what ``pool_dispatch_wait_ms`` measures.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
import time
from collections import OrderedDict, deque
from multiprocessing.connection import wait as _conn_wait
from multiprocessing.reduction import ForkingPickler

from repro.engine.cachereg import register_cache
from repro.errors import CancelledError, ExecutionError, WorkerCrashError
from repro.server.metrics import MetricsRegistry

__all__ = [
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
    "FragmentResult",
    "POOL_METRICS",
    "pool_health",
    "pool_gauges",
    "shard_catalog_report",
    "recent_crashes",
    "set_telemetry",
    "telemetry_enabled",
]

#: Shard-catalog entries each worker retains (distinct catalog versions /
#: partition layouts); older entries are evicted least-recently-used.
WORKER_REGISTRY_CAPACITY = 4

#: Seconds the coordinator waits, after setting the cancel event, for a
#: worker to acknowledge before declaring it wedged and crashing the pool.
CANCEL_GRACE = 30.0

#: Process-global pool-health instruments, merged into the query
#: service's Prometheus exposition. Families are pre-created so a scrape
#: shows them (at zero) before the first parallel query.
POOL_METRICS = MetricsRegistry()
for _name in (
    "pool_scatters",
    "pool_fragments",
    "pool_workers_spawned",
    "pool_worker_restarts",
    "pool_worker_crashes",
    "pool_catalog_ship_hits",
    "pool_catalog_ship_misses",
    "pool_catalog_evictions",
):
    POOL_METRICS.counter(_name)
POOL_METRICS.labeled_counter("pool_sequential_fallbacks")
for _name in (
    "pool_dispatch_wait_ms",
    "pool_scatter_ms",
    "pool_gather_ms",
    "pool_payload_bytes",
    "pool_reply_bytes",
):
    POOL_METRICS.histogram(_name)
del _name

#: Bounded ring of recent worker-crash records (newest win); the pool
#: counterpart of the slow-query log's failure ring.
_CRASH_RING_CAPACITY = 32
_CRASHES: "deque[dict]" = deque(maxlen=_CRASH_RING_CAPACITY)

#: Per-fragment resource telemetry (CPU, peak memory, payload bytes) and
#: the per-scatter histograms default on; ``REPRO_POOL_TELEMETRY=0`` or
#: :func:`set_telemetry` switch them off (the benchmark overhead guard).
_TELEMETRY = os.environ.get("REPRO_POOL_TELEMETRY", "1") != "0"


def set_telemetry(enabled: bool) -> None:
    """Globally enable/disable per-fragment telemetry and byte accounting."""
    global _TELEMETRY
    _TELEMETRY = bool(enabled)


def telemetry_enabled() -> bool:
    return _TELEMETRY


def recent_crashes() -> list[dict]:
    """The bounded failure ring of worker crashes, oldest first."""
    return list(_CRASHES)


class FragmentResult:
    """One shard's reply: its rows, worker-side wall time, and telemetry.

    ``cpu_seconds`` (user+system), ``peak_mem_bytes`` (tracemalloc peak
    when ``REPRO_TRACEMALLOC`` is set, else the rusage maxrss delta),
    ``reply_bytes`` (pickled reply size over the pipe), ``catalog_hit``
    (whether the worker already held this shard catalog), ``pid``/``tid``
    and ``events`` (per-operator trace spans) are None when telemetry or
    tracing was off for the run.
    """

    __slots__ = (
        "part",
        "rows",
        "seconds",
        "cpu_seconds",
        "peak_mem_bytes",
        "reply_bytes",
        "catalog_hit",
        "catalog_bytes",
        "registry_bytes",
        "pid",
        "tid",
        "events",
        "rows_processed",
    )

    def __init__(
        self,
        part: int,
        rows: list,
        seconds: float,
        cpu_seconds: float | None = None,
        peak_mem_bytes: int | None = None,
        reply_bytes: int | None = None,
        catalog_hit: bool | None = None,
        catalog_bytes: int | None = None,
        registry_bytes: int | None = None,
        pid: int | None = None,
        tid: int | None = None,
        events: list | None = None,
        rows_processed: int = 0,
    ):
        self.part = part
        self.rows = rows
        self.seconds = seconds
        self.cpu_seconds = cpu_seconds
        self.peak_mem_bytes = peak_mem_bytes
        self.reply_bytes = reply_bytes
        self.catalog_hit = catalog_hit
        #: Deep size of the shard catalog this fragment ran over, and the
        #: worker's whole resident registry — measured worker-side
        #: (:func:`repro.engine.memsize.deep_sizeof`, computed once per
        #: catalog key) and shipped home so the coordinator can account
        #: memory it cannot see. None when telemetry/accounting was off.
        self.catalog_bytes = catalog_bytes
        self.registry_bytes = registry_bytes
        self.pid = pid
        self.tid = tid
        self.events = events
        #: Rows the worker's operators credited to its in-process
        #: progress counter — folded into the coordinator request's
        #: live-progress entry at gather time (live introspection).
        self.rows_processed = rows_processed

    @property
    def rows_shipped(self) -> int:
        return len(self.rows)


class _WorkerProgress:
    """Worker-side progress sink: a bare counter shipped back on the reply.

    Worker processes cannot reach the coordinator's active-query
    registry, so their tokens count rows locally and the total rides
    home on the ``FragmentResult``.
    """

    __slots__ = ("rows",)

    def __init__(self):
        self.rows = 0

    def advance(self, rows: int, op=None) -> None:
        self.rows += rows


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    preferred = os.environ.get("REPRO_MP_START")
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _maxrss_bytes() -> int:
    """This process's peak RSS in bytes (0 where rusage is unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(rss if sys.platform == "darwin" else rss * 1024)


def _send_msg(conn, msg, measure: bool) -> int:
    """Send *msg* over *conn*; with *measure*, pre-pickle to count bytes.

    ``Connection.send`` is exactly ``send_bytes(ForkingPickler.dumps(msg))``
    internally, so the measured path is wire-compatible with a plain
    ``recv()`` on the other side and costs no extra pickling pass.
    """
    if not measure:
        conn.send(msg)
        return 0
    buf = ForkingPickler.dumps(msg)
    conn.send_bytes(buf)
    return len(buf)


def _recv_msg(conn, measure: bool) -> tuple[tuple, int]:
    """Receive one message; with *measure*, also report its pickled size."""
    if not measure:
        return conn.recv(), 0
    buf = conn.recv_bytes()
    return pickle.loads(buf), len(buf)


def _worker_main(conn, cancel_event) -> None:
    """The worker process message loop (module-level for spawn safety)."""
    from collections import OrderedDict

    from repro.core.trace import TraceEvent
    from repro.engine.batch import rows_from_batches
    from repro.engine.cancel import CancelToken, cancel_scope

    pid = os.getpid()
    tid = threading.get_native_id()

    def stats_events(stats, base: float, fallback_start: float) -> list:
        """Flatten an instrumented run's OpStats tree into span events."""
        out: list = []

        def walk(s) -> None:
            start = s.started if s.started else fallback_start
            out.append(
                TraceEvent(
                    phase="operator",
                    rule=s.op.describe(),
                    detail=f"rows={s.rows}",
                    ts=start - base,
                    dur=s.seconds,
                    pid=pid,
                    tid=tid,
                )
            )
            for child in s.children:
                walk(child)

        walk(stats)
        return out

    registry: "OrderedDict[tuple, dict]" = OrderedDict()
    #: key → deep size of its shard catalog, computed once per key on the
    #: first telemetric run (load messages carry no opts, so sizing waits
    #: until the run says telemetry is on). Pruned alongside the registry.
    catalog_sizes: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "load":
            _, key, tables = msg
            registry[key] = tables
            registry.move_to_end(key)
            catalog_sizes.pop(key, None)  # re-shipped key: stale size
            while len(registry) > WORKER_REGISTRY_CAPACITY:
                evicted, _ = registry.popitem(last=False)
                catalog_sizes.pop(evicted, None)
            continue  # no ack; the pipe is FIFO, the run message follows
        # ("run", key, fragment, deadline, mode, batch_size, part, opts)
        _, key, fragment, deadline, mode, batch_size, part, opts = msg
        opts = opts or {}
        telemetry = bool(opts.get("telemetry"))
        trace_ctx = opts.get("trace")
        started = time.perf_counter()
        cpu0 = os.times() if telemetry else None
        rss0 = _maxrss_bytes() if telemetry else 0
        trace_mem = telemetry and bool(opts.get("tracemalloc"))
        if trace_mem:
            import tracemalloc

            tracemalloc.start()
        try:
            tables = registry[key]
            registry.move_to_end(key)
            token = CancelToken(deadline, event=cancel_event)
            progress = _WorkerProgress()
            token.progress = progress
            events = None
            with cancel_scope(token):
                if trace_ctx is not None:
                    # Instrumented run: per-operator spans ride back with
                    # the rows, stamped against the coordinator's clock.
                    from repro.engine.analyze import analyze

                    _, base = trace_ctx
                    run = analyze(fragment, tables, execution=mode, batch_size=batch_size)
                    rows = run.rows
                    events = stats_events(run.stats, base, started)
                    events.append(
                        TraceEvent(
                            phase="fragment",
                            rule=f"part={part}",
                            detail=f"{len(rows)} rows",
                            ts=started - base,
                            dur=time.perf_counter() - started,
                            pid=pid,
                            tid=tid,
                        )
                    )
                elif mode == "batch":
                    rows = list(rows_from_batches(fragment.run_batches(tables, batch_size)))
                else:
                    rows = list(fragment.run(tables))
            seconds = time.perf_counter() - started
            # Progress always ships — one int on a reply already carrying
            # the row payload — so the coordinator can fold it into the
            # request's live entry regardless of telemetry settings.
            extra = {"rows_processed": progress.rows}
            if telemetry:
                from repro.engine.cache import accounting_enabled
                from repro.engine.memsize import deep_sizeof

                if accounting_enabled():
                    if key not in catalog_sizes:
                        catalog_sizes[key] = deep_sizeof(tables)
                    extra.update(
                        catalog_bytes=catalog_sizes[key],
                        registry_bytes=sum(catalog_sizes.values()),
                        registry_sizes=dict(catalog_sizes),
                    )
                cpu1 = os.times()
                if trace_mem:
                    import tracemalloc

                    peak = tracemalloc.get_traced_memory()[1]
                else:
                    peak = max(0, _maxrss_bytes() - rss0)
                extra.update(
                    cpu=(cpu1.user - cpu0.user) + (cpu1.system - cpu0.system),
                    peak_mem=peak,
                    pid=pid,
                    tid=tid,
                    events=events,
                )
            elif events is not None:
                extra.update(pid=pid, tid=tid, events=events)
            conn.send(("ok", rows, seconds, extra))
        except CancelledError as exc:
            conn.send(("cancelled", str(exc)))
        except BaseException as exc:  # surfaced coordinator-side, not fatal here
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            if trace_mem:
                import tracemalloc

                if tracemalloc.is_tracing():
                    tracemalloc.stop()


class WorkerPool:
    """*parts* persistent worker processes executing fragments in lockstep."""

    def __init__(self, parts: int):
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        self.parts = parts
        self._ctx = _pick_context()
        self._procs: list | None = None
        self._conns: list = []
        self._cancel_event = None
        #: Per-worker mirror of the worker-side registry LRU: same
        #: capacity, same recency updates, so "already loaded" here is
        #: exactly "still resident" there.
        self._loaded: list[OrderedDict] = []
        #: Per-worker shard-catalog byte accounts (key → deep size),
        #: refreshed from each telemetric reply's ``registry_sizes`` at
        #: gather — the coordinator-side view the cache registry reports.
        self._catalog_sizes: list[dict] = []
        self._lock = threading.Lock()
        #: Set when a crash tore the workers down; the next start counts
        #: as a restart in ``pool_worker_restarts``.
        self._crashed = False

    # -- lifecycle ---------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._procs is not None:
            return
        self._cancel_event = self._ctx.Event()
        procs, conns = [], []
        for _ in range(self.parts):
            parent, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main, args=(child, self._cancel_event), daemon=True
            )
            proc.start()
            child.close()
            procs.append(proc)
            conns.append(parent)
        self._procs = procs
        self._conns = conns
        self._loaded = [OrderedDict() for _ in range(self.parts)]
        self._catalog_sizes = [{} for _ in range(self.parts)]
        POOL_METRICS.counter("pool_workers_spawned").inc(self.parts)
        if self._crashed:
            POOL_METRICS.counter("pool_worker_restarts").inc(self.parts)
            self._crashed = False

    @property
    def running(self) -> bool:
        return self._procs is not None

    @property
    def live_workers(self) -> int:
        """Worker processes currently alive (0 for a stopped pool)."""
        return sum(1 for proc in (self._procs or ()) if proc.is_alive())

    def close(self) -> None:
        """Stop the workers (the pool restarts lazily if used again)."""
        with self._lock:
            self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                if graceful:
                    conn.send(("stop",))
                conn.close()
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=0.5 if graceful else 0.1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = None
        self._conns = []
        self._cancel_event = None
        self._loaded = []
        self._catalog_sizes = []

    # -- scatter-gather ----------------------------------------------------
    def run_fragments(
        self,
        fragment,
        payloads,
        deadline: float | None,
        mode: str = "batch",
        batch_size: int = 1024,
        coordinator_token=None,
        trace_ctx: tuple | None = None,
    ) -> list[FragmentResult]:
        """Ship *fragment* to every worker over its payload catalog and
        collect one result per part, honouring deadline and cancellation.

        *trace_ctx* — ``(trace_id, base_instant)`` of the coordinator's
        ambient :class:`~repro.core.trace.QueryTrace` — makes the workers
        run instrumented and ship back per-operator spans on each
        :class:`FragmentResult`.
        """
        telemetry = _TELEMETRY
        waiting_from = time.perf_counter()
        with self._lock:
            if telemetry:
                POOL_METRICS.histogram("pool_dispatch_wait_ms").observe(
                    (time.perf_counter() - waiting_from) * 1e3
                )
                POOL_METRICS.counter("pool_scatters").inc()
            self._ensure_started()
            try:
                return self._scatter_gather(
                    fragment,
                    payloads,
                    deadline,
                    mode,
                    batch_size,
                    coordinator_token,
                    trace_ctx,
                    telemetry,
                )
            except WorkerCrashError as exc:
                POOL_METRICS.counter("pool_worker_crashes").inc()
                _CRASHES.append(
                    {
                        "error": str(exc),
                        "parts": self.parts,
                        "when": time.time(),
                    }
                )
                self._crashed = True
                self._teardown(graceful=False)
                raise

    def _scatter_gather(
        self,
        fragment,
        payloads,
        deadline,
        mode,
        batch_size,
        coordinator_token,
        trace_ctx,
        telemetry,
    ) -> list[FragmentResult]:
        key = payloads.key
        opts = {
            "telemetry": telemetry,
            "trace": trace_ctx,
            "tracemalloc": telemetry and bool(os.environ.get("REPRO_TRACEMALLOC")),
        }
        catalog_hits = [False] * self.parts
        payload_bytes = 0
        scatter_from = time.perf_counter()
        try:
            for i, conn in enumerate(self._conns):
                loaded = self._loaded[i]
                if key in loaded:
                    loaded.move_to_end(key)  # mirrors the worker's `run` touch
                    catalog_hits[i] = True
                else:
                    payload_bytes += _send_msg(
                        conn, ("load", key, payloads.catalogs[i]), telemetry
                    )
                    loaded[key] = True
                    while len(loaded) > WORKER_REGISTRY_CAPACITY:
                        loaded.popitem(last=False)
                        POOL_METRICS.counter("pool_catalog_evictions").inc()
                payload_bytes += _send_msg(
                    conn,
                    ("run", key, fragment, deadline, mode, batch_size, i, opts),
                    telemetry,
                )
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(f"worker pipe closed during scatter: {exc}") from exc
        scattered_at = time.perf_counter()

        results: list[FragmentResult | None] = [None] * self.parts
        outcome_cancelled: str | None = None
        outcome_error: str | None = None
        pending = {conn: i for i, conn in enumerate(self._conns)}
        reply_bytes = 0
        event_set = False  # we raised the shared flag and must clear it
        deadline_cancelled = False
        cancel_instant: float | None = None

        def raise_event(now: float) -> None:
            nonlocal event_set, cancel_instant
            if not event_set:
                self._cancel_event.set()
                event_set = True
                cancel_instant = now

        try:
            while pending:
                ready = _conn_wait(list(pending), timeout=0.05)
                now = time.monotonic()
                if not event_set:
                    expired = deadline is not None and now >= deadline
                    externally = coordinator_token is not None and (
                        coordinator_token.cancelled or coordinator_token.expired()
                    )
                    if expired or externally:
                        deadline_cancelled = True
                        raise_event(now)
                elif cancel_instant is not None and now - cancel_instant > CANCEL_GRACE:
                    raise WorkerCrashError(
                        "worker ignored cancellation for "
                        f"{CANCEL_GRACE:.0f}s; pool discarded"
                    )
                for conn in ready:
                    part = pending.pop(conn)
                    try:
                        msg, nbytes = _recv_msg(conn, telemetry)
                    except EOFError as exc:
                        raise WorkerCrashError(
                            f"worker for part {part} died mid-fragment"
                        ) from exc
                    reply_bytes += nbytes
                    status = msg[0]
                    if status == "ok":
                        extra = msg[3] if len(msg) > 3 else None
                        extra = extra or {}
                        registry_sizes = extra.get("registry_sizes")
                        if registry_sizes is not None:
                            # Fold the worker's shard-catalog byte account
                            # into the coordinator-side view (telemetry
                            # pattern: workers measure, gather aggregates).
                            self._catalog_sizes[part] = registry_sizes
                        results[part] = FragmentResult(
                            part,
                            msg[1],
                            msg[2],
                            cpu_seconds=extra.get("cpu"),
                            peak_mem_bytes=extra.get("peak_mem"),
                            reply_bytes=nbytes if telemetry else None,
                            catalog_hit=catalog_hits[part],
                            catalog_bytes=extra.get("catalog_bytes"),
                            registry_bytes=extra.get("registry_bytes"),
                            pid=extra.get("pid"),
                            tid=extra.get("tid"),
                            events=extra.get("events"),
                            rows_processed=extra.get("rows_processed", 0),
                        )
                    elif status == "cancelled":
                        outcome_cancelled = msg[1]
                    else:
                        outcome_error = msg[1]
                        # Sibling fragments are moot; stop them early.
                        raise_event(now)
        finally:
            # Every dispatched fragment has answered (or the pool is being
            # torn down); only now is the shared event safe to clear.
            if event_set and self._cancel_event is not None:
                self._cancel_event.clear()
        if outcome_error is not None:
            raise ExecutionError(f"parallel fragment failed: {outcome_error}")
        if outcome_cancelled is not None or deadline_cancelled:
            raise CancelledError(outcome_cancelled or "deadline exceeded")
        if telemetry:
            hits = sum(catalog_hits)
            POOL_METRICS.counter("pool_catalog_ship_hits").inc(hits)
            POOL_METRICS.counter("pool_catalog_ship_misses").inc(self.parts - hits)
            POOL_METRICS.counter("pool_fragments").inc(self.parts)
            POOL_METRICS.histogram("pool_scatter_ms").observe(
                (scattered_at - scatter_from) * 1e3
            )
            POOL_METRICS.histogram("pool_gather_ms").observe(
                (time.perf_counter() - scattered_at) * 1e3
            )
            POOL_METRICS.histogram("pool_payload_bytes").observe(payload_bytes)
            POOL_METRICS.histogram("pool_reply_bytes").observe(reply_bytes)
        return [r for r in results if r is not None]


# ---------------------------------------------------------------------------
# The process-wide pool registry: one pool per partition count.
# ---------------------------------------------------------------------------

_POOLS: dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(parts: int) -> WorkerPool:
    """The shared pool for *parts* partitions (created on first use)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(parts)
        if pool is None:
            pool = _POOLS[parts] = WorkerPool(parts)
        return pool


def shutdown_pools() -> None:
    """Stop every pool (tests and interpreter shutdown)."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.close()
        _POOLS.clear()


def shard_catalog_report(top_k: int = 3) -> dict:
    """Cache-registry report for the workers' resident shard catalogs.

    Aggregates the coordinator-side byte accounts (folded from telemetric
    replies) across every pool: total bytes, resident (worker, key)
    entries, ship hit/miss counters, and the top-k largest catalogs keyed
    by their (table name, uid, version) triples. Workers that have not
    yet answered a telemetric run contribute nothing — the account is as
    fresh as the last gather, which is exactly the coordinator's view.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
    total = 0
    entries = 0
    per_key: dict[tuple, dict] = {}
    for pool in pools:
        for sizes in pool._catalog_sizes:
            for key, nbytes in sizes.items():
                total += nbytes
                entries += 1
                agg = per_key.setdefault(key, {"bytes": 0, "workers": 0})
                agg["bytes"] += nbytes
                agg["workers"] += 1
    counters = POOL_METRICS.snapshot().get("counters", {})
    evictions = counters.get("pool_catalog_evictions", 0)
    misses = counters.get("pool_catalog_ship_misses", 0)
    report = {
        "bytes": total,
        "entries": entries,
        "hits": counters.get("pool_catalog_ship_hits", 0),
        "misses": misses,
        "inserts": misses,  # every ship miss loads a catalog
        "evictions": evictions,
        "evictions_by_reason": {"capacity": evictions} if evictions else {},
        "max_bytes": None,
    }
    ranked = sorted(per_key.items(), key=lambda kv: kv[1]["bytes"], reverse=True)
    report["top_entries"] = [
        {
            "tables": [
                {"name": name, "uid": uid, "version": version}
                for name, uid, version in key[0]
            ],
            "partition_attrs": list(key[1]),
            "parts": key[3],
            "workers": agg["workers"],
            "bytes": agg["bytes"],
        }
        for key, agg in ranked[: max(0, top_k)]
    ]
    return report


register_cache("shard-catalog", shard_catalog_report)


def pool_gauges() -> dict[str, float]:
    """Point-in-time pool gauges for the ``/metrics`` exposition."""
    with _POOLS_LOCK:
        live = sum(pool.live_workers for pool in _POOLS.values())
        count = len(_POOLS)
    return {"pool_live_workers": live, "pool_count": count}


def pool_health() -> dict:
    """A JSON-serializable pool-health report for ``QueryService.stats()``.

    Live worker counts per pool, the recent-crash failure ring, and the
    :data:`POOL_METRICS` snapshot (counters, dispatch/scatter/gather
    timings, payload sizes).
    """
    with _POOLS_LOCK:
        pools = {str(parts): pool.live_workers for parts, pool in _POOLS.items()}
    return {
        "pools": pools,
        "live_workers": sum(pools.values()),
        "recent_crashes": recent_crashes(),
        "metrics": POOL_METRICS.snapshot(),
    }
