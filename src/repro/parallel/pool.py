"""A persistent multiprocessing worker pool for plan fragments.

One pool per partition count, spawned lazily and reused across queries
(:func:`get_pool`). Each worker is a long-lived process connected by a
duplex pipe, running a small message loop:

* ``("load", key, tables)`` — install a shard catalog in the worker's
  registry (bounded LRU). The coordinator tracks which keys each worker
  holds and ships a catalog version's shards exactly once; subsequent
  queries against unchanged tables send only the pickled fragment.
* ``("run", key, fragment, deadline, mode, batch_size)`` — execute the
  fragment over the loaded tables under a
  :class:`~repro.engine.cancel.CancelToken` and reply ``("ok", rows,
  seconds)``, ``("cancelled", reason)``, or ``("error", message)``.
* ``("stop",)`` — exit.

**Cancellation** maps the engine's cooperative protocol across the
process boundary: every worker token is backed by one shared
``multiprocessing.Event``, so a single ``set()`` in the coordinator is
observed by every in-flight fragment at its next poll. **Deadlines**
travel as absolute ``time.monotonic`` instants, which are comparable
across processes on Linux (CLOCK_MONOTONIC is system-wide). After a
cancelled scatter the coordinator still collects one reply per dispatched
fragment — workers answer ``("cancelled", ...)`` promptly because they
poll at batch granularity — and only then clears the shared event, so a
stale cancellation can never leak into the next query.

**Crashes**: a worker dying mid-fragment surfaces as ``EOFError`` on its
pipe; the pool terminates all workers, marks itself broken (it respawns
on next use), and raises :class:`~repro.errors.WorkerCrashError` — never
a partial result.

The start method prefers ``fork`` (cheap, shares the code image) and
falls back to ``spawn`` where fork is unavailable; everything shipped is
pickle-clean either way (``tests/model/test_pickle.py``), so both work.
Scatters through one pool are serialized by a lock: concurrent service
threads queue rather than interleave fragments from different queries.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from multiprocessing.connection import wait as _conn_wait

from repro.errors import CancelledError, ExecutionError, WorkerCrashError

__all__ = ["WorkerPool", "get_pool", "shutdown_pools", "FragmentResult"]

#: Shard-catalog entries each worker retains (distinct catalog versions /
#: partition layouts); older entries are evicted least-recently-used.
WORKER_REGISTRY_CAPACITY = 4

#: Seconds the coordinator waits, after setting the cancel event, for a
#: worker to acknowledge before declaring it wedged and crashing the pool.
CANCEL_GRACE = 30.0


class FragmentResult:
    """One shard's reply: its rows and worker-side wall time."""

    __slots__ = ("part", "rows", "seconds")

    def __init__(self, part: int, rows: list, seconds: float):
        self.part = part
        self.rows = rows
        self.seconds = seconds


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    preferred = os.environ.get("REPRO_MP_START")
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(conn, cancel_event) -> None:
    """The worker process message loop (module-level for spawn safety)."""
    from collections import OrderedDict

    from repro.engine.batch import rows_from_batches
    from repro.engine.cancel import CancelToken, cancel_scope

    registry: "OrderedDict[tuple, dict]" = OrderedDict()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "load":
            _, key, tables = msg
            registry[key] = tables
            registry.move_to_end(key)
            while len(registry) > WORKER_REGISTRY_CAPACITY:
                registry.popitem(last=False)
            continue  # no ack; the pipe is FIFO, the run message follows
        # ("run", key, fragment, deadline, mode, batch_size)
        _, key, fragment, deadline, mode, batch_size = msg
        started = time.perf_counter()
        try:
            tables = registry[key]
            registry.move_to_end(key)
            token = CancelToken(deadline, event=cancel_event)
            with cancel_scope(token):
                if mode == "batch":
                    rows = list(rows_from_batches(fragment.run_batches(tables, batch_size)))
                else:
                    rows = list(fragment.run(tables))
            conn.send(("ok", rows, time.perf_counter() - started))
        except CancelledError as exc:
            conn.send(("cancelled", str(exc)))
        except BaseException as exc:  # surfaced coordinator-side, not fatal here
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """*parts* persistent worker processes executing fragments in lockstep."""

    def __init__(self, parts: int):
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        self.parts = parts
        self._ctx = _pick_context()
        self._procs: list | None = None
        self._conns: list = []
        self._cancel_event = None
        #: Per-worker mirror of the worker-side registry LRU: same
        #: capacity, same recency updates, so "already loaded" here is
        #: exactly "still resident" there.
        self._loaded: list[OrderedDict] = []
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._procs is not None:
            return
        self._cancel_event = self._ctx.Event()
        procs, conns = [], []
        for _ in range(self.parts):
            parent, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main, args=(child, self._cancel_event), daemon=True
            )
            proc.start()
            child.close()
            procs.append(proc)
            conns.append(parent)
        self._procs = procs
        self._conns = conns
        self._loaded = [OrderedDict() for _ in range(self.parts)]

    @property
    def running(self) -> bool:
        return self._procs is not None

    def close(self) -> None:
        """Stop the workers (the pool restarts lazily if used again)."""
        with self._lock:
            self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                if graceful:
                    conn.send(("stop",))
                conn.close()
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=0.5 if graceful else 0.1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = None
        self._conns = []
        self._cancel_event = None
        self._loaded = []

    # -- scatter-gather ----------------------------------------------------
    def run_fragments(
        self,
        fragment,
        payloads,
        deadline: float | None,
        mode: str = "batch",
        batch_size: int = 1024,
        coordinator_token=None,
    ) -> list[FragmentResult]:
        """Ship *fragment* to every worker over its payload catalog and
        collect one result per part, honouring deadline and cancellation."""
        with self._lock:
            self._ensure_started()
            try:
                return self._scatter_gather(
                    fragment, payloads, deadline, mode, batch_size, coordinator_token
                )
            except WorkerCrashError:
                self._teardown(graceful=False)
                raise

    def _scatter_gather(
        self, fragment, payloads, deadline, mode, batch_size, coordinator_token
    ) -> list[FragmentResult]:
        key = payloads.key
        try:
            for i, conn in enumerate(self._conns):
                loaded = self._loaded[i]
                if key in loaded:
                    loaded.move_to_end(key)  # mirrors the worker's `run` touch
                else:
                    conn.send(("load", key, payloads.catalogs[i]))
                    loaded[key] = True
                    while len(loaded) > WORKER_REGISTRY_CAPACITY:
                        loaded.popitem(last=False)
                conn.send(("run", key, fragment, deadline, mode, batch_size))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(f"worker pipe closed during scatter: {exc}") from exc

        results: list[FragmentResult | None] = [None] * self.parts
        outcome_cancelled: str | None = None
        outcome_error: str | None = None
        pending = {conn: i for i, conn in enumerate(self._conns)}
        event_set = False  # we raised the shared flag and must clear it
        deadline_cancelled = False
        cancel_instant: float | None = None

        def raise_event(now: float) -> None:
            nonlocal event_set, cancel_instant
            if not event_set:
                self._cancel_event.set()
                event_set = True
                cancel_instant = now

        try:
            while pending:
                ready = _conn_wait(list(pending), timeout=0.05)
                now = time.monotonic()
                if not event_set:
                    expired = deadline is not None and now >= deadline
                    externally = coordinator_token is not None and (
                        coordinator_token.cancelled or coordinator_token.expired()
                    )
                    if expired or externally:
                        deadline_cancelled = True
                        raise_event(now)
                elif cancel_instant is not None and now - cancel_instant > CANCEL_GRACE:
                    raise WorkerCrashError(
                        "worker ignored cancellation for "
                        f"{CANCEL_GRACE:.0f}s; pool discarded"
                    )
                for conn in ready:
                    part = pending.pop(conn)
                    try:
                        msg = conn.recv()
                    except EOFError as exc:
                        raise WorkerCrashError(
                            f"worker for part {part} died mid-fragment"
                        ) from exc
                    status = msg[0]
                    if status == "ok":
                        results[part] = FragmentResult(part, msg[1], msg[2])
                    elif status == "cancelled":
                        outcome_cancelled = msg[1]
                    else:
                        outcome_error = msg[1]
                        # Sibling fragments are moot; stop them early.
                        raise_event(now)
        finally:
            # Every dispatched fragment has answered (or the pool is being
            # torn down); only now is the shared event safe to clear.
            if event_set and self._cancel_event is not None:
                self._cancel_event.clear()
        if outcome_error is not None:
            raise ExecutionError(f"parallel fragment failed: {outcome_error}")
        if outcome_cancelled is not None or deadline_cancelled:
            raise CancelledError(outcome_cancelled or "deadline exceeded")
        return [r for r in results if r is not None]


# ---------------------------------------------------------------------------
# The process-wide pool registry: one pool per partition count.
# ---------------------------------------------------------------------------

_POOLS: dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(parts: int) -> WorkerPool:
    """The shared pool for *parts* partitions (created on first use)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(parts)
        if pool is None:
            pool = _POOLS[parts] = WorkerPool(parts)
        return pool


def shutdown_pools() -> None:
    """Stop every pool (tests and interpreter shutdown)."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.close()
        _POOLS.clear()
