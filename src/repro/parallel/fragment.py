"""Splitting a physical plan into per-partition fragments.

The unit of parallelism is the plan's *spine*: the path from the root down
through unary operators and join **left** inputs to the leftmost scan (the
*base*). Every row the plan emits derives from exactly one base row, and
every operator on the spine processes the stream per row or per
equal-key group — so running the identical operator tree over a disjoint
hash partition of the base table, in P workers, and merging the outputs
reproduces the sequential result. Off-spine subtrees (join right inputs)
read only *broadcast* tables, which every worker holds whole, so they
evaluate identically everywhere.

Three operators need more than "per row" reasoning:

* **Joins** are safe under broadcast in all five modes: each left row's
  match set (and hence its inner/semi/anti/outer/nest outcome) depends
  only on that row and the full right input. When the spine's first join
  equi-keys on *direct attributes of the base variable* against a bare
  scan keyed on direct attributes, the right table can instead be
  **co-partitioned** — hashed on its key attributes into the same shard
  space — because equal key tuples hash to the same shard on both sides.
  Both partitions are computed in the coordinator process, so the
  per-process hash salt cannot disagree between them.
* **Distinct** dedups within a shard only; the gather step re-dedups
  across shards (distinct∘union∘distinct = distinct∘union).
* **Nest** groups are shard-local only when the base binding is among the
  group-by columns (all rows deriving from one base row live in its
  shard). Otherwise a group can span shards: the fragment ends at (and
  includes) that ``PNest``, workers emit *partial* groups, and the gather
  step re-groups by key, unioning the partial sets. Operators above that
  cut — the *tail* — run sequentially in the coordinator over the merged
  rows.

Plans this analysis cannot shard (no named base table, a base table
scanned twice — self joins — or referenced from inside a predicate's
interpreted subquery) return ``None``, and the executor falls back to
sequential execution. Falling back is always correct; sharding is an
optimization, never a semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.engine.batch import DEFAULT_BATCH_SIZE, Batch, batches_from_rows
from repro.engine.physical import (
    PDistinct,
    PDrop,
    PExtend,
    PFilter,
    PJoin,
    PMap,
    PNest,
    PScan,
    PUnnest,
    PhysicalOp,
)
from repro.lang.ast import Attr, Expr, Var
from repro.lang.freevars import free_vars
from repro.model.values import Tup

__all__ = [
    "FragmentPlan",
    "plan_fragments",
    "plan_fragments_ex",
    "merge_rows",
    "PGather",
    "PFragment",
    "PRows",
]


@dataclass
class FragmentPlan:
    """The scatter-gather decomposition of one physical plan."""

    #: The operator subtree each worker runs over its shard catalog.
    fragment: PhysicalOp
    #: Name of the spine's base table — replaced by a shard per worker.
    base_table: str
    #: Base-row attributes hashed to pick a shard; empty = round-robin.
    partition_attrs: tuple[str, ...]
    #: ``(table name, key attrs)`` of a co-partitioned right scan, or None
    #: (then every non-base table is broadcast whole).
    copartition: tuple[str, tuple[str, ...]] | None
    #: The spine ``PNest`` fragments end at when its groups may span
    #: shards; gather re-groups by key and unions the partial sets.
    regroup: PNest | None
    #: Whether gather must re-dedup (a spine ``PDistinct`` ran per shard).
    dedup: bool
    #: Operators above the cut, run in the coordinator over the merged
    #: rows (the spine child of its lowest op is rebound to a PRows).
    tail: PhysicalOp | None

    def describe(self) -> str:
        how = (
            f"co-partition {self.copartition[0]}({', '.join(self.copartition[1])})"
            if self.copartition
            else "broadcast"
        )
        on = ", ".join(self.partition_attrs) or "round-robin"
        bits = [f"base={self.base_table}", f"on={on}", how]
        if self.regroup is not None:
            bits.append(f"regroup {self.regroup.label}")
        if self.dedup:
            bits.append("dedup")
        return ", ".join(bits)


def _spine(root: PhysicalOp) -> list[PhysicalOp] | None:
    """Root-to-base path through unary children and join left inputs."""
    path = [root]
    node = root
    while not isinstance(node, PScan):
        if isinstance(node, PJoin):
            node = node.left
        elif hasattr(node, "child"):
            node = node.child
        else:
            return None  # unknown leaf/operator shape
        path.append(node)
    return path


def _tree_exprs(op: PhysicalOp) -> Iterator[Expr]:
    """Every expression embedded anywhere in the operator tree."""
    stack = [op]
    while stack:
        node = stack.pop()
        stack.extend(node.children())
        if isinstance(node, PFilter):
            yield node.pred
        elif isinstance(node, (PMap, PExtend)):
            yield node.expr
        elif isinstance(node, PJoin):
            yield node.pred
            if node.func is not None:
                yield node.func


def _scan_counts(op: PhysicalOp) -> dict[str, int]:
    counts: dict[str, int] = {}
    stack = [op]
    while stack:
        node = stack.pop()
        stack.extend(node.children())
        if isinstance(node, PScan):
            counts[node.table] = counts.get(node.table, 0) + 1
    return counts


def _direct_attrs(keys: tuple[Expr, ...], var: str) -> tuple[str, ...] | None:
    """The attribute names when every key is ``var.attr``, else None."""
    attrs: list[str] = []
    for key in keys:
        if not (
            isinstance(key, Attr)
            and isinstance(key.base, Var)
            and key.base.name == var
        ):
            return None
        attrs.append(key.label)
    return tuple(attrs)


def plan_fragments(root: PhysicalOp, catalog: Mapping) -> FragmentPlan | None:
    """Decompose *root* for partitioned execution, or None to fall back."""
    return plan_fragments_ex(root, catalog)[0]


def plan_fragments_ex(
    root: PhysicalOp, catalog: Mapping
) -> tuple[FragmentPlan | None, str | None]:
    """Like :func:`plan_fragments`, but a failed decomposition also names
    *why* sharding is unsafe.

    Returns ``(plan, None)`` on success and ``(None, reason)`` on fallback,
    where *reason* is a low-cardinality slug (``no-spine``,
    ``unsharded-base``, ``unknown-operator``, ``self-join``,
    ``base-in-predicate``) suitable as a metric label; the executor emits
    it as a structured trace warning and counts it in
    ``pool_sequential_fallbacks`` instead of degrading silently.
    """
    path = _spine(root)
    if path is None:
        return None, "no-spine"
    base = path[-1]
    assert isinstance(base, PScan)
    source = catalog[base.table] if base.table in catalog else None
    if source is None or not hasattr(source, "partitioned"):
        return None, "unsharded-base"  # not a stored, shardable table

    # Walk the spine bottom-up, tracking whether the base binding is still
    # intact, until the first PNest whose groups may span shards.
    bottom_up = list(reversed(path[:-1]))  # excludes the base scan
    alive = base.var
    cut_index: int | None = None  # index into bottom_up
    for i, op in enumerate(bottom_up):
        if isinstance(op, PNest):
            if alive is None or alive not in op.by:
                cut_index = i
                break
            continue  # shard-local grouping; base binding is in `by`
        if isinstance(op, PMap):
            alive = None  # bindings collapse to the map variable
        elif isinstance(op, PDrop):
            if alive is not None and alive in op.labels:
                alive = None
        elif isinstance(op, PUnnest):
            if op.label == alive:
                alive = None
        elif not isinstance(op, (PFilter, PExtend, PDistinct, PJoin)):
            return None, "unknown-operator"  # unknown spine operator: don't guess

    if cut_index is not None:
        fragment = bottom_up[cut_index]
        regroup = fragment
        tail_ops = bottom_up[cut_index + 1 :]
    else:
        fragment = root
        regroup = None
        tail_ops = []

    # The base table must enter the fragment exactly once (self joins and
    # predicate-level table references would see a shard where sequential
    # execution sees the whole table).
    if _scan_counts(fragment).get(base.table, 0) != 1:
        return None, "self-join"
    referenced: frozenset[str] = frozenset()
    for expr in _tree_exprs(fragment):
        referenced |= free_vars(expr)
    if base.table in referenced:
        return None, "base-in-predicate"

    # Partition-key selection: the first spine join below the cut whose
    # left keys are direct attributes of the (still intact) base binding.
    partition_attrs: tuple[str, ...] = ()
    copartition: tuple[str, tuple[str, ...]] | None = None
    alive = base.var
    scan_counts = _scan_counts(fragment)
    for op in bottom_up[: cut_index if cut_index is not None else len(bottom_up)]:
        if isinstance(op, PMap):
            alive = None
        elif isinstance(op, PDrop) and alive in op.labels:
            alive = None
        elif isinstance(op, PUnnest) and op.label == alive:
            alive = None
        elif isinstance(op, PJoin) and alive is not None and not partition_attrs:
            left_attrs = _direct_attrs(op.spec.left_keys, alive)
            if left_attrs is None or not left_attrs:
                continue
            partition_attrs = left_attrs
            right = op.right
            if (
                isinstance(right, PScan)
                and right.table != base.table
                and right.table in catalog
                and hasattr(catalog[right.table], "partitioned")
                and scan_counts.get(right.table, 0) == 1
                and right.table not in referenced
            ):
                right_attrs = _direct_attrs(op.spec.right_keys, right.var)
                if right_attrs is not None and len(right_attrs) == len(left_attrs):
                    copartition = (right.table, right_attrs)
            break

    below_cut = bottom_up[: cut_index if cut_index is not None else len(bottom_up)]
    dedup = any(isinstance(op, PDistinct) for op in below_cut)

    tail: PhysicalOp | None = None
    if tail_ops:
        # Rebuild the ancestors above the cut with the lowest one's spine
        # child pointing at a PRows placeholder; merge_rows() swaps the
        # gathered rows in per execution.
        node: PhysicalOp = PRows(())
        for op in tail_ops:
            if isinstance(op, PJoin):
                node = replace(op, left=node)
            else:
                node = replace(op, child=node)
        tail = node

    return (
        FragmentPlan(
            fragment=fragment,
            base_table=base.table,
            partition_attrs=partition_attrs,
            copartition=copartition,
            regroup=regroup,
            dedup=dedup,
            tail=tail,
        ),
        None,
    )


def merge_rows(fp: FragmentPlan, shard_rows: list[list[Tup]], catalog: Mapping) -> list[Tup]:
    """Gather: merge per-shard fragment outputs into the final row stream."""
    if fp.regroup is not None:
        label = fp.regroup.label
        merged: dict[Tup, set] = {}
        order: list[Tup] = []
        for rows in shard_rows:
            for row in rows:
                key = row.drop(label)
                group = merged.get(key)
                if group is None:
                    merged[key] = group = set()
                    order.append(key)
                group.update(row[label])
        out = [key.extend(**{label: frozenset(merged[key])}) for key in order]
    elif fp.dedup:
        seen: set[Tup] = set()
        out = []
        for rows in shard_rows:
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
    else:
        out = [row for rows in shard_rows for row in rows]
    if fp.tail is None:
        return out
    tail = _bind_rows(fp.tail, out)
    return list(tail.run(catalog))


def _bind_rows(tail: PhysicalOp, rows: list[Tup]) -> PhysicalOp:
    """A copy of the tail chain with its PRows leaf carrying *rows*."""
    if isinstance(tail, PRows):
        return PRows(tuple(rows))
    if isinstance(tail, PJoin):
        return replace(tail, left=_bind_rows(tail.left, rows))
    return replace(tail, child=_bind_rows(tail.child, rows))


# ---------------------------------------------------------------------------
# Pseudo-operators: materialized rows, and the gather/fragment nodes that
# EXPLAIN ANALYZE renders for a parallel run.
# ---------------------------------------------------------------------------


@dataclass
class PRows(PhysicalOp):
    """A materialized row stream standing in for a subtree (the gather
    boundary when a tail runs in the coordinator)."""

    rows: tuple[Tup, ...]
    est_rows: float = 0.0

    def run(self, tables: Mapping) -> Iterator[Tup]:
        return iter(self.rows)

    def run_batches(self, tables: Mapping, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        return batches_from_rows(iter(self.rows), batch_size)

    def describe(self) -> str:
        return f"Gathered rows ({len(self.rows)})"


@dataclass
class PFragment(PhysicalOp):
    """One shard's fragment execution, as a reporting node: ``part=i``."""

    part: int
    inner: PhysicalOp
    est_rows: float = 0.0

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.inner,)

    def run(self, tables: Mapping) -> Iterator[Tup]:
        return self.inner.run(tables)

    def describe(self) -> str:
        return f"Fragment part={self.part}"


@dataclass
class PGather(PhysicalOp):
    """The scatter-gather root node EXPLAIN ANALYZE reports for a
    parallel run; children are the per-part fragments."""

    parts: int
    detail: str
    fragments: tuple[PhysicalOp, ...]
    est_rows: float = 0.0

    def children(self) -> tuple[PhysicalOp, ...]:
        return self.fragments

    def describe(self) -> str:
        return f"Gather parts={self.parts} [{self.detail}]"
