"""Building per-worker shard catalogs from a fragment decomposition.

The actual hash split lives on the table
(:meth:`repro.engine.table.Table.partitioned`, cached in ``BUILD_CACHE``
under the ``"partition"`` kind and invalidated by version bumps); this
module assembles the per-worker *catalogs*: the base table's shard, the
co-partitioned table's shard when the fragment has one, and every other
table the fragment references shipped whole (broadcast).

Each payload set carries a *catalog key* — the (name, uid, version)
triples of every shipped table plus the partition layout — which the pool
uses to ship a worker its shard exactly once per catalog version: a
repeat query against unchanged tables sends only the (small) fragment,
not the data.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine.table import Table
from repro.parallel.fragment import FragmentPlan, _scan_counts, _tree_exprs
from repro.lang.freevars import free_vars

__all__ = ["ShardPayloads", "shard_payloads", "fragment_tables"]


class ShardPayloads:
    """Per-worker table mappings plus the identity key they ship under."""

    def __init__(self, key: tuple, catalogs: list[dict]):
        self.key = key
        self.catalogs = catalogs


def fragment_tables(fp: FragmentPlan, catalog: Mapping) -> tuple[str, ...]:
    """Names of the catalog tables the fragment reads (scans plus free
    table references inside predicates), in deterministic order."""
    names = set(_scan_counts(fp.fragment))
    for expr in _tree_exprs(fp.fragment):
        names |= {v for v in free_vars(expr) if v in catalog}
    return tuple(sorted(names))


def shard_payloads(fp: FragmentPlan, catalog: Mapping, parts: int) -> ShardPayloads:
    """The per-worker catalogs for running *fp* at *parts* partitions."""
    needed = fragment_tables(fp, catalog)
    base = catalog[fp.base_table]
    base_shards = base.partitioned(fp.partition_attrs, parts)
    copart_name = fp.copartition[0] if fp.copartition else None
    copart_shards = None
    if fp.copartition is not None:
        copart_shards = catalog[copart_name].partitioned(fp.copartition[1], parts)

    key = (
        tuple((name, catalog[name].uid, catalog[name].version) for name in needed),
        fp.partition_attrs,
        fp.copartition,
        parts,
    )
    catalogs: list[dict] = []
    for i in range(parts):
        tables: dict = {}
        for name in needed:
            source = catalog[name]
            if name == fp.base_table:
                tables[name] = Table(name, base_shards[i], row_type=source.row_type)
            elif name == copart_name:
                tables[name] = Table(name, copart_shards[i], row_type=source.row_type)
            else:
                tables[name] = source
        catalogs.append(tables)
    return ShardPayloads(key, catalogs)
