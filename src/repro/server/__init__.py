"""The concurrent query service over the prepared-query layer.

Public surface:

* :class:`~repro.server.service.QueryService` — worker pool, bounded
  admission queue with load shedding, per-request deadlines with
  cooperative cancellation, version-race retries, result reuse;
* :class:`~repro.server.request.QueryRequest` /
  :class:`~repro.server.request.QueryResponse` — the wire shapes;
* :mod:`~repro.server.metrics` — counters (plain and labeled) and
  histograms behind ``QueryService.stats()``;
* :class:`~repro.server.slowlog.SlowQueryLog` — bounded capture of the
  slowest served requests and recent rejections/timeouts
  (``stats()["slow_queries"]``);
* :mod:`~repro.server.exposition` — Prometheus text rendering of a
  metrics snapshot and the ``/metrics`` + ``/healthz`` scrape endpoint
  (:func:`~repro.server.exposition.serve_metrics`), which also carries
  the live-introspection admin surface (``GET /queries``,
  ``POST /queries/<id>/cancel``);
* :class:`~repro.server.registry.ActiveQueryRegistry` /
  :class:`~repro.server.registry.ActiveQuery` — live in-flight query
  tracking with progress fractions and admin cancel
  (``QueryService.registry``, rendered by ``repro top``);
* :func:`~repro.server.bench.run_serve_bench` — the mixed-workload
  benchmark harness (``repro serve-bench``).

See docs/serving.md for the architecture and the lifecycle of a request,
and docs/observability.md for tracing and the slow-query log.
"""

from repro.server.exposition import MetricsServer, prometheus_text, serve_metrics
from repro.server.metrics import (
    Counter,
    Histogram,
    LabeledCounter,
    LabeledHistogram,
    MetricsRegistry,
    percentile,
)
from repro.server.registry import ActiveQuery, ActiveQueryRegistry
from repro.server.request import QueryRequest, QueryResponse, bind_params
from repro.server.service import CatalogVersionRace, PendingQuery, QueryService
from repro.server.slowlog import SlowQueryLog

__all__ = [
    "QueryService",
    "PendingQuery",
    "ActiveQuery",
    "ActiveQueryRegistry",
    "QueryRequest",
    "QueryResponse",
    "CatalogVersionRace",
    "bind_params",
    "MetricsRegistry",
    "Counter",
    "LabeledCounter",
    "Histogram",
    "LabeledHistogram",
    "MetricsServer",
    "prometheus_text",
    "serve_metrics",
    "SlowQueryLog",
    "percentile",
]
