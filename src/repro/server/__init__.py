"""The concurrent query service over the prepared-query layer.

Public surface:

* :class:`~repro.server.service.QueryService` — worker pool, bounded
  admission queue with load shedding, per-request deadlines with
  cooperative cancellation, version-race retries, result reuse;
* :class:`~repro.server.request.QueryRequest` /
  :class:`~repro.server.request.QueryResponse` — the wire shapes;
* :mod:`~repro.server.metrics` — counters/histograms behind
  ``QueryService.stats()``;
* :func:`~repro.server.bench.run_serve_bench` — the mixed-workload
  benchmark harness (``repro serve-bench``).

See docs/serving.md for the architecture and the lifecycle of a request.
"""

from repro.server.metrics import Counter, Histogram, MetricsRegistry, percentile
from repro.server.request import QueryRequest, QueryResponse, bind_params
from repro.server.service import CatalogVersionRace, PendingQuery, QueryService

__all__ = [
    "QueryService",
    "PendingQuery",
    "QueryRequest",
    "QueryResponse",
    "CatalogVersionRace",
    "bind_params",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "percentile",
]
