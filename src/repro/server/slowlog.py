"""Slow-query capture: the N slowest served requests plus recent failures.

The query service records every completed request's trace summary here.
Two retention policies coexist, matching how the two populations are used:

* **Slowest-N** — ``ok`` responses compete for a fixed number of slots by
  total latency (queue + execute). A min-heap keyed on latency keeps the
  N slowest seen so far: a new entry either displaces the fastest resident
  or is dropped, so capture cost is O(log N) per request and memory is
  bounded regardless of traffic volume.
* **Recent failures** — rejected, errored (e.g. a worker-pool crash),
  cancelled, and deadline-exceeded requests are kept in a bounded FIFO
  ring (newest win). These are the requests with *no* useful latency
  signal — a shed request never ran — so recency, not slowness, is the
  retention key.

Every entry carries a ``query_id`` (the request id), the same
correlation key stamped on structured event-log lines
(:mod:`repro.core.log`) and live-registry snapshots — a slow or failed
query joins directly against its admission/cancel/completion events.

:meth:`SlowQueryLog.snapshot` returns both populations as plain dicts for
``QueryService.stats()["slow_queries"]`` and the ``repro serve-bench``
report.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Bounded capture of the slowest ok requests and recent failures."""

    def __init__(self, capacity: int = 16, failure_capacity: int = 64):
        if capacity <= 0:
            raise ValueError("slow-query capacity must be positive")
        if failure_capacity <= 0:
            raise ValueError("failure capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Min-heap of (total_seconds, seq, entry); the root is the fastest
        # resident, i.e. the first to be displaced. seq breaks latency ties
        # so entries (dicts) are never compared.
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self._failures: deque[dict] = deque(maxlen=failure_capacity)

    def record_ok(self, entry: dict) -> None:
        """Offer a completed request; kept only if among the N slowest."""
        key = (float(entry.get("total_seconds", 0.0)), next(self._seq), entry)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, key)
            elif key[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, key)

    def record_failure(self, entry: dict) -> None:
        """Keep a rejected, errored, or timed-out request (recency-bounded)."""
        with self._lock:
            self._failures.append(entry)

    def snapshot(self) -> dict:
        """Both populations as JSON-serializable data.

        ``slowest`` is ordered slowest-first; ``failures`` oldest-first.
        """
        with self._lock:
            slowest = sorted(self._heap, key=lambda item: item[0], reverse=True)
            failures = list(self._failures)
        return {
            "slowest": [entry for _, _, entry in slowest],
            "failures": failures,
        }
