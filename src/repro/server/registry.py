"""Live query introspection: the active-query registry.

Every request a :class:`~repro.server.service.QueryService` admits is
registered here for the duration of its execution as an
:class:`ActiveQuery` — query id, bound text, parameters, start time,
execution mode, the operator that last reported progress, and a rows
processed / estimated pair whose quotient is the *progress fraction*.

**How progress flows in.** The entry itself is the progress sink
installed on the request's :class:`~repro.engine.cancel.CancelToken`:
physical operators already poll the token at row/batch boundaries
(every :data:`~repro.engine.cancel.POLL_INTERVAL` rows, or once per
column batch), and those polls now carry the rows processed since the
previous poll straight into :meth:`ActiveQuery.advance` — an attribute
bump on the hot path only when a sink is installed. Parallel runs
execute in worker processes whose tokens cannot reach this registry;
their per-fragment row counts ship back on ``FragmentResult`` replies
and the coordinator folds them in at gather time (see
:func:`repro.parallel.fold_fragment_progress`).

**The denominator.** ``estimated_rows`` is
:func:`repro.engine.stats.estimated_work` over the compiled physical
tree — the sum of per-operator cardinality estimates, i.e. exactly the
numbers the cost model planned with and EXPLAIN ANALYZE audits via
q-error. The fraction is therefore an estimate: it is clamped to
``MIDFLIGHT_PROGRESS_CAP`` while the query runs (a misestimate must not
show a "finished" query that is still running) and snaps to 1.0 only
when the query completes successfully.

**Admin cancel.** Each entry keeps the request's token, so
:meth:`ActiveQueryRegistry.cancel` works for every execution mode: the
token's event stops sequential row/batch loops at their next poll, and
for parallel runs the pool's coordinator loop watches the same token
and raises the shared cross-process ``Event`` that worker tokens poll.

Finished queries move into a bounded ``recent`` ring (kept out of the
live set) so ``repro top`` and tests can see a query's final progress
shape after it left the registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Mapping

__all__ = ["ActiveQuery", "ActiveQueryRegistry", "MIDFLIGHT_PROGRESS_CAP"]

#: A running query's progress fraction never reports at or above 1.0 —
#: cardinality misestimates routinely undershoot the real work, and a
#: live entry pinned at "100%" while still running reads as a hang.
MIDFLIGHT_PROGRESS_CAP = 0.99

#: Finished entries retained for inspection (``repro top``'s RECENT pane).
RECENT_CAPACITY = 64


class ActiveQuery:
    """One admitted request's live state; also its progress sink.

    ``advance`` is called from the single thread executing the query
    (sequential polls, and the coordinator folding parallel fragments),
    so the counters are single-writer; readers (``/queries`` scrapes,
    ``repro top``) see a consistent monotone value under the GIL without
    taking a lock on the hot path.
    """

    __slots__ = (
        "query_id",
        "query",
        "params",
        "trace_id",
        "exec_mode",
        "started_at",
        "_started_mono",
        "deadline",
        "token",
        "state",
        "rows_processed",
        "estimated_rows",
        "current_op",
        "finished_seconds",
    )

    def __init__(
        self,
        query_id: str,
        query: str,
        params: Mapping | None = None,
        trace_id: str | None = None,
        exec_mode: str | None = None,
        token=None,
        deadline: float | None = None,
    ):
        self.query_id = query_id
        self.query = query
        self.params = dict(params) if params else {}
        self.trace_id = trace_id
        self.exec_mode = exec_mode
        #: Wall-clock admission instant (``time.time``), for display.
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        #: Absolute monotonic deadline, mirrored off the token (or None).
        self.deadline = deadline
        #: The request's :class:`~repro.engine.cancel.CancelToken`.
        self.token = token
        #: ``"running"`` while live; the outcome slug once finished.
        self.state = "running"
        self.rows_processed = 0
        #: :func:`repro.engine.stats.estimated_work` total, or None until
        #: the service has a compiled plan to estimate from.
        self.estimated_rows: float | None = None
        self.current_op: str | None = None
        self.finished_seconds: float | None = None

    # -- progress sink (the CancelToken.check hot path) ----------------------
    def advance(self, rows: int, op: str | None = None) -> None:
        """Credit *rows* of processed work, optionally stamping the operator."""
        self.rows_processed += rows
        if op is not None:
            self.current_op = op

    # -- derived -------------------------------------------------------------
    @property
    def progress(self) -> float:
        """Estimated completion fraction in [0, 1]; exactly 1.0 only when done."""
        if self.state == "ok":
            return 1.0
        if not self.estimated_rows:
            return 0.0
        fraction = self.rows_processed / self.estimated_rows
        return min(MIDFLIGHT_PROGRESS_CAP, fraction)

    def elapsed(self) -> float:
        if self.finished_seconds is not None:
            return self.finished_seconds
        return time.monotonic() - self._started_mono

    def cancel(self, reason: str = "cancelled by admin") -> bool:
        """Request cancellation through the query's token (False if untracked)."""
        if self.token is None:
            return False
        self.token.cancel(reason)
        return True

    def finish(self, outcome: str) -> None:
        self.finished_seconds = time.monotonic() - self._started_mono
        self.state = outcome

    def snapshot(self) -> dict:
        """A JSON-ready view (the ``/queries`` wire shape)."""
        remaining = self.token.remaining() if self.token is not None else None
        return {
            "query_id": self.query_id,
            "query": self.query,
            "params": dict(self.params),
            "trace_id": self.trace_id,
            "exec_mode": self.exec_mode,
            "state": self.state,
            "started_at": self.started_at,
            "elapsed_seconds": self.elapsed(),
            "remaining_seconds": remaining,
            "rows_processed": self.rows_processed,
            "estimated_rows": self.estimated_rows,
            "progress": self.progress,
            "current_op": self.current_op,
        }


class ActiveQueryRegistry:
    """Thread-safe map of in-flight queries plus a ring of recent ones."""

    def __init__(self, recent_capacity: int = RECENT_CAPACITY):
        self._lock = threading.Lock()
        self._active: dict[str, ActiveQuery] = {}
        self._recent: deque = deque(maxlen=recent_capacity)

    def register(
        self,
        query_id: str,
        query: str,
        params: Mapping | None = None,
        trace_id: str | None = None,
        exec_mode: str | None = None,
        token=None,
        deadline: float | None = None,
    ) -> ActiveQuery:
        """Track a newly admitted request; installs the progress sink.

        Returns the live entry. The token (when given) gets this entry
        as its ``progress`` sink so operator polls start crediting rows
        immediately.
        """
        entry = ActiveQuery(
            query_id,
            query,
            params=params,
            trace_id=trace_id,
            exec_mode=exec_mode,
            token=token,
            deadline=deadline,
        )
        if token is not None:
            token.progress = entry
        with self._lock:
            self._active[query_id] = entry
        return entry

    def finish(self, query_id: str, outcome: str) -> ActiveQuery | None:
        """Move a query out of the live set, stamping its final outcome."""
        with self._lock:
            entry = self._active.pop(query_id, None)
            if entry is not None:
                entry.finish(outcome)
                self._recent.append(entry)
        return entry

    def get(self, query_id: str) -> ActiveQuery | None:
        with self._lock:
            return self._active.get(query_id)

    def cancel(self, query_id: str, reason: str = "cancelled by admin") -> bool:
        """Cancel a live query by id; False when unknown or untracked."""
        entry = self.get(query_id)
        if entry is None:
            return False
        return entry.cancel(reason)

    def __len__(self) -> int:
        with self._lock:
            return len(self._active)

    def active(self) -> list[ActiveQuery]:
        with self._lock:
            return list(self._active.values())

    def snapshot(self) -> dict:
        """JSON-ready ``{"active": [...], "recent": [...]}`` (the wire shape).

        Active entries are ordered by admission (oldest first); recent
        ones oldest-finished first.
        """
        with self._lock:
            active = [e.snapshot() for e in self._active.values()]
            recent = [e.snapshot() for e in self._recent]
        active.sort(key=lambda e: e["started_at"])
        return {"active": active, "recent": recent}
