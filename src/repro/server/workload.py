"""A mixed serving workload: the paper's query set over one combined catalog.

Builds a single catalog holding all three example universes — the
relational R/S pair (COUNT bug), the X/Y/Z chain (SUBSETEQ bug and the
Section 8 linear query), and the company EMP/DEPT extensions (Q1/Q2) — so
one service instance can be hammered with every query shape the repo
knows, plus a parameterized point-lookup exercising per-parameter plan
entries. Everything is seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.engine.table import Catalog
from repro.server.request import QueryRequest
from repro.workloads import (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SECTION8_FLAT_VARIANT,
    SECTION8_QUERY,
    SUBSETEQ_BUG_NESTED,
    UNNEST_COLLAPSE,
    make_chain_workload,
    make_company,
    make_join_workload,
)

__all__ = ["PARAM_LOOKUP", "MIXED_QUERIES", "mixed_catalog", "make_requests"]

#: A parameterized point lookup on the R relation; each distinct $key is a
#: distinct bound text (and hence plan-cache entry and result-cache key).
PARAM_LOOKUP = "SELECT r FROM R r WHERE r.a = $key"

#: The unparameterized part of the mix: every worked example of the paper.
MIXED_QUERIES = (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SUBSETEQ_BUG_NESTED,
    SECTION8_QUERY,
    SECTION8_FLAT_VARIANT,
    UNNEST_COLLAPSE,
)


def mixed_catalog(
    seed: int = 0,
    n_left: int = 200,
    n_right: int = 1200,
    n_chain: int = 40,
    n_departments: int = 8,
    n_employees: int = 80,
) -> Catalog:
    """One catalog with R/S, X/Y/Z, and EMP/DEPT, sized for fast oracles.

    The default sizes keep the interpreter oracle affordable (it is
    quadratic in the worst shapes) while leaving warm physical execution
    per request in the sub-millisecond-to-millisecond range.
    """
    combined = Catalog()
    join = make_join_workload(n_left=n_left, n_right=n_right, fanout=3, seed=seed)
    chain = make_chain_workload(
        n_x=n_chain, n_y=n_chain, n_z=n_chain, set_size=1, seed=seed + 1
    )
    company = make_company(
        n_departments=n_departments, n_employees=n_employees, seed=seed + 2
    )
    for source in (join.catalog, chain, company):
        for name in source:
            combined.add(source[name])
    return combined


def make_requests(
    n: int,
    seed: int = 0,
    n_left: int = 200,
    param_share: float = 0.25,
    timeout: float | None = None,
) -> list[QueryRequest]:
    """*n* seeded requests sampled from the mixed query set.

    ``param_share`` of them are parameterized lookups with keys drawn from
    the R key domain (so most hit, some select nothing); the rest cycle
    through :data:`MIXED_QUERIES` in a shuffled order.
    """
    rng = random.Random(seed)
    requests: list[QueryRequest] = []
    for _ in range(n):
        if rng.random() < param_share:
            key = rng.randrange(int(n_left * 1.1) + 1)
            requests.append(
                QueryRequest(PARAM_LOOKUP, params={"key": key}, timeout=timeout)
            )
        else:
            requests.append(
                QueryRequest(rng.choice(MIXED_QUERIES), timeout=timeout)
            )
    return requests
