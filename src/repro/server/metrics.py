"""Thread-safe serving metrics: counters, latency histograms, a registry.

The query service records every request's fate here; :meth:`MetricsRegistry.snapshot`
is what ``QueryService.stats()`` and the ``repro serve-bench`` JSON report
serialize. The pieces are deliberately minimal:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Histogram` — running count/sum/min/max plus a bounded ring of
  the most recent observations, from which percentiles are computed at
  read time (sorting a few thousand floats on demand beats maintaining a
  sorted structure on every observation);
* :class:`MetricsRegistry` — name → instrument, created on first use.

:func:`percentile` is the shared interpolating-percentile helper; the CLI's
``query --repeat`` reporting uses it directly on its timing samples.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "LabeledCounter",
    "Histogram",
    "LabeledHistogram",
    "MetricsRegistry",
    "percentile",
]


def percentile(values: Sequence[float] | Iterable[float], q: float) -> float:
    """The *q*-th percentile (0–100) of *values*, linearly interpolated.

    Returns 0.0 for an empty input so report code needs no special case.
    *q* is clamped to [0, 100]: q<=0 is the minimum, q>=100 the maximum.
    """
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    q = min(100.0, max(0.0, q))
    rank = (len(data) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"


class LabeledCounter:
    """A family of counters keyed by a string label.

    One instrument, many time series — e.g. ``queries_by_rewrite`` with
    labels ``semijoin`` / ``antijoin`` / ``nestjoin``.  Labels are created
    on first increment; :meth:`values` snapshots the whole family.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, label: str, n: int = 1) -> None:
        with self._lock:
            self._values[label] = self._values.get(label, 0) + n

    def get(self, label: str) -> int:
        with self._lock:
            return self._values.get(label, 0)

    def values(self) -> dict[str, int]:
        with self._lock:
            return dict(self._values)

    def __repr__(self) -> str:
        return f"LabeledCounter({self.values()})"


class Histogram:
    """Running aggregates plus a recent-observation window for percentiles.

    The window is a ring buffer of the last *window* observations; with
    the default 4096 slots the percentile view covers the recent past
    without unbounded growth. count/sum/min/max are exact over the whole
    lifetime.
    """

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError("histogram window must be positive")
        self._window = window
        self._ring: list[float] = []
        self._pos = 0
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._ring) < self._window:
                self._ring.append(value)
            else:
                self._ring[self._pos] = value
                self._pos = (self._pos + 1) % self._window

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> list[float]:
        """A snapshot of the current observation window (unordered)."""
        with self._lock:
            return list(self._ring)

    def percentile(self, q: float) -> float:
        return percentile(self.values(), q)

    def summary(self) -> dict:
        """Lifetime count/sum/mean/min/max plus p50/p90/p95/p99 over the window.

        ``count`` and ``sum`` are exact over the histogram's whole lifetime
        (read under the lock together with the window, so they are mutually
        consistent); only the percentiles are computed from the bounded
        recent-observation window. Exposition relies on the lifetime pair —
        a Prometheus ``_sum``/``_count`` that only covered the window would
        under-report totals on any long-running service.
        """
        with self._lock:
            window = list(self._ring)
            count, total = self.count, self.total
            lo, hi = self.min, self.max
        data = sorted(window)
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "p50": percentile(data, 50),
            "p90": percentile(data, 90),
            "p95": percentile(data, 95),
            "p99": percentile(data, 99),
        }


class LabeledHistogram:
    """A family of histograms keyed by a string label.

    One instrument, many distributions — e.g. ``qerror_by_op`` with labels
    ``join_nest`` / ``scan`` / ``filter``. Labels are created on first
    observation; :meth:`summaries` snapshots the whole family.
    """

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError("histogram window must be positive")
        self._window = window
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def labeled(self, label: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(label)
            if h is None:
                h = self._histograms[label] = Histogram(self._window)
            return h

    def observe(self, label: str, value: float) -> None:
        self.labeled(label).observe(value)

    def labels(self) -> list[str]:
        with self._lock:
            return sorted(self._histograms)

    def summaries(self) -> dict[str, dict]:
        """label → :meth:`Histogram.summary`, for the whole family."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {label: h.summary() for label, h in items}

    def __repr__(self) -> str:
        return f"LabeledHistogram({self.labels()})"


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._labeled_histograms: dict[str, LabeledHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def labeled_counter(self, name: str) -> LabeledCounter:
        with self._lock:
            instrument = self._labeled.get(name)
            if instrument is None:
                instrument = self._labeled[name] = LabeledCounter()
            return instrument

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(window)
            return instrument

    def labeled_histogram(self, name: str, window: int = 4096) -> LabeledHistogram:
        with self._lock:
            instrument = self._labeled_histograms.get(name)
            if instrument is None:
                instrument = self._labeled_histograms[name] = LabeledHistogram(window)
            return instrument

    def snapshot(self) -> dict:
        """All instruments as plain JSON-serializable data."""
        with self._lock:
            counters = dict(self._counters)
            labeled = dict(self._labeled)
            histograms = dict(self._histograms)
            labeled_histograms = dict(self._labeled_histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "labeled": {name: c.values() for name, c in sorted(labeled.items())},
            "histograms": {name: h.summary() for name, h in sorted(histograms.items())},
            "labeled_histograms": {
                name: h.summaries() for name, h in sorted(labeled_histograms.items())
            },
        }
