"""Request and response shapes of the query service, and parameter binding.

A :class:`QueryRequest` carries the query text, optional named parameters
(``$name`` placeholders in the text), and an optional per-request timeout.
A :class:`QueryResponse` reports a structured outcome plus timing and
cache-attribution metadata — enough for a client to know not just the
answer but how the service produced it (fresh execution, result-cache hit,
or coalesced onto a concurrent identical execution) and at which catalog
version it is valid.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ParseError

__all__ = ["QueryRequest", "QueryResponse", "bind_params", "render_literal"]

_REQUEST_IDS = itertools.count(1)

_PARAM_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


def render_literal(value: object) -> str:
    """Render a Python value as a query-language literal.

    Supports the scalar literal forms of the language: booleans, integers,
    floats, and strings (single-quoted, with backslash escapes).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise ParseError(f"cannot bind parameter value of type {type(value).__name__}")


def bind_params(text: str, params: Mapping[str, object] | None) -> str:
    """Substitute ``$name`` placeholders in *text* with literal renderings.

    Binding is textual: the bound query is then prepared through the plan
    cache like any other text, so repeated calls with the same parameter
    values share one prepared plan (distinct values prepare distinct
    plans — value-agnostic parameterized plans are future work; see
    docs/serving.md). An unbound placeholder raises; unused parameters are
    ignored. Placeholders are recognized anywhere in the text, including
    inside string literals — avoid ``$`` in literals of parameterized
    queries.
    """
    if not params and "$" not in text:
        return text

    def replace(match: re.Match) -> str:
        name = match.group(1)
        if params is None or name not in params:
            raise ParseError(f"unbound query parameter ${name}")
        return render_literal(params[name])

    return _PARAM_RE.sub(replace, text)


@dataclass
class QueryRequest:
    """One unit of work for the query service."""

    query: str
    params: Mapping[str, object] | None = None
    #: Seconds from submission to deadline; None falls back to the
    #: service's default_timeout (which may itself be None: no deadline).
    timeout: float | None = None
    request_id: str = field(default_factory=lambda: f"q{next(_REQUEST_IDS):06d}")

    def bound_query(self) -> str:
        """The query text with all ``$name`` parameters substituted."""
        return bind_params(self.query, self.params)


@dataclass
class QueryResponse:
    """The structured answer to one :class:`QueryRequest`.

    ``outcome`` is one of ``"ok"``, ``"timeout"``, ``"cancelled"``
    (explicitly cancelled mid-flight — admin cancel via
    ``POST /queries/<id>/cancel`` or a direct ``CancelToken.cancel`` —
    as opposed to a deadline lapse), ``"rejected"``, or ``"error"``;
    ``value`` is the result set for ``"ok"`` and None otherwise.
    ``result_cache`` attributes where the answer came from: ``"miss"``
    (this request executed the plan), ``"hit"`` (served from the result
    cache), or ``"coalesced"`` (waited on a concurrent identical
    execution). ``request_id`` doubles as the ``query_id`` correlating
    this request across the structured event log
    (:mod:`repro.core.log`), the live registry's ``/queries`` snapshots,
    and the slow-query log.
    """

    request_id: str
    outcome: str
    value: frozenset | None = None
    error: str | None = None
    #: Catalog data version the answer is consistent with (ok responses
    #: are version-stable: the version did not move during execution).
    catalog_version: int | None = None
    attempts: int = 0
    result_cache: str | None = None
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    worker: str | None = None
    #: Identity of this request's service-side trace (see repro.core.trace);
    #: correlates the response with the slow-query log and metrics.
    trace_id: str | None = None
    #: Join kinds the translator chose for the served plan (semijoin /
    #: antijoin / nestjoin, or "flat"/"interpreted"); empty when the
    #: request never reached execution (e.g. a result-cache hit).
    rewrite_kinds: tuple = ()
    #: The top-k misestimated operators (dicts with op/kind/est/act/q)
    #: when this request's leader execution was sampled for cardinality
    #: feedback; empty for cache hits, coalesced followers, and unsampled
    #: executions. See repro.engine.feedback.
    misestimates: tuple = ()
    #: Execution mode of the plan that produced the answer ("batch" /
    #: "row" / "parallel" / "interpreted"). Cache hits and coalesced
    #: followers carry the mode of the leader execution that produced
    #: the memoized value.
    exec_mode: str | None = None
    #: For parallel leader executions: the shard account of the scatter —
    #: max/mean shard seconds, top-k slowest shards, rows/bytes shipped —
    #: or the fallback reason when the plan could not shard (see
    #: :class:`repro.parallel.ParallelExecStats`). None otherwise.
    parallel: dict | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict:
        """JSON-serializable summary (row count instead of the value)."""
        return {
            "request_id": self.request_id,
            "outcome": self.outcome,
            "rows": len(self.value) if self.value is not None else None,
            "error": self.error,
            "catalog_version": self.catalog_version,
            "attempts": self.attempts,
            "result_cache": self.result_cache,
            "queue_seconds": self.queue_seconds,
            "execute_seconds": self.execute_seconds,
            "total_seconds": self.total_seconds,
            "worker": self.worker,
            "trace_id": self.trace_id,
            "rewrite_kinds": list(self.rewrite_kinds),
            "misestimates": list(self.misestimates),
            "exec_mode": self.exec_mode,
            "parallel": self.parallel,
        }
