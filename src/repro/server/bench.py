"""The serve-bench harness: service throughput vs sequential execution.

Runs the mixed workload twice over the same (warmed) catalog:

1. **sequential baseline** — one thread executing every request
   back-to-back through the prepared layer (plan + build caches warm, no
   result reuse): the PR-1 state of the art;
2. **service** — the same requests submitted to a :class:`~repro.server.service.QueryService`
   with N workers, admission control, and the result cache.

Every ``ok`` response is checked against the single-threaded oracle
(:func:`repro.core.pipeline.run_query` on the interpreter engine), and
the report counts lost requests (admitted but unanswered — must be zero
by construction of :meth:`~repro.server.service.QueryService.serve_all`).

Used by both ``repro serve-bench`` (CLI) and
``benchmarks/bench_serving.py`` (shape assertions in CI).
"""

from __future__ import annotations

import time

from repro.core.pipeline import clear_plan_cache, prepared, run_query
from repro.core.trace import QueryTrace, trace_scope
from repro.engine.cache import clear_build_cache
from repro.server.service import QueryService
from repro.server.workload import make_requests, mixed_catalog

__all__ = ["run_serve_bench"]


def run_serve_bench(
    workers: int = 8,
    requests: int = 400,
    seed: int = 0,
    queue_limit: int = 0,
    timeout: float | None = None,
    check_oracle: bool = True,
    n_left: int = 200,
    n_right: int = 1200,
    n_chain: int = 40,
    cache_budget_mb: float | None = None,
) -> dict:
    """Run the mixed workload sequentially and through the service.

    Returns a JSON-serializable report with throughputs, the speedup,
    latency percentiles, outcome counts, oracle mismatches, lost
    requests, and the service's cache/metric snapshot. ``queue_limit=0``
    means an unbounded admission queue (no shedding — the benchmark's
    accounting mode); pass a positive limit to observe load shedding.
    """
    clear_plan_cache()
    clear_build_cache()
    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    batch = make_requests(requests, seed=seed, n_left=n_left, timeout=timeout)
    texts = [r.bound_query() for r in batch]
    distinct = sorted(set(texts))

    oracle: dict[str, frozenset] = {}
    if check_oracle:
        for text in distinct:
            oracle[text] = run_query(text, catalog, engine="interpret").value

    # Warm the plan and build caches once so both contenders start from
    # the same PR-1 steady state and the comparison isolates the service
    # layer (scheduling + result reuse + coalescing).
    for text in distinct:
        prepared(text, catalog).execute(catalog)

    start = time.perf_counter()
    sequential_values = [prepared(text, catalog).execute(catalog) for text in texts]
    sequential_seconds = time.perf_counter() - start

    # Tracing overhead: the same warm sequential loop with an ambient
    # trace installed per request — what a serving deployment pays to keep
    # tracing on. With caches warm the emitters mostly never fire, so this
    # measures the fixed per-request cost (trace object + scope install).
    start = time.perf_counter()
    for text in texts:
        with trace_scope(QueryTrace(query=text)):
            prepared(text, catalog).execute(catalog)
    traced_seconds = time.perf_counter() - start

    service = QueryService(
        catalog,
        workers=workers,
        queue_limit=queue_limit,
        default_timeout=timeout,
        cache_budget_mb=cache_budget_mb,
    )
    with service:
        start = time.perf_counter()
        responses = service.serve_all(batch)
        service_seconds = time.perf_counter() - start
        stats = service.stats()

    outcomes: dict[str, int] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
    mismatches = 0
    for text, value, response in zip(texts, sequential_values, responses):
        if not response.ok:
            continue
        expected = oracle.get(text, value)
        if response.value != expected:
            mismatches += 1
    lost = len(batch) - len(responses)

    latency = stats["histograms"].get("latency_ms", {})
    return {
        "workers": workers,
        "requests": len(batch),
        "distinct_queries": len(distinct),
        "sequential_seconds": sequential_seconds,
        "service_seconds": service_seconds,
        "sequential_rps": len(batch) / sequential_seconds if sequential_seconds else 0.0,
        "service_rps": len(batch) / service_seconds if service_seconds else 0.0,
        "speedup": sequential_seconds / service_seconds if service_seconds else 0.0,
        "outcomes": outcomes,
        "oracle_checked": check_oracle,
        "oracle_mismatches": mismatches,
        "lost_requests": lost,
        "latency_ms": latency,
        "rewrite_kinds": stats["labeled"].get("queries_by_rewrite", {}),
        "tracing": {
            "baseline_seconds": sequential_seconds,
            "traced_seconds": traced_seconds,
            "overhead_pct": (
                (traced_seconds - sequential_seconds) / sequential_seconds * 100.0
                if sequential_seconds
                else 0.0
            ),
        },
        "stats": stats,
    }
