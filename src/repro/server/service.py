"""The concurrent query service: workers, admission control, deadlines.

:class:`QueryService` turns the PR-1 prepared-query layer into a shared,
multi-threaded serving endpoint. Requests flow through:

1. **Admission** — :meth:`QueryService.submit` places the request on a
   bounded queue. A full queue sheds the request immediately
   (:class:`~repro.errors.RejectedError`), bounding memory and tail
   latency under overload instead of building an unbounded backlog.
2. **Scheduling** — a fixed pool of worker threads drains the queue in
   FIFO order. All workers share the process-wide prepared-plan cache,
   the build-side cache, and this service's result cache.
3. **Execution** — the worker binds parameters, prepares the query (plan
   cache), and runs it under a :class:`~repro.engine.cancel.CancelToken`
   carrying the request deadline; physical operators poll the token at
   iteration boundaries, so a timed-out request stops mid-plan instead of
   running to completion.
4. **Consistency** — the catalog's data version is read before and after
   execution; if a mutation landed mid-flight the attempt raises
   :class:`CatalogVersionRace` and is retried with exponential backoff.
   ``ok`` responses are therefore *version-stable*: the value is the
   answer at one catalog version, never a blend of two.
5. **Result reuse** — version-stable results are memoized in an LRU keyed
   by (bound query text, catalog version), and concurrent identical
   requests *coalesce*: one leader executes, followers wait on its
   result. Under repetitive traffic this, not thread parallelism, is
   where the throughput multiple comes from (the GIL serializes the
   Python execution itself; see docs/serving.md).

Every completed request is recorded in a :class:`~repro.server.metrics.MetricsRegistry`
(:meth:`QueryService.stats`) and stamped with a trace id; the service keeps
a bounded :class:`~repro.server.slowlog.SlowQueryLog` of the N slowest
served requests (with their rewrite-decision traces) plus every rejected
or deadline-exceeded one, exposed as ``stats()["slow_queries"]``. A
labeled counter ``queries_by_rewrite`` counts leader executions by the
translator's join choice. Response hooks registered with
:meth:`QueryService.add_hook` observe each (request, response) pair — the
natural attachment point for a continuous differential-testing oracle.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import threading
import time
from typing import Callable, Iterable, Mapping

from repro.core.log import emit_event, events_snapshot
from repro.core.pipeline import prepared, set_plan_cache_budget
from repro.core.trace import QueryTrace
from repro.engine.cache import (
    LRUCache,
    default_budget_bytes,
    set_build_cache_budget,
)
from repro.engine.cachereg import CACHE_REGISTRY, caches_snapshot, register_cache
from repro.engine.cancel import CancelToken, cancel_scope
from repro.engine.stats import estimated_work
from repro.errors import CancelledError, RejectedError, ReproError
from repro.server.registry import ActiveQueryRegistry
from repro.server.request import QueryRequest, QueryResponse
from repro.server.slowlog import SlowQueryLog

__all__ = ["QueryService", "PendingQuery", "CatalogVersionRace"]


class CatalogVersionRace(ReproError):
    """The catalog's data version moved while a request was executing."""


class _LeaderCancelled(Exception):
    """Internal: a coalesced execution's leader was cancelled.

    A follower that inherits the leader's ``CancelledError`` was not
    itself cancelled — its deadline may have plenty left — so instead of
    surfacing someone else's cancellation it raises this marker and
    :meth:`QueryService._execute_with_retry` re-attempts the query (the
    follower becomes the new leader). Never escapes the service.
    """


class PendingQuery:
    """A submitted request's future response."""

    def __init__(self, request: QueryRequest):
        self.request = request
        self._event = threading.Event()
        self._response: QueryResponse | None = None
        # Stamped by submit():
        self.enqueued_at: float = 0.0
        self.deadline: float | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResponse:
        """Block until the response arrives (raises TimeoutError if not)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not completed within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _fulfil(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()


class _InFlight:
    """A leader's execution that identical concurrent requests wait on."""

    __slots__ = ("event", "value", "error", "exec_mode", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: frozenset | None = None
        self.error: BaseException | None = None
        self.exec_mode: str | None = None
        #: Followers coalesced onto this execution (bumped under the
        #: service's in-flight lock); read when the entry is dropped to
        #: warn about waiters orphaned by a cancelled leader.
        self.waiters = 0


_SENTINEL = object()


class QueryService:
    """A thread-pooled query-serving endpoint over one catalog.

    Usable as a context manager; otherwise the first :meth:`submit` starts
    the workers and :meth:`stop` drains and joins them.

    Tuning knobs (all constructor arguments) are documented in
    docs/serving.md; the defaults favor tests and small deployments.
    """

    def __init__(
        self,
        catalog,
        workers: int = 4,
        queue_limit: int = 64,
        default_timeout: float | None = None,
        max_attempts: int = 4,
        backoff_base: float = 0.002,
        result_cache_size: int = 256,
        cache_budget_mb: float | None = None,
        typecheck: bool = True,
        slow_query_capacity: int = 16,
        feedback_every: int = 7,
        feedback_top_k: int = 3,
        execution: str = "batch",
        parts: int = 4,
    ):
        from repro.engine.executor import EXECUTION_MODES

        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if feedback_every < 0:
            raise ValueError("feedback_every must be >= 0 (0 disables feedback)")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.catalog = catalog
        #: Execution mode leader executions run planned queries in
        #: ("batch" vectorized column batches, "row" tuple-at-a-time, or
        #: "parallel" multiprocess scatter-gather; see docs/parallel.md).
        self.execution = execution
        #: Partition count for execution="parallel" leader executions.
        self.parts = parts
        self.workers = workers
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.typecheck = typecheck
        self._queue: "queue_mod.Queue" = queue_mod.Queue(maxsize=max(0, queue_limit))
        # Byte budget: an explicit cache_budget_mb wins, otherwise the
        # REPRO_CACHE_BUDGET_MB environment default. The budget is
        # per-cache and an explicit argument is pushed down onto the
        # process-wide plan and build caches too, so one constructor knob
        # bounds every cache a service touches (see docs/observability.md).
        if cache_budget_mb is not None:
            budget = int(cache_budget_mb * 1024 * 1024) if cache_budget_mb > 0 else None
            set_plan_cache_budget(budget)
            set_build_cache_budget(budget)
        else:
            budget = default_budget_bytes()
        self.cache_budget_bytes = budget
        self._results = LRUCache(
            result_cache_size,
            max_bytes=budget,
            name="result",
            describe_key=_result_key_identity,
        )
        # Last-registered wins: the snapshot describes the newest service's
        # result cache, matching one-service-per-process deployments.
        register_cache("result", self._results.report)
        self._inflight: dict = {}
        self._inflight_lock = threading.Lock()
        self._hooks: list[Callable[[QueryRequest, QueryResponse], None]] = []
        self._threads: list[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        self.slow_queries = SlowQueryLog(slow_query_capacity)
        #: Live introspection: every admitted request is tracked here for
        #: the duration of its execution — progress fraction, current
        #: operator, and an admin-cancel handle (see docs/observability.md
        #: and the ``/queries`` endpoint on the metrics server).
        self.registry = ActiveQueryRegistry()
        #: Every feedback_every-th leader execution runs instrumented
        #: (EXPLAIN ANALYZE) and feeds the q-error histograms; 0 disables.
        #: Instrumented runs cost a few times plain execution, so the
        #: default samples (1 = analyze every leader, for tests/smoke).
        self.feedback_every = feedback_every
        self.feedback_top_k = feedback_top_k
        self._feedback_tick = itertools.count(1)
        from repro.server.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        # Queries by the translator's rewrite decision (semijoin/antijoin/
        # nestjoin/flat/interpreted), counted once per leader execution.
        self.metrics.labeled_counter("queries_by_rewrite")
        # Leader executions by execution mode (batch/row/interpreted).
        self.metrics.labeled_counter("queries_by_exec_mode")
        # Cardinality-feedback instruments (see repro.engine.feedback):
        # pre-created so stats() and the /metrics exposition always carry
        # the families, even before the first analyzed execution.
        self.metrics.histogram("qerror")
        self.metrics.labeled_histogram("qerror_by_op")
        self.metrics.labeled_histogram("qerror_by_rewrite")
        # Pre-create every counter so stats() always has the full shape,
        # even for paths a given run never exercised.
        for name in (
            "submitted",
            "admitted",
            "shed",
            "completed",
            "ok",
            "timeouts",
            "cancelled",
            "errors",
            "retries",
            "version_race_failures",
            "result_hits",
            "result_misses",
            "result_coalesced",
            "hook_errors",
        ):
            self.metrics.counter(name)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "QueryService":
        with self._state_lock:
            if self._closed:
                raise RejectedError("service is stopped")
            if self._started:
                return self
            self._started = True
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Refuse new submissions, drain the queue, and join the workers."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if not started:
            return
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def add_hook(self, hook: Callable[[QueryRequest, QueryResponse], None]) -> None:
        """Observe every (request, response) pair after completion.

        Hooks run on worker threads; exceptions are swallowed into the
        ``hook_errors`` counter so a failing observer cannot take down
        serving. Typical use: a continuous oracle cross-checking served
        values against the single-threaded interpreter.
        """
        self._hooks.append(hook)

    # -- serving -------------------------------------------------------------
    def submit(
        self,
        request: QueryRequest | str,
        params: Mapping[str, object] | None = None,
        timeout: float | None = None,
    ) -> PendingQuery:
        """Admit a request; returns its :class:`PendingQuery` handle.

        Raises :class:`~repro.errors.RejectedError` when the admission
        queue is at capacity (load shedding) or the service is stopped.
        """
        if isinstance(request, str):
            request = QueryRequest(request, params=params, timeout=timeout)
        self.metrics.counter("submitted").inc()
        if self._closed:
            self.metrics.counter("shed").inc()
            self.slow_queries.record_failure(
                _slow_entry(request, "rejected", error="service is stopped")
            )
            emit_event(
                "reject",
                query_id=request.request_id,
                level="warning",
                query=request.query,
                reason="service is stopped",
            )
            raise RejectedError("service is stopped")
        if not self._started:
            self.start()
        pending = PendingQuery(request)
        pending.enqueued_at = time.monotonic()
        effective = request.timeout if request.timeout is not None else self.default_timeout
        pending.deadline = None if effective is None else pending.enqueued_at + effective
        try:
            self._queue.put_nowait(pending)
        except queue_mod.Full:
            self.metrics.counter("shed").inc()
            reason = f"service saturated: admission queue at capacity ({self.queue_limit})"
            self.slow_queries.record_failure(_slow_entry(request, "rejected", error=reason))
            emit_event(
                "reject",
                query_id=request.request_id,
                level="warning",
                query=request.query,
                reason=reason,
            )
            raise RejectedError(reason) from None
        self.metrics.counter("admitted").inc()
        self.metrics.histogram("queue_depth").observe(self._queue.qsize())
        emit_event(
            "admit",
            query_id=request.request_id,
            query=request.query,
            queue_depth=self._queue.qsize(),
            timeout=effective,
        )
        return pending

    def execute(
        self,
        query: QueryRequest | str,
        params: Mapping[str, object] | None = None,
        timeout: float | None = None,
    ) -> QueryResponse:
        """Submit and block for the response (the synchronous client path)."""
        return self.submit(query, params=params, timeout=timeout).result()

    def serve_all(self, requests: Iterable[QueryRequest | str]) -> list[QueryResponse]:
        """Submit a batch and wait for every response, preserving order.

        Requests shed at admission yield ``"rejected"`` responses in place
        rather than raising, so the caller gets exactly one response per
        request — the accounting the serving benchmark relies on.
        """
        slots: list[PendingQuery | QueryResponse] = []
        for request in requests:
            try:
                slots.append(self.submit(request))
            except RejectedError as exc:
                rid = request.request_id if isinstance(request, QueryRequest) else "-"
                slots.append(QueryResponse(rid, "rejected", error=str(exc)))
        return [s.result() if isinstance(s, PendingQuery) else s for s in slots]

    def stats(self) -> dict:
        """Counters, latency histograms, queue depth, and cache hit rates."""
        snap = self.metrics.snapshot()
        snap["workers"] = self.workers
        snap["queue_depth"] = self._queue.qsize()
        snap["in_flight"] = len(self.registry)
        snap["active_queries"] = self.registry.snapshot()["active"]
        snap["events"] = events_snapshot()
        snap["slow_queries"] = self.slow_queries.snapshot()
        # Every registered cache's byte/entry/counter report (plan, build,
        # shard catalogs, ...), with "result" pinned to *this* service's
        # cache rather than whichever instance registered last.
        snap["caches"] = self.caches(top_k=3)["caches"]
        snap["result_cache_bytes"] = self._results.total_bytes
        # Imported lazily: repro.parallel must not load at service import
        # time (it imports repro.server.metrics, closing a cycle).
        from repro.parallel.pool import pool_health

        snap["parallel_pool"] = pool_health()
        return snap

    def caches(self, top_k: int = 3) -> dict:
        """The cache registry's snapshot, pinned to this service.

        The process-global registry resolves ``"result"`` to whichever
        service registered last; this method substitutes *this*
        instance's result cache, so it is the snapshot behind both
        ``stats()["caches"]`` and the metrics server's ``GET /caches``.
        """
        # Importing the pool registers its shard-catalog view, so the
        # report is complete even before any stats()/parallel traffic.
        import repro.parallel.pool  # noqa: F401  (lazy: avoids an import cycle)

        snap = caches_snapshot(top_k=top_k)
        result_report = self._results.report(top_k=top_k)
        result_report["memory_pressure"] = CACHE_REGISTRY.pressure_snapshot().get(
            "result", 0
        )
        snap["caches"]["result"] = result_report
        snap["total_bytes"] = sum(
            r.get("bytes", 0) for r in snap["caches"].values()
        )
        return snap

    # -- worker internals ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            response = self._handle(item)
            item._fulfil(response)
            for hook in self._hooks:
                try:
                    hook(item.request, response)
                except Exception:
                    self.metrics.counter("hook_errors").inc()

    def _handle(self, pending: PendingQuery) -> QueryResponse:
        request = pending.request
        started = time.monotonic()
        queue_seconds = started - pending.enqueued_at
        worker = threading.current_thread().name
        trace = QueryTrace(query=request.query)
        trace.record(
            "service", "dequeue", detail=f"queued {queue_seconds * 1e3:.3f}ms, worker {worker}"
        )
        response = QueryResponse(
            request.request_id,
            "error",
            queue_seconds=queue_seconds,
            worker=worker,
            trace_id=trace.trace_id,
        )
        pq = None
        token = CancelToken(deadline=pending.deadline)
        # Live introspection: the registry entry doubles as the token's
        # progress sink, so operator polls advance it from here on.
        self.registry.register(
            request.request_id,
            request.query,
            params=request.params,
            trace_id=trace.trace_id,
            exec_mode=self.execution,
            token=token,
            deadline=pending.deadline,
        )
        if pending.deadline is not None and started >= pending.deadline:
            # The deadline passed while the request sat in the queue.
            self.metrics.counter("timeouts").inc()
            response.outcome = "timeout"
            response.error = "deadline exceeded while queued"
            trace.record("service", "deadline-exceeded", detail=response.error)
            emit_event(
                "timeout",
                query_id=request.request_id,
                trace_id=trace.trace_id,
                level="warning",
                reason=response.error,
            )
        else:
            try:
                with cancel_scope(token):
                    value, version, source, attempts, pq, misests, exec_mode, par = (
                        self._execute_with_retry(request, token)
                    )
                if par is not None and par.get("fallback"):
                    emit_event(
                        "fallback",
                        query_id=request.request_id,
                        trace_id=trace.trace_id,
                        level="warning",
                        reason=par["fallback"],
                    )
                response.outcome = "ok"
                response.value = value
                response.error = None
                response.catalog_version = version
                response.result_cache = source
                response.attempts = attempts
                response.misestimates = misests
                # The mode that *produced* the answer: the leader's for
                # misses, the memoized leader's for cache hits and
                # coalesced followers — a parallel answer stays labeled
                # "parallel" however this request obtained it.
                response.exec_mode = exec_mode
                response.parallel = par
                if pq is not None:
                    response.rewrite_kinds = pq.rewrite_kinds()
                trace.record(
                    "service",
                    "served",
                    detail=f"result_cache={source}, attempts={attempts}",
                )
                if source == "miss" and pq is not None:
                    # One leader execution per distinct (query, version):
                    # count the translator's decision once, not per client.
                    counter = self.metrics.labeled_counter("queries_by_rewrite")
                    for kind in response.rewrite_kinds:
                        counter.inc(kind)
                if response.exec_mode is not None:
                    # Per served response (not per leader): cache hits and
                    # coalesced followers carry their producer's label.
                    self.metrics.labeled_counter("queries_by_exec_mode").inc(
                        response.exec_mode
                    )
                self.metrics.counter("ok").inc()
            except CancelledError as exc:
                if token.cancelled:
                    # The token's event was set explicitly — an admin
                    # cancel (or client abort), not a deadline lapse.
                    self.metrics.counter("cancelled").inc()
                    response.outcome = "cancelled"
                    response.error = str(exc)
                    trace.record("service", "cancelled", detail=response.error)
                    emit_event(
                        "cancel",
                        query_id=request.request_id,
                        trace_id=trace.trace_id,
                        level="warning",
                        reason=response.error,
                    )
                else:
                    self.metrics.counter("timeouts").inc()
                    response.outcome = "timeout"
                    response.error = str(exc)
                    trace.record("service", "deadline-exceeded", detail=response.error)
                    emit_event(
                        "timeout",
                        query_id=request.request_id,
                        trace_id=trace.trace_id,
                        level="warning",
                        reason=response.error,
                    )
            except CatalogVersionRace as exc:
                self.metrics.counter("version_race_failures").inc()
                response.error = str(exc)
                response.attempts = self.max_attempts
                trace.record("service", "version-race", detail=response.error)
                emit_event(
                    "error",
                    query_id=request.request_id,
                    trace_id=trace.trace_id,
                    level="error",
                    reason=response.error,
                )
            except ReproError as exc:
                self.metrics.counter("errors").inc()
                response.error = str(exc)
                trace.record("service", "error", detail=response.error)
                from repro.errors import WorkerCrashError

                emit_event(
                    "crash" if isinstance(exc, WorkerCrashError) else "error",
                    query_id=request.request_id,
                    trace_id=trace.trace_id,
                    level="error",
                    reason=response.error,
                )
            except Exception as exc:  # defensive: never lose a request
                self.metrics.counter("errors").inc()
                response.error = f"{type(exc).__name__}: {exc}"
                trace.record("service", "error", detail=response.error)
                emit_event(
                    "crash",
                    query_id=request.request_id,
                    trace_id=trace.trace_id,
                    level="error",
                    reason=response.error,
                )
        finished = time.monotonic()
        response.execute_seconds = finished - started
        response.total_seconds = finished - pending.enqueued_at
        entry = self.registry.finish(request.request_id, response.outcome)
        if response.outcome == "ok":
            emit_event(
                "complete",
                query_id=request.request_id,
                trace_id=trace.trace_id,
                outcome="ok",
                seconds=response.total_seconds,
                exec_mode=response.exec_mode,
                result_cache=response.result_cache,
                rows_processed=entry.rows_processed if entry is not None else None,
            )
        self._capture(request, response, trace, pq)
        self.metrics.counter("completed").inc()
        self.metrics.histogram("latency_ms").observe(response.total_seconds * 1e3)
        self.metrics.histogram("execute_ms").observe(response.execute_seconds * 1e3)
        self.metrics.histogram("queue_ms").observe(queue_seconds * 1e3)
        return response

    def _capture(self, request, response, trace, pq) -> None:
        """Feed the slow-query log: ok responses compete on latency,
        timeouts are always kept (recency-bounded)."""
        entry = _slow_entry(
            request,
            response.outcome,
            trace_id=trace.trace_id,
            error=response.error,
            queue_seconds=response.queue_seconds,
            execute_seconds=response.execute_seconds,
            total_seconds=response.total_seconds,
            worker=response.worker,
            result_cache=response.result_cache,
            rewrite_kinds=list(response.rewrite_kinds),
            exec_mode=response.exec_mode,
            parallel=response.parallel,
            events=[e.to_dict() for e in trace.events],
        )
        # The cache footprint at capture time: a slow entry then shows
        # whether the request ran against warm caches or under memory
        # pressure (bytes held per cache when it completed).
        entry["caches"] = _cache_footprint(self._results)
        if response.misestimates:
            # The top-k misestimated operators of the (sampled, analyzed)
            # execution that served this request: a slow entry then says
            # not just that the query was slow but which cardinality
            # misjudgements shaped the plan that made it slow.
            entry["misestimates"] = list(response.misestimates)
        if pq is not None and getattr(pq, "trace", None) is not None:
            # The rewrite decisions were recorded when the plan was first
            # prepared; link and embed them so a slow-log entry explains
            # not just how long the query took but how it was translated.
            entry["prepare_trace"] = pq.trace.to_dict()
        if response.outcome == "ok":
            self.slow_queries.record_ok(entry)
        elif response.outcome in ("timeout", "cancelled", "error"):
            # Errors join timeouts in the always-kept failure ring — a
            # WorkerCrashError mid-query must be findable after the fact.
            self.slow_queries.record_failure(entry)

    def _execute_with_retry(self, request: QueryRequest, token: CancelToken):
        """Run until version-stable, retrying races with capped backoff."""
        text = request.bound_query()
        attempts = 0
        while True:
            attempts += 1
            token.check()
            try:
                value, version, source, pq, misests, exec_mode, par = (
                    self._execute_shared(text, token, request)
                )
                return value, version, source, attempts, pq, misests, exec_mode, par
            except CatalogVersionRace:
                self.metrics.counter("retries").inc()
                if attempts >= self.max_attempts:
                    raise
                delay = self.backoff_base * (2 ** (attempts - 1))
                remaining = token.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
                if delay > 0:
                    time.sleep(delay)
            except _LeaderCancelled:
                # The leader this attempt coalesced onto was cancelled;
                # this request wasn't. Re-attempt immediately — the
                # token.check() at the loop top enforces *our* deadline.
                self.metrics.counter("retries").inc()
                if attempts >= self.max_attempts:
                    raise CancelledError(
                        "coalesced leader was cancelled on every attempt"
                    ) from None

    def _execute_shared(self, text: str, token: CancelToken, request=None):
        """One attempt: result cache → coalesce → leader execution.

        The result cache is keyed by (bound text, catalog version) and
        consulted *before* preparation, so a hit skips even the parse —
        repeated traffic costs one dict probe per request.
        """
        version = getattr(self.catalog, "version", None)
        key = (text, version)
        cached = self._results.get(key)
        if cached is not None:
            value, exec_mode = cached
            self.metrics.counter("result_hits").inc()
            return value, version, "hit", None, (), exec_mode, None
        pq = prepared(text, self.catalog, typecheck=self.typecheck)
        self._seed_estimate(token, pq)
        with self._inflight_lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = self._inflight[key] = _InFlight()
            else:
                entry.waiters += 1
        if not leader:
            if not entry.event.wait(timeout=token.remaining()):
                raise CancelledError("deadline exceeded waiting on a coalesced execution")
            if entry.error is not None:
                if isinstance(entry.error, CancelledError) and not token.cancelled:
                    # The *leader* was cancelled, not this follower —
                    # don't inherit its fate, retry as the new leader.
                    raise _LeaderCancelled(str(entry.error))
                raise entry.error
            self.metrics.counter("result_coalesced").inc()
            return entry.value, version, "coalesced", pq, (), entry.exec_mode, None
        try:
            value, misestimates, exec_mode, par = self._execute_leader(pq, version)
        except BaseException as exc:
            entry.error = exc
            raise
        else:
            entry.value = value
            entry.exec_mode = exec_mode
            # Memoized with its producer's mode, so later hits attribute
            # correctly (a parallel-produced answer stays "parallel").
            self._results.put(key, (value, exec_mode))
            self.metrics.counter("result_misses").inc()
            return value, version, "miss", pq, misestimates, exec_mode, par
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            if isinstance(entry.error, CancelledError) and entry.waiters:
                # Not silent: a cancelled leader orphans its followers
                # (they will re-attempt); leave an audit trail keyed to
                # the leader's query id. No new waiters can join — the
                # entry left the map under the lock above.
                emit_event(
                    "coalesce_dropped",
                    query_id=request.request_id if request is not None else None,
                    level="warning",
                    query=text,
                    waiters=entry.waiters,
                    reason=str(entry.error),
                )
            entry.event.set()

    def _seed_estimate(self, token: CancelToken, pq) -> None:
        """Give the request's live entry its progress denominator.

        :func:`~repro.engine.stats.estimated_work` over the compiled
        physical tree; ``compile_for`` memoizes per catalog version, so
        after the first request this is a cache probe. Interpreted
        queries (no plan) keep ``estimated_rows=None`` → progress 0.
        """
        progress = token.progress
        if (
            progress is None
            or getattr(progress, "estimated_rows", None) is not None
            or pq.plan is None
        ):
            return
        try:
            progress.estimated_rows = estimated_work(pq.compile_for(self.catalog))
        except Exception:
            pass  # progress is best-effort; never fail the query for it

    def _execute_leader(self, pq, version):
        """Execute the prepared query; raise if the catalog moved mid-flight.

        Returns ``(value, misestimates, exec_mode, parallel)`` — the mode
        the answer was produced in and, for parallel executions, the
        shard-skew/fallback account left by
        :func:`repro.parallel.consume_parallel_stats`.

        Every ``feedback_every``-th
        leader execution of a planned query runs instrumented
        (:meth:`PreparedQuery.analyze`) instead of plain: its per-operator
        q-errors are aggregated into this service's metrics (``qerror``,
        ``qerror_by_op``, ``qerror_by_rewrite``) and the top-k
        misestimated operators ride along on the response and the
        slow-query log. Version-racy runs are discarded before any
        feedback is recorded, so the histograms only ever see
        version-stable executions.

        A separate method so tests can wrap it to inject deterministic
        version races.
        """
        run = None
        if (
            self.feedback_every
            and pq.plan is not None
            and next(self._feedback_tick) % self.feedback_every == 0
        ):
            from repro.algebra.interpreter import result_set

            run = pq.analyze(self.catalog, execution=self.execution, parts=self.parts)
            value = result_set(run.rows)
        else:
            value = pq.execute(self.catalog, execution=self.execution, parts=self.parts)
        if getattr(self.catalog, "version", None) != version:
            raise CatalogVersionRace(
                f"catalog version moved from {version} to "
                f"{getattr(self.catalog, 'version', None)} during execution"
            )
        misestimates: tuple = ()
        if run is not None:
            from repro.engine.feedback import record_run, top_misestimates

            entries = record_run(run, pq.rewrite_kinds(), registry=self.metrics)
            misestimates = tuple(
                e.to_dict() for e in top_misestimates(entries, self.feedback_top_k)
            )
        exec_mode = self.execution if pq.plan is not None else "interpreted"
        parallel = None
        if exec_mode == "parallel":
            from repro.parallel import consume_parallel_stats

            stats = consume_parallel_stats()
            if stats is not None:
                parallel = stats.to_dict()
        return value, misestimates, exec_mode, parallel


def _slow_entry(request: QueryRequest, outcome: str, **extra) -> dict:
    """A JSON-serializable slow-query-log record for one request.

    ``query_id`` duplicates ``request_id`` under the name the structured
    event log uses, so slow entries join directly against event-log lines
    (and the live registry's snapshots).
    """
    entry = {
        "request_id": request.request_id,
        "query_id": request.request_id,
        "query": request.query,
        "outcome": outcome,
    }
    entry.update({k: v for k, v in extra.items() if v is not None})
    return entry


def _result_key_identity(key) -> dict:
    """Top-entry identity for a result-cache key: bound text + version."""
    text, version = key
    return {
        "query": text if len(text) <= 120 else text[:119] + "…",
        "catalog_version": version,
    }


def _cache_footprint(results: LRUCache) -> dict:
    """Compact per-cache byte totals: the slow-log's memory context."""
    reports = CACHE_REGISTRY.snapshot(top_k=0)
    footprint = {name: report.get("bytes", 0) for name, report in reports.items()}
    footprint["result"] = results.total_bytes
    footprint["total_bytes"] = sum(
        v for k, v in footprint.items() if k != "total_bytes"
    )
    return footprint
