"""Prometheus text exposition for metrics snapshots, plus a scrape endpoint.

:func:`prometheus_text` renders a :meth:`~repro.server.metrics.MetricsRegistry.snapshot`
in the Prometheus text format (version 0.0.4):

* counters → ``# TYPE <name> counter`` with a ``_total`` suffix, one
  sample per counter (labeled counters get one sample per label);
* histograms → ``# TYPE <name> summary``: quantile samples from the
  sliding window plus lifetime ``_sum``/``_count`` (exact — see
  :meth:`Histogram.summary`), so totals never under-report;
* labeled histograms → the same summary series with an extra label per
  family member (e.g. ``repro_qerror_by_op{op="join_nest",quantile="0.95"}``);
* optional gauges (queue depth, worker count) → ``# TYPE <name> gauge``.

:class:`MetricsServer` serves the rendering from a stdlib
``http.server`` endpoint — ``GET /metrics`` (text format) and
``GET /healthz`` (JSON liveness with uptime, live in-flight count, and
queue depth) — on a daemon thread, attachable to a live
:class:`~repro.server.service.QueryService` with :func:`serve_metrics`.
No third-party client library is involved; :func:`parse_prometheus` is
the matching strict parser used by tests and ``make metrics-smoke`` to
prove the output is well-formed.

The same endpoint doubles as the live-introspection admin surface (see
docs/observability.md): when a ``registry_source`` is attached (as
:func:`serve_metrics` does), ``GET /queries`` returns the
:class:`~repro.server.registry.ActiveQueryRegistry` snapshot — every
in-flight query with its progress fraction — and
``POST /queries/<id>/cancel`` cancels one by id through its
:class:`~repro.engine.cancel.CancelToken` (for parallel queries the
pool's coordinator loop observes the same token and raises the shared
cross-process event). ``repro top`` renders ``GET /queries`` as an
auto-refreshing table.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

__all__ = [
    "prometheus_text",
    "parse_prometheus",
    "cache_families",
    "MetricsServer",
    "serve_metrics",
    "merged_service_snapshot",
    "CONTENT_TYPE",
]

#: The classic Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Label names per labeled instrument; anything unlisted uses "label".
LABEL_NAMES = {
    "queries_by_rewrite": "kind",
    "queries_by_exec_mode": "mode",
    "qerror_by_rewrite": "kind",
    "qerror_by_op": "op",
    "pool_sequential_fallbacks": "reason",
}

#: summary() percentile keys → Prometheus quantile label values.
_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p95", "0.95"), ("p99", "0.99"))

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _metric_name(name: str, prefix: str) -> str:
    return prefix + _INVALID_NAME_CHARS.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    # repr keeps full precision; integers render without a trailing ".0"
    # purely for readability — Prometheus accepts both.
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_str(pairs: Mapping[str, str]) -> str:
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs.items())
    return "{" + inner + "}" if inner else ""


def _summary_lines(name: str, summary: Mapping, base_labels: Mapping[str, str]) -> list[str]:
    lines = []
    for key, quantile in _QUANTILES:
        labels = dict(base_labels)
        labels["quantile"] = quantile
        lines.append(f"{name}{_label_str(labels)} {_fmt(summary[key])}")
    suffix = _label_str(dict(base_labels))
    lines.append(f"{name}_sum{suffix} {_fmt(summary['sum'])}")
    lines.append(f"{name}_count{suffix} {_fmt(summary['count'])}")
    return lines


def prometheus_text(
    snapshot: Mapping,
    prefix: str = "repro_",
    gauges: Mapping[str, float] | None = None,
) -> str:
    """Render a metrics snapshot in the Prometheus text format.

    *snapshot* is the dict shape of :meth:`MetricsRegistry.snapshot`
    (missing sections are treated as empty, so any superset — e.g.
    ``QueryService.stats()`` — renders its instrument sections too).
    *gauges* adds point-in-time values (queue depth, workers) as gauge
    families.

    A ``families`` section carries pre-shaped multi-label samples —
    ``{name: {"type": "counter"|"gauge", "samples": [(labels, value),
    ...]}}`` — for families the single-label instrument registry cannot
    express (e.g. ``cache_bytes{cache,kind}``; see :func:`cache_families`).
    Counters get the conventional ``_total`` suffix.
    """
    lines: list[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, family in sorted((snapshot.get("labeled") or {}).items()):
        metric = _metric_name(name, prefix) + "_total"
        label_name = LABEL_NAMES.get(name, "label")
        lines.append(f"# TYPE {metric} counter")
        for label, value in sorted(family.items()):
            lines.append(f"{metric}{_label_str({label_name: label})} {_fmt(value)}")
    for name, summary in sorted((snapshot.get("histograms") or {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.extend(_summary_lines(metric, summary, {}))
    for name, family in sorted((snapshot.get("labeled_histograms") or {}).items()):
        metric = _metric_name(name, prefix)
        label_name = LABEL_NAMES.get(name, "label")
        lines.append(f"# TYPE {metric} summary")
        for label, summary in sorted(family.items()):
            lines.extend(_summary_lines(metric, summary, {label_name: label}))
    for name, family in sorted((snapshot.get("families") or {}).items()):
        kind = family.get("type", "gauge")
        metric = _metric_name(name, prefix) + ("_total" if kind == "counter" else "")
        lines.append(f"# TYPE {metric} {kind}")
        for labels, value in family.get("samples", ()):
            lines.append(f"{metric}{_label_str(labels)} {_fmt(value)}")
    for name, value in sorted((gauges or {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Strictly parse Prometheus text into ``(name, labels) → value``.

    Raises ``ValueError`` on any malformed line — this is the validator
    behind the exposition tests and ``make metrics-smoke``, deliberately
    unforgiving so formatting regressions fail loudly rather than scrape
    quietly wrong.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not (line.startswith("# TYPE ") or line.startswith("# HELP ")):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            (name, value) for name, value in _LABEL_RE.findall(labels_text)
        )
        reconstructed = ",".join(f'{k}="{v}"' for k, v in labels)
        if labels_text and reconstructed != labels_text:
            raise ValueError(f"line {lineno}: malformed labels {labels_text!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from None
        samples[(match.group("name"), labels)] = value
    return samples


def cache_families(caches: Mapping[str, Mapping] | None = None) -> dict:
    """Multi-label Prometheus families from a cache-registry snapshot.

    *caches* is the ``{"caches": ...}`` inner dict of
    :func:`repro.engine.cachereg.caches_snapshot` (fetched fresh when
    omitted). Families emitted per registered cache:

    * ``cache_bytes{cache,kind}`` (gauge) — per artifact kind where the
      cache distinguishes kinds (the build cache), ``kind="all"``
      otherwise;
    * ``cache_entries{cache}`` (gauge);
    * ``cache_hits``/``cache_misses``/``cache_inserts{cache}`` (counters);
    * ``cache_evictions{cache,reason}`` (counter) — reasons
      ``capacity``/``version``/``budget``/``clear``;
    * ``memory_pressure{cache}`` (counter) — budget evictions only.
    """
    if caches is None:
        from repro.engine.cachereg import caches_snapshot

        caches = caches_snapshot(top_k=0)["caches"]
    bytes_samples: list = []
    entries_samples: list = []
    hits: list = []
    misses: list = []
    inserts: list = []
    evictions: list = []
    pressure: list = []
    for cache, report in sorted(caches.items()):
        by_kind = report.get("bytes_by_kind")
        if by_kind:
            for kind, nbytes in sorted(by_kind.items()):
                bytes_samples.append(({"cache": cache, "kind": kind}, nbytes))
        else:
            bytes_samples.append(
                ({"cache": cache, "kind": "all"}, report.get("bytes", 0))
            )
        entries_samples.append(({"cache": cache}, report.get("entries", 0)))
        hits.append(({"cache": cache}, report.get("hits", 0)))
        misses.append(({"cache": cache}, report.get("misses", 0)))
        inserts.append(({"cache": cache}, report.get("inserts", 0)))
        for reason, count in sorted((report.get("evictions_by_reason") or {}).items()):
            evictions.append(({"cache": cache, "reason": reason}, count))
        pressure.append(({"cache": cache}, report.get("memory_pressure", 0)))
    return {
        "cache_bytes": {"type": "gauge", "samples": bytes_samples},
        "cache_entries": {"type": "gauge", "samples": entries_samples},
        "cache_hits": {"type": "counter", "samples": hits},
        "cache_misses": {"type": "counter", "samples": misses},
        "cache_inserts": {"type": "counter", "samples": inserts},
        "cache_evictions": {"type": "counter", "samples": evictions},
        "memory_pressure": {"type": "counter", "samples": pressure},
    }


class MetricsServer:
    """A daemon-thread scrape endpoint over a snapshot source.

    ``snapshot_source`` is any zero-argument callable returning the
    registry snapshot dict; ``gauge_source`` (optional) returns
    point-in-time gauges merged into every scrape. ``port=0`` binds an
    ephemeral port (read it back from :attr:`port` after :meth:`start`).
    Usable as a context manager.
    """

    def __init__(
        self,
        snapshot_source: Callable[[], Mapping],
        gauge_source: Callable[[], Mapping[str, float]] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
        registry_source: Callable[[], object] | None = None,
        health_source: Callable[[], Mapping] | None = None,
        caches_source: Callable[[], Mapping] | None = None,
    ):
        self.snapshot_source = snapshot_source
        self.gauge_source = gauge_source
        self.host = host
        self.prefix = prefix
        #: Zero-arg callable returning the cache-registry snapshot behind
        #: ``GET /caches`` (404 when unset).
        self.caches_source = caches_source
        #: Zero-arg callable returning the
        #: :class:`~repro.server.registry.ActiveQueryRegistry` behind
        #: ``GET /queries`` and ``POST /queries/<id>/cancel`` (both 404
        #: when unset).
        self.registry_source = registry_source
        #: Extra JSON fields merged into ``GET /healthz`` (in-flight
        #: count, queue depth, ... — anything the attachment knows).
        self.health_source = health_source
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), self._make_handler()
        )
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("metrics server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        gauges = dict(self.gauge_source()) if self.gauge_source is not None else None
        return prometheus_text(self.snapshot_source(), prefix=self.prefix, gauges=gauges)

    def health(self) -> dict:
        out = {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
        }
        if self.health_source is not None:
            try:
                out.update(self.health_source())
            except Exception as exc:  # liveness must answer regardless
                out["health_source_error"] = str(exc)
        return out

    def queries(self) -> dict:
        """The live-registry snapshot behind ``GET /queries``."""
        registry = self.registry_source() if self.registry_source is not None else None
        if registry is None:
            return {"active": [], "recent": []}
        return registry.snapshot()

    def cancel_query(self, query_id: str) -> bool:
        """Cancel one live query by id (False: unknown id or no registry)."""
        registry = self.registry_source() if self.registry_source is not None else None
        if registry is None:
            return False
        return registry.cancel(query_id, reason=f"cancelled by admin: {query_id}")

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = server.render().encode("utf-8")
                    except Exception as exc:  # defensive: a scrape must answer
                        self._respond(500, "text/plain", f"render error: {exc}".encode())
                        return
                    self._respond(200, CONTENT_TYPE, body)
                elif path == "/healthz":
                    body = json.dumps(server.health()).encode("utf-8")
                    self._respond(200, "application/json", body)
                elif path == "/caches":
                    if server.caches_source is None:
                        self._respond(404, "text/plain", b"no cache registry attached\n")
                        return
                    try:
                        body = json.dumps(server.caches_source(), default=str).encode(
                            "utf-8"
                        )
                    except Exception as exc:  # defensive: a scrape must answer
                        self._respond(500, "text/plain", f"snapshot error: {exc}".encode())
                        return
                    self._respond(200, "application/json", body)
                elif path == "/queries":
                    if server.registry_source is None:
                        self._respond(404, "text/plain", b"no query registry attached\n")
                        return
                    try:
                        body = json.dumps(server.queries(), default=str).encode("utf-8")
                    except Exception as exc:  # defensive: a scrape must answer
                        self._respond(500, "text/plain", f"snapshot error: {exc}".encode())
                        return
                    self._respond(200, "application/json", body)
                else:
                    self._respond(404, "text/plain", b"not found\n")

            def do_POST(self):  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                parts = path.strip("/").split("/")
                # POST /queries/<id>/cancel
                if len(parts) == 3 and parts[0] == "queries" and parts[2] == "cancel":
                    if server.registry_source is None:
                        self._respond(404, "text/plain", b"no query registry attached\n")
                        return
                    query_id = parts[1]
                    cancelled = server.cancel_query(query_id)
                    body = json.dumps(
                        {"query_id": query_id, "cancelled": cancelled}
                    ).encode("utf-8")
                    self._respond(200 if cancelled else 404, "application/json", body)
                else:
                    self._respond(404, "text/plain", b"not found\n")

            def _respond(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        return Handler


def merged_service_snapshot(service) -> dict:
    """A service's registry snapshot merged with the parallel pool's.

    The worker pool instruments itself in the process-global
    :data:`repro.parallel.pool.POOL_METRICS` registry (it predates and
    outlives any one service); merging here is what puts the ``pool_*``
    families on a service's ``/metrics`` endpoint. Names are disjoint by
    construction (every pool family is ``pool_``-prefixed).
    """
    # Imported lazily: repro.parallel must not load at exposition import
    # time (it imports repro.server.metrics, closing a cycle).
    from repro.parallel.pool import POOL_METRICS

    snap = service.metrics.snapshot()
    pool = POOL_METRICS.snapshot()
    for section in ("counters", "labeled", "histograms", "labeled_histograms"):
        merged = dict(snap.get(section) or {})
        merged.update(pool.get(section) or {})
        snap[section] = merged
    # The cache-registry families (cache_bytes{cache,kind}, cache_evictions
    # {cache,reason}, memory_pressure{cache}) ride along on every scrape,
    # pinning "result" to this service's cache.
    snap["families"] = cache_families(service.caches(top_k=0)["caches"])
    return snap


def serve_metrics(service, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
    """Attach a started :class:`MetricsServer` to a live ``QueryService``.

    Scrapes render the service's :class:`MetricsRegistry` (counters,
    latency histograms, ``queries_by_rewrite``, the q-error families)
    merged with the parallel pool-health families
    (:func:`merged_service_snapshot`), plus point-in-time gauges for
    queue depth, worker-thread count, live in-flight queries, and live
    pool workers. The admin surface comes attached: ``GET /queries``
    over the service's :class:`~repro.server.registry.ActiveQueryRegistry`,
    ``POST /queries/<id>/cancel``, ``GET /caches`` with the cache
    registry's byte/entry report, and a ``/healthz`` carrying uptime,
    in-flight count, and queue depth.
    """

    def gauges() -> dict:
        from repro.parallel.pool import pool_gauges

        out = {
            "queue_depth": service._queue.qsize(),
            "workers": service.workers,
            "in_flight": len(service.registry),
        }
        out.update(pool_gauges())
        return out

    def health_extras() -> dict:
        return {
            "in_flight": len(service.registry),
            "queue_depth": service._queue.qsize(),
            "workers": service.workers,
        }

    return MetricsServer(
        lambda: merged_service_snapshot(service),
        gauge_source=gauges,
        host=host,
        port=port,
        registry_source=lambda: service.registry,
        health_source=health_extras,
        caches_source=lambda: service.caches(top_k=5),
    ).start()
