"""Logical plan rewriting: selection pushdown and plan cleanup.

The paper's future-work section says "logical optimization (rewriting
algebraic expressions) may follow the translation process". This module
implements the classic, always-profitable subset:

* **selection pushdown** — a selection conjunct referencing only one
  operand of a join sinks into that operand. Sinking into the *left*
  operand is valid for every join mode (inner, semi, anti, outer, nest):
  excluded left tuples produce no output rows in any mode. Sinking into
  the *right* operand is valid only for the inner join — for outer and
  nest joins the set of right matches determines padding/grouping of
  *kept* left tuples, but a selection above those operators cannot
  reference bare right bindings anyway (they are not in scope);
* **selection splitting/merging** — conjuncts travel independently;
* **pushdown through** Extend / Drop / Distinct / Unnest / Nest (group
  keys only);
* **cleanup** — TRUE selections vanish, adjacent Drops merge, nested
  Distincts collapse.

Every rewrite preserves the multiset of result rows up to order (order
within the stream may change when a selection crosses an operator); the
property tests compare results as multisets and the query pipeline's final
set semantics is order-insensitive anyway.
"""

from __future__ import annotations

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.lang.ast import Expr, conjuncts, is_true_const, make_and
from repro.lang.freevars import free_vars

__all__ = ["optimize_logical", "push_selection"]

_MAX_PASSES = 10


def optimize_logical(plan: Plan) -> Plan:
    """Rewrite *plan* to a fixpoint of the rules above.

    When a :mod:`repro.core.trace` scope is active, each pass that changes
    the plan emits a ``rewrite`` event carrying before/after plan
    fingerprints, so a trace shows exactly how many passes ran and what
    each one did to the plan shape.
    """
    from repro.core.trace import current_trace, plan_fingerprint

    trace = current_trace()
    for i in range(_MAX_PASSES):
        rewritten = _rewrite(plan)
        if rewritten == plan:
            if trace is not None:
                trace.record(
                    "rewrite",
                    "fixpoint",
                    detail=f"stable after {i} pass(es)",
                    after=plan_fingerprint(rewritten),
                )
            return rewritten
        if trace is not None:
            trace.record(
                "rewrite",
                "rewrite-pass",
                detail=f"pass {i + 1}",
                before=plan_fingerprint(plan),
                after=plan_fingerprint(rewritten),
            )
        plan = rewritten
    return plan


def _rewrite(plan: Plan) -> Plan:
    # Bottom-up: children first, then this node.
    plan = _rebuild_with_children(plan, [_rewrite(c) for c in plan.children()])
    if isinstance(plan, Select):
        return _rewrite_select(plan)
    if isinstance(plan, Drop):
        return _rewrite_drop(plan)
    if isinstance(plan, Distinct) and isinstance(plan.child, Distinct):
        return plan.child
    return plan


def _rebuild_with_children(plan: Plan, children: list[Plan]) -> Plan:
    old = plan.children()
    if tuple(children) == old:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.pred)
    if isinstance(plan, Map):
        return Map(children[0], plan.expr, plan.var)
    if isinstance(plan, Extend):
        return Extend(children[0], plan.expr, plan.label)
    if isinstance(plan, Drop):
        return Drop(children[0], plan.labels)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.pred)
    if isinstance(plan, SemiJoin):
        return SemiJoin(children[0], children[1], plan.pred)
    if isinstance(plan, AntiJoin):
        return AntiJoin(children[0], children[1], plan.pred)
    if isinstance(plan, OuterJoin):
        return OuterJoin(children[0], children[1], plan.pred)
    if isinstance(plan, NestJoin):
        return NestJoin(children[0], children[1], plan.pred, plan.func, plan.label)
    if isinstance(plan, Nest):
        return Nest(children[0], plan.by, plan.nest, plan.label, plan.null_to_empty)
    if isinstance(plan, Unnest):
        return Unnest(children[0], plan.label, plan.var)
    return plan  # Scan and friends: no children


def _rewrite_drop(plan: Drop) -> Plan:
    if isinstance(plan.child, Drop):
        return Drop(plan.child.child, plan.child.labels + plan.labels)
    return plan


def _rewrite_select(plan: Select) -> Plan:
    if is_true_const(plan.pred):
        return plan.child
    # Merge stacked selections so all conjuncts are considered together.
    child = plan.child
    conj_list = list(conjuncts(plan.pred))
    while isinstance(child, Select):
        conj_list.extend(conjuncts(child.pred))
        child = child.child
    remaining: list[Expr] = []
    for conj in conj_list:
        sunk = push_selection(child, conj)
        if sunk is None:
            remaining.append(conj)
        else:
            child = sunk
            from repro.core.trace import current_trace

            trace = current_trace()
            if trace is not None:
                from repro.lang.pretty import pretty

                trace.record(
                    "rewrite", "selection-pushdown", detail=pretty(conj)
                )
    if not remaining:
        return child
    return Select(child, make_and(remaining))


def push_selection(plan: Plan, conj: Expr) -> Plan | None:
    """Sink one selection conjunct into *plan*, or None if it must stay above.

    The conjunct's free variables are checked against the child's binding
    names only — other free names (table references used by interpreted
    subqueries inside the conjunct) resolve through the catalog wherever
    the predicate is evaluated, so they never block pushdown.
    """
    used = free_vars(conj) & set(plan.bindings())

    if isinstance(plan, (Join, SemiJoin, AntiJoin, OuterJoin, NestJoin)):
        left, right = plan.left, plan.right
        if used <= set(left.bindings()):
            new_left = push_selection(left, conj) or Select(left, conj)
            return _rebuild_with_children(plan, [new_left, right])
        if isinstance(plan, Join) and used <= set(right.bindings()):
            new_right = push_selection(right, conj) or Select(right, conj)
            return _rebuild_with_children(plan, [left, new_right])
        return None
    if isinstance(plan, Extend):
        if plan.label in used:
            return None
        inner = push_selection(plan.child, conj) or Select(plan.child, conj)
        return Extend(inner, plan.expr, plan.label)
    if isinstance(plan, Drop):
        # Dropped labels cannot occur in a conjunct evaluated above the Drop.
        inner = push_selection(plan.child, conj) or Select(plan.child, conj)
        return Drop(inner, plan.labels)
    if isinstance(plan, Distinct):
        inner = push_selection(plan.child, conj) or Select(plan.child, conj)
        return Distinct(inner)
    if isinstance(plan, Unnest):
        if plan.var in used:
            return None
        inner = push_selection(plan.child, conj) or Select(plan.child, conj)
        return Unnest(inner, plan.label, plan.var)
    if isinstance(plan, Nest):
        if used <= set(plan.by):
            inner = push_selection(plan.child, conj) or Select(plan.child, conj)
            return Nest(inner, plan.by, plan.nest, plan.label, plan.null_to_empty)
        return None
    if isinstance(plan, Select):
        inner = push_selection(plan.child, conj)
        if inner is None:
            return None
        return Select(inner, plan.pred)
    # Scan, Map: nothing below to push into (Map rebinds variables).
    return None
