"""Cost-based plan enumeration over the nest join's algebraic laws.

The paper closes by noting that "the algebraic properties of the nest join
operator have to be further investigated" so that logical optimization can
follow translation. This module does exactly that for the two reorderings
Section 6 licenses:

* **exchange** —  ``(X ⋈_r Y) Δ_s Z  ≡  (X Δ_s Z) ⋈_r Y``
  when ``s`` (and the nest-join function) ignore Y, and — for the reverse
  direction — ``r`` ignores the nested attribute;
* **associate** — ``X ⋈_r (Y Δ_s Z)  ≡  (X ⋈_r Y) Δ_s Z``
  when ``r`` ignores Z and the nested attribute, and ``s`` ignores X.

Which side is cheaper depends on the data: nest-joining before a
*expanding* join avoids re-grouping multiplied rows; joining before a nest
join benefits from the join's selectivity. :func:`enumerate_plans`
generates the closure of a plan under these (binding-safe) rewrites up to
a budget, and :func:`choose_plan` picks the cheapest by
:func:`repro.engine.plan_cost.plan_cost`.

Every rewrite preserves results exactly (property-tested); the enumerator
can therefore be dropped in front of physical compilation without risk.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.lang.ast import Var
from repro.lang.freevars import free_vars

__all__ = ["enumerate_plans", "choose_plan", "local_rewrites"]

_DEFAULT_BUDGET = 64


def _uses_only(pred, allowed: set[str], all_bindings: set[str]) -> bool:
    """The *bound* variables referenced by pred are within `allowed`.

    Free names outside `all_bindings` are table references (interpreted
    subqueries); they do not constrain reordering.
    """
    return (free_vars(pred) & all_bindings) <= allowed


def local_rewrites(plan: Plan) -> Iterator[Plan]:
    """Law applications at the root of *plan* (both directions)."""
    # exchange, forward: (X ⋈_r Y) Δ_s Z → (X Δ_s Z) ⋈_r Y
    if isinstance(plan, NestJoin) and isinstance(plan.left, Join):
        inner = plan.left
        x, y, z = inner.left, inner.right, plan.right
        all_b = set(x.bindings()) | set(y.bindings()) | set(z.bindings())
        xz = set(x.bindings()) | set(z.bindings())
        func = plan.func if plan.func is not None else Var(z.bindings()[0]) if len(z.bindings()) == 1 else None
        if (
            func is not None
            and _uses_only(plan.pred, xz, all_b)
            and _uses_only(func, xz, all_b)
            and plan.label not in y.bindings()
        ):
            yield Join(
                NestJoin(x, z, plan.pred, plan.func, plan.label), y, inner.pred
            )
    # exchange, reverse: (X Δ_s Z) ⋈_r Y → (X ⋈_r Y) Δ_s Z
    if isinstance(plan, Join) and isinstance(plan.left, NestJoin):
        inner = plan.left
        x, z, y = inner.left, inner.right, plan.right
        all_b = set(x.bindings()) | set(y.bindings()) | set(z.bindings()) | {inner.label}
        xy = set(x.bindings()) | set(y.bindings())
        if _uses_only(plan.pred, xy, all_b):  # r must ignore z and the label
            yield NestJoin(Join(x, y, plan.pred), z, inner.pred, inner.func, inner.label)
    # associate, forward: X ⋈_r (Y Δ_s Z) → (X ⋈_r Y) Δ_s Z
    if isinstance(plan, Join) and isinstance(plan.right, NestJoin):
        inner = plan.right
        x, y, z = plan.left, inner.left, inner.right
        all_b = set(x.bindings()) | set(y.bindings()) | set(z.bindings()) | {inner.label}
        xy = set(x.bindings()) | set(y.bindings())
        yz = set(y.bindings()) | set(z.bindings())
        func = inner.func if inner.func is not None else Var(z.bindings()[0]) if len(z.bindings()) == 1 else None
        if (
            func is not None
            and _uses_only(plan.pred, xy, all_b)
            and _uses_only(inner.pred, yz, all_b)
            and _uses_only(func, yz, all_b)
        ):
            yield NestJoin(Join(x, y, plan.pred), z, inner.pred, inner.func, inner.label)
    # associate, reverse: (X ⋈_r Y) Δ_s Z → X ⋈_r (Y Δ_s Z)
    if isinstance(plan, NestJoin) and isinstance(plan.left, Join):
        inner = plan.left
        x, y, z = inner.left, inner.right, plan.right
        all_b = set(x.bindings()) | set(y.bindings()) | set(z.bindings())
        yz = set(y.bindings()) | set(z.bindings())
        func = plan.func if plan.func is not None else Var(z.bindings()[0]) if len(z.bindings()) == 1 else None
        if (
            func is not None
            and _uses_only(plan.pred, yz, all_b)
            and _uses_only(func, yz, all_b)
            and plan.label not in x.bindings()
        ):
            yield Join(x, NestJoin(y, z, plan.pred, plan.func, plan.label), inner.pred)


def _rebuild(plan: Plan, children: list[Plan]) -> Plan:
    if tuple(children) == plan.children():
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.pred)
    if isinstance(plan, Map):
        return Map(children[0], plan.expr, plan.var)
    if isinstance(plan, Extend):
        return Extend(children[0], plan.expr, plan.label)
    if isinstance(plan, Drop):
        return Drop(children[0], plan.labels)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.pred)
    if isinstance(plan, SemiJoin):
        return SemiJoin(children[0], children[1], plan.pred)
    if isinstance(plan, AntiJoin):
        return AntiJoin(children[0], children[1], plan.pred)
    if isinstance(plan, OuterJoin):
        return OuterJoin(children[0], children[1], plan.pred)
    if isinstance(plan, NestJoin):
        return NestJoin(children[0], children[1], plan.pred, plan.func, plan.label)
    if isinstance(plan, Nest):
        return Nest(children[0], plan.by, plan.nest, plan.label, plan.null_to_empty)
    if isinstance(plan, Unnest):
        return Unnest(children[0], plan.label, plan.var)
    return plan


def _neighbours(plan: Plan) -> Iterator[Plan]:
    """All plans one rewrite away (at the root or inside any subtree)."""
    yield from local_rewrites(plan)
    children = list(plan.children())
    for i, child in enumerate(children):
        for replacement in _neighbours(child):
            new_children = list(children)
            new_children[i] = replacement
            yield _rebuild(plan, new_children)


def enumerate_plans(plan: Plan, budget: int = _DEFAULT_BUDGET) -> list[Plan]:
    """The closure of *plan* under the laws, breadth-first, up to *budget*."""
    seen: set[Plan] = {plan}
    frontier: list[Plan] = [plan]
    order: list[Plan] = [plan]
    while frontier and len(order) < budget:
        next_frontier: list[Plan] = []
        for current in frontier:
            for neighbour in _neighbours(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    order.append(neighbour)
                    next_frontier.append(neighbour)
                    if len(order) >= budget:
                        return order
        frontier = next_frontier
    return order


def choose_plan(plan: Plan, catalog: Mapping, budget: int = _DEFAULT_BUDGET) -> Plan:
    """The cheapest law-equivalent alternative of *plan* (possibly itself)."""
    from repro.engine.plan_cost import plan_cost
    from repro.engine.stats import StatsCatalog

    stats = StatsCatalog(catalog)
    candidates = enumerate_plans(plan, budget)
    return min(candidates, key=lambda p: plan_cost(p, stats))
