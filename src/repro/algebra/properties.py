"""Algebraic properties of the nest join (Section 6 of the paper).

The paper lists equivalences the nest join does and does not satisfy. This
module provides *constructive* law objects: each law builds the left-hand
and right-hand plan from component inputs, so tests (and the E10 benchmark)
can execute both sides and compare. The rewrites are also usable by the
optimizer.

Laws implemented (X, Y, Z independent operands; r(a,b) a predicate touching
only a and b; Δ the identity-function nest join):

* ``project_collapse``      —  π_X(X Δ_p Y) ≡ X
* ``nestjoin_join_exchange``—  (X ⋈_{r(x,y)} Y) Δ_{r(x,z)} Z
                               ≡ (X Δ_{r(x,z)} Z) ⋈_{r(x,y)} Y
* ``join_nestjoin_assoc``   —  X ⋈_{r(x,y)} (Y Δ_{r(y,z)} Z)
                               ≡ (X ⋈_{r(x,y)} Y) Δ_{r(y,z)} Z
* ``outerjoin_nest_expansion`` — X Δ_p Y ≡ ν*_{label}(X ⟕_p Y)

Non-laws demonstrated by tests: commutativity, associativity with regular
join in the other grouping, and ``Unnest(NestJoin) ≠ Join`` (dangling-tuple
loss — the very phenomenon behind the COUNT bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import PlanError
from repro.lang.ast import Expr, Var
from repro.algebra.plan import (
    Drop,
    Join,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Unnest,
)

__all__ = [
    "Law",
    "project_collapse",
    "nestjoin_join_exchange",
    "join_nestjoin_assoc",
    "outerjoin_nest_expansion",
    "nestjoin_via_outerjoin",
    "unnest_of_nestjoin",
    "ALL_LAWS",
]


@dataclass(frozen=True)
class Law:
    """A pair of plan constructors expected to be equivalent."""

    name: str
    lhs: Callable[..., Plan]
    rhs: Callable[..., Plan]
    description: str


def _single_binding(plan: Plan, what: str) -> str:
    names = plan.bindings()
    if len(names) != 1:
        raise PlanError(f"{what} must bind exactly one variable, binds {names}")
    return names[0]


# ---------------------------------------------------------------------------
# project_collapse: π_X(X Δ_p Y) ≡ X
# ---------------------------------------------------------------------------

def _project_collapse_lhs(x: Plan, y: Plan, pred: Expr, label: str = "zs") -> Plan:
    return Drop(NestJoin(x, y, pred, None, label), (label,))


def _project_collapse_rhs(x: Plan, y: Plan, pred: Expr, label: str = "zs") -> Plan:
    return x


project_collapse = Law(
    "project_collapse",
    _project_collapse_lhs,
    _project_collapse_rhs,
    "Dropping the nested attribute of a nest join yields the left operand unchanged "
    "(every left tuple survives exactly once — unlike the regular join).",
)


# ---------------------------------------------------------------------------
# nestjoin_join_exchange: (X ⋈_{r(x,y)} Y) Δ_{s(x,z)} Z ≡ (X Δ_{s(x,z)} Z) ⋈_{r(x,y)} Y
#
# Valid because s touches only x and z: the nested set computed for a given
# x-tuple does not depend on which y it is paired with. Note the law needs
# the nest-join function to reference only x and z as well (identity does).
# ---------------------------------------------------------------------------

def _exchange_lhs(x: Plan, y: Plan, z: Plan, r_xy: Expr, s_xz: Expr, label: str = "zs") -> Plan:
    return NestJoin(Join(x, y, r_xy), z, s_xz, None, label)


def _exchange_rhs(x: Plan, y: Plan, z: Plan, r_xy: Expr, s_xz: Expr, label: str = "zs") -> Plan:
    return Join(NestJoin(x, z, s_xz, None, label), y, r_xy)


nestjoin_join_exchange = Law(
    "nestjoin_join_exchange",
    _exchange_lhs,
    _exchange_rhs,
    "A nest join whose predicate ignores Y commutes past a regular join with Y "
    "— only when X has no dangling tuples w.r.t. Y is this set-equal; in general "
    "the multiset of (x, zs) groups agrees on matching x-tuples. The paper states "
    "the identity for predicates r(x, y) and s(x, z); dangling X-tuples of the "
    "regular join are absent from both sides, making the law exact.",
)


# ---------------------------------------------------------------------------
# join_nestjoin_assoc: X ⋈_{r(x,y)} (Y Δ_{s(y,z)} Z) ≡ (X ⋈_{r(x,y)} Y) Δ_{s(y,z)} Z
# ---------------------------------------------------------------------------

def _assoc_lhs(x: Plan, y: Plan, z: Plan, r_xy: Expr, s_yz: Expr, label: str = "zs") -> Plan:
    return Join(x, NestJoin(y, z, s_yz, None, label), r_xy)


def _assoc_rhs(x: Plan, y: Plan, z: Plan, r_xy: Expr, s_yz: Expr, label: str = "zs") -> Plan:
    return NestJoin(Join(x, y, r_xy), z, s_yz, None, label)


join_nestjoin_assoc = Law(
    "join_nestjoin_assoc",
    _assoc_lhs,
    _assoc_rhs,
    "A regular join on r(x, y) associates with a nest join on s(y, z): the "
    "nested set per y-tuple is independent of the x-pairing.",
)


# ---------------------------------------------------------------------------
# outerjoin_nest_expansion: X Δ_p Y ≡ ν*(X ⟕_p Y)   (identity function)
# ---------------------------------------------------------------------------

def _expansion_lhs(x: Plan, y: Plan, pred: Expr, label: str = "zs") -> Plan:
    return NestJoin(x, y, pred, None, label)


def _expansion_rhs(x: Plan, y: Plan, pred: Expr, label: str = "zs") -> Plan:
    yvar = _single_binding(y, "right operand of outerjoin-nest expansion")
    return Nest(
        OuterJoin(x, y, pred),
        by=x.bindings(),
        nest=yvar,
        label=label,
        null_to_empty=True,
    )


outerjoin_nest_expansion = Law(
    "outerjoin_nest_expansion",
    _expansion_lhs,
    _expansion_rhs,
    "The nest join equals a left outerjoin followed by the modified nest ν* "
    "that maps a NULL-only group to the empty set — the paper's algebraic "
    "characterisation, and the reason no NULL is needed in the model itself.",
)


ALL_LAWS = (
    project_collapse,
    nestjoin_join_exchange,
    join_nestjoin_assoc,
    outerjoin_nest_expansion,
)


# ---------------------------------------------------------------------------
# Rewrites usable by the optimizer / baselines
# ---------------------------------------------------------------------------

def nestjoin_via_outerjoin(plan: NestJoin) -> Plan:
    """Rewrite an identity nest join into OuterJoin + ν* (the relational way).

    Used by the E10 experiment to measure the cost of taking the outerjoin
    detour that the nest join avoids.
    """
    if plan.func is not None and plan.func != Var(_single_binding(plan.right, "right operand")):
        raise PlanError("outerjoin expansion only defined for identity nest joins")
    return _expansion_rhs(plan.left, plan.right, plan.pred, plan.label)


def unnest_of_nestjoin(x: Plan, y: Plan, pred: Expr, label: str = "zs") -> tuple[Plan, Plan]:
    """Build Unnest(NestJoin(...)) and the plain Join — a documented NON-law.

    Unnesting a nest join loses dangling left tuples (their nested set is ∅),
    so the pair is equivalent only when no left tuple dangles. Returned as
    (unnest_plan, join_plan) for the tests that demonstrate the difference.
    """
    yvar = _single_binding(y, "right operand")
    unnest_plan = Unnest(NestJoin(x, y, pred, None, label), label, yvar)
    join_plan = Join(x, y, pred)
    return unnest_plan, join_plan
