"""Plan printer: an indented EXPLAIN-style rendering of logical plans."""

from __future__ import annotations

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.lang.pretty import pretty as pretty_expr

__all__ = ["explain_plan"]


def _label(plan: Plan) -> str:
    if isinstance(plan, Scan):
        return f"Scan {plan.table} AS {plan.var}"
    if isinstance(plan, Select):
        return f"Select [{pretty_expr(plan.pred)}]"
    if isinstance(plan, Map):
        return f"Map {plan.var} = [{pretty_expr(plan.expr)}]"
    if isinstance(plan, Extend):
        return f"Extend {plan.label} = [{pretty_expr(plan.expr)}]"
    if isinstance(plan, Drop):
        return f"Drop {', '.join(plan.labels)}"
    if isinstance(plan, Distinct):
        return "Distinct"
    if isinstance(plan, Join):
        return f"Join [{pretty_expr(plan.pred)}]"
    if isinstance(plan, SemiJoin):
        return f"SemiJoin [{pretty_expr(plan.pred)}]"
    if isinstance(plan, AntiJoin):
        return f"AntiJoin [{pretty_expr(plan.pred)}]"
    if isinstance(plan, OuterJoin):
        return f"OuterJoin [{pretty_expr(plan.pred)}]"
    if isinstance(plan, NestJoin):
        func = "identity" if plan.func is None else pretty_expr(plan.func)
        return f"NestJoin {plan.label} = {{{func}}} [{pretty_expr(plan.pred)}]"
    if isinstance(plan, Nest):
        star = "*" if plan.null_to_empty else ""
        by = ", ".join(plan.by) if plan.by else "()"
        return f"Nest{star} {plan.label} = {{{plan.nest}}} BY {by}"
    if isinstance(plan, Unnest):
        return f"Unnest {plan.var} IN {plan.label}"
    return type(plan).__name__


def explain_plan(plan: Plan, indent: int = 0) -> str:
    """Render *plan* as an indented operator tree."""
    lines = [("  " * indent) + _label(plan)]
    for child in plan.children():
        lines.append(explain_plan(child, indent + 1))
    return "\n".join(lines)
