"""Reference executor for logical plans.

Executes a logical plan directly (all joins nested-loop, no physical
operator selection) against a catalog. It exists to be *obviously correct*,
serving as the middle rung of the differential-testing ladder::

    language interpreter  ≡  logical plan (this module)  ≡  physical plan

Rows are binding tuples (see :mod:`repro.algebra.plan`); the final result of
a plan whose bindings are a single variable can be collapsed to plain values
with :func:`result_values`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ExecutionError, PlanError
from repro.lang.ast import Expr
from repro.lang.eval import Env, evaluate, evaluate_predicate
from repro.model.values import NULL, Tup

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)

__all__ = ["run_logical", "result_values", "result_set", "env_of", "eval_over"]


def env_of(binding: Tup) -> Env:
    """Build an interpreter environment from a binding tuple."""
    return Env(binding.as_dict())


def eval_over(expr: Expr, binding: Tup, tables: Mapping) -> object:
    """Evaluate a language expression over one binding tuple."""
    return evaluate(expr, env_of(binding), tables)


def pred_over(expr: Expr, binding: Tup, tables: Mapping) -> bool:
    return evaluate_predicate(expr, env_of(binding), tables)


def run_logical(plan: Plan, tables: Mapping) -> list[Tup]:
    """Execute *plan* against *tables*, returning binding tuples in order."""
    if isinstance(plan, Scan):
        table = tables[plan.table]
        rows = table.rows if hasattr(table, "rows") else list(table)
        return [Tup({plan.var: row}) for row in rows]
    if isinstance(plan, Select):
        child = run_logical(plan.child, tables)
        return [t for t in child if pred_over(plan.pred, t, tables)]
    if isinstance(plan, Map):
        child = run_logical(plan.child, tables)
        return [Tup({plan.var: eval_over(plan.expr, t, tables)}) for t in child]
    if isinstance(plan, Extend):
        child = run_logical(plan.child, tables)
        return [t.extend(**{plan.label: eval_over(plan.expr, t, tables)}) for t in child]
    if isinstance(plan, Drop):
        child = run_logical(plan.child, tables)
        return [t.drop(*plan.labels) for t in child]
    if isinstance(plan, Distinct):
        child = run_logical(plan.child, tables)
        seen: set[Tup] = set()
        out: list[Tup] = []
        for t in child:
            if t not in seen:
                seen.add(t)
                out.append(t)
        return out
    if isinstance(plan, Join):
        left = run_logical(plan.left, tables)
        right = run_logical(plan.right, tables)
        out = []
        for lt in left:
            for rt in right:
                merged = lt.concat(rt)
                if pred_over(plan.pred, merged, tables):
                    out.append(merged)
        return out
    if isinstance(plan, SemiJoin):
        left = run_logical(plan.left, tables)
        right = run_logical(plan.right, tables)
        return [
            lt
            for lt in left
            if any(pred_over(plan.pred, lt.concat(rt), tables) for rt in right)
        ]
    if isinstance(plan, AntiJoin):
        left = run_logical(plan.left, tables)
        right = run_logical(plan.right, tables)
        return [
            lt
            for lt in left
            if not any(pred_over(plan.pred, lt.concat(rt), tables) for rt in right)
        ]
    if isinstance(plan, OuterJoin):
        left = run_logical(plan.left, tables)
        right = run_logical(plan.right, tables)
        right_names = plan.right.bindings()
        out = []
        for lt in left:
            matched = False
            for rt in right:
                merged = lt.concat(rt)
                if pred_over(plan.pred, merged, tables):
                    matched = True
                    out.append(merged)
            if not matched:
                out.append(lt.extend(**{name: NULL for name in right_names}))
        return out
    if isinstance(plan, NestJoin):
        left = run_logical(plan.left, tables)
        right = run_logical(plan.right, tables)
        func = plan.func
        if func is None:
            func = _identity_func(plan)
        out = []
        for lt in left:
            group = set()
            for rt in right:
                merged = lt.concat(rt)
                if pred_over(plan.pred, merged, tables):
                    group.add(eval_over(func, merged, tables))
            out.append(lt.extend(**{plan.label: frozenset(group)}))
        return out
    if isinstance(plan, Nest):
        child = run_logical(plan.child, tables)
        groups: dict[Tup, set] = {}
        order: list[Tup] = []
        for t in child:
            key = t.project(plan.by)
            if key not in groups:
                groups[key] = set()
                order.append(key)
            value = t[plan.nest]
            if plan.null_to_empty and value == NULL:
                continue
            groups[key].add(value)
        return [key.extend(**{plan.label: frozenset(groups[key])}) for key in order]
    if isinstance(plan, Unnest):
        child = run_logical(plan.child, tables)
        out = []
        for t in child:
            members = t[plan.label]
            if not isinstance(members, frozenset):
                raise ExecutionError(f"Unnest of non-set binding {plan.label!r}: {members!r}")
            rest = t.drop(plan.label)
            for m in members:
                out.append(rest.extend(**{plan.var: m}))
        return out
    raise PlanError(f"unknown plan node {type(plan).__name__}")


def _identity_func(plan: NestJoin) -> Expr:
    from repro.lang.ast import Var

    right_names = plan.right.bindings()
    if len(right_names) != 1:
        raise PlanError(
            "identity nest join requires a single right binding; "
            f"right operand binds {right_names}"
        )
    return Var(right_names[0])


def result_values(rows: list[Tup]) -> list:
    """Collapse single-binding rows to their values (order preserved)."""
    out = []
    for t in rows:
        labels = t.labels()
        if len(labels) != 1:
            raise PlanError(f"result rows bind {labels}; expected exactly one binding")
        out.append(t[labels[0]])
    return out


def result_set(rows: list[Tup]) -> frozenset:
    """Collapse single-binding rows to a set of values (TM set semantics)."""
    return frozenset(result_values(rows))
