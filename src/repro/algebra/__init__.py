"""Complex-object algebra: logical plans, reference executor, laws."""

from repro.algebra.interpreter import (
    env_of,
    eval_over,
    result_set,
    result_values,
    run_logical,
)
from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.algebra.enumerate import choose_plan, enumerate_plans, local_rewrites
from repro.algebra.pretty import explain_plan
from repro.algebra.rewrite import optimize_logical, push_selection
from repro.algebra.typing import check_plan, plan_types
from repro.algebra.properties import (
    ALL_LAWS,
    Law,
    join_nestjoin_assoc,
    nestjoin_join_exchange,
    nestjoin_via_outerjoin,
    outerjoin_nest_expansion,
    project_collapse,
    unnest_of_nestjoin,
)

__all__ = [
    "Plan",
    "Scan",
    "Select",
    "Map",
    "Extend",
    "Drop",
    "Distinct",
    "Join",
    "SemiJoin",
    "AntiJoin",
    "OuterJoin",
    "NestJoin",
    "Nest",
    "Unnest",
    "run_logical",
    "result_values",
    "result_set",
    "env_of",
    "eval_over",
    "explain_plan",
    "optimize_logical",
    "push_selection",
    "choose_plan",
    "enumerate_plans",
    "local_rewrites",
    "plan_types",
    "check_plan",
    "Law",
    "ALL_LAWS",
    "project_collapse",
    "nestjoin_join_exchange",
    "join_nestjoin_assoc",
    "outerjoin_nest_expansion",
    "nestjoin_via_outerjoin",
    "unnest_of_nestjoin",
]
