"""Static typing of logical plans.

:func:`plan_types` computes, for every binding a plan emits, its type —
given the catalog's row types. Along the way it *checks* the plan:
predicates must be boolean, nest/unnest must operate on sets, Extend/Map
expressions must type under the bindings in scope. The translator's output
is checked in the test suite, so a typing bug in translation fails fast
with a message naming the operator.

The rules mirror the paper's algebra: a nest join's label is typed
``P(type of the join function)``; an outer join makes right bindings
nullable (typed ANY here, since the NULL pad inhabits no precise type);
Unnest exposes the set's element type.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.plan import (
    AntiJoin,
    Distinct,
    Drop,
    Extend,
    Join,
    Map,
    Nest,
    NestJoin,
    OuterJoin,
    Plan,
    Scan,
    Select,
    SemiJoin,
    Unnest,
)
from repro.errors import PlanError, TypeCheckError
from repro.lang.ast import Var
from repro.lang.typing import TypeEnv, check_boolean, type_of
from repro.model.types import ANY, SetType, Type

__all__ = ["plan_types", "check_plan"]


def plan_types(plan: Plan, table_row_types: Mapping[str, Type]) -> dict[str, Type]:
    """Binding name → type for *plan*'s output; raises on an ill-typed plan."""
    return _types(plan, dict(table_row_types))


def check_plan(plan: Plan, table_row_types: Mapping[str, Type]) -> None:
    """Type-check *plan* (discarding the computed binding types)."""
    plan_types(plan, table_row_types)


def _env(bindings: dict[str, Type], tables: Mapping[str, Type]) -> TypeEnv:
    env = TypeEnv.with_tables(tables)
    for name, type_ in bindings.items():
        env = env.bind(name, type_)
    return env


def _merged(left: dict[str, Type], right: dict[str, Type], what: str) -> dict[str, Type]:
    overlap = set(left) & set(right)
    if overlap:
        raise PlanError(f"{what}: operand bindings overlap on {sorted(overlap)}")
    merged = dict(left)
    merged.update(right)
    return merged


def _types(plan: Plan, tables: Mapping[str, Type]) -> dict[str, Type]:
    if isinstance(plan, Scan):
        if plan.table not in tables:
            raise TypeCheckError(f"Scan of unknown table {plan.table!r}")
        return {plan.var: tables[plan.table]}
    if isinstance(plan, Select):
        bindings = _types(plan.child, tables)
        check_boolean(plan.pred, _env(bindings, tables))
        return bindings
    if isinstance(plan, Map):
        bindings = _types(plan.child, tables)
        return {plan.var: type_of(plan.expr, _env(bindings, tables))}
    if isinstance(plan, Extend):
        bindings = _types(plan.child, tables)
        out = dict(bindings)
        out[plan.label] = type_of(plan.expr, _env(bindings, tables))
        return out
    if isinstance(plan, Drop):
        bindings = _types(plan.child, tables)
        return {k: v for k, v in bindings.items() if k not in plan.labels}
    if isinstance(plan, Distinct):
        return _types(plan.child, tables)
    if isinstance(plan, (Join, SemiJoin, AntiJoin, OuterJoin, NestJoin)):
        left = _types(plan.left, tables)
        right = _types(plan.right, tables)
        both = _merged(left, right, type(plan).__name__)
        check_boolean(plan.pred, _env(both, tables))
        if isinstance(plan, (SemiJoin, AntiJoin)):
            return left
        if isinstance(plan, OuterJoin):
            # NULL pads make right bindings imprecise.
            out = dict(left)
            out.update({name: ANY for name in right})
            return out
        if isinstance(plan, NestJoin):
            func = plan.func
            if func is None:
                names = list(right)
                if len(names) != 1:
                    raise PlanError("identity nest join requires a single right binding")
                func = Var(names[0])
            elem = type_of(func, _env(both, tables))
            out = dict(left)
            out[plan.label] = SetType(elem)
            return out
        return both
    if isinstance(plan, Nest):
        bindings = _types(plan.child, tables)
        if plan.nest not in bindings:
            raise PlanError(f"Nest of unknown binding {plan.nest!r}")
        out = {name: bindings[name] for name in plan.by}
        # After an outer join the nested binding is already typed ANY
        # (NULL pads); ν* filters the NULLs but cannot sharpen the type.
        out[plan.label] = SetType(bindings[plan.nest])
        return out
    if isinstance(plan, Unnest):
        bindings = _types(plan.child, tables)
        set_type = bindings[plan.label]
        if isinstance(set_type, SetType):
            elem: Type = set_type.element
        elif set_type == ANY:
            elem = ANY
        else:
            raise TypeCheckError(f"Unnest of non-set binding {plan.label!r}: {set_type!r}")
        out = {k: v for k, v in bindings.items() if k != plan.label}
        out[plan.var] = elem
        return out
    raise PlanError(f"cannot type plan node {type(plan).__name__}")
