"""Logical algebra for complex objects (the ADL-like layer of the paper).

Operators work on *binding tuples*: each intermediate row is a
:class:`~repro.model.values.Tup` mapping variable names to values (e.g.
after ``Scan(X, 'x')`` each row is ``(x = <row of X>)``; after a join with
``Scan(Y, 'y')`` each row is ``(x = ..., y = ...)``). Predicates and map
functions are ordinary language expressions over those variables, evaluated
by the interpreter — one expression language for the whole stack.

The operator set mirrors the paper:

* ``Scan``, ``Select``, ``Map``, ``Extend``, ``Drop`` — the NF² basics;
* ``Join``, ``SemiJoin``, ``AntiJoin``, ``OuterJoin`` — flat joins
  (Section 7 uses semi/anti, Section 2 reviews the outerjoin fix);
* ``NestJoin`` — the paper's Δ operator (Section 6): each left row is
  extended with the *set* of join-function images of matching right rows;
* ``Nest`` / ``Unnest`` — the ν and μ operators of the NF² algebra [12],
  with ``Nest(null_to_empty=True)`` implementing the modified ν* of
  Section 6 (a NULL-only group becomes ∅).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.lang.ast import TRUE, Expr

__all__ = [
    "Plan",
    "Scan",
    "Select",
    "Map",
    "Extend",
    "Drop",
    "Distinct",
    "Join",
    "SemiJoin",
    "AntiJoin",
    "OuterJoin",
    "NestJoin",
    "Nest",
    "Unnest",
]


class Plan:
    """Abstract base for logical plan operators."""

    __slots__ = ()

    def bindings(self) -> tuple[str, ...]:
        """The binding names (env-tuple labels) this operator emits."""
        raise NotImplementedError

    def children(self) -> tuple["Plan", ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(Plan):
    """Emit ``(var = row)`` for every row of the named table."""

    table: str
    var: str

    def bindings(self) -> tuple[str, ...]:
        return (self.var,)

    def children(self) -> tuple[Plan, ...]:
        return ()


@dataclass(frozen=True)
class Select(Plan):
    """Keep binding tuples satisfying ``pred`` (evaluated over the bindings)."""

    child: Plan
    pred: Expr

    def bindings(self) -> tuple[str, ...]:
        return self.child.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Map(Plan):
    """Replace each binding tuple by ``(var = expr)`` — function application."""

    child: Plan
    expr: Expr
    var: str = "out"

    def bindings(self) -> tuple[str, ...]:
        return (self.var,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Extend(Plan):
    """Extend each binding tuple with ``label = expr`` (label must be fresh)."""

    child: Plan
    expr: Expr
    label: str

    def __post_init__(self):
        if self.label in self.child.bindings():
            raise PlanError(f"Extend label {self.label!r} already bound")

    def bindings(self) -> tuple[str, ...]:
        return self.child.bindings() + (self.label,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Drop(Plan):
    """Remove bindings (the env-level projection)."""

    child: Plan
    labels: tuple[str, ...]

    def __post_init__(self):
        missing = set(self.labels) - set(self.child.bindings())
        if missing:
            raise PlanError(f"Drop of unknown bindings {sorted(missing)}")
        if not set(self.child.bindings()) - set(self.labels):
            raise PlanError("Drop would remove every binding")

    def bindings(self) -> tuple[str, ...]:
        return tuple(b for b in self.child.bindings() if b not in self.labels)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Distinct(Plan):
    """Remove duplicate binding tuples (set semantics)."""

    child: Plan

    def bindings(self) -> tuple[str, ...]:
        return self.child.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


def _check_disjoint(left: Plan, right: Plan, op: str) -> None:
    overlap = set(left.bindings()) & set(right.bindings())
    if overlap:
        raise PlanError(f"{op}: operand bindings overlap on {sorted(overlap)}")


@dataclass(frozen=True)
class Join(Plan):
    """Inner join: merged binding tuples where ``pred`` holds."""

    left: Plan
    right: Plan
    pred: Expr = TRUE

    def __post_init__(self):
        _check_disjoint(self.left, self.right, "Join")

    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings() + self.right.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SemiJoin(Plan):
    """Left rows with at least one matching right row (Section 7, ∃-form)."""

    left: Plan
    right: Plan
    pred: Expr = TRUE

    def __post_init__(self):
        _check_disjoint(self.left, self.right, "SemiJoin")

    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class AntiJoin(Plan):
    """Left rows with no matching right row (Section 7, ¬∃-form)."""

    left: Plan
    right: Plan
    pred: Expr = TRUE

    def __post_init__(self):
        _check_disjoint(self.left, self.right, "AntiJoin")

    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class OuterJoin(Plan):
    """Left outer join: dangling left rows are padded with NULL right bindings.

    Used only by the relational baselines (Ganski–Wong, Muralikrishna); the
    TM-side translation uses :class:`NestJoin`, which needs no NULL.
    """

    left: Plan
    right: Plan
    pred: Expr = TRUE

    def __post_init__(self):
        _check_disjoint(self.left, self.right, "OuterJoin")

    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings() + self.right.bindings()

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NestJoin(Plan):
    """The paper's nest join Δ (Section 6).

    For each left row ``x``::

        x ++ (label = { func(x, y) | y ∈ right, pred(x, y) })

    Grouping happens *during* the join and dangling left rows survive with
    ``label = ∅`` — the two birds killed with one stone.

    ``func`` defaults to the right operand's single binding variable
    (identity nest join) when None.
    """

    left: Plan
    right: Plan
    pred: Expr = TRUE
    func: Expr | None = None
    label: str = "zs"

    def __post_init__(self):
        _check_disjoint(self.left, self.right, "NestJoin")
        if self.label in self.left.bindings() or self.label in self.right.bindings():
            raise PlanError(f"NestJoin label {self.label!r} collides with operand bindings")

    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings() + (self.label,)

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Nest(Plan):
    """The ν operator: group by ``by`` bindings, nest the ``nest`` binding.

    Emits one row per group: the ``by`` bindings plus
    ``label = { t[nest] | t in group }``. With ``null_to_empty`` (the ν* of
    Section 6) NULL values of ``nest`` are not collected, so a group that is
    a single NULL-padded row (outerjoin dangling) nests to ∅.
    """

    child: Plan
    by: tuple[str, ...]
    nest: str
    label: str
    null_to_empty: bool = False

    def __post_init__(self):
        have = set(self.child.bindings())
        missing = (set(self.by) | {self.nest}) - have
        if missing:
            raise PlanError(f"Nest references unknown bindings {sorted(missing)}")
        if self.nest in self.by:
            raise PlanError("Nest: nested binding cannot be a grouping binding")
        if self.label in self.by:
            raise PlanError(f"Nest label {self.label!r} collides with grouping bindings")

    def bindings(self) -> tuple[str, ...]:
        return tuple(self.by) + (self.label,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Unnest(Plan):
    """The μ operator: flatten a set-valued binding.

    For each row ``t`` and each member ``m`` of the set ``t[label]``, emit
    ``t without label, plus (var = m)``. Rows whose set is empty produce
    nothing — exactly the dangling-tuple loss the paper warns about, which
    is why Unnest(NestJoin(...)) is *not* the identity (tested).
    """

    child: Plan
    label: str
    var: str

    def __post_init__(self):
        if self.label not in self.child.bindings():
            raise PlanError(f"Unnest of unknown binding {self.label!r}")
        if self.var in self.child.bindings() and self.var != self.label:
            raise PlanError(f"Unnest target {self.var!r} already bound")

    def bindings(self) -> tuple[str, ...]:
        return tuple(b for b in self.child.bindings() if b != self.label) + (self.var,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)
