"""Graphviz rendering of logical and physical plans.

:func:`plan_to_dot` / :func:`physical_to_dot` emit ``dot`` source; pipe it
through ``dot -Tsvg`` to visualise a plan tree::

    python - <<'PY' | dot -Tsvg > plan.svg
    from repro import prepare, Catalog, Tup
    from repro.algebra.dot import plan_to_dot
    ...
    print(plan_to_dot(translation.plan))
    PY
"""

from __future__ import annotations

from repro.algebra.plan import Plan
from repro.algebra.pretty import _label as _logical_label
from repro.engine.physical import PhysicalOp

__all__ = ["plan_to_dot", "physical_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _emit(node, label_of, lines: list[str], counter: list[int]) -> int:
    node_id = counter[0]
    counter[0] += 1
    lines.append(f'  n{node_id} [label="{_escape(label_of(node))}"];')
    for child in node.children():
        child_id = _emit(child, label_of, lines, counter)
        lines.append(f"  n{node_id} -> n{child_id};")
    return node_id


def plan_to_dot(plan: Plan, name: str = "logical_plan") -> str:
    """dot source for a logical plan tree."""
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    _emit(plan, _logical_label, lines, [0])
    lines.append("}")
    return "\n".join(lines)


def physical_to_dot(op: PhysicalOp, name: str = "physical_plan") -> str:
    """dot source for a compiled physical plan, with row estimates."""

    def label(node: PhysicalOp) -> str:
        return f"{node.describe()}\\n~{node.est_rows:.0f} rows"

    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    _emit(op, label, lines, [0])
    lines.append("}")
    return "\n".join(lines)
