"""Schemas: sorts, classes with extensions, and class-reference resolution.

A TM schema (Section 3.1/3.2 of the paper) consists of:

* **sorts** — named reusable complex types ("Address", "Date", ...);
* **classes** — object types with named **extensions** (e.g. class
  ``Employee`` with extension ``EMP``); a class has an attribute tuple type
  that may reference sorts and other classes.

Because objects are represented by value in this library, resolving a
schema replaces every :class:`~repro.model.types.ClassType` and sort
reference with the referenced attribute :class:`~repro.model.types.TupleType`.
Recursive class references through a *set* constructor are allowed
conceptually but must be broken by the data builder (a materialised value
cannot be infinitely deep); direct (non-collection) recursion is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.model.types import (
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    VariantType,
)

__all__ = ["SortDef", "ClassDef", "Schema"]


@dataclass(frozen=True)
class SortDef:
    """A named reusable type, e.g. ``SORT Address TYPE (street: STRING, ...)``."""

    name: str
    type: Type


@dataclass(frozen=True)
class ClassDef:
    """A class with an explicitly named extension.

    ``attributes`` is the tuple type of the class's attributes; it may
    contain :class:`ClassType` references and sort names (as ClassType too —
    the schema distinguishes them by name).
    """

    name: str
    extension: str
    attributes: TupleType


@dataclass
class Schema:
    """A collection of sorts and classes with resolution utilities."""

    sorts: dict[str, SortDef] = field(default_factory=dict)
    classes: dict[str, ClassDef] = field(default_factory=dict)

    def add_sort(self, name: str, type_: Type) -> SortDef:
        if name in self.sorts or name in self.classes:
            raise SchemaError(f"name {name!r} already defined")
        sort = SortDef(name, type_)
        self.sorts[name] = sort
        return sort

    def add_class(self, name: str, extension: str, attributes: TupleType) -> ClassDef:
        if name in self.classes or name in self.sorts:
            raise SchemaError(f"name {name!r} already defined")
        for other in self.classes.values():
            if other.extension == extension:
                raise SchemaError(f"extension name {extension!r} already used by class {other.name!r}")
        cls = ClassDef(name, extension, attributes)
        self.classes[name] = cls
        return cls

    def class_by_extension(self, extension: str) -> ClassDef:
        for cls in self.classes.values():
            if cls.extension == extension:
                return cls
        raise SchemaError(f"no class has extension {extension!r}")

    def extension_names(self) -> tuple[str, ...]:
        return tuple(cls.extension for cls in self.classes.values())

    def resolve(
        self,
        type_: Type,
        _direct: frozenset[str] = frozenset(),
        _all: frozenset[str] = frozenset(),
    ) -> Type:
        """Replace sort/class references by their structural types.

        Class references nested inside a set or list constructor are resolved
        one level (objects are stored by value, so a set of Employees is a
        set of Employee attribute tuples). Two recursion rules:

        * *direct* recursion — a class whose attribute tuple references
          itself outside any collection — is rejected (no finite value could
          inhabit it);
        * recursion *through a collection* terminates: the inner reference is
          left symbolic (data builders materialise such structures finitely).
        """
        if isinstance(type_, ClassType):
            name = type_.name
            if name in _direct:
                raise SchemaError(f"recursive reference to {name!r} outside a collection constructor")
            if name in _all:
                return type_  # cyclic through a collection: keep symbolic
            if name in self.sorts:
                return self.resolve(self.sorts[name].type, _direct | {name}, _all | {name})
            if name in self.classes:
                return self.resolve(self.classes[name].attributes, _direct | {name}, _all | {name})
            raise SchemaError(f"unknown sort/class {name!r}")
        if isinstance(type_, TupleType):
            return TupleType({k: self.resolve(v, _direct, _all) for k, v in type_.fields.items()})
        if isinstance(type_, SetType):
            # Entering a collection constructor breaks *direct* recursion.
            return SetType(self.resolve(type_.element, frozenset(), _all))
        if isinstance(type_, ListType):
            return ListType(self.resolve(type_.element, frozenset(), _all))
        if isinstance(type_, VariantType):
            return VariantType({k: self.resolve(v, _direct, _all) for k, v in type_.cases.items()})
        return type_

    def extension_row_type(self, extension: str) -> TupleType:
        """The resolved tuple type of one row of the given class extension."""
        cls = self.class_by_extension(extension)
        resolved = self.resolve(cls.attributes)
        assert isinstance(resolved, TupleType)
        return resolved


def company_schema() -> Schema:
    """The paper's running example schema (Section 3.2).

    Classes ``Employee`` (extension ``EMP``) and ``Department`` (extension
    ``DEPT``), plus the ``Address`` sort. ``Department.emps`` is a set of
    Employee objects, materialised by value.
    """
    from repro.model.types import INT, STRING

    schema = Schema()
    schema.add_sort(
        "Address",
        TupleType({"street": STRING, "nr": STRING, "city": STRING}),
    )
    schema.add_class(
        "Employee",
        "EMP",
        TupleType(
            {
                "name": STRING,
                "address": ClassType("Address"),
                "sal": INT,
                "children": SetType(TupleType({"name": STRING, "age": INT})),
            }
        ),
    )
    schema.add_class(
        "Department",
        "DEPT",
        TupleType(
            {
                "name": STRING,
                "address": ClassType("Address"),
                "emps": SetType(ClassType("Employee")),
            }
        ),
    )
    return schema
