"""Rendering types and schemas back to TM DDL syntax.

``parse_type(render_type(t)) == t`` holds for every class-reference-free
type (property-tested); :func:`render_schema` emits full CLASS/SORT
definitions that :func:`repro.model.ddl.parse_schema` accepts.
"""

from __future__ import annotations

from repro.errors import TypeModelError
from repro.model.schema import Schema
from repro.model.types import (
    AnyType,
    BaseType,
    ClassType,
    ListType,
    NullType,
    SetType,
    TupleType,
    Type,
    VariantType,
)

__all__ = ["render_type", "render_schema"]


def render_type(t: Type) -> str:
    """TM DDL syntax for *t* (e.g. ``P(name : STRING, age : INT)``)."""
    if isinstance(t, BaseType):
        return t.name.upper()
    if isinstance(t, TupleType):
        inner = ", ".join(f"{label} : {render_type(ft)}" for label, ft in t.fields.items())
        return f"({inner})"
    if isinstance(t, SetType):
        inner = render_type(t.element)
        return f"P{inner}" if inner.startswith("(") else f"P {inner}"
    if isinstance(t, ListType):
        inner = render_type(t.element)
        return f"L{inner}" if inner.startswith("(") else f"L {inner}"
    if isinstance(t, VariantType):
        inner = " | ".join(f"{tag} : {render_type(ct)}" for tag, ct in t.cases.items())
        return f"V({inner})"
    if isinstance(t, ClassType):
        return t.name
    if isinstance(t, AnyType):
        raise TypeModelError("ANY has no DDL syntax (it only arises from inference)")
    if isinstance(t, NullType):
        raise TypeModelError("NULLTYPE has no DDL syntax (baselines only)")
    raise TypeModelError(f"cannot render type {t!r}")


def render_schema(schema: Schema) -> str:
    """Full TM DDL text for *schema* (classes then sorts)."""
    chunks: list[str] = []
    for cls in schema.classes.values():
        attrs = ",\n    ".join(
            f"{label} : {render_type(ft)}" for label, ft in cls.attributes.fields.items()
        )
        chunks.append(
            f"CLASS {cls.name} WITH EXTENSION {cls.extension}\n"
            f"ATTRIBUTES\n    {attrs}\nEND {cls.name}"
        )
    for sort in schema.sorts.values():
        chunks.append(f"SORT {sort.name}\nTYPE {render_type(sort.type)}\nEND {sort.name}")
    return "\n\n".join(chunks)
