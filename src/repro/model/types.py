"""The TM type system: basic types and the four type constructors.

TM attribute types may be arbitrarily complex: the constructors are the
tuple, variant, set, and list constructor, nested to any depth; besides
basic types, class names may appear in type specifications (Section 3.1 of
the paper). This module provides:

* :class:`BaseType` with the singletons :data:`INT`, :data:`FLOAT`,
  :data:`STRING`, :data:`BOOL`;
* :class:`TupleType`, :class:`SetType`, :class:`ListType`,
  :class:`VariantType`, :class:`ClassType`;
* :data:`ANY` (top, used where inference would otherwise be stuck) and
  :data:`NULL_T` (the type of the relational baselines' NULL pad value);
* structural helpers: :func:`unify`, :func:`is_subtype`,
  :func:`type_of_value`.

Subtyping is structural: a tuple type is a subtype of another if it has at
least the fields of the supertype at subtypes (width + depth subtyping, as in
the FM calculus underlying TM); sets and lists are covariant; INT is a
subtype of FLOAT (numeric promotion).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import TypeModelError
from repro.model.values import Null, Tup, Variant

__all__ = [
    "Type",
    "BaseType",
    "TupleType",
    "SetType",
    "ListType",
    "VariantType",
    "ClassType",
    "AnyType",
    "NullType",
    "INT",
    "FLOAT",
    "STRING",
    "BOOL",
    "ANY",
    "NULL_T",
    "unify",
    "is_subtype",
    "type_of_value",
    "is_numeric",
]


class Type:
    """Abstract base for all types."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class BaseType(Type):
    """A basic type: one of int, float, string, bool."""

    __slots__ = ("name",)
    _VALID = ("int", "float", "string", "bool")

    def __init__(self, name: str):
        if name not in self._VALID:
            raise TypeModelError(f"unknown basic type {name!r}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BaseType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("base", self.name))

    def __repr__(self) -> str:
        return self.name.upper()


INT = BaseType("int")
FLOAT = BaseType("float")
STRING = BaseType("string")
BOOL = BaseType("bool")


class AnyType(Type):
    """Top type: every type is a subtype of ANY.

    Used for the element type of empty set/list literals and wherever the
    checker cannot pin a type down; it unifies with anything.
    """

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyType)

    def __hash__(self) -> int:
        return hash("any")

    def __repr__(self) -> str:
        return "ANY"


ANY = AnyType()


class NullType(Type):
    """The type of :data:`repro.model.values.NULL` (baselines only)."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullType)

    def __hash__(self) -> int:
        return hash("null")

    def __repr__(self) -> str:
        return "NULLTYPE"


NULL_T = NullType()


class TupleType(Type):
    """A labelled record type. ``fields`` maps label → type.

    Label order is preserved for display but irrelevant for equality.
    """

    __slots__ = ("fields",)

    def __init__(self, fields: Mapping[str, Type] | Iterable[tuple[str, Type]]):
        items = list(fields.items()) if isinstance(fields, Mapping) else list(fields)
        seen: dict[str, Type] = {}
        for label, typ in items:
            if not isinstance(label, str) or not label:
                raise TypeModelError(f"tuple type labels must be non-empty strings, got {label!r}")
            if label in seen:
                raise TypeModelError(f"duplicate label {label!r} in tuple type")
            if not isinstance(typ, Type):
                raise TypeModelError(f"field {label!r} is not a Type: {typ!r}")
            seen[label] = typ
        self.fields = seen

    def labels(self) -> tuple[str, ...]:
        return tuple(self.fields)

    def field(self, label: str) -> Type:
        try:
            return self.fields[label]
        except KeyError:
            raise TypeModelError(f"tuple type has no field {label!r}; has {sorted(self.fields)}") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(("tuple", frozenset(self.fields.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.fields.items())
        return f"({inner})"


class SetType(Type):
    """The set constructor ℙ. Sets are duplicate free."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise TypeModelError(f"set element is not a Type: {element!r}")
        self.element = element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("set", self.element))

    def __repr__(self) -> str:
        return f"P{self.element!r}" if isinstance(self.element, TupleType) else f"P({self.element!r})"


class ListType(Type):
    """The list constructor (ordered, duplicates allowed)."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise TypeModelError(f"list element is not a Type: {element!r}")
        self.element = element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ListType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("list", self.element))

    def __repr__(self) -> str:
        return f"L({self.element!r})"


class VariantType(Type):
    """The variant (tagged union) constructor. ``cases`` maps tag → type."""

    __slots__ = ("cases",)

    def __init__(self, cases: Mapping[str, Type] | Iterable[tuple[str, Type]]):
        items = list(cases.items()) if isinstance(cases, Mapping) else list(cases)
        seen: dict[str, Type] = {}
        for tag, typ in items:
            if not isinstance(tag, str) or not tag:
                raise TypeModelError(f"variant tags must be non-empty strings, got {tag!r}")
            if tag in seen:
                raise TypeModelError(f"duplicate tag {tag!r} in variant type")
            if not isinstance(typ, Type):
                raise TypeModelError(f"case {tag!r} is not a Type: {typ!r}")
            seen[tag] = typ
        if not seen:
            raise TypeModelError("variant type needs at least one case")
        self.cases = seen

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VariantType) and self.cases == other.cases

    def __hash__(self) -> int:
        return hash(("variant", frozenset(self.cases.items())))

    def __repr__(self) -> str:
        inner = " | ".join(f"{k}: {v!r}" for k, v in self.cases.items())
        return f"V({inner})"


class ClassType(Type):
    """A reference to a named class (resolved against a schema).

    Objects are represented *by value* in this library: a class-typed value
    is the object's attribute tuple (set-valued attributes are materialised,
    as the paper notes they conceptually are). The schema resolves a
    ClassType to the class's attribute :class:`TupleType`.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeModelError(f"class names must be non-empty strings, got {name!r}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("class", self.name))

    def __repr__(self) -> str:
        return f"Class({self.name})"


def is_numeric(t: Type) -> bool:
    """True for INT and FLOAT."""
    return t == INT or t == FLOAT


def is_subtype(sub: Type, sup: Type) -> bool:
    """Structural subtyping: width/depth on tuples, covariant sets/lists.

    ``ANY`` is the top type; ``NULL_T`` is a subtype of everything (it only
    arises in baseline plans where NULL pads any attribute position);
    ``INT <: FLOAT``.
    """
    if isinstance(sup, AnyType) or isinstance(sub, NullType):
        return True
    if isinstance(sub, AnyType):
        return isinstance(sup, AnyType)
    if sub == sup:
        return True
    if sub == INT and sup == FLOAT:
        return True
    if isinstance(sub, TupleType) and isinstance(sup, TupleType):
        return all(
            label in sub.fields and is_subtype(sub.fields[label], typ)
            for label, typ in sup.fields.items()
        )
    if isinstance(sub, SetType) and isinstance(sup, SetType):
        return is_subtype(sub.element, sup.element)
    if isinstance(sub, ListType) and isinstance(sup, ListType):
        return is_subtype(sub.element, sup.element)
    if isinstance(sub, VariantType) and isinstance(sup, VariantType):
        # Variants are covariant in *fewer* cases: a value of a variant type
        # with cases {a} can be used where {a, b} is expected.
        return all(
            tag in sup.cases and is_subtype(typ, sup.cases[tag])
            for tag, typ in sub.cases.items()
        )
    return False


def unify(a: Type, b: Type) -> Type | None:
    """Least upper bound of two types, or None if they are incompatible.

    Used to type heterogeneous-looking constructs such as set literals and
    the two branches of a comparison. Tuple types unify field-wise on the
    *common* shape only when both have identical label sets (a join of
    records with different labels has no useful LUB for our purposes).
    """
    if isinstance(a, AnyType) or isinstance(b, AnyType):
        # ANY is the top type: the least upper bound of ANY and anything
        # is ANY. (Refinement of unknowns is done by seeding folds with
        # None, not by treating ANY as a bottom — see _element_type.)
        return ANY
    if isinstance(a, NullType):
        return b
    if isinstance(b, NullType):
        return a
    if a == b:
        return a
    if is_numeric(a) and is_numeric(b):
        return FLOAT
    if isinstance(a, SetType) and isinstance(b, SetType):
        elem = unify(a.element, b.element)
        return SetType(elem) if elem is not None else None
    if isinstance(a, ListType) and isinstance(b, ListType):
        elem = unify(a.element, b.element)
        return ListType(elem) if elem is not None else None
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        if set(a.fields) != set(b.fields):
            return None
        fields = {}
        for label in a.fields:
            t = unify(a.fields[label], b.fields[label])
            if t is None:
                return None
            fields[label] = t
        return TupleType(fields)
    if isinstance(a, VariantType) and isinstance(b, VariantType):
        cases = dict(a.cases)
        for tag, typ in b.cases.items():
            if tag in cases:
                t = unify(cases[tag], typ)
                if t is None:
                    return None
                cases[tag] = t
            else:
                cases[tag] = typ
        return VariantType(cases)
    return None


def type_of_value(v: Any) -> Type:
    """Infer the (most specific structural) type of a model value.

    Set/list element types are the unification of member types; empty
    collections get ``ANY`` elements.
    """
    if isinstance(v, Null):
        return NULL_T
    if isinstance(v, bool):
        return BOOL
    if isinstance(v, int):
        return INT
    if isinstance(v, float):
        return FLOAT
    if isinstance(v, str):
        return STRING
    if isinstance(v, Tup):
        return TupleType({label: type_of_value(val) for label, val in v.items()})
    if isinstance(v, Variant):
        return VariantType({v.tag: type_of_value(v.value)})
    if isinstance(v, frozenset):
        return SetType(_element_type(v))
    if isinstance(v, tuple):
        return ListType(_element_type(v))
    raise TypeModelError(f"not a model value: {type(v).__name__}")


def _element_type(members) -> Type:
    elem: Type | None = None
    for m in members:
        t = type_of_value(m)
        u = t if elem is None else unify(elem, t)
        if u is None:
            return ANY  # heterogeneous collection: fall back to top
        elem = u
    return ANY if elem is None else elem
