"""Value/type conformance checking.

:func:`conforms` and :func:`check` verify that a model value inhabits a
(resolved) type. Used by the catalog when tables are loaded and by tests to
keep generators honest.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ValidationError
from repro.model.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    BaseType,
    ClassType,
    ListType,
    NullType,
    SetType,
    TupleType,
    Type,
    VariantType,
)
from repro.model.values import Null, Tup, Variant

__all__ = ["conforms", "check"]


def conforms(value: Any, type_: Type) -> bool:
    """True iff *value* inhabits *type_* (which must be resolved: no class refs)."""
    try:
        check(value, type_)
    except ValidationError:
        return False
    return True


def check(value: Any, type_: Type, path: str = "$") -> None:
    """Raise :class:`ValidationError` (with a path) if *value* does not inhabit *type_*."""
    if isinstance(type_, AnyType):
        return
    if isinstance(type_, NullType):
        if not isinstance(value, Null):
            raise ValidationError(f"{path}: expected NULL, got {type(value).__name__}")
        return
    if isinstance(type_, ClassType):
        raise ValidationError(
            f"{path}: unresolved class reference {type_.name!r}; resolve the schema first"
        )
    if isinstance(type_, BaseType):
        _check_base(value, type_, path)
        return
    if isinstance(type_, TupleType):
        if not isinstance(value, Tup):
            raise ValidationError(f"{path}: expected tuple, got {type(value).__name__}")
        missing = set(type_.fields) - set(value.labels())
        extra = set(value.labels()) - set(type_.fields)
        if missing:
            raise ValidationError(f"{path}: missing fields {sorted(missing)}")
        if extra:
            raise ValidationError(f"{path}: unexpected fields {sorted(extra)}")
        for label, field_type in type_.fields.items():
            check(value[label], field_type, f"{path}.{label}")
        return
    if isinstance(type_, SetType):
        if not isinstance(value, frozenset):
            raise ValidationError(f"{path}: expected set, got {type(value).__name__}")
        for i, member in enumerate(value):
            check(member, type_.element, f"{path}{{{i}}}")
        return
    if isinstance(type_, ListType):
        if not isinstance(value, tuple):
            raise ValidationError(f"{path}: expected list, got {type(value).__name__}")
        for i, member in enumerate(value):
            check(member, type_.element, f"{path}[{i}]")
        return
    if isinstance(type_, VariantType):
        if not isinstance(value, Variant):
            raise ValidationError(f"{path}: expected variant, got {type(value).__name__}")
        if value.tag not in type_.cases:
            raise ValidationError(f"{path}: unknown variant tag {value.tag!r}")
        check(value.value, type_.cases[value.tag], f"{path}<{value.tag}>")
        return
    raise ValidationError(f"{path}: unknown type {type_!r}")


def _check_base(value: Any, type_: BaseType, path: str) -> None:
    if type_ == BOOL:
        ok = isinstance(value, bool)
    elif type_ == INT:
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif type_ == FLOAT:
        # INT <: FLOAT — integers inhabit FLOAT as well.
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif type_ == STRING:
        ok = isinstance(value, str)
    else:  # pragma: no cover - BaseType constructor forbids other names
        ok = False
    if not ok:
        raise ValidationError(f"{path}: expected {type_!r}, got {type(value).__name__} {value!r}")
