"""A total order over all model values.

The sort-merge join implementations and the deterministic printing of set
values need a total order over *heterogeneous* complex-object values. Python
provides none (``1 < "a"`` raises), so we define one:

1. values are ranked by kind:
   ``NULL < number (bool/int/float) < str < list < tuple < variant < set``;
2. within a kind, comparison is the natural one, extended recursively
   (booleans rank with the numbers, False=0 and True=1, because Python —
   and hence our frozensets and Tups — identifies them):

   * numbers compare numerically (``int`` and ``float`` mix);
   * lists compare lexicographically;
   * tuples compare by sorted label sequence, then by the values in that
     label order;
   * variants compare by tag, then payload;
   * sets compare as sorted member sequences (lexicographically).

NULL sorts first so that outer-join pads group together at the front.
"""

from __future__ import annotations

import functools
from typing import Any

from repro.errors import ValueModelError
from repro.model.values import Null, Tup, Variant

__all__ = ["compare", "sort_key", "value_min", "value_max"]

_RANK_NULL = 0
_RANK_NUMBER = 2
_RANK_STRING = 3
_RANK_LIST = 4
_RANK_TUPLE = 5
_RANK_VARIANT = 6
_RANK_SET = 7


def _rank(v: Any) -> int:
    if isinstance(v, Null):
        return _RANK_NULL
    if isinstance(v, (bool, int, float)):
        # Booleans rank *with* numbers (False=0, True=1): Python equality
        # identifies True with 1 (so frozensets and Tups do too), and the
        # total order must be consistent with equality.
        return _RANK_NUMBER
    if isinstance(v, str):
        return _RANK_STRING
    if isinstance(v, tuple):
        return _RANK_LIST
    if isinstance(v, Tup):
        return _RANK_TUPLE
    if isinstance(v, Variant):
        return _RANK_VARIANT
    if isinstance(v, frozenset):
        return _RANK_SET
    raise ValueModelError(f"not a model value: {type(v).__name__}")


def compare(a: Any, b: Any) -> int:
    """Three-way comparison: negative if a < b, zero if equal, positive if a > b."""
    ra, rb = _rank(a), _rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == _RANK_NULL:
        return 0
    if ra == _RANK_NUMBER:
        return (a > b) - (a < b)
    if ra == _RANK_STRING:
        return (a > b) - (a < b)
    if ra == _RANK_LIST:
        return _compare_sequences(a, b)
    if ra == _RANK_TUPLE:
        la, lb = sorted(a.labels()), sorted(b.labels())
        if la != lb:
            return -1 if la < lb else 1
        for label in la:
            c = compare(a[label], b[label])
            if c:
                return c
        return 0
    if ra == _RANK_VARIANT:
        if a.tag != b.tag:
            return -1 if a.tag < b.tag else 1
        return compare(a.value, b.value)
    # sets: compare sorted member sequences
    return _compare_sequences(sorted(a, key=sort_key), sorted(b, key=sort_key))


def _compare_sequences(xs, ys) -> int:
    for x, y in zip(xs, ys):
        c = compare(x, y)
        if c:
            return c
    return (len(xs) > len(ys)) - (len(xs) < len(ys))


#: A ``key=`` function for :func:`sorted` implementing the total order.
sort_key = functools.cmp_to_key(compare)


def value_min(values, default: Any = None) -> Any:
    """Minimum under the total order; *default* if the iterable is empty."""
    values = list(values)
    if not values:
        return default
    return min(values, key=sort_key)


def value_max(values, default: Any = None) -> Any:
    """Maximum under the total order; *default* if the iterable is empty."""
    values = list(values)
    if not values:
        return default
    return max(values, key=sort_key)
