"""Parser for TM schema definitions — the paper's DDL (Section 3.2).

Accepts the paper's syntax verbatim::

    CLASS Employee WITH EXTENSION EMP
    ATTRIBUTES
        name : STRING,
        address : Address,
        sal : INT,
        children : P(name : STRING, age : INT)
    END Employee

    SORT Address
    TYPE (street : STRING, nr : STRING, city : STRING)
    END Address

Type syntax:

* basic types       — ``STRING``, ``INT``, ``FLOAT``, ``BOOL``;
* tuple             — ``(label : type, ...)``;
* set               — ``P type``  (the paper's ℙ);
* list              — ``L type``;
* variant           — ``V(tag : type | tag : type)``;
* sort/class names  — bare identifiers, resolved against the schema.

The token stream comes from the query-language lexer; DDL keywords are
matched textually (case-insensitive) so they stay usable as attribute
names in queries.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.model.schema import Schema
from repro.model.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    VariantType,
)

__all__ = ["parse_schema", "parse_type"]

_BASIC = {"string": STRING, "int": INT, "float": FLOAT, "bool": BOOL}
_KEYWORDS = {"class", "with", "extension", "attributes", "end", "sort", "type"}


class _DdlParser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message}, found {tok.text!r}", tok.position, tok.line, tok.column)

    def at_word(self, word: str) -> bool:
        tok = self.peek()
        # Query-language keywords arrive as KEYWORD, others as IDENT.
        return tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD) and tok.text.lower() == word

    def expect_word(self, word: str) -> None:
        if not self.at_word(word):
            raise self.error(f"expected {word.upper()}")
        self.advance()

    def expect_name(self) -> str:
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise self.error("expected a name")
        if tok.text.lower() in _KEYWORDS:
            raise self.error(f"{tok.text!r} is a DDL keyword")
        self.advance()
        return tok.text

    def expect_symbol(self, sym: str) -> None:
        if not self.peek().is_symbol(sym):
            raise self.error(f"expected {sym!r}")
        self.advance()

    def accept_symbol(self, sym: str) -> bool:
        if self.peek().is_symbol(sym):
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------
    def parse_schema(self) -> Schema:
        schema = Schema()
        while self.peek().kind != TokenKind.EOF:
            if self.at_word("class"):
                self.parse_class(schema)
            elif self.at_word("sort"):
                self.parse_sort(schema)
            else:
                raise self.error("expected CLASS or SORT")
        return schema

    def parse_class(self, schema: Schema) -> None:
        self.expect_word("class")
        name = self.expect_name()
        self.expect_word("with")
        self.expect_word("extension")
        extension = self.expect_name()
        self.expect_word("attributes")
        fields: list[tuple[str, Type]] = []
        while True:
            label = self.expect_name()
            self.expect_symbol(":")
            fields.append((label, self.parse_type()))
            if not self.accept_symbol(","):
                break
        self.expect_word("end")
        closing = self.expect_name()
        if closing != name:
            raise self.error(f"END {closing} does not close CLASS {name}")
        schema.add_class(name, extension, TupleType(fields))

    def parse_sort(self, schema: Schema) -> None:
        self.expect_word("sort")
        name = self.expect_name()
        self.expect_word("type")
        type_ = self.parse_type()
        self.expect_word("end")
        closing = self.expect_name()
        if closing != name:
            raise self.error(f"END {closing} does not close SORT {name}")
        schema.add_sort(name, type_)

    def parse_type(self) -> Type:
        tok = self.peek()
        if tok.kind == TokenKind.IDENT and tok.text == "P":
            self.advance()
            return SetType(self.parse_type())
        if tok.kind == TokenKind.IDENT and tok.text == "L":
            self.advance()
            return ListType(self.parse_type())
        if tok.kind == TokenKind.IDENT and tok.text == "V":
            self.advance()
            return self.parse_variant_type()
        if tok.is_symbol("("):
            return self.parse_tuple_type()
        if tok.kind == TokenKind.IDENT or tok.kind == TokenKind.KEYWORD:
            lowered = tok.text.lower()
            if lowered in _BASIC:
                self.advance()
                return _BASIC[lowered]
            if tok.kind == TokenKind.IDENT and lowered not in _KEYWORDS:
                self.advance()
                return ClassType(tok.text)
        raise self.error("expected a type")

    def parse_tuple_type(self) -> TupleType:
        self.expect_symbol("(")
        fields: list[tuple[str, Type]] = []
        while True:
            label = self.expect_name()
            self.expect_symbol(":")
            fields.append((label, self.parse_type()))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return TupleType(fields)

    def parse_variant_type(self) -> VariantType:
        self.expect_symbol("(")
        cases: list[tuple[str, Type]] = []
        while True:
            tag = self.expect_name()
            self.expect_symbol(":")
            cases.append((tag, self.parse_type()))
            if self.accept_symbol("|") or self.accept_symbol(","):
                continue
            break
        self.expect_symbol(")")
        return VariantType(cases)


def parse_schema(text: str) -> Schema:
    """Parse TM DDL text into a :class:`~repro.model.schema.Schema`."""
    parser = _DdlParser(tokenize(text))
    return parser.parse_schema()


def parse_type(text: str) -> Type:
    """Parse a single TM type expression."""
    parser = _DdlParser(tokenize(text))
    type_ = parser.parse_type()
    if parser.peek().kind != TokenKind.EOF:
        raise parser.error("unexpected trailing input")
    return type_
