"""The TM value model: immutable complex-object values.

TM values are built from four constructors over basic values (booleans,
integers, floats, strings):

* **tuples** — labelled records, represented by :class:`Tup`;
* **sets** — duplicate-free collections, represented by ``frozenset``;
* **lists** — ordered collections, represented by Python ``tuple``;
* **variants** — tagged values, represented by :class:`Variant`.

Everything is immutable and hashable, which is what makes *sets of tuples
with set-valued attributes* — the shape at the heart of the paper — well
defined: a ``frozenset`` of :class:`Tup` whose fields may themselves hold
``frozenset`` values.

The relational baselines (Kim's algorithm, the Ganski–Wong outerjoin fix)
additionally need a NULL marker for padding dangling tuples; :data:`NULL` is
that marker. The TM side of the library never produces NULLs — as the paper
stresses, in a complex object model the empty set represents "no matches"
directly.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ValueModelError

__all__ = ["Tup", "Variant", "Null", "NULL", "make_value", "is_value", "value_repr"]


class Null:
    """Singleton NULL marker used only by the relational baselines.

    Unlike SQL's three-valued logic, ``NULL == NULL`` holds here: the
    baselines only need NULL as a *pad value* for dangling tuples, and the
    simpler semantics keeps the demonstrations (COUNT bug and its fixes)
    easy to follow.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.model.NULL")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __reduce__(self):
        return (Null, ())


NULL = Null()


class Tup:
    """An immutable labelled tuple (record) value.

    Fields are label → value; equality and hashing are independent of field
    order, matching TM's tuple type semantics. Values must already be
    immutable model values (see :func:`make_value` for coercion from plain
    Python data).

    >>> t = Tup(a=1, b=frozenset({2, 3}))
    >>> t["a"]
    1
    >>> t.b == frozenset({2, 3})
    True
    >>> Tup(a=1, b=2) == Tup(b=2, a=1)
    True
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, _fields: Mapping[str, Any] | None = None, **kwargs: Any):
        fields: dict[str, Any] = {}
        if _fields is not None:
            fields.update(_fields)
        for label, value in kwargs.items():
            if label in fields:
                raise ValueModelError(f"duplicate tuple label {label!r}")
            fields[label] = value
        for label, value in fields.items():
            if not isinstance(label, str) or not label:
                raise ValueModelError(f"tuple labels must be non-empty strings, got {label!r}")
            if not is_value(value):
                raise ValueModelError(
                    f"field {label!r} holds a non-model value of type {type(value).__name__}; "
                    "use make_value() to coerce plain Python data"
                )
        object.__setattr__(self, "_fields", fields)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def _from_validated(cls, fields: dict) -> "Tup":
        """Construct from labels/values that are already known to be valid.

        The internal fast path for the engine's hot loops (scans, join
        tuple concatenation, projections): every field either comes from an
        existing ``Tup`` or was checked by the caller, so re-running the
        per-field label/value validation of ``__init__`` would only burn
        time. Takes ownership of *fields* — callers must pass a fresh dict.
        """
        t = object.__new__(cls)
        object.__setattr__(t, "_fields", fields)
        object.__setattr__(t, "_hash", None)
        return t

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, label: str) -> Any:
        try:
            return self._fields[label]
        except KeyError:
            raise KeyError(f"tuple has no attribute {label!r}; has {sorted(self._fields)}") from None

    def __getattr__(self, label: str) -> Any:
        # __getattr__ is only called when normal lookup fails, so _fields
        # and methods are never shadowed.
        try:
            return self._fields[label]
        except KeyError:
            raise AttributeError(f"tuple has no attribute {label!r}; has {sorted(self._fields)}") from None

    def __setattr__(self, label: str, value: Any) -> None:
        raise ValueModelError("Tup is immutable")

    def __contains__(self, label: str) -> bool:
        return label in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def labels(self) -> tuple[str, ...]:
        """Field labels in insertion order."""
        return tuple(self._fields)

    def values(self) -> tuple[Any, ...]:
        """Field values in insertion order."""
        return tuple(self._fields.values())

    def items(self) -> tuple[tuple[str, Any], ...]:
        """(label, value) pairs in insertion order."""
        return tuple(self._fields.items())

    def get(self, label: str, default: Any = None) -> Any:
        return self._fields.get(label, default)

    def as_dict(self) -> dict[str, Any]:
        """A fresh plain dict copy of the fields."""
        return dict(self._fields)

    def as_env(self) -> dict[str, Any]:
        """The internal field dict, for read-only use as an environment.

        Hot paths (compiled predicate evaluation) use this to avoid a copy
        per tuple; callers must not mutate the returned dict.
        """
        return self._fields

    # -- functional updates -----------------------------------------------
    def extend(self, **kwargs: Any) -> "Tup":
        """Concatenation ``x ++ (a = v, ...)`` from the paper.

        Raises :class:`ValueModelError` if a new label collides with an
        existing one (the paper requires the nest-join label to be fresh).
        Only the *new* fields are validated; existing fields were already
        checked when this tuple was built.
        """
        fields = self._fields
        for label, value in kwargs.items():
            if label in fields:
                raise ValueModelError(f"label {label!r} already present; concatenation requires fresh labels")
            if not is_value(value):
                raise ValueModelError(
                    f"field {label!r} holds a non-model value of type {type(value).__name__}; "
                    "use make_value() to coerce plain Python data"
                )
        return Tup._from_validated({**fields, **kwargs})

    def concat(self, other: "Tup") -> "Tup":
        """Tuple concatenation ``self ++ other`` with disjoint labels.

        Both operands are already-validated tuples, so this only checks
        label disjointness — the hot path of every join's tuple merge.
        """
        sf = self._fields
        of = other._fields
        merged = {**sf, **of}
        if len(merged) != len(sf) + len(of):
            clash = sorted(set(sf) & set(of))
            raise ValueModelError(
                f"label {clash[0]!r} already present; concatenation requires fresh labels"
            )
        return Tup._from_validated(merged)

    def project(self, labels: Iterable[str]) -> "Tup":
        """Keep only the given labels (in the given order)."""
        return Tup._from_validated({label: self[label] for label in labels})

    def drop(self, *labels: str) -> "Tup":
        """Remove the given labels."""
        dropped = set(labels)
        return Tup._from_validated(
            {k: v for k, v in self._fields.items() if k not in dropped}
        )

    def replace(self, **kwargs: Any) -> "Tup":
        """Return a copy with existing fields replaced."""
        for label, value in kwargs.items():
            if label not in self._fields:
                raise ValueModelError(f"cannot replace missing label {label!r}")
            if not is_value(value):
                raise ValueModelError(
                    f"field {label!r} holds a non-model value of type {type(value).__name__}; "
                    "use make_value() to coerce plain Python data"
                )
        merged = dict(self._fields)
        merged.update(kwargs)
        return Tup._from_validated(merged)

    # -- equality / hashing -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tup):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._fields.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={value_repr(v)}" for k, v in self._fields.items())
        return f"({inner})"

    def __reduce__(self):
        # Default pickling is unusable here: the slot-state restore path
        # goes through the raising __setattr__, and __getattr__ recurses
        # while _fields is still unset. Rebuild through the validated
        # fast path instead (fields came out of a valid tuple).
        return (_unpickle_tup, (dict(self._fields),))


def _unpickle_tup(fields: dict) -> "Tup":
    return Tup._from_validated(fields)


class Variant:
    """A tagged (variant/union) value: ``tag`` selects a case, ``value`` is its payload."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: str, value: Any):
        if not isinstance(tag, str) or not tag:
            raise ValueModelError(f"variant tags must be non-empty strings, got {tag!r}")
        if not is_value(value):
            raise ValueModelError(f"variant payload is a non-model value of type {type(value).__name__}")
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "value", value)

    def __setattr__(self, label: str, value: Any) -> None:
        raise ValueModelError("Variant is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variant):
            return NotImplemented
        return self.tag == other.tag and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.tag, self.value))

    def __repr__(self) -> str:
        return f"<{self.tag}: {value_repr(self.value)}>"

    def __reduce__(self):
        # Same story as Tup: the immutable __setattr__ breaks the default
        # slot-state restore, so rebuild through the constructor.
        return (Variant, (self.tag, self.value))


_BASIC_TYPES = (bool, int, float, str)


def is_value(v: Any) -> bool:
    """True iff *v* is a well-formed model value.

    Checks only the outermost layer for collections built from model values;
    constructors (:class:`Tup`, :func:`make_value`) guarantee the invariant
    holds recursively.
    """
    return isinstance(v, (Tup, Variant, Null, frozenset, tuple) + _BASIC_TYPES)


def make_value(v: Any) -> Any:
    """Coerce plain Python data into the model's immutable representation.

    * ``dict`` → :class:`Tup`
    * ``set`` / ``frozenset`` → ``frozenset`` (members coerced)
    * ``list`` / ``tuple`` → ``tuple`` (members coerced)
    * basic values and already-coerced values pass through.

    >>> make_value({"a": [1, 2], "b": {3}})
    (a=[1, 2], b={3})
    """
    if isinstance(v, (Tup, Variant, Null)):
        return v
    if isinstance(v, _BASIC_TYPES):
        return v
    if isinstance(v, dict):
        return Tup({k: make_value(x) for k, x in v.items()})
    if isinstance(v, (set, frozenset)):
        return frozenset(make_value(x) for x in v)
    if isinstance(v, (list, tuple)):
        return tuple(make_value(x) for x in v)
    raise ValueModelError(f"cannot represent {type(v).__name__} as a model value")


def value_repr(v: Any) -> str:
    """A compact, deterministic rendering of a model value.

    Set members are printed in total order (see :mod:`repro.model.compare`)
    so reprs are stable across runs — useful for golden tests and the
    benchmark harness.
    """
    # Imported here to avoid a circular import at module load time.
    from repro.model.compare import sort_key

    if isinstance(v, frozenset):
        members = sorted(v, key=sort_key)
        return "{" + ", ".join(value_repr(m) for m in members) + "}"
    if isinstance(v, tuple):
        return "[" + ", ".join(value_repr(m) for m in v) + "]"
    if isinstance(v, (Tup, Variant, Null)):
        return repr(v)
    if isinstance(v, str):
        return repr(v)
    return repr(v)
