"""JSON import/export for model values and catalogs.

JSON has no sets, tuples-with-labels beyond objects, or variants, so the
encoding uses small tagged wrappers:

* set      → ``{"$set": [...]}``
* list     → plain JSON array
* tuple    → plain JSON object (keys = labels; keys starting with ``$``
  are reserved for the wrappers)
* variant  → ``{"$variant": "tag", "value": ...}``
* NULL     → JSON ``null``
* numbers, strings, booleans → themselves

A catalog file is ``{"tables": {"NAME": [row, ...], ...}}``; rows must be
tuples. :func:`load_catalog` / :func:`dump_catalog` round-trip losslessly
(:mod:`tests.test_io` proves it property-style).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.engine.table import Catalog, Table
from repro.errors import ValueModelError
from repro.model.compare import sort_key
from repro.model.values import NULL, Null, Tup, Variant

__all__ = [
    "value_to_json",
    "value_from_json",
    "dump_catalog",
    "load_catalog",
    "dumps_catalog",
    "loads_catalog",
]

_RESERVED = ("$set", "$variant")


def value_to_json(value: Any) -> Any:
    """Encode a model value as JSON-serialisable data."""
    if isinstance(value, Null):
        return None
    if isinstance(value, bool) or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, frozenset):
        members = sorted(value, key=sort_key)  # deterministic files
        return {"$set": [value_to_json(m) for m in members]}
    if isinstance(value, tuple):
        return [value_to_json(m) for m in value]
    if isinstance(value, Tup):
        for label in value.labels():
            if label.startswith("$"):
                raise ValueModelError(f"tuple label {label!r} collides with JSON wrappers")
        return {label: value_to_json(v) for label, v in value.items()}
    if isinstance(value, Variant):
        return {"$variant": value.tag, "value": value_to_json(value.value)}
    raise ValueModelError(f"cannot encode {type(value).__name__} as JSON")


def value_from_json(data: Any) -> Any:
    """Decode JSON data produced by :func:`value_to_json`."""
    if data is None:
        return NULL
    if isinstance(data, bool) or isinstance(data, (int, float, str)):
        return data
    if isinstance(data, list):
        return tuple(value_from_json(m) for m in data)
    if isinstance(data, dict):
        if "$set" in data:
            if set(data) != {"$set"}:
                raise ValueModelError(f"malformed $set wrapper: extra keys {sorted(set(data) - {'$set'})}")
            return frozenset(value_from_json(m) for m in data["$set"])
        if "$variant" in data:
            if set(data) != {"$variant", "value"}:
                raise ValueModelError("malformed $variant wrapper: expected keys $variant and value")
            return Variant(data["$variant"], value_from_json(data["value"]))
        return Tup({k: value_from_json(v) for k, v in data.items()})
    raise ValueModelError(f"cannot decode JSON value of type {type(data).__name__}")


def dumps_catalog(catalog: Catalog, indent: int | None = 2) -> str:
    """Serialise a catalog to a JSON string."""
    payload = {
        "tables": {
            name: [value_to_json(row) for row in table.rows]
            for name, table in catalog.items()
        }
    }
    return json.dumps(payload, indent=indent, ensure_ascii=False)


def loads_catalog(text: str, validate: bool = False, schema=None) -> Catalog:
    """Parse a catalog from a JSON string.

    With a :class:`~repro.model.schema.Schema`, every table named like one
    of the schema's class extensions is validated against its declared row
    type on load (the catalog enforces this).
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or "tables" not in payload:
        raise ValueModelError('catalog JSON must be an object with a "tables" key')
    catalog = Catalog(schema)
    for name, rows in payload["tables"].items():
        decoded = []
        for i, row in enumerate(rows):
            value = value_from_json(row)
            if not isinstance(value, Tup):
                raise ValueModelError(f"table {name!r} row {i} is not a tuple")
            decoded.append(value)
        catalog.add(Table(name, decoded, validate=validate))
    return catalog


def dump_catalog(catalog: Catalog, path: str | Path, indent: int | None = 2) -> None:
    """Write a catalog to a JSON file."""
    Path(path).write_text(dumps_catalog(catalog, indent), encoding="utf-8")


def load_catalog(path: str | Path, validate: bool = False, schema=None) -> Catalog:
    """Read a catalog from a JSON file (optionally schema-validated)."""
    return loads_catalog(Path(path).read_text(encoding="utf-8"), validate, schema)
