"""Muralikrishna's improved fix [9]: outerjoin with an antijoin predicate.

Repairs Kim's variant (1), which is sometimes cheaper than variant (2):
keep the grouped inner table T, but join R with T by **outerjoin**, and
apply two predicates —

* the regular predicate ``R.b = T.cnt`` to matched tuples, and
* the *antijoin predicate* ``R.b = 0`` to the unmatched (NULL-padded) ones.
"""

from __future__ import annotations

from repro.algebra.plan import Map, OuterJoin, Plan, Scan, Select
from repro.baselines.kim import grouped_inner_table
from repro.core.unnest import RESULT_VAR
from repro.lang.ast import And, Attr, Cmp, CmpOp, Const, Not, Or, Var
from repro.model.values import NULL

__all__ = ["mural_plan"]


def mural_plan(
    left: str = "R",
    right: str = "S",
    agg_attr: str = "b",
    corr_left: str = "c",
    corr_right: str = "c",
) -> Plan:
    """OuterJoin(R, T) with matched/antijoin predicate split."""
    t = grouped_inner_table(right, corr_right)
    join_pred = Cmp(CmpOp.EQ, Attr(Var("r"), corr_left), Var("ck"))
    joined = OuterJoin(Scan(left, "r"), t, join_pred)
    is_dangling = Cmp(CmpOp.EQ, Var("ck"), Const(NULL))
    matched_case = And((Not(is_dangling), Cmp(CmpOp.EQ, Attr(Var("r"), agg_attr), Var("cnt"))))
    antijoin_case = And((is_dangling, Cmp(CmpOp.EQ, Attr(Var("r"), agg_attr), Const(0))))
    selected = Select(joined, Or((matched_case, antijoin_case)))
    return Map(selected, Var("r"), RESULT_VAR)
