"""The Ganski–Wong outerjoin fix [5] for the COUNT bug.

Kim's variant (2) is repaired by replacing the join with a **left
outerjoin**: dangling R-tuples survive, padded with NULL, and the modified
nest ν* (NULL-only group ↦ ∅, Section 6 of the paper) makes COUNT yield 0
for them — so ``R.b = 0`` dangling tuples are kept.

This is the relational ancestor of the paper's nest join: the paper's
observation is that in a complex object model the NULL detour is
unnecessary because the empty set is part of the model.
"""

from __future__ import annotations

from repro.algebra.plan import Map, Nest, OuterJoin, Plan, Scan, Select
from repro.core.unnest import RESULT_VAR
from repro.lang.ast import Agg, AggFunc, Attr, Cmp, CmpOp, Var

__all__ = ["ganski_wong_plan"]


def ganski_wong_plan(
    left: str = "R",
    right: str = "S",
    agg_attr: str = "b",
    corr_left: str = "c",
    corr_right: str = "c",
) -> Plan:
    """Outerjoin + ν* + HAVING — the corrected variant (2)."""
    pred = Cmp(CmpOp.EQ, Attr(Var("r"), corr_left), Attr(Var("s"), corr_right))
    joined = OuterJoin(Scan(left, "r"), Scan(right, "s"), pred)
    grouped = Nest(joined, by=("r",), nest="s", label="grp", null_to_empty=True)
    having = Select(
        grouped,
        Cmp(CmpOp.EQ, Attr(Var("r"), agg_attr), Agg(AggFunc.COUNT, Var("grp"))),
    )
    return Map(having, Var("r"), RESULT_VAR)
