"""The generalized COUNT bug: Kim-style flattening of ``x.a ⊆ z``.

Section 4 of the paper transforms

.. code-block:: none

    SELECT x FROM X x
    WHERE x.a ⊆ (SELECT y.a FROM Y y WHERE x.b = y.b)

"following the ideas of [7]" into a grouped inner table joined with X::

    T = SELECT (b = y.b, as = SELECT y'.a FROM Y y' WHERE y'.b = y.b) FROM Y y
    SELECT x FROM X x, T t WHERE x.b = t.b AND x.a ⊆ t.as

and observes that the result "also suffers from a bug (which we might call
the **SUBSETEQ bug**)": X-tuples with ``x.a = ∅`` that match no T-tuple on
``x.b = t.b`` are lost. This module builds that faithful (buggy) plan; the
correct alternative is the nest-join translation produced by
:mod:`repro.core.unnest`.
"""

from __future__ import annotations

from repro.algebra.plan import Extend, Join, Map, Nest, Plan, Scan
from repro.core.unnest import RESULT_VAR
from repro.lang.ast import Attr, Cmp, CmpOp, Var, make_and

__all__ = ["kim_style_subseteq_plan"]


def kim_style_subseteq_plan(
    left: str = "X",
    right: str = "Y",
    set_attr: str = "a",
    inner_attr: str = "a",
    corr_left: str = "b",
    corr_right: str = "b",
) -> Plan:
    """The buggy Section 4 transformation (grouping before a regular join)."""
    keyed = Extend(
        Extend(Scan(right, "y"), Attr(Var("y"), corr_right), "bk"),
        Attr(Var("y"), inner_attr),
        "ak",
    )
    t = Nest(keyed, by=("bk",), nest="ak", label="vs")
    pred = make_and(
        [
            Cmp(CmpOp.EQ, Attr(Var("x"), corr_left), Var("bk")),
            Cmp(CmpOp.SUBSETEQ, Attr(Var("x"), set_attr), Var("vs")),
        ]
    )
    joined = Join(Scan(left, "x"), t, pred)
    return Map(joined, Var("x"), RESULT_VAR)
