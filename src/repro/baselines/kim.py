"""Kim's unnesting algorithm [7], as reviewed in Section 2 of the paper.

Two transformations are implemented for the aggregate (type-JA) query

.. code-block:: sql

    SELECT * FROM R
    WHERE R.b = COUNT(SELECT * FROM S WHERE R.c = S.c)

exactly as the paper presents them:

* **Variant (1)** — group the inner relation first, then join::

      T(c, cnt) = SELECT S.c, COUNT(*) FROM S GROUP BY S.c
      SELECT R.* FROM R, T WHERE R.b = T.cnt AND R.c = T.c

* **Variant (2)** — join first, then group (requires duplicate-free R)::

      SELECT R.* FROM R, S WHERE R.c = S.c
      GROUP BY R.* HAVING R.b = COUNT(S.c)

Both exhibit the **COUNT bug**: dangling R-tuples (no matching S-tuple)
with ``R.b = 0`` belong to the answer of the nested query but are lost by
the join. The type-N/J transformation (IN-subqueries without aggregates)
is also provided; it is correct (modulo duplicates), which is why the paper
calls flattening *desirable* — the bug is specific to grouping.

These baselines build plans in the repro algebra so they run on the same
engines as everything else.
"""

from __future__ import annotations

from repro.algebra.plan import (
    Distinct,
    Extend,
    Join,
    Map,
    Nest,
    Plan,
    Scan,
    Select,
)
from repro.core.unnest import RESULT_VAR
from repro.lang.ast import Agg, AggFunc, Attr, Cmp, CmpOp, Var, make_and

__all__ = ["kim_type_nj_plan", "kim_ja_group_first_plan", "kim_ja_join_first_plan", "grouped_inner_table"]


def _attr(var: str, label: str) -> Attr:
    return Attr(Var(var), label)


def kim_type_nj_plan(
    left: str = "R",
    right: str = "S",
    in_left_attr: str = "b",
    in_right_attr: str = "d",
    corr_left: str = "c",
    corr_right: str = "c",
) -> Plan:
    """Type-N/J: ``R.b IN (SELECT S.d FROM S WHERE R.c = S.c)`` → join.

    Correct up to duplicates; ``Distinct`` restores set semantics.
    """
    pred = make_and(
        [
            Cmp(CmpOp.EQ, _attr("r", in_left_attr), _attr("s", in_right_attr)),
            Cmp(CmpOp.EQ, _attr("r", corr_left), _attr("s", corr_right)),
        ]
    )
    joined = Join(Scan(left, "r"), Scan(right, "s"), pred)
    return Distinct(Map(joined, Var("r"), RESULT_VAR))


def grouped_inner_table(
    right: str = "S", corr_right: str = "c", group_label: str = "grp"
) -> Plan:
    """Kim's T table: the inner relation grouped by the correlation attribute.

    Produces bindings ``(ck, cnt)``: the correlation value and the group
    count — the first query of variant (1). Note what is *absent*:
    correlation values that do not occur in S. That absence is the COUNT
    bug's root cause.
    """
    keyed = Extend(Scan(right, "s"), _attr("s", corr_right), "ck")
    nested = Nest(keyed, by=("ck",), nest="s", label=group_label)
    return Extend(nested, Agg(AggFunc.COUNT, Var(group_label)), "cnt")


def kim_ja_group_first_plan(
    left: str = "R",
    right: str = "S",
    agg_attr: str = "b",
    corr_left: str = "c",
    corr_right: str = "c",
) -> Plan:
    """Variant (1): group S, then join R with the grouped table T.

    **Intentionally buggy** (faithful to [7]): dangling R-tuples with
    ``R.b = 0`` are lost because their correlation value has no T row.
    """
    t = grouped_inner_table(right, corr_right)
    pred = make_and(
        [
            Cmp(CmpOp.EQ, _attr("r", corr_left), Var("ck")),
            Cmp(CmpOp.EQ, _attr("r", agg_attr), Var("cnt")),
        ]
    )
    joined = Join(Scan(left, "r"), t, pred)
    return Distinct(Map(joined, Var("r"), RESULT_VAR))


def kim_ja_join_first_plan(
    left: str = "R",
    right: str = "S",
    agg_attr: str = "b",
    corr_left: str = "c",
    corr_right: str = "c",
) -> Plan:
    """Variant (2): join R and S first, then group by R and apply HAVING.

    **Intentionally buggy** (faithful to [7]): dangling R-tuples never
    reach the grouping step. Requires duplicate-free R (as the paper notes).
    """
    pred = Cmp(CmpOp.EQ, _attr("r", corr_left), _attr("s", corr_right))
    joined = Join(Scan(left, "r"), Scan(right, "s"), pred)
    grouped = Nest(joined, by=("r",), nest="s", label="grp")
    having = Select(
        grouped, Cmp(CmpOp.EQ, _attr("r", agg_attr), Agg(AggFunc.COUNT, Var("grp")))
    )
    return Map(having, Var("r"), RESULT_VAR)
