"""Relational baselines: Kim's algorithm and the COUNT-bug fixes.

The naive nested-loop baseline is :func:`repro.core.pipeline.run_query`
with ``engine="interpret"`` — the language interpreter *is* nested-loop
processing.
"""

from repro.baselines.ganski_wong import ganski_wong_plan
from repro.baselines.kim import (
    grouped_inner_table,
    kim_ja_group_first_plan,
    kim_ja_join_first_plan,
    kim_type_nj_plan,
)
from repro.baselines.mural import mural_plan
from repro.baselines.subseteq import kim_style_subseteq_plan

__all__ = [
    "kim_style_subseteq_plan",
    "kim_type_nj_plan",
    "kim_ja_group_first_plan",
    "kim_ja_join_first_plan",
    "grouped_inner_table",
    "ganski_wong_plan",
    "mural_plan",
]
