"""Differential-testing utilities: random catalogs and random nested queries.

Downstream users extending the optimizer can fuzz their changes the same
way the test suite does::

    from repro.testing import random_catalog, random_query, check_engines_agree

    rng = random.Random(1234)
    catalog = random_catalog(rng)
    query = random_query(rng)
    check_engines_agree(query, catalog)   # raises AssertionError on divergence

Queries are generated from type-correct templates over a fixed trio of
schemas (X with a set-valued attribute, Y and W flat), covering the
predicate classes of Table 2, multi-level nesting, SELECT-clause nesting,
quantifiers, and disjunctions — every code path of the translator,
including its interpreter fallbacks.
"""

from __future__ import annotations

import random

from repro.core.pipeline import run_query
from repro.engine.table import Catalog
from repro.model.values import Tup, Variant

__all__ = [
    "random_catalog",
    "random_query",
    "random_plan",
    "check_engines_agree",
    "fuzz_campaign",
    "ENGINE_NAMES",
]

ENGINE_NAMES = ("interpret", "logical", "physical")

#: Subquery templates; `{T}` is a table, `{u}` its variable, `{corr}` the
#: correlation conjunct, `{extra}` an optional additional local conjunct.
_SUBQUERY = "(SELECT {u}.a FROM {T} {u} WHERE {corr}{extra})"

#: WHERE-clause conjunct templates over outer variable x and a subquery z.
_PREDICATE_TEMPLATES = [
    "x.c IN {z}",
    "x.c NOT IN {z}",
    "{z} = {{}}",
    "{z} <> {{}}",
    "COUNT({z}) = 0",
    "COUNT({z}) > 0",
    "x.c = COUNT({z})",
    "x.c < COUNT({z})",
    "x.a SUBSETEQ {z}",
    "x.a SUPSETEQ {z}",
    "x.a SUBSET {z}",
    "x.a = {z}",
    "(x.a INTERSECT {z}) = {{}}",
    "(x.a INTERSECT {z}) <> {{}}",
    "EXISTS v IN {z} (v = x.c)",
    "FORALL v IN {z} (v <> x.c)",
    "FORALL w IN x.a (w IN {z})",
    "EXISTS w IN x.a (w IN {z})",
    "x.c = SUM({z})",
    "x.c <= MAX({z} UNION {{0}})",
]

_SCALAR_TEMPLATES = [
    "x.b = {k}",
    "x.c <> {k}",
    "x.c < {k}",
    "x.b >= {k}",
    "{k} IN x.a",
    "{k} NOT IN x.a",
    "COUNT(x.a) = {k}",
    "EXISTS w IN x.a (w > {k})",
    "TAG(x.v) = 'ok'",
    "TAG(x.v) = 'err' OR PAYLOAD(x.v) >= {k}",
    "PAYLOAD(x.v) = {k}",
]

_SELECT_TEMPLATES = [
    "x",
    "x.c",
    "(b = x.b, c = x.c)",
    "(c = x.c, n = COUNT(x.a))",
    "(c = x.c, zs = {z})",
    "x.a UNION {z}",
]


def random_catalog(
    rng: random.Random,
    max_rows: int = 8,
    domain: int = 4,
) -> Catalog:
    """A catalog with tables X(a: set int, b, c), Y(a, b), W(a, b)."""
    cat = Catalog()
    cat.add_rows("X", [_x_row(rng, domain) for _ in range(rng.randrange(max_rows + 1))])
    cat.add_rows("Y", [_flat_row(rng, domain) for _ in range(rng.randrange(max_rows + 1))])
    cat.add_rows("W", [_flat_row(rng, domain) for _ in range(rng.randrange(max_rows + 1))])
    return cat


def _x_row(rng: random.Random, domain: int) -> Tup:
    members = frozenset(
        rng.randrange(domain) for _ in range(rng.randrange(3))
    )
    status = Variant(rng.choice(["ok", "err"]), rng.randrange(domain))
    return Tup(a=members, b=rng.randrange(domain), c=rng.randrange(domain), v=status)


def _flat_row(rng: random.Random, domain: int) -> Tup:
    return Tup(a=rng.randrange(domain), b=rng.randrange(domain))


def _subquery(rng: random.Random, outer: str, depth: int) -> str:
    table = rng.choice(["Y", "W"])
    u = f"u{depth}{rng.randrange(100)}"
    # The outer variable 'x' ranges over X(a, b, c); inner u-variables range
    # over Y/W(a, b) — correlate only through attributes that exist.
    outer_attrs = ("b", "c") if outer == "x" else ("a", "b")
    corr = rng.choice(
        [
            f"{outer}.{rng.choice(outer_attrs)} = {u}.b",
            f"{outer}.{rng.choice(outer_attrs)} <= {u}.a",
        ]
    )
    extra = ""
    roll = rng.random()
    if roll < 0.25 and depth < 2:
        inner = _subquery(rng, u, depth + 1)
        extra = f" AND {u}.a IN {inner}"
    elif roll < 0.45:
        extra = f" AND {u}.a >= {rng.randrange(4)}"
    return _SUBQUERY.format(T=table, u=u, corr=corr, extra=extra)


def _conjunct(rng: random.Random) -> str:
    if rng.random() < 0.65:
        template = rng.choice(_PREDICATE_TEMPLATES)
        return template.format(z=_subquery(rng, "x", 0))
    return rng.choice(_SCALAR_TEMPLATES).format(k=rng.randrange(4))


def random_query(rng: random.Random) -> str:
    """A random (well-typed) nested query text over the fuzz schemas."""
    select = rng.choice(_SELECT_TEMPLATES)
    if "{z}" in select:
        select = select.format(z=_subquery(rng, "x", 0))
    n_conjuncts = rng.randrange(0, 3)
    conjuncts = [_conjunct(rng) for _ in range(n_conjuncts)]
    if conjuncts and rng.random() < 0.2:
        # Exercise the disjunction fallback path too.
        conjuncts[0] = f"({conjuncts[0]} OR {_conjunct(rng)})"
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    return f"SELECT {select} FROM X x{where}"


def random_plan(rng: random.Random, max_depth: int = 4):
    """A random well-formed logical plan over the fuzz schemas.

    Covers operator shapes the translator never emits (outer-join chains,
    stacked Nest/Unnest, Distinct towers) so the physical engine is tested
    beyond translated queries. Returns a plan whose predicates only touch
    numeric attributes; set-valued bindings produced by NestJoin/Nest are
    consumed by Unnest and COUNT selections.
    """
    from repro.algebra.plan import (
        AntiJoin,
        Distinct,
        Drop,
        Extend,
        Join,
        Nest,
        NestJoin,
        OuterJoin,
        Plan,
        Scan,
        Select,
        SemiJoin,
        Unnest,
    )
    from repro.lang.parser import parse

    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def leaf() -> tuple["Plan", dict[str, list[str]], list[str]]:
        table = rng.choice(["Y", "W"])
        var = fresh("t")
        # numeric attrs per binding; set-valued bindings tracked separately
        return Scan(table, var), {var: ["a", "b"]}, []

    def numeric_ref(attrs: dict[str, list[str]]) -> str:
        var = rng.choice(sorted(attrs))
        return f"{var}.{rng.choice(attrs[var])}"

    def build(depth: int):
        if depth <= 0 or rng.random() < 0.25:
            return leaf()
        plan, attrs, sets = build(depth - 1)
        roll = rng.random()
        if roll < 0.20 and attrs:
            pred = parse(f"{numeric_ref(attrs)} {rng.choice(['=', '<', '>=', '<>'])} {rng.randrange(4)}")
            return Select(plan, pred), attrs, sets
        if roll < 0.30 and attrs:
            label = fresh("e")
            plan = Extend(plan, parse(f"{numeric_ref(attrs)} + {rng.randrange(3)}"), label)
            return plan, attrs, sets
        if roll < 0.38 and sets:
            label = rng.choice(sets)
            pred = parse(f"COUNT({label}) {rng.choice(['=', '>='])} {rng.randrange(3)}")
            return Select(plan, pred), attrs, sets
        if roll < 0.46 and sets:
            label = rng.choice(sets)
            var = fresh("u")
            plan = Unnest(plan, label, var)
            new_sets = [s for s in sets if s != label]
            # the unnested member is a right-operand row: numeric a/b
            return plan, {**attrs, var: ["a", "b"]}, new_sets
        if roll < 0.52:
            return Distinct(plan), attrs, sets
        if roll < 0.60 and len(attrs) + len(sets) > 1 and sets:
            label = rng.choice(sets)
            return Drop(plan, (label,)), attrs, [s for s in sets if s != label]
        # join with a fresh leaf
        right, rattrs, _ = leaf()
        lref = numeric_ref(attrs)
        rref = numeric_ref(rattrs)
        pred = parse(f"{lref} = {rref}")
        kind = rng.randrange(5)
        if kind == 0:
            return Join(plan, right, pred), {**attrs, **rattrs}, sets
        if kind == 1:
            return SemiJoin(plan, right, pred), attrs, sets
        if kind == 2:
            return AntiJoin(plan, right, pred), attrs, sets
        if kind == 3:
            # Outer join pads with NULL: keep right attrs out of later
            # predicates (ordering on NULL raises), but a Nest* may group.
            outer = OuterJoin(plan, right, pred)
            if rng.random() < 0.5:
                by = tuple(sorted(attrs))
                label = fresh("g")
                rvar = list(rattrs)[0]
                grouped = Nest(outer, by=by, nest=rvar, label=label, null_to_empty=True)
                # Nest keeps only the grouping bindings plus the new label:
                # previously tracked set labels are gone from the output.
                return grouped, attrs, [label]
            return outer, {**attrs}, sets
        label = fresh("zs")
        # Identity nest join: the nested set holds whole right rows, so a
        # later Unnest re-exposes row bindings with a/b attributes.
        nj = NestJoin(plan, right, pred, None, label)
        return nj, attrs, sets + [label]

    plan, _attrs, _sets = build(max_depth)
    return plan


def fuzz_campaign(
    n_queries: int = 500,
    seed: int = 0,
    engines: tuple[str, ...] = ENGINE_NAMES,
    max_rows: int = 8,
) -> list[tuple[int, str, str]]:
    """Run *n_queries* random queries across all engines.

    Returns the list of failures as ``(seed, query, message)`` — empty when
    every engine agreed on every query. Deterministic in *seed*.
    """
    failures: list[tuple[int, str, str]] = []
    base = random.Random(seed)
    for i in range(n_queries):
        case_seed = base.randrange(2**31)
        rng = random.Random(case_seed)
        catalog = random_catalog(rng, max_rows=max_rows)
        query = random_query(rng)
        try:
            check_engines_agree(query, catalog, engines)
        except AssertionError as exc:
            failures.append((case_seed, query, str(exc)))
        except Exception as exc:  # noqa: BLE001 - report, don't crash the campaign
            failures.append((case_seed, query, f"{type(exc).__name__}: {exc}"))
    return failures


def check_engines_agree(
    query: str, catalog: Catalog, engines: tuple[str, ...] = ENGINE_NAMES
) -> frozenset:
    """Run *query* on every engine; assert identical results; return them."""
    results = {}
    for engine in engines:
        results[engine] = run_query(query, catalog, engine=engine).value
    baseline = results[engines[0]]
    for engine, value in results.items():
        assert value == baseline, (
            f"engine {engine!r} diverged on query:\n  {query}\n"
            f"  {engines[0]}: {len(baseline)} rows, {engine}: {len(value)} rows"
        )
    return baseline
