"""Batch-vs-row throughput comparison for the vectorized engine.

``collect_vectorized`` times every workload query through the prepared
serving path in both execution modes and reports the fastest-half
throughput of each plus their ratio. The join-heavy subset
(:data:`JOIN_HEAVY` — the queries whose plans are dominated by hash /
index-nested-loop join and nest-join work) is the set the vectorized
engine targets: its summary carries the minimum and geometric-mean
speedup over that subset, which ``benchmarks/bench_vectorized.py``
asserts against.

Run standalone::

    PYTHONPATH=src python -m repro.bench.vectorized [--json PATH]
"""

from __future__ import annotations

import math
import time

from repro.core.pipeline import clear_plan_cache, prepared
from repro.engine.cache import clear_build_cache
from repro.server.workload import mixed_catalog
from repro.bench.perf import PERF_QUERIES, _robust_throughput_qps

__all__ = ["JOIN_HEAVY", "collect_vectorized"]

#: The workload queries whose execution time is dominated by join kernels
#: (hash build/probe, index probes, group tables). The scan/filter-bound
#: queries (q1) and tiny-probe-side queries (q2) are reported but not part
#: of the speedup floor — their batch win is bounded by predicate
#: evaluation, not by tuple overhead.
JOIN_HEAVY = (
    "count_bug_nested",
    "subseteq_bug_nested",
    "section8_query",
    "section8_flat_variant",
)


def _fastest_half_qps(fn, repeats: int) -> float:
    samples_ms = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples_ms.append((time.perf_counter() - start) * 1e3)
    return _robust_throughput_qps(samples_ms)


def collect_vectorized(
    repeats: int = 20,
    seed: int = 0,
    n_left: int = 200,
    n_right: int = 1200,
    n_chain: int = 40,
) -> dict:
    """Per-query batch/row throughput and speedup over the mixed catalog.

    Both modes run warm (plan and build caches populated), so the ratio
    isolates the execution-loop difference — exactly the quantity the
    vectorized engine claims to improve.
    """
    clear_plan_cache()
    clear_build_cache()
    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    queries: dict[str, dict] = {}
    for name, text in PERF_QUERIES.items():
        pq = prepared(text, catalog)
        batch_value = pq.execute(catalog)
        row_value = pq.execute(catalog, execution="row")
        if batch_value != row_value:
            raise AssertionError(f"{name}: batch and row modes disagree")
        batch_qps = _fastest_half_qps(lambda: pq.execute(catalog), repeats)
        row_qps = _fastest_half_qps(
            lambda: pq.execute(catalog, execution="row"), repeats
        )
        queries[name] = {
            "rows": len(batch_value),
            "batch_qps": batch_qps,
            "row_qps": row_qps,
            "speedup": batch_qps / row_qps if row_qps else 0.0,
            "join_heavy": name in JOIN_HEAVY,
        }
    heavy = [queries[name]["speedup"] for name in JOIN_HEAVY]
    return {
        "config": {
            "repeats": repeats,
            "seed": seed,
            "n_left": n_left,
            "n_right": n_right,
            "n_chain": n_chain,
        },
        "queries": queries,
        "join_heavy": {
            "names": list(JOIN_HEAVY),
            "min_speedup": min(heavy),
            "geomean_speedup": math.exp(sum(math.log(s) for s in heavy) / len(heavy)),
        },
    }


def render(report: dict) -> str:
    lines = [
        f"{'query':24s} {'row q/s':>10s} {'batch q/s':>10s} {'speedup':>8s}",
        f"{'-' * 24} {'-' * 10} {'-' * 10} {'-' * 8}",
    ]
    for name, q in report["queries"].items():
        mark = " *" if q["join_heavy"] else ""
        lines.append(
            f"{name:24s} {q['row_qps']:10.0f} {q['batch_qps']:10.0f}"
            f" {q['speedup']:7.2f}x{mark}"
        )
    heavy = report["join_heavy"]
    lines.append(
        f"join-heavy (*): min {heavy['min_speedup']:.2f}x, "
        f"geomean {heavy['geomean_speedup']:.2f}x"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.vectorized", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", help="also write the report to PATH")
    args = parser.parse_args(argv)
    report = collect_vectorized(repeats=args.repeats, seed=args.seed)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
