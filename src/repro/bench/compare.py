"""Strategy comparison for a single query — the library's "bake-off" tool.

:func:`compare_strategies` runs one query under every applicable strategy
(naive interpretation, translated plan on the reference executor, the
physical engine with and without rewrites, and each join algorithm forced)
and reports rows, correctness against the interpreter, and best-of-N wall
time. Exposed on the CLI as ``python -m repro compare``.
"""

from __future__ import annotations

from repro.algebra.interpreter import result_set, run_logical
from repro.algebra.rewrite import optimize_logical
from repro.bench.harness import ResultTable, fmt_seconds, time_best
from repro.core.pipeline import prepare, run_query
from repro.engine.executor import run_physical
from repro.engine.physical import JOIN_ALGORITHMS
from repro.engine.table import Catalog

__all__ = ["compare_strategies"]


def compare_strategies(
    query: str,
    catalog: Catalog,
    repeat: int = 3,
    include_forced_algorithms: bool = True,
) -> ResultTable:
    """Run *query* under every strategy; return a paper-shaped table."""
    oracle = run_query(query, catalog, engine="interpret").value
    table = ResultTable(
        "strategy comparison",
        ("strategy", "rows", "correct", "time"),
    )

    def row(name, fn, repeat_override=None):
        value = fn()
        seconds = time_best(fn, repeat_override or repeat)
        table.add(name, len(value), value == oracle, fmt_seconds(seconds))

    row(
        "naive nested-loop (interpret)",
        lambda: run_query(query, catalog, engine="interpret").value,
        repeat_override=1,
    )
    translation = prepare(query, catalog)
    if translation is None:
        table.note("query has no plan (FROM operand is not a stored table); interpretation only")
        return table
    row(
        "translated plan, reference executor",
        lambda: result_set(run_logical(translation.plan, catalog)),
        repeat_override=1,
    )
    row(
        "physical, rewrites off",
        lambda: run_query(query, catalog, engine="physical", rewrite=False).value,
    )
    row(
        "physical, rewrites on",
        lambda: run_query(query, catalog, engine="physical", rewrite=True).value,
    )
    if include_forced_algorithms:
        plan = optimize_logical(translation.plan)
        for algorithm in JOIN_ALGORITHMS:
            row(
                f"physical, all joins {algorithm}",
                lambda a=algorithm: result_set(run_physical(plan, catalog, force_algorithm=a)),
            )
    table.note(f"translation: {[s.kind for s in translation.steps]}")
    return table
