"""The schema-stable perf report behind the regression gate.

``collect_perf`` times every workload query of :mod:`repro.workloads.queries`
over the seeded mixed catalog and emits a machine-diffable report:
per-benchmark throughput and latency percentiles, plus the plan-quality
(q-error) summary from one analyzed run per query. The report carries a
``schema_version`` so the gate (``scripts/perf_gate.py``) can refuse to
compare reports that don't speak the same schema, and every future PR
extends the ``BENCH_report.json`` trajectory against the committed
``BENCH_baseline.json`` instead of leaving it empty.

The numbers are wall-clock and therefore machine-dependent; the gate's
``--shape-only`` mode checks schema and benchmark coverage without
comparing timings — that is what shared CI runners use, while local runs
compare throughput with a tolerance. See docs/benchmarking.md.
"""

from __future__ import annotations

import time

from repro.core.log import clear_events, emit_event
from repro.core.pipeline import clear_plan_cache, prepared
from repro.engine.cache import clear_build_cache, set_accounting
from repro.engine.cancel import CancelToken, cancel_scope
from repro.engine.feedback import feedback_entries, q_error
from repro.server.metrics import percentile
from repro.server.registry import ActiveQueryRegistry
from repro.server.workload import mixed_catalog
from repro.workloads import queries as workload_queries

__all__ = [
    "SCHEMA_VERSION",
    "PERF_QUERIES",
    "collect_perf",
    "introspection_overhead",
    "accounting_overhead",
]

#: Bump on any structural change to the report dict; the gate refuses to
#: diff reports with mismatched versions.
#: v2: per-benchmark ``row_throughput_qps`` and ``batch_speedup`` — the
#: primary ``throughput_qps`` now measures the default (vectorized batch)
#: execution mode, with the row-mode figure alongside for the ratio.
#: v3: per-benchmark ``parallel_throughput_qps`` and ``parallel_speedup``
#: (multiprocess scatter-gather at ``config["parts"]`` partitions vs the
#: sequential batch figure; see docs/parallel.md). The speedup is
#: recorded, never gated — it depends on the machine's core count.
#: v4: report-level ``introspection`` section — ``overhead_pct`` measures
#: the cost of live introspection (registry progress counters piggybacked
#: on cancellation polls, plus admission/completion events in the
#: structured log) against the same workload with a bare cancel token.
#: The gate fails when the overhead exceeds its budget (default 5%).
#: v5: report-level ``caches`` section — ``accounting_overhead_pct``
#: measures the cost of cache byte accounting (the per-insert deep-sizing
#: pass of :mod:`repro.engine.memsize`) over a serving lifecycle: one
#: cold pass that rebuilds and sizes every artifact, then warm re-serves
#: until the next invalidation. Gated like introspection (default 5%).
SCHEMA_VERSION = 5

#: name → query text: every named workload query, in declaration order.
PERF_QUERIES: dict[str, str] = {
    name.lower(): getattr(workload_queries, name) for name in workload_queries.__all__
}


def _latency_summary(samples_ms: list[float]) -> dict:
    return {
        "mean": sum(samples_ms) / len(samples_ms) if samples_ms else 0.0,
        "p50": percentile(samples_ms, 50),
        "p95": percentile(samples_ms, 95),
        "p99": percentile(samples_ms, 99),
        "max": max(samples_ms) if samples_ms else 0.0,
    }


def _robust_throughput_qps(samples_ms: list[float]) -> float:
    """Queries/second from the fastest half of the timed runs.

    Shared machines show 1.5x run-to-run swings in mean wall-clock; the
    fastest samples approximate the machine's unloaded speed (the same
    reasoning as ``time_best`` in :mod:`repro.bench.harness`) and keep
    the regression gate's tolerance meaningful.
    """
    if not samples_ms:
        return 0.0
    fastest = sorted(samples_ms)[: max(1, len(samples_ms) // 2)]
    return len(fastest) * 1e3 / sum(fastest)


def introspection_overhead(
    seed: int = 0,
    n_left: int = 800,
    n_right: int = 4800,
    n_chain: int = 160,
    sweeps: int = 32,
) -> dict:
    """Cost of live introspection over whole-workload sweeps.

    Times interleaved sweeps of every workload query in two
    configurations and reports the relative slowdown:

    * **off** — a bare :class:`~repro.engine.cancel.CancelToken` in scope
      (the pre-introspection baseline: cancellation polls fire but credit
      no progress sink);
    * **on** — the full per-request introspection path the query service
      takes: an :class:`~repro.server.registry.ActiveQueryRegistry` entry
      whose progress counter every poll bumps, plus ``admit``/``complete``
      structured events per query.

    The catalog defaults to 4x the perf catalog: introspection cost is a
    few microseconds of fixed work per query plus one counter bump per
    poll, so against sub-millisecond queries the percentage is dominated
    by scheduler noise, while multi-millisecond sweeps put the signal
    well above it. Sweeps interleave (off, on, off, on, ...) so clock
    drift hits both sides equally, the cyclic GC is paused during timing
    (collections landing inside a sweep are the largest noise spikes),
    and each side's *minimum* feeds the ratio — the classic
    noise-rejecting estimator (``timeit`` uses it too): interference only
    ever adds time, so the fastest sweep best approximates the unloaded
    cost. ``overhead_pct`` may come out slightly negative in the noise
    floor; the gate only bounds it from above.
    """
    import gc

    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    prepared_queries = {
        name: prepared(text, catalog) for name, text in PERF_QUERIES.items()
    }
    for pq in prepared_queries.values():  # warm plans, builds, caches
        pq.execute(catalog)

    def sweep_off() -> float:
        start = time.perf_counter()
        for pq in prepared_queries.values():
            with cancel_scope(CancelToken(None)):
                pq.execute(catalog)
        return time.perf_counter() - start

    def sweep_on() -> float:
        registry = ActiveQueryRegistry()
        start = time.perf_counter()
        for i, (name, pq) in enumerate(prepared_queries.items()):
            token = CancelToken(None)
            query_id = f"bench{i:04d}"
            registry.register(query_id, name, token=token)
            emit_event("admit", query_id=query_id, query=name)
            with cancel_scope(token):
                pq.execute(catalog)
            registry.finish(query_id, "ok")
            emit_event("complete", query_id=query_id, outcome="ok")
        return time.perf_counter() - start

    off_s: list[float] = []
    on_s: list[float] = []
    sweep_off(), sweep_on()  # warm both paths before timing
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(sweeps):
            off_s.append(sweep_off())
            on_s.append(sweep_on())
    finally:
        if gc_was_enabled:
            gc.enable()
        clear_events()  # the bench must not pollute a live event ring

    off_best, on_best = min(off_s), min(on_s)
    return {
        "sweeps": sweeps,
        "queries_per_sweep": len(prepared_queries),
        "baseline_sweep_ms": off_best * 1e3,
        "instrumented_sweep_ms": on_best * 1e3,
        "overhead_pct": (on_best - off_best) / off_best * 100.0 if off_best else 0.0,
    }


def accounting_overhead(
    seed: int = 0,
    n_left: int = 400,
    n_right: int = 2400,
    n_chain: int = 80,
    sweeps: int = 24,
    serves_per_sweep: int = 10,
) -> dict:
    """Cost of cache byte accounting over a serving lifecycle.

    Each sweep models the window between catalog mutations — the unit of
    work the caches amortize over: the build cache is cleared, then the
    whole workload executes ``serves_per_sweep`` times, so every
    artifact is rebuilt (and, with accounting on, deep-sized) exactly
    once and then re-served warm. Sweeps run interleaved with
    ``REPRO_CACHE_ACCOUNTING`` semantics toggled via
    :func:`repro.engine.cache.set_accounting` — **off** skips the
    per-insert sizing pass entirely (the pre-accounting baseline),
    **on** is the shipped default. Clock-drift, GC, and noise handling
    match :func:`introspection_overhead`: interleaved sides, cyclic GC
    paused, minimum-sweep estimator, and a possibly slightly negative
    result in the noise floor (the gate bounds it from above only).

    Sizing cost is per *insert*, not per execution, so the measured
    percentage scales inversely with ``serves_per_sweep``; 10 is
    conservative for the serving workloads the engine targets (the
    result-cache coalescing in front of it makes real re-execution
    windows longer, not shorter).
    """
    import gc

    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    prepared_queries = {
        name: prepared(text, catalog) for name, text in PERF_QUERIES.items()
    }
    for pq in prepared_queries.values():  # warm plans and first builds
        pq.execute(catalog)

    def sweep(accounting: bool) -> float:
        set_accounting(accounting)
        clear_build_cache()
        start = time.perf_counter()
        for _ in range(serves_per_sweep):
            for pq in prepared_queries.values():
                pq.execute(catalog)
        return time.perf_counter() - start

    off_s: list[float] = []
    on_s: list[float] = []
    sweep(False), sweep(True)  # warm both paths before timing
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(sweeps):
            off_s.append(sweep(False))
            on_s.append(sweep(True))
    finally:
        if gc_was_enabled:
            gc.enable()
        set_accounting(True)
        clear_build_cache()

    off_best, on_best = min(off_s), min(on_s)
    return {
        "sweeps": sweeps,
        "serves_per_sweep": serves_per_sweep,
        "queries_per_serve": len(prepared_queries),
        "baseline_sweep_ms": off_best * 1e3,
        "accounted_sweep_ms": on_best * 1e3,
        "accounting_overhead_pct": (
            (on_best - off_best) / off_best * 100.0 if off_best else 0.0
        ),
    }


def collect_perf(
    repeats: int = 30,
    seed: int = 0,
    n_left: int = 200,
    n_right: int = 1200,
    n_chain: int = 40,
    parts: int = 4,
) -> dict:
    """Time every workload query and report throughput, latency, and q-error.

    Per query: one cold preparation (plan + build caches cleared up
    front), one warm-up execution, then *repeats* timed executions —
    the steady serving state the system optimizes for. One additional
    analyzed execution collects per-operator cardinality feedback; the
    report keeps each query's worst q-error and the whole workload's
    q-error distribution.
    """
    clear_plan_cache()
    clear_build_cache()
    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    benchmarks: dict[str, dict] = {}
    all_q: list[float] = []
    for name, text in PERF_QUERIES.items():
        pq = prepared(text, catalog)
        rows = len(pq.execute(catalog))  # warm-up; also the result size
        pq.execute(catalog, execution="row")  # warm row-mode artifacts too
        pq.execute(catalog, execution="parallel", parts=parts)  # warm shards/pool
        samples_ms: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            pq.execute(catalog)
            samples_ms.append((time.perf_counter() - start) * 1e3)
        row_samples_ms: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            pq.execute(catalog, execution="row")
            row_samples_ms.append((time.perf_counter() - start) * 1e3)
        par_samples_ms: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            pq.execute(catalog, execution="parallel", parts=parts)
            par_samples_ms.append((time.perf_counter() - start) * 1e3)
        entries = feedback_entries(pq.analyze(catalog)) if pq.plan is not None else []
        qs = [e.q for e in entries]
        all_q.extend(qs)
        batch_qps = _robust_throughput_qps(samples_ms)
        row_qps = _robust_throughput_qps(row_samples_ms)
        par_qps = _robust_throughput_qps(par_samples_ms)
        benchmarks[name] = {
            "runs": repeats,
            "rows": rows,
            "throughput_qps": batch_qps,
            "row_throughput_qps": row_qps,
            "batch_speedup": batch_qps / row_qps if row_qps else 0.0,
            "parallel_throughput_qps": par_qps,
            "parallel_speedup": par_qps / batch_qps if batch_qps else 0.0,
            "latency_ms": _latency_summary(samples_ms),
            "qerror_max": max(qs, default=1.0),
            "rewrite_kinds": list(pq.rewrite_kinds()),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "repeats": repeats,
            "seed": seed,
            "n_left": n_left,
            "n_right": n_right,
            "n_chain": n_chain,
            "parts": parts,
        },
        "benchmarks": benchmarks,
        "introspection": introspection_overhead(
            seed=seed, n_left=4 * n_left, n_right=4 * n_right, n_chain=4 * n_chain
        ),
        "caches": accounting_overhead(
            seed=seed, n_left=2 * n_left, n_right=2 * n_right, n_chain=2 * n_chain
        ),
        "qerror": {
            "count": len(all_q),
            "mean": sum(all_q) / len(all_q) if all_q else 1.0,
            "max": max(all_q, default=1.0),
            "p50": percentile(all_q, 50) if all_q else 1.0,
            "p95": percentile(all_q, 95) if all_q else 1.0,
        },
    }


def _self_check() -> None:  # pragma: no cover - import-time invariant guard
    # Every q-error the report aggregates obeys the feedback contract.
    assert q_error(1.0, 1.0) == 1.0


_self_check()
