"""The experiment suite: every table and worked example of the paper.

Each function regenerates one artifact (see DESIGN.md §4 for the index)
and returns a :class:`~repro.bench.harness.ResultTable`. The pytest
benchmarks in ``benchmarks/`` wrap these for timing-regression tracking;
``python -m repro.bench`` prints the full report that EXPERIMENTS.md
records.

Absolute numbers are machine-dependent; what reproduces the paper is the
*shape*: which strategy wins, by roughly what factor, and where behaviour
flips (e.g. Kim's plans losing exactly the dangling tuples).
"""

from __future__ import annotations

import random

from repro.algebra.interpreter import result_set, run_logical
from repro.algebra.plan import NestJoin, Scan, Select
from repro.algebra.properties import nestjoin_via_outerjoin
from repro.baselines import (
    ganski_wong_plan,
    kim_ja_group_first_plan,
    kim_ja_join_first_plan,
    kim_style_subseteq_plan,
    mural_plan,
)
from repro.bench.harness import ResultTable, fmt_seconds, speedup, time_best
from repro.core.classify import classify
from repro.core.normalize import normalize_predicate
from repro.core.pipeline import prepare, run_query
from repro.engine.executor import run_physical
from repro.engine.table import Catalog
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.model.values import Tup, value_repr
from repro.workloads import (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SECTION8_FLAT_VARIANT,
    SECTION8_QUERY,
    SUBSETEQ_BUG_NESTED,
    make_chain_workload,
    make_company,
    make_join_workload,
    make_set_workload,
)

__all__ = [
    "e13_rewrite_ablation",
    "e14_index_join",
    "e15_plan_enumeration",
    "e16_prepared_serving",
    "e1_table1",
    "e2_table2",
    "e3_count_bug",
    "e4_subseteq_bug",
    "e5_q1_q2",
    "e6_unnest_collapse",
    "e7_section8",
    "e8_nested_vs_flat",
    "e9_nestjoin_impls",
    "e10_outerjoin_detour",
    "e11_semijoin_vs_nestjoin",
    "e12_scaling",
    "EXPERIMENTS",
]


# ---------------------------------------------------------------------------
# E1 — Table 1: the nest equijoin of X and Y on the second attribute
# ---------------------------------------------------------------------------

def table1_catalog() -> Catalog:
    """The exact relations of Table 1 (p. 346)."""
    cat = Catalog()
    cat.add_rows("X", [Tup(a=1, b=1), Tup(a=1, b=2), Tup(a=2, b=3)])
    cat.add_rows("Y", [Tup(c=1, d=1), Tup(c=2, d=1), Tup(c=3, d=3)])
    return cat


def e1_table1() -> ResultTable:
    cat = table1_catalog()
    plan = NestJoin(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d"), None, "s")
    results = {}
    for algo in ("nested_loop", "hash", "sort_merge"):
        rows = run_physical(plan, cat, force_algorithm=algo)
        results[algo] = frozenset(rows)
    table = ResultTable(
        "E1 / Table 1 — nest equijoin of X and Y on the second attribute",
        ("x.a", "x.b", "s = { matching y }"),
    )
    for row in sorted(results["hash"], key=lambda t: (t["x"]["a"], t["x"]["b"])):
        table.add(row["x"]["a"], row["x"]["b"], value_repr(row["s"]))
    agree = results["nested_loop"] == results["hash"] == results["sort_merge"]
    table.note(f"all three implementations agree: {agree}")
    dangling = [r for r in results["hash"] if r["s"] == frozenset()]
    table.note(f"dangling tuple preserved with s = ∅: {len(dangling) == 1}")
    return table


# ---------------------------------------------------------------------------
# E2 — Table 2: rewriting TM predicates
# ---------------------------------------------------------------------------

TABLE2_FORMS = [
    "{z} = {{}}",
    "COUNT({z}) = 0",
    "COUNT({z}) > 0",
    "x.c = COUNT({z})",
    "x.c IN {z}",
    "x.c NOT IN {z}",
    "x.a SUBSETEQ {z}",
    "x.a SUBSET {z}",
    "x.a SUPSETEQ {z}",
    "x.a SUPSET {z}",
    "x.a = {z}",
    "x.a <> {z}",
    "(x.a INTERSECT {z}) = {{}}",
    "(x.a INTERSECT {z}) <> {{}}",
    "FORALL w IN x.a (w IN {z})",
    "FORALL w IN x.a (w NOT IN {z})",
]

_Z = "(SELECT y.a FROM Y y WHERE x.b = y.b)"


def e2_table2() -> ResultTable:
    table = ResultTable(
        "E2 / Table 2 — rewriting TM predicates",
        ("P(x, z)", "class", "rewrite / operator"),
    )
    sub = parse(_Z)
    grouping = 0
    for template in TABLE2_FORMS:
        display = template.format(z="z")
        pred = normalize_predicate(parse(template.format(z=_Z)))
        cls = classify(pred, sub)
        if cls.kind.value == "exists":
            rewrite = f"∃{cls.var}∈z ({pretty(cls.member_pred)})  → semijoin"
        elif cls.kind.value == "not_exists":
            rewrite = f"¬∃{cls.var}∈z ({pretty(cls.member_pred)})  → antijoin"
        else:
            rewrite = "— grouping → nest join"
            grouping += 1
        table.add(display, cls.kind.value, rewrite)
    table.note(f"{grouping}/{len(TABLE2_FORMS)} forms need grouping (nest join)")
    return table


# ---------------------------------------------------------------------------
# E3 — the COUNT bug (Section 2)
# ---------------------------------------------------------------------------

def e3_count_bug(n_left: int = 300, match_rate: float = 0.5, fanout: int = 2) -> ResultTable:
    wl = make_join_workload(n_left=n_left, match_rate=match_rate, fanout=fanout, seed=42)
    cat = wl.catalog
    oracle = run_query(COUNT_BUG_NESTED, cat, engine="interpret").value

    strategies = [
        ("naive nested-loop", lambda: run_query(COUNT_BUG_NESTED, cat, engine="interpret").value),
        ("Kim (1) group-first", lambda: result_set(run_logical(kim_ja_group_first_plan(), cat))),
        ("Kim (2) join-first", lambda: result_set(run_logical(kim_ja_join_first_plan(), cat))),
        ("Ganski–Wong outerjoin", lambda: result_set(run_physical(ganski_wong_plan(), cat))),
        ("Muralikrishna antijoin", lambda: result_set(run_physical(mural_plan(), cat))),
        ("nest join (this paper)", lambda: run_query(COUNT_BUG_NESTED, cat, engine="physical").value),
    ]
    table = ResultTable(
        f"E3 — the COUNT bug (|R|={n_left}, match={match_rate}, fanout={fanout})",
        ("strategy", "rows", "missing", "correct", "time"),
    )
    for name, fn in strategies:
        value = fn()
        seconds = time_best(fn, repeat=1 if "naive" in name else 3)
        table.add(name, len(value), len(oracle - value), value == oracle, fmt_seconds(seconds))
    table.note(f"oracle rows: {len(oracle)}; dangling R-tuples in workload: {wl.dangling}")
    return table


# ---------------------------------------------------------------------------
# E4 — the SUBSETEQ bug (Section 4)
# ---------------------------------------------------------------------------

def e4_subseteq_bug(n_left: int = 300, n_right: int = 200) -> ResultTable:
    cat = make_set_workload(n_left=n_left, n_right=n_right, match_rate=0.5, seed=7)
    oracle = run_query(SUBSETEQ_BUG_NESTED, cat, engine="interpret").value
    strategies = [
        ("naive nested-loop", lambda: run_query(SUBSETEQ_BUG_NESTED, cat, engine="interpret").value),
        ("Kim-style group+join", lambda: result_set(run_logical(kim_style_subseteq_plan(), cat))),
        ("nest join (this paper)", lambda: run_query(SUBSETEQ_BUG_NESTED, cat, engine="physical").value),
    ]
    table = ResultTable(
        f"E4 — the SUBSETEQ bug (|X|={n_left}, |Y|={n_right})",
        ("strategy", "rows", "missing", "correct", "time"),
    )
    for name, fn in strategies:
        value = fn()
        seconds = time_best(fn, repeat=1 if "naive" in name else 3)
        table.add(name, len(value), len(oracle - value), value == oracle, fmt_seconds(seconds))
    empties = sum(1 for t in oracle if t["a"] == frozenset())
    table.note(f"oracle rows: {len(oracle)} of which a=∅ winners: {empties}")
    return table


# ---------------------------------------------------------------------------
# E5 — queries Q1 and Q2 (Section 3.2)
# ---------------------------------------------------------------------------

def e5_q1_q2(n_departments: int = 20, n_employees: int = 300) -> ResultTable:
    cat = make_company(n_departments=n_departments, n_employees=n_employees, seed=13)
    table = ResultTable(
        f"E5 — paper queries Q1/Q2 ({n_departments} departments, {n_employees} employees)",
        ("query", "strategy", "rows", "correct", "time"),
    )
    q1_oracle = run_query(Q1_SAME_STREET, cat, engine="interpret").value
    t_q1 = time_best(lambda: run_query(Q1_SAME_STREET, cat, engine="interpret").value, 3)
    table.add("Q1 (same street)", "stays nested (set-valued attr)", len(q1_oracle), True, fmt_seconds(t_q1))

    q2_oracle = run_query(Q2_EMPS_BY_CITY, cat, engine="interpret").value
    t_naive = time_best(lambda: run_query(Q2_EMPS_BY_CITY, cat, engine="interpret").value, 1)
    q2_plan = run_query(Q2_EMPS_BY_CITY, cat, engine="physical").value
    t_plan = time_best(lambda: run_query(Q2_EMPS_BY_CITY, cat, engine="physical").value, 3)
    table.add("Q2 (emps by city)", "naive nested-loop", len(q2_oracle), True, fmt_seconds(t_naive))
    table.add("Q2 (emps by city)", "nest join", len(q2_plan), q2_plan == q2_oracle, fmt_seconds(t_plan))
    table.note(f"Q2 nest join speedup over naive: {speedup(t_naive, t_plan):.1f}x")
    tr = prepare(Q2_EMPS_BY_CITY, cat)
    table.note(f"Q2 translation steps: {[s.kind for s in tr.steps]}")
    return table


# ---------------------------------------------------------------------------
# E6 — the UNNEST collapse (Section 5)
# ---------------------------------------------------------------------------

def _unnest_catalog(n: int, seed: int = 5) -> Catalog:
    rng = random.Random(seed)
    cat = Catalog()
    cat.add_rows("X", [Tup(a=i, b=rng.randrange(n // 2 or 1)) for i in range(n)])
    cat.add_rows("Y", [Tup(a=rng.randrange(n // 2 or 1), b=i) for i in range(n)])
    return cat


UNNEST_QUERY = (
    "UNNEST(SELECT (SELECT (a = x.a, b = y.b) FROM Y y WHERE x.b = y.a) FROM X x)"
)


def e6_unnest_collapse(n: int = 400) -> ResultTable:
    cat = _unnest_catalog(n)
    oracle = run_query(UNNEST_QUERY, cat, engine="interpret").value
    flat = run_query(UNNEST_QUERY, cat, engine="physical").value
    t_naive = time_best(lambda: run_query(UNNEST_QUERY, cat, engine="interpret").value, 1)
    t_flat = time_best(lambda: run_query(UNNEST_QUERY, cat, engine="physical").value, 3)
    table = ResultTable(
        f"E6 — UNNEST(SELECT (SELECT ...)) collapse (|X|=|Y|={n})",
        ("strategy", "rows", "correct", "time"),
    )
    table.add("nested + UNNEST (naive)", len(oracle), True, fmt_seconds(t_naive))
    table.add("flat join (Section 5)", len(flat), flat == oracle, fmt_seconds(t_flat))
    table.note(f"speedup: {speedup(t_naive, t_flat):.1f}x")
    return table


# ---------------------------------------------------------------------------
# E7 — the Section 8 pipeline
# ---------------------------------------------------------------------------

def e7_section8(n: int = 120) -> ResultTable:
    cat = make_chain_workload(n_x=n, n_y=n, n_z=n, set_size=1, seed=17)
    table = ResultTable(
        f"E7 — Section 8 three-block pipeline (|X|=|Y|=|Z|={n})",
        ("query", "strategy", "rows", "correct", "time"),
    )
    for label, query in (("P1/P2 = ⊆ (grouping)", SECTION8_QUERY), ("P1/P2 = ∈/∉ (flat)", SECTION8_FLAT_VARIANT)):
        oracle = run_query(query, cat, engine="interpret").value
        t_naive = time_best(lambda q=query: run_query(q, cat, engine="interpret").value, 1)
        planned = run_query(query, cat, engine="physical").value
        t_plan = time_best(lambda q=query: run_query(q, cat, engine="physical").value, 3)
        tr = prepare(query, cat)
        table.add(label, "naive nested-loop", len(oracle), True, fmt_seconds(t_naive))
        table.add(label, "+".join(tr.join_kinds()), len(planned), planned == oracle, fmt_seconds(t_plan))
    return table


# ---------------------------------------------------------------------------
# E8 — nested-loop vs flat join plans (the headline claim)
# ---------------------------------------------------------------------------

IN_QUERY = "SELECT r FROM R r WHERE r.b IN (SELECT s.d FROM S s WHERE r.c = s.c)"


def e8_nested_vs_flat(sizes: tuple[int, ...] = (50, 100, 200, 400)) -> ResultTable:
    table = ResultTable(
        "E8 — naive nested-loop vs flattened semijoin (IN-subquery)",
        ("|R|=|S|", "naive", "semijoin plan", "speedup", "correct"),
    )
    for n in sizes:
        wl = make_join_workload(n_left=n, n_right=n, match_rate=0.5, fanout=1, seed=n)
        cat = wl.catalog
        oracle = run_query(IN_QUERY, cat, engine="interpret").value
        planned = run_query(IN_QUERY, cat, engine="physical").value
        t_naive = time_best(lambda: run_query(IN_QUERY, cat, engine="interpret").value, 1)
        t_plan = time_best(lambda: run_query(IN_QUERY, cat, engine="physical").value, 3)
        table.add(n, fmt_seconds(t_naive), fmt_seconds(t_plan), f"{speedup(t_naive, t_plan):.1f}x", planned == oracle)
    table.note("speedup should grow roughly linearly with the inner cardinality")
    return table


# ---------------------------------------------------------------------------
# E9 — nest join implementations head to head
# ---------------------------------------------------------------------------

def e9_nestjoin_impls(sizes: tuple[int, ...] = (100, 300, 600)) -> ResultTable:
    table = ResultTable(
        "E9 — nest join: nested-loop vs hash vs sort-merge",
        ("|R|", "|S|", "nested_loop", "hash", "sort_merge", "agree"),
    )
    for n in sizes:
        wl = make_join_workload(n_left=n, match_rate=0.6, fanout=3, seed=n)
        cat = wl.catalog
        tr = prepare(COUNT_BUG_NESTED, cat)
        times = {}
        outcomes = {}
        for algo in ("nested_loop", "hash", "sort_merge"):
            fn = lambda a=algo: run_physical(tr.plan, cat, force_algorithm=a)
            outcomes[algo] = frozenset(fn())
            times[algo] = time_best(fn, repeat=1 if algo == "nested_loop" and n > 500 else 2)
        agree = outcomes["nested_loop"] == outcomes["hash"] == outcomes["sort_merge"]
        table.add(
            n,
            len(cat["S"]),
            fmt_seconds(times["nested_loop"]),
            fmt_seconds(times["hash"]),
            fmt_seconds(times["sort_merge"]),
            agree,
        )
    table.note("hash builds on the right operand (Section 6 restriction)")
    return table


# ---------------------------------------------------------------------------
# E10 — nest join vs outerjoin + ν* (Section 6 algebra)
# ---------------------------------------------------------------------------

def e10_outerjoin_detour(sizes: tuple[int, ...] = (100, 300, 900)) -> ResultTable:
    table = ResultTable(
        "E10 — X Δ Y vs ν*(X ⟕ Y): the NULL detour the nest join avoids",
        ("|X|", "nest join", "outerjoin+ν*", "ratio", "equal"),
    )
    for n in sizes:
        wl = make_join_workload(n_left=n, match_rate=0.5, fanout=2, seed=n + 1)
        cat = wl.catalog
        nj = NestJoin(Scan("R", "r"), Scan("S", "s"), parse("r.c = s.c"), None, "zs")
        detour = nestjoin_via_outerjoin(nj)
        a = frozenset(run_physical(nj, cat))
        b = frozenset(run_physical(detour, cat))
        t_nj = time_best(lambda: run_physical(nj, cat), 3)
        t_oj = time_best(lambda: run_physical(detour, cat), 3)
        table.add(n, fmt_seconds(t_nj), fmt_seconds(t_oj), f"{speedup(t_oj, t_nj):.2f}x", a == b)
    table.note("same result, one operator instead of two and no NULLs")
    return table


# ---------------------------------------------------------------------------
# E11 — semijoin/antijoin vs nest join for rewritable predicates (Theorem 1)
# ---------------------------------------------------------------------------

def e11_semijoin_vs_nestjoin(sizes: tuple[int, ...] = (200, 400, 800)) -> ResultTable:
    table = ResultTable(
        "E11 — Theorem 1 payoff: flat join vs nest join for x.c IN z",
        ("|X|", "semijoin (classifier)", "nest join (forced)", "speedup", "equal"),
    )
    for n in sizes:
        wl = make_join_workload(n_left=n, n_right=n, match_rate=0.5, fanout=4, seed=n + 2)
        cat = wl.catalog
        query = "SELECT r FROM R r WHERE r.b IN (SELECT s.d FROM S s WHERE r.c = s.c)"
        tr = prepare(query, cat)
        assert tr.join_kinds() == ["semijoin"]
        semi_fn = lambda: run_query(query, cat, engine="physical").value
        semi = semi_fn()
        # The grouped alternative the classifier lets us skip:
        grouped_plan = Select(
            NestJoin(Scan("R", "r"), Scan("S", "s"), parse("r.c = s.c"), parse("s.d"), "zs"),
            parse("r.b IN zs"),
        )
        grouped = frozenset(row["r"] for row in run_physical(grouped_plan, cat))
        t_semi = time_best(semi_fn, 3)
        t_group = time_best(lambda: run_physical(grouped_plan, cat), 3)
        table.add(n, fmt_seconds(t_semi), fmt_seconds(t_group), f"{speedup(t_group, t_semi):.2f}x", semi == grouped)
    table.note("the semijoin needs no group materialisation and can stop at the first match")
    return table


# ---------------------------------------------------------------------------
# E12 — scaling: optimizer-chosen plan vs naive
# ---------------------------------------------------------------------------

def e12_scaling(sizes: tuple[int, ...] = (50, 100, 200, 400)) -> ResultTable:
    table = ResultTable(
        "E12 — COUNT-bug query: naive vs optimizer-chosen plan across sizes",
        ("|R|", "naive", "optimized", "speedup", "correct"),
    )
    for n in sizes:
        wl = make_join_workload(n_left=n, match_rate=0.5, fanout=2, seed=n + 3)
        cat = wl.catalog
        oracle = run_query(COUNT_BUG_NESTED, cat, engine="interpret").value
        planned = run_query(COUNT_BUG_NESTED, cat, engine="physical").value
        t_naive = time_best(lambda: run_query(COUNT_BUG_NESTED, cat, engine="interpret").value, 1)
        t_plan = time_best(lambda: run_query(COUNT_BUG_NESTED, cat, engine="physical").value, 3)
        table.add(n, fmt_seconds(t_naive), fmt_seconds(t_plan), f"{speedup(t_naive, t_plan):.1f}x", planned == oracle)
    return table


# ---------------------------------------------------------------------------
# E13 — extension ablation: logical rewrite pass on/off
# ---------------------------------------------------------------------------

REWRITE_ABLATION_QUERY = (
    "SELECT x FROM X x "
    "WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b) AND x.c = 0"
)


def e13_rewrite_ablation(n_left: int = 400, n_right: int = 300) -> ResultTable:
    cat = make_set_workload(n_left=n_left, n_right=n_right, match_rate=0.6, seed=23)
    on = run_query(REWRITE_ABLATION_QUERY, cat, engine="physical", rewrite=True).value
    off = run_query(REWRITE_ABLATION_QUERY, cat, engine="physical", rewrite=False).value
    t_on = time_best(lambda: run_query(REWRITE_ABLATION_QUERY, cat, engine="physical", rewrite=True), 3)
    t_off = time_best(lambda: run_query(REWRITE_ABLATION_QUERY, cat, engine="physical", rewrite=False), 3)
    table = ResultTable(
        f"E13 (extension) — selection pushdown on vs off (|X|={n_left})",
        ("rewrites", "rows", "time"),
    )
    table.add("on (filter below nest join)", len(on), fmt_seconds(t_on))
    table.add("off (translated order)", len(off), fmt_seconds(t_off))
    table.note(f"equal results: {on == off}; speedup {speedup(t_off, t_on):.2f}x")
    return table


# ---------------------------------------------------------------------------
# E14 — extension ablation: persistent index vs per-query hash build
# ---------------------------------------------------------------------------

def e14_index_join(n_left: int = 400) -> ResultTable:
    from repro.engine.executor import run_physical as _run

    wl = make_join_workload(n_left=n_left, match_rate=0.6, fanout=3, seed=31)
    cat = wl.catalog
    tr = prepare(COUNT_BUG_NESTED, cat)
    _run(tr.plan, cat, force_algorithm="index_nested_loop")  # warm the index
    a = frozenset(_run(tr.plan, cat, force_algorithm="index_nested_loop"))
    b = frozenset(_run(tr.plan, cat, force_algorithm="hash"))
    t_index = time_best(lambda: _run(tr.plan, cat, force_algorithm="index_nested_loop"), 3)
    t_hash = time_best(lambda: _run(tr.plan, cat, force_algorithm="hash"), 3)
    table = ResultTable(
        f"E14 (extension) — warm index-nested-loop vs per-query hash build (|R|={n_left})",
        ("algorithm", "time"),
    )
    table.add("index_nested_loop (warm)", fmt_seconds(t_index))
    table.add("hash (build per query)", fmt_seconds(t_hash))
    table.note(f"equal results: {a == b}")
    return table


# ---------------------------------------------------------------------------
# E15 — extension ablation: cost-based reordering via the Section 6 laws
# ---------------------------------------------------------------------------

def e15_plan_enumeration() -> ResultTable:
    from repro.algebra.enumerate import choose_plan
    from repro.algebra.plan import Join, NestJoin, Scan
    from repro.engine.executor import run_physical as _run

    cat = Catalog()
    cat.add_rows("X", [Tup(a=i % 5, b=i % 2) for i in range(40)])
    cat.add_rows("Y", [Tup(c=i, d=i % 2) for i in range(300)])
    cat.add_rows("Z", [Tup(e=0, f=i % 5) for i in range(40)])
    original = NestJoin(
        Join(Scan("X", "x"), Scan("Y", "y"), parse("x.b = y.d")),
        Scan("Z", "z"),
        parse("x.a = z.f"),
        None,
        "zs",
    )
    chosen = choose_plan(original, cat)
    equal = frozenset(_run(original, cat)) == frozenset(_run(chosen, cat))
    t_orig = time_best(lambda: _run(original, cat), 3)
    t_chosen = time_best(lambda: _run(chosen, cat), 3)
    table = ResultTable(
        "E15 (extension) — (X ⋈ Y) Δ Z vs cost-chosen (X Δ Z) ⋈ Y under an expanding join",
        ("plan", "shape", "time"),
    )
    table.add("as translated", "(X ⋈ Y) Δ Z", fmt_seconds(t_orig))
    shape = "(X Δ Z) ⋈ Y" if isinstance(chosen, Join) else "(X ⋈ Y) Δ Z"
    table.add("cost-chosen", shape, fmt_seconds(t_chosen))
    table.note(f"equal results: {equal}; speedup {speedup(t_orig, t_chosen):.2f}x")
    return table


# ---------------------------------------------------------------------------
# E16 — extension: prepared-query serving (plan + build-side caches)
# ---------------------------------------------------------------------------

def e16_prepared_serving(
    n_left: int = 200, n_right: int = 6000, repeat: int = 5
) -> ResultTable:
    """Cold per-call ``run_query`` vs warm prepared serving.

    *Cold* models the first query after a data load: table versions are
    bumped and the plan/build caches dropped before every call, so each
    call pays parse → typecheck → translate → compile → build. *Warm* is
    the steady serving state: every layer hits.
    """
    from repro.core.pipeline import clear_plan_cache, prepared
    from repro.engine.cache import clear_build_cache

    workload = make_join_workload(n_left=n_left, n_right=n_right, fanout=4, seed=11)
    catalog = workload.catalog

    def cold() -> frozenset:
        for name in catalog:
            catalog[name].bump_version()
        clear_plan_cache()
        clear_build_cache()
        return run_query(COUNT_BUG_NESTED, catalog).value

    def warm() -> frozenset:
        return prepared(COUNT_BUG_NESTED, catalog).execute(catalog)

    a = cold()
    t_cold = time_best(cold, repeat)
    warm()  # fill every cache layer
    b = warm()
    t_warm = time_best(warm, repeat)
    table = ResultTable(
        f"E16 (extension) — prepared serving, COUNT-bug query on R({n_left}) ⋈ S({n_right})",
        ("mode", "per call", "calls/sec"),
    )
    table.add("cold run_query (caches dropped)", fmt_seconds(t_cold), f"{1 / t_cold:.0f}")
    table.add("warm prepared serving", fmt_seconds(t_warm), f"{1 / t_warm:.0f}")
    table.note(f"equal results: {a == b}; speedup {speedup(t_cold, t_warm):.2f}x")
    return table


EXPERIMENTS = {
    "E1": ("Table 1 — nest equijoin", e1_table1),
    "E2": ("Table 2 — predicate rewriting", e2_table2),
    "E3": ("COUNT bug", e3_count_bug),
    "E4": ("SUBSETEQ bug", e4_subseteq_bug),
    "E5": ("Queries Q1/Q2", e5_q1_q2),
    "E6": ("UNNEST collapse", e6_unnest_collapse),
    "E7": ("Section 8 pipeline", e7_section8),
    "E8": ("Nested-loop vs flat", e8_nested_vs_flat),
    "E9": ("Nest join implementations", e9_nestjoin_impls),
    "E10": ("Outerjoin detour", e10_outerjoin_detour),
    "E11": ("Semijoin vs nest join", e11_semijoin_vs_nestjoin),
    "E12": ("Scaling", e12_scaling),
    "E13": ("Extension: rewrite ablation", e13_rewrite_ablation),
    "E14": ("Extension: index join", e14_index_join),
    "E15": ("Extension: plan enumeration", e15_plan_enumeration),
    "E16": ("Extension: prepared serving", e16_prepared_serving),
}
