"""Parallel scatter-gather vs sequential batch throughput.

``collect_parallel`` times the join-heavy workload queries (the same
:data:`~repro.bench.vectorized.JOIN_HEAVY` subset the vectorized bench
gates on — the queries whose runtime is dominated by join and nest-join
kernels, i.e. the work that actually shards) through the prepared serving
path in sequential batch mode and in ``execution="parallel"`` at *parts*
partitions, and reports the fastest-half throughput of each plus their
ratio.

Unlike the batch-vs-row ratio, the parallel speedup is machine-dependent
in kind, not just in degree: on a box with fewer cores than partitions
the scatter adds pure overhead (pickling + IPC) with no compute to
overlap, so the report carries the visible core count and an ``enforce``
flag — ``benchmarks/bench_parallel.py`` asserts the speedup floor only
when ``cores >= parts``, and CI runners below that see a shape-only run.

Run standalone::

    PYTHONPATH=src python -m repro.bench.parallel [--parts N] [--json PATH]
"""

from __future__ import annotations

import math
import os
import time

from repro.bench.perf import PERF_QUERIES, _robust_throughput_qps
from repro.bench.vectorized import JOIN_HEAVY
from repro.core.pipeline import clear_plan_cache, prepared
from repro.engine.cache import clear_build_cache
from repro.server.workload import mixed_catalog

__all__ = [
    "SPEEDUP_FLOOR",
    "OVERHEAD_CEILING_PCT",
    "collect_parallel",
    "visible_cores",
]

#: Minimum geometric-mean speedup over the join-heavy subset at 4 parts,
#: enforced only on machines with at least as many visible cores as
#: partitions (docs/parallel.md).
SPEEDUP_FLOOR = 1.8

#: Ceiling on the throughput cost of the default-on pool telemetry
#: (per-fragment CPU/memory accounting and pipe byte counting) relative
#: to the bare scatter path, in percent. The instrumentation is a few
#: clock reads and histogram observes per scatter, so the true cost is
#: low single digits; the ceiling is set above run-to-run noise and
#: enforced only where the speedup floor is (cores >= parts).
OVERHEAD_CEILING_PCT = 15.0


def visible_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fastest_half_qps(fn, repeats: int) -> float:
    samples_ms = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples_ms.append((time.perf_counter() - start) * 1e3)
    return _robust_throughput_qps(samples_ms)


def collect_parallel(
    repeats: int = 10,
    parts: int = 4,
    seed: int = 0,
    n_left: int = 400,
    n_right: int = 2400,
    n_chain: int = 60,
) -> dict:
    """Per-query sequential/parallel throughput over a join-heavy catalog.

    The catalog is larger than the vectorized bench's — scatter-gather
    pays a fixed pickling + IPC toll per query, so the interesting regime
    is where per-fragment compute dominates that toll. Both modes run
    warm: plans compiled, build caches populated, shards cut and resident
    in the worker pool, so the ratio isolates parallel execution itself.
    """
    clear_plan_cache()
    clear_build_cache()
    catalog = mixed_catalog(seed=seed, n_left=n_left, n_right=n_right, n_chain=n_chain)
    queries: dict[str, dict] = {}
    for name in JOIN_HEAVY:
        pq = prepared(PERF_QUERIES[name], catalog)
        sequential_value = pq.execute(catalog)
        parallel_value = pq.execute(catalog, execution="parallel", parts=parts)
        if parallel_value != sequential_value:
            raise AssertionError(f"{name}: parallel and sequential modes disagree")
        seq_qps = _fastest_half_qps(lambda: pq.execute(catalog), repeats)
        par_qps = _fastest_half_qps(
            lambda: pq.execute(catalog, execution="parallel", parts=parts), repeats
        )
        queries[name] = {
            "rows": len(sequential_value),
            "sequential_qps": seq_qps,
            "parallel_qps": par_qps,
            "speedup": par_qps / seq_qps if seq_qps else 0.0,
        }
    speedups = [queries[name]["speedup"] for name in JOIN_HEAVY]
    cores = visible_cores()
    tracing = _telemetry_overhead(catalog, parts, repeats)
    return {
        "tracing": tracing,
        "config": {
            "repeats": repeats,
            "parts": parts,
            "seed": seed,
            "n_left": n_left,
            "n_right": n_right,
            "n_chain": n_chain,
        },
        "cores": cores,
        "enforce": cores >= parts,
        "queries": queries,
        "summary": {
            "names": list(JOIN_HEAVY),
            "min_speedup": min(speedups),
            "geomean_speedup": math.exp(
                sum(math.log(s) for s in speedups) / len(speedups)
            ),
            "floor": SPEEDUP_FLOOR,
        },
    }


def _telemetry_overhead(catalog, parts: int, repeats: int) -> dict:
    """Throughput with the default-on pool telemetry vs with it disabled.

    Tracing is off in both runs (no ambient trace is installed), so this
    measures exactly what every untraced parallel query pays for the
    per-fragment CPU/memory accounting and pipe byte counting relative to
    the bare scatter path — the number the benchmark guard keeps within
    noise of the pre-observability baseline.
    """
    from repro.parallel.pool import set_telemetry

    pq = prepared(PERF_QUERIES["count_bug_nested"], catalog)

    def run():
        pq.execute(catalog, execution="parallel", parts=parts)

    run()  # warm: pool spawned, shards resident
    set_telemetry(False)
    try:
        off_qps = _fastest_half_qps(run, repeats)
    finally:
        set_telemetry(True)
    on_qps = _fastest_half_qps(run, repeats)
    overhead = (off_qps - on_qps) / off_qps * 100.0 if off_qps else 0.0
    return {
        "query": "count_bug_nested",
        "telemetry_on_qps": on_qps,
        "telemetry_off_qps": off_qps,
        "parallel_overhead_pct": overhead,
        "ceiling_pct": OVERHEAD_CEILING_PCT,
    }


def render(report: dict) -> str:
    parts = report["config"]["parts"]
    lines = [
        f"{'query':24s} {'seq q/s':>10s} {'par q/s':>10s} {'speedup':>8s}",
        f"{'-' * 24} {'-' * 10} {'-' * 10} {'-' * 8}",
    ]
    for name, q in report["queries"].items():
        lines.append(
            f"{name:24s} {q['sequential_qps']:10.1f} {q['parallel_qps']:10.1f}"
            f" {q['speedup']:7.2f}x"
        )
    summary = report["summary"]
    gate = (
        f"floor {summary['floor']:.1f}x enforced"
        if report["enforce"]
        else f"floor not enforced ({report['cores']} core(s) < {parts} parts)"
    )
    lines.append(
        f"parts={parts}, cores={report['cores']}: "
        f"min {summary['min_speedup']:.2f}x, "
        f"geomean {summary['geomean_speedup']:.2f}x — {gate}"
    )
    tracing = report.get("tracing")
    if tracing:
        lines.append(
            f"telemetry overhead ({tracing['query']}): "
            f"{tracing['parallel_overhead_pct']:+.1f}% "
            f"(on {tracing['telemetry_on_qps']:.1f} q/s, "
            f"off {tracing['telemetry_off_qps']:.1f} q/s; "
            f"ceiling {tracing['ceiling_pct']:.0f}%)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    from repro.parallel import shutdown_pools

    parser = argparse.ArgumentParser(
        prog="repro.bench.parallel", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--parts", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", help="also write the report to PATH")
    args = parser.parse_args(argv)
    try:
        report = collect_parallel(
            repeats=args.repeats, parts=args.parts, seed=args.seed
        )
    finally:
        shutdown_pools()
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
