"""Benchmark harness: timing and paper-shaped result tables.

Every experiment (see :mod:`repro.bench.experiments`) returns a
:class:`ResultTable` — named columns, aligned text rendering — so the
benchmarks print rows directly comparable to the paper's tables and worked
examples. ``python -m repro.bench`` runs the full suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ResultTable", "time_best", "fmt_seconds", "speedup"]


@dataclass
class ResultTable:
    """A titled table of results with aligned text rendering."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def time_best(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def speedup(slow: float, fast: float) -> float:
    """slow/fast, guarded against zero timers."""
    return slow / max(fast, 1e-9)
