"""Run the full experiment suite: ``python -m repro.bench [E3 E7 ...]``.

``--json PATH`` additionally writes a machine-readable report wrapped in
the stable perf schema (``schema_version``, ``experiments``, ``perf``) —
the ``make perf-report`` target uses it to produce ``BENCH_report.json``
for ``scripts/perf_gate.py``. ``--perf`` adds the timed workload
benchmarks of :mod:`repro.bench.perf` to the report; ``--perf-only``
skips the (slower) paper experiments and emits just that section.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.perf import SCHEMA_VERSION, collect_perf


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment keys (default: all)")
    parser.add_argument("--json", metavar="PATH", help="also write a JSON report to PATH")
    parser.add_argument(
        "--perf",
        action="store_true",
        help="include the timed workload benchmarks (throughput/latency/q-error)",
    )
    parser.add_argument(
        "--perf-only",
        action="store_true",
        help="run only the timed workload benchmarks, skipping the experiments",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=30,
        help="timed executions per workload query in the perf section (default 30)",
    )
    args = parser.parse_args(argv)

    experiments = {}
    if not args.perf_only:
        wanted = [a.upper() for a in args.experiments] or list(EXPERIMENTS)
        unknown = [w for w in wanted if w not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
            return 2
        for key in wanted:
            title, fn = EXPERIMENTS[key]
            start = time.perf_counter()
            table = fn()
            elapsed = time.perf_counter() - start
            print()
            print(table.render())
            experiments[key] = {
                "title": title,
                "seconds": elapsed,
                "table": {
                    "title": table.title,
                    "columns": list(table.columns),
                    "rows": [[_jsonable(v) for v in row] for row in table.rows],
                    "notes": list(table.notes),
                },
            }

    perf = None
    if args.perf or args.perf_only:
        perf = collect_perf(repeats=args.repeats)
        _print_perf(perf)

    report = {"schema_version": SCHEMA_VERSION, "experiments": experiments}
    if perf is not None:
        report["perf"] = perf
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        sections = f"{len(experiments)} experiments" + (", perf" if perf else "")
        print(f"\nwrote {args.json} ({sections})", file=sys.stderr)
    return 0


def _print_perf(perf: dict) -> None:
    print("\nworkload perf (schema v%d)" % perf["schema_version"])
    for name, bench in perf["benchmarks"].items():
        lat = bench["latency_ms"]
        print(
            f"  {name:24s} {bench['throughput_qps']:10.1f} q/s"
            f"  ({bench['batch_speedup']:.2f}x row mode)"
            f"  p50={lat['p50']:.3f}ms p95={lat['p95']:.3f}ms"
            f"  qerr_max={bench['qerror_max']:.2f}"
        )
    q = perf["qerror"]
    print(f"  q-error: n={q['count']} mean={q['mean']:.2f} p95={q['p95']:.2f} max={q['max']:.2f}")
    intro = perf.get("introspection")
    if intro:
        print(
            f"  introspection: overhead={intro['overhead_pct']:+.2f}%"
            f"  (sweep {intro['baseline_sweep_ms']:.1f}ms off"
            f" / {intro['instrumented_sweep_ms']:.1f}ms on)"
        )


def _jsonable(v):
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return str(v)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
