"""Run the full experiment suite: ``python -m repro.bench [E3 E7 ...]``."""

from __future__ import annotations

import sys

from repro.bench.experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    wanted = [a.upper() for a in argv] or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for key in wanted:
        title, fn = EXPERIMENTS[key]
        print()
        print(fn().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
