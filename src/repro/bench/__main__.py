"""Run the full experiment suite: ``python -m repro.bench [E3 E7 ...]``.

``--json PATH`` additionally writes a machine-readable report (per
experiment: title, wall-clock seconds, and the result table) — the
``make bench-json`` target uses it to produce ``BENCH_report.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment keys (default: all)")
    parser.add_argument("--json", metavar="PATH", help="also write a JSON report to PATH")
    args = parser.parse_args(argv)

    wanted = [a.upper() for a in args.experiments] or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    report = {}
    for key in wanted:
        title, fn = EXPERIMENTS[key]
        start = time.perf_counter()
        table = fn()
        elapsed = time.perf_counter() - start
        print()
        print(table.render())
        report[key] = {
            "title": title,
            "seconds": elapsed,
            "table": {
                "title": table.title,
                "columns": list(table.columns),
                "rows": [[_jsonable(v) for v in row] for row in table.rows],
                "notes": list(table.notes),
            },
        }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nwrote {args.json} ({len(report)} experiments)", file=sys.stderr)
    return 0


def _jsonable(v):
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return str(v)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
