"""Benchmark harness and the paper's experiment suite."""

from repro.bench.experiments import (
    EXPERIMENTS,
    e1_table1,
    e2_table2,
    e3_count_bug,
    e4_subseteq_bug,
    e5_q1_q2,
    e6_unnest_collapse,
    e7_section8,
    e8_nested_vs_flat,
    e9_nestjoin_impls,
    e10_outerjoin_detour,
    e11_semijoin_vs_nestjoin,
    e12_scaling,
)
from repro.bench.harness import ResultTable, fmt_seconds, speedup, time_best

__all__ = [
    "ResultTable",
    "time_best",
    "fmt_seconds",
    "speedup",
    "EXPERIMENTS",
    "e1_table1",
    "e2_table2",
    "e3_count_bug",
    "e4_subseteq_bug",
    "e5_q1_q2",
    "e6_unnest_collapse",
    "e7_section8",
    "e8_nested_vs_flat",
    "e9_nestjoin_impls",
    "e10_outerjoin_detour",
    "e11_semijoin_vs_nestjoin",
    "e12_scaling",
]
