"""repro — a reproduction of *Optimization of Nested Queries in a Complex
Object Model* (Steenhagen, Apers, Blanken; EDBT 1994).

The library provides, end to end:

* the **TM complex-object data model** (:mod:`repro.model`): tuple / set /
  list / variant values and types, schemas with classes and sorts;
* a **TM-like SFW query language** (:mod:`repro.lang`): parser, type
  checker, and a nested-loop interpreter that defines the semantics;
* a **complex-object algebra** (:mod:`repro.algebra`) including the paper's
  **nest join** operator and its algebraic laws;
* the **predicate classifier** and **unnesting translator**
  (:mod:`repro.core`): Theorem 1 / Table 2 as a decision procedure that
  turns nested queries into semijoin / antijoin / nest-join plans;
* a **physical engine** (:mod:`repro.engine`) with nested-loop, hash, and
  sort-merge implementations of all five join modes and a cost-based
  algorithm selector;
* the **relational baselines** (:mod:`repro.baselines`): Kim's algorithm
  (exhibiting the COUNT bug), the Ganski–Wong outerjoin fix, and
  Muralikrishna's antijoin-predicate fix;
* **workload generators** (:mod:`repro.workloads`) and a benchmark harness
  (:mod:`repro.bench`) regenerating every table and worked example of the
  paper.

Quickstart::

    from repro import Catalog, Tup, run_query

    catalog = Catalog()
    catalog.add_rows("R", [Tup(b=0, c=9), Tup(b=1, c=1)])
    catalog.add_rows("S", [Tup(c=1, d=1)])

    result = run_query(
        "SELECT r FROM R r WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)",
        catalog,
    )
    # Both rows survive: the nest join keeps the dangling r with b = 0.
    assert len(result.value) == 2
"""

from repro.core.pipeline import (
    PreparedQuery,
    QueryResult,
    clear_plan_cache,
    explain_query,
    plan_cache_stats,
    prepare,
    prepared,
    run_query,
)
from repro.engine.table import Catalog, Table
from repro.errors import ReproError
from repro.lang.parser import parse, parse_query
from repro.model.values import NULL, Tup, Variant, make_value

__version__ = "1.0.0"

__all__ = [
    "run_query",
    "explain_query",
    "prepare",
    "prepared",
    "PreparedQuery",
    "plan_cache_stats",
    "clear_plan_cache",
    "QueryResult",
    "Catalog",
    "Table",
    "Tup",
    "Variant",
    "NULL",
    "make_value",
    "parse",
    "parse_query",
    "ReproError",
    "__version__",
]
