"""The paper's running example: Employees and Departments (Section 3.2).

Generates a catalog with extensions ``EMP`` and ``DEPT`` conforming to the
classes of :func:`repro.model.schema.company_schema`. Department employee
sets are materialised by value (as the paper notes set-valued attributes
conceptually are).

Tunables match what the example queries Q1/Q2 exercise: the probability
that some employee of a department lives in the department's street/city
controls the selectivity of Q1; the number of employees per city controls
the size of Q2's nested results.
"""

from __future__ import annotations

import random

from repro.engine.table import Catalog
from repro.model.schema import company_schema
from repro.model.values import Tup

__all__ = ["make_company", "CITIES", "STREETS"]

CITIES = [
    "Enschede",
    "Hengelo",
    "Almelo",
    "Zwolle",
    "Deventer",
    "Apeldoorn",
    "Arnhem",
    "Nijmegen",
]

STREETS = [
    "Drienerlolaan",
    "Oude Markt",
    "Langestraat",
    "Haverstraatpassage",
    "Stationsplein",
    "De Heurne",
    "Boulevard 1945",
    "Hengelosestraat",
]

_FIRST = ["Anna", "Bram", "Carla", "Daan", "Eva", "Frank", "Greet", "Hugo", "Iris", "Jan"]
_LAST = ["de Vries", "Jansen", "Bakker", "Visser", "Smit", "Meijer", "Mulder", "Bos"]


def _address(rng: random.Random) -> Tup:
    return Tup(
        street=rng.choice(STREETS),
        nr=str(rng.randrange(1, 200)),
        city=rng.choice(CITIES),
    )


def _children(rng: random.Random, max_children: int) -> frozenset:
    n = rng.randrange(0, max_children + 1)
    kids = set()
    for _ in range(n):
        kids.add(Tup(name=rng.choice(_FIRST), age=rng.randrange(0, 18)))
    return frozenset(kids)


def make_company(
    n_departments: int = 10,
    n_employees: int = 100,
    max_children: int = 3,
    p_same_street: float = 0.2,
    seed: int = 0,
    validate: bool = True,
) -> Catalog:
    """Build a company catalog (extensions ``EMP`` and ``DEPT``).

    Every employee belongs to exactly one department; with probability
    ``p_same_street`` a department is guaranteed at least one employee whose
    address street+city equal the department's (making it a Q1 answer).
    """
    rng = random.Random(seed)
    employees: list[Tup] = []
    for i in range(n_employees):
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)} #{i}"
        employees.append(
            Tup(
                name=name,
                address=_address(rng),
                sal=rng.randrange(20, 120) * 1000,
                children=_children(rng, max_children),
            )
        )
    # Partition employees over departments.
    assignments: list[list[Tup]] = [[] for _ in range(n_departments)]
    for emp in employees:
        assignments[rng.randrange(n_departments)].append(emp)
    departments: list[Tup] = []
    for d in range(n_departments):
        dept_address = _address(rng)
        members = assignments[d]
        if members and rng.random() < p_same_street:
            # Relocate one member to the department's street and city.
            chosen = rng.randrange(len(members))
            emp = members[chosen]
            relocated = emp.replace(
                address=emp.address.replace(
                    street=dept_address.street, city=dept_address.city
                )
            )
            members[chosen] = relocated
            employees[employees.index(emp)] = relocated
        departments.append(
            Tup(name=f"Dept-{d}", address=dept_address, emps=frozenset(members))
        )
    schema = company_schema() if validate else None
    catalog = Catalog(schema)
    catalog.add_rows("EMP", employees)
    catalog.add_rows("DEPT", departments)
    return catalog
