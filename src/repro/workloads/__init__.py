"""Seeded synthetic workloads for the paper's examples and benchmarks."""

from repro.workloads.company import CITIES, STREETS, make_company
from repro.workloads.queries import (
    COUNT_BUG_NESTED,
    Q1_SAME_STREET,
    Q2_EMPS_BY_CITY,
    SECTION8_FLAT_VARIANT,
    SECTION8_QUERY,
    SUBSETEQ_BUG_NESTED,
    UNNEST_COLLAPSE,
)
from repro.workloads.library import LIBRARY_DDL, LIBRARY_QUERIES, make_library
from repro.workloads.relational import (
    JoinWorkload,
    make_chain_workload,
    make_join_workload,
    make_set_workload,
)

__all__ = [
    "make_library",
    "LIBRARY_DDL",
    "LIBRARY_QUERIES",
    "make_company",
    "CITIES",
    "STREETS",
    "JoinWorkload",
    "make_join_workload",
    "make_chain_workload",
    "make_set_workload",
    "Q1_SAME_STREET",
    "Q2_EMPS_BY_CITY",
    "COUNT_BUG_NESTED",
    "SUBSETEQ_BUG_NESTED",
    "SECTION8_QUERY",
    "SECTION8_FLAT_VARIANT",
    "UNNEST_COLLAPSE",
]
