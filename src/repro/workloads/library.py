"""A second complex-object domain: a bibliographic database.

Papers with set-valued author and citation attributes, plus flat author
and venue tables — the shape that motivated complex-object models in the
first place (NF² databases grew out of office/document management). Used
by the `bibliography.py` example and the breadth tests; all generation is
seeded.

Schema (DDL in :data:`LIBRARY_DDL`):

* ``PAPERS``  — title, year, venue, authors (set of names), cites (set of
  titles), keywords (set of strings);
* ``AUTHORS`` — name, affiliation;
* ``VENUES``  — name, field.
"""

from __future__ import annotations

import random

from repro.engine.table import Catalog
from repro.model.ddl import parse_schema
from repro.model.values import Tup

__all__ = ["LIBRARY_DDL", "make_library", "LIBRARY_QUERIES"]

LIBRARY_DDL = """
CLASS Paper WITH EXTENSION PAPERS
ATTRIBUTES
    title : STRING,
    year : INT,
    venue : STRING,
    authors : P STRING,
    cites : P STRING,
    keywords : P STRING
END Paper

CLASS Author WITH EXTENSION AUTHORS
ATTRIBUTES
    name : STRING,
    affiliation : STRING
END Author

CLASS Venue WITH EXTENSION VENUES
ATTRIBUTES
    name : STRING,
    field : STRING
END Venue
"""

_FIELDS = ["databases", "systems", "theory", "pl"]
_KEYWORDS = ["nested", "join", "optimization", "objects", "algebra", "sql", "types"]
_AFFILIATIONS = ["Twente", "Wisconsin", "Berkeley", "IBM", "INRIA"]


def make_library(
    n_papers: int = 60,
    n_authors: int = 25,
    n_venues: int = 6,
    seed: int = 0,
) -> Catalog:
    """A seeded bibliographic catalog conforming to :data:`LIBRARY_DDL`."""
    rng = random.Random(seed)
    schema = parse_schema(LIBRARY_DDL)
    catalog = Catalog(schema)

    author_names = [f"author-{i:02d}" for i in range(n_authors)]
    catalog.add_rows(
        "AUTHORS",
        [Tup(name=n, affiliation=rng.choice(_AFFILIATIONS)) for n in author_names],
    )
    venue_names = [f"venue-{i}" for i in range(n_venues)]
    catalog.add_rows(
        "VENUES",
        [Tup(name=n, field=rng.choice(_FIELDS)) for n in venue_names],
    )
    titles = [f"paper-{i:03d}" for i in range(n_papers)]
    papers = []
    for i, title in enumerate(titles):
        # Papers cite strictly earlier papers: the citation graph is acyclic.
        pool = titles[:i]
        cites = frozenset(rng.sample(pool, k=min(len(pool), rng.randrange(4))))
        papers.append(
            Tup(
                title=title,
                year=1986 + i % 9,
                venue=rng.choice(venue_names),
                authors=frozenset(rng.sample(author_names, k=rng.randrange(1, 4))),
                cites=cites,
                keywords=frozenset(rng.sample(_KEYWORDS, k=rng.randrange(1, 4))),
            )
        )
    catalog.add_rows("PAPERS", papers)
    return catalog


#: Named nested queries over the library (used by tests and the example).
LIBRARY_QUERIES = {
    # WHERE-nesting, grouping (⊆ between blocks): papers all of whose
    # citations appear in the same venue's proceedings.
    "self_contained_venues": """
        SELECT p.title FROM PAPERS p
        WHERE p.cites SUBSETEQ (SELECT q.title FROM PAPERS q
                                WHERE q.venue = p.venue)
    """,
    # Aggregate between blocks (COUNT-bug shape): papers whose year parity
    # equals their in-venue citation count parity — dangling papers count 0.
    "citation_count_parity": """
        SELECT p.title FROM PAPERS p
        WHERE p.year % 2 = COUNT(SELECT q FROM PAPERS q
                                 WHERE q.venue = p.venue AND
                                       p.title IN q.cites) % 2
    """,
    # ∃-form (semijoin): papers cited by some paper in the same venue.
    "cited_in_venue": """
        SELECT p.title FROM PAPERS p
        WHERE EXISTS q IN (SELECT q2 FROM PAPERS q2 WHERE q2.venue = p.venue)
                    (p.title IN q.cites)
    """,
    # SELECT-clause nesting (nest join): per venue, the titles published there.
    "venue_portfolios": """
        SELECT (venue = v.name,
                titles = (SELECT p.title FROM PAPERS p WHERE p.venue = v.name))
        FROM VENUES v
    """,
    # Set-valued attribute subquery (stays nested, quantifier-rewritten):
    # papers with an author affiliated with Twente.
    "twente_papers": """
        SELECT p.title FROM PAPERS p
        WHERE EXISTS a IN (SELECT t.name FROM AUTHORS t
                           WHERE t.affiliation = 'Twente')
                   (a IN p.authors)
    """,
}
