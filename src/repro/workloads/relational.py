"""Synthetic flat-relation workloads.

These generators produce the R/S/T-style relations the paper's relational
discussion (Section 2) and the benchmarks use. All generation is seeded and
deterministic. The two knobs the paper's arguments hinge on are explicit:

* ``match_rate`` — the fraction of left tuples with at least one join
  partner (``1 - match_rate`` is the *dangling* fraction, the tuples the
  COUNT bug loses);
* ``fanout`` — how many right tuples match each matching left tuple (drives
  grouping cost and the size of nested sets).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.table import Catalog
from repro.model.values import Tup

__all__ = ["JoinWorkload", "make_join_workload", "make_chain_workload", "make_set_workload"]


@dataclass
class JoinWorkload:
    """A pair of relations R(a, b, c) and S(c, d) with known join structure."""

    catalog: Catalog
    n_left: int
    n_right: int
    match_rate: float
    fanout: int
    seed: int

    @property
    def dangling(self) -> int:
        """Number of R tuples with no S partner (the COUNT-bug victims)."""
        return self.n_left - int(self.n_left * self.match_rate)


def make_join_workload(
    n_left: int = 100,
    n_right: int | None = None,
    match_rate: float = 0.5,
    fanout: int = 2,
    seed: int = 0,
    left_name: str = "R",
    right_name: str = "S",
) -> JoinWorkload:
    """Build R(a, b, c) ⋈ S(c, d) with exact match structure.

    R tuple *i* joins S on ``c = i``; tuples with ``i < n_left*match_rate``
    get exactly ``fanout`` S partners, the rest none. ``R.b`` is set to the
    *actual* partner count for half of the matching tuples and for half of
    the dangling ones (b = 0), so ``R.b = COUNT(...)`` selects a known mix
    of matched and dangling tuples — the COUNT bug is then a visible row
    deficit, not a coincidence.
    """
    rng = random.Random(seed)
    matching = int(n_left * match_rate)
    r_rows = []
    for i in range(n_left):
        partners = fanout if i < matching else 0
        # Half the tuples carry their true partner count in b (so the
        # COUNT predicate accepts them), half carry a wrong count.
        honest = rng.random() < 0.5
        b = partners if honest else partners + 1 + rng.randrange(3)
        r_rows.append(Tup(a=i, b=b, c=i))
    s_rows = []
    for i in range(matching):
        for j in range(fanout):
            s_rows.append(Tup(c=i, d=i * fanout + j))
    if n_right is not None:
        # Pad with non-joining tuples to reach the requested size.
        extra = n_right - len(s_rows)
        for k in range(max(0, extra)):
            s_rows.append(Tup(c=n_left + k, d=-(k + 1)))
    catalog = Catalog()
    catalog.add_rows(left_name, r_rows, key=("a",))
    catalog.add_rows(right_name, s_rows)
    return JoinWorkload(catalog, n_left, len(s_rows), match_rate, fanout, seed)


def make_chain_workload(
    n_x: int = 50,
    n_y: int = 50,
    n_z: int = 50,
    match_rate: float = 0.7,
    fanout: int = 2,
    set_size: int = 2,
    seed: int = 0,
) -> Catalog:
    """Three relations for Section 8-style linear queries.

    X(a: set of int, b, c), Y(a, b, c: set of int, d), Z(c, d): X joins Y
    on b, Y joins Z on d; X.a and Y.c use small int domains so that
    SUBSETEQ predicates hold for a controllable fraction of tuples.
    """
    rng = random.Random(seed)
    catalog = Catalog()
    x_rows = []
    for i in range(n_x):
        members = frozenset(rng.sample(range(8), k=min(set_size, 8)))
        x_rows.append(
            Tup(a=members, b=i % max(1, int(n_y * match_rate)), c=rng.randrange(8))
        )
    y_rows = []
    for i in range(n_y):
        c_members = frozenset(rng.sample(range(8), k=min(set_size, 8)))
        y_rows.append(Tup(a=rng.randrange(8), b=i, c=c_members, d=i % max(1, int(n_z * match_rate))))
    z_rows = []
    for i in range(n_z):
        for j in range(fanout):
            z_rows.append(Tup(c=rng.randrange(8), d=i))
    catalog.add_rows("X", x_rows)
    catalog.add_rows("Y", y_rows)
    catalog.add_rows("Z", z_rows)
    return catalog


def make_set_workload(
    n_left: int = 50,
    n_right: int = 50,
    domain: int = 6,
    set_size: int = 2,
    match_rate: float = 0.6,
    seed: int = 0,
) -> Catalog:
    """X(a: set of int, b, c) and Y(a, b) for the TM-specific predicates.

    Used by the SUBSETEQ-bug experiment: a controllable fraction of X
    tuples have no Y partner on b (dangling) and ``X.a = ∅`` for some of
    those, so ``x.a ⊆ z`` accepts dangling tuples exactly when a = ∅.
    """
    rng = random.Random(seed)
    catalog = Catalog()
    matching_b = max(1, int(n_right * match_rate))
    x_rows = []
    for i in range(n_left):
        empty = rng.random() < 0.3
        members = frozenset() if empty else frozenset(rng.sample(range(domain), k=set_size))
        dangling = rng.random() > match_rate
        b = (i % matching_b) if not dangling else n_right + i  # no Y partner
        x_rows.append(Tup(a=members, b=b, c=rng.randrange(domain)))
    y_rows = []
    for i in range(n_right):
        y_rows.append(Tup(a=rng.randrange(domain), b=i % matching_b))
    catalog.add_rows("X", x_rows)
    catalog.add_rows("Y", y_rows)
    return catalog
