"""The paper's queries, verbatim (modulo concrete syntax).

Every worked example of the paper is available as a named constant so
tests, examples, and benchmarks all run exactly the same text.
"""

from __future__ import annotations

__all__ = [
    "Q1_SAME_STREET",
    "Q2_EMPS_BY_CITY",
    "COUNT_BUG_NESTED",
    "SUBSETEQ_BUG_NESTED",
    "SECTION8_QUERY",
    "SECTION8_FLAT_VARIANT",
    "UNNEST_COLLAPSE",
]

#: Q1 (Section 3.2): departments with an employee living in the same street
#: the department is located. The subquery ranges over the *set-valued
#: attribute* d.emps — the paper argues such subqueries should stay nested.
Q1_SAME_STREET = """
SELECT d FROM DEPT d
WHERE (s = d.address.street, c = d.address.city)
      IN (SELECT (s = e.address.street, c = e.address.city) FROM d.emps e)
"""

#: Q2 (Section 3.2): per department, its name and the employees living in
#: the department's city. SELECT-clause nesting over a stored table →
#: nest join.
Q2_EMPS_BY_CITY = """
SELECT (dname = d.name,
        emps = (SELECT e FROM EMP e WHERE e.address.city = d.address.city))
FROM DEPT d
"""

#: The COUNT-bug query of Section 2: R rows whose b equals the number of
#: matching S rows. Dangling R rows with b = 0 belong to the answer.
COUNT_BUG_NESTED = """
SELECT r FROM R r
WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)
"""

#: The SUBSETEQ-bug query of Section 4: the generalised COUNT bug. X rows
#: with x.a = ∅ and no Y partner belong to the answer.
SUBSETEQ_BUG_NESTED = """
SELECT x FROM X x
WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)
"""

#: The Section 8 example: an acyclic linear query, both inter-block
#: predicates requiring grouping (P1: ⊆ between X and Y; P2: ⊆ between Y
#: and Z) — processed with two nest joins.
SECTION8_QUERY = """
SELECT x FROM X x
WHERE x.a SUBSETEQ (SELECT y.a FROM Y y
                    WHERE x.b = y.b AND
                          y.c SUBSETEQ (SELECT z.c FROM Z z
                                        WHERE y.d = z.d))
"""

#: Section 8's closing remark: change ⊆ into ∈ (P1) and NOT-⊆ into ∉ (P2) —
#: then the nest joins become a semijoin and an antijoin.
SECTION8_FLAT_VARIANT = """
SELECT x FROM X x
WHERE x.c IN (SELECT y.a FROM Y y
              WHERE x.b = y.b AND
                    y.a NOT IN (SELECT z.c FROM Z z
                                WHERE y.d = z.d))
"""

#: The Section 5 special case: UNNEST of a directly nested SELECT collapses
#: to a flat join query.
UNNEST_COLLAPSE = """
UNNEST(SELECT (SELECT (a = x.a, b = y.b) FROM Y y WHERE x.b = y.a) FROM X x)
"""
