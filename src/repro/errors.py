"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class. Sub-classes partition failures by pipeline
stage (parsing, type checking, planning, execution) which mirrors the
architecture described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValueModelError(ReproError):
    """An ill-formed value was constructed (e.g. unhashable set member)."""


class TypeModelError(ReproError):
    """An ill-formed type was constructed (e.g. duplicate tuple labels)."""


class SchemaError(ReproError):
    """A schema/class/sort definition is inconsistent."""


class ValidationError(ReproError):
    """A value does not conform to its declared type."""


class LexError(ReproError):
    """The query text contains an unrecognised token."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(ReproError):
    """The query text is syntactically invalid."""

    def __init__(self, message: str, position: int = -1, line: int = -1, column: int = -1):
        location = f" at line {line}, column {column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


class NameError_(ReproError):
    """A variable, table, or attribute name could not be resolved."""


class TypeCheckError(ReproError):
    """An expression is ill-typed."""


class PlanError(ReproError):
    """A logical or physical plan is ill-formed."""


class UnsupportedQueryError(ReproError):
    """The query shape falls outside what the translator supports.

    The paper restricts itself to linear nested queries (one subquery per
    WHERE clause) and acyclic correlation; shapes outside this class are
    reported with this error rather than silently mis-translated.
    """


class ExecutionError(ReproError):
    """A runtime failure while evaluating an expression or plan."""


class CancelledError(ReproError):
    """Cooperative cancellation fired: a deadline expired or an explicit
    cancel was requested while a physical plan was executing (see
    :mod:`repro.engine.cancel`)."""


class RejectedError(ReproError):
    """The query service shed a request: the admission queue was at
    capacity, or the service has been stopped (see :mod:`repro.server`)."""


class WorkerCrashError(ExecutionError):
    """A parallel worker process died mid-fragment (killed, segfaulted, or
    its pipe closed unexpectedly). The pool discards its workers and
    respawns on next use; the in-flight query surfaces this error rather
    than a partial result (see :mod:`repro.parallel.pool`)."""


class CatalogError(ReproError):
    """A catalog lookup failed or a table definition is inconsistent."""
