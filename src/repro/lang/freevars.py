"""Free-variable and correlation analysis.

A *correlated* subquery is an SFW block whose body references variables
bound outside the block (the paper restricts attention to these: a subquery
without free variables is simply a constant). This module computes free
variables and locates correlated subqueries, which drives both the
classifier and the translator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    SFW,
    Attr,
    Expr,
    Quant,
    Var,
    children,
)

__all__ = ["free_vars", "is_correlated", "correlation_vars", "find_subqueries", "SubqueryOccurrence"]


def free_vars(expr: Expr) -> frozenset[str]:
    """The set of variable names occurring free in *expr*.

    Table extension names appear as free variables too; callers separate
    them by catalog membership.
    """
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Quant):
        return free_vars(expr.domain) | (free_vars(expr.pred) - {expr.var})
    if isinstance(expr, SFW):
        inner = free_vars(expr.select)
        if expr.where is not None:
            inner = inner | free_vars(expr.where)
        return free_vars(expr.source) | (inner - {expr.var})
    out: frozenset[str] = frozenset()
    for child in children(expr):
        out = out | free_vars(child)
    return out


def is_correlated(subquery: SFW, outer_vars: frozenset[str] | set[str]) -> bool:
    """True iff *subquery* references any of *outer_vars* free."""
    return bool(free_vars(subquery) & frozenset(outer_vars))


def correlation_vars(subquery: SFW, outer_vars: frozenset[str] | set[str]) -> frozenset[str]:
    """The outer variables referenced free by *subquery*."""
    return free_vars(subquery) & frozenset(outer_vars)


@dataclass(frozen=True)
class SubqueryOccurrence:
    """A maximal SFW block found inside an expression.

    ``path`` is the chain of parent expressions from the root (exclusive)
    down to the subquery (exclusive); useful for diagnostics.
    """

    subquery: SFW
    depth: int


def find_subqueries(expr: Expr) -> tuple[SubqueryOccurrence, ...]:
    """All *maximal* SFW blocks properly inside *expr*.

    Maximal means the search does not descend into an SFW once found —
    multi-level nesting is handled one level at a time by the translator.
    If *expr* itself is an SFW, its clauses are searched (the block itself
    is not its own subquery).
    """
    found: list[SubqueryOccurrence] = []

    def go(e: Expr, depth: int) -> None:
        for child in children(e):
            if isinstance(child, SFW):
                found.append(SubqueryOccurrence(child, depth))
            else:
                go(child, depth + 1)

    go(expr, 0)
    return tuple(found)


def attr_root(expr: Expr) -> str | None:
    """If *expr* is a (possibly nested) attribute path ``v.a.b...``, its root variable."""
    while isinstance(expr, Attr):
        expr = expr.base
    if isinstance(expr, Var):
        return expr.name
    return None


def uses_only(expr: Expr, allowed: frozenset[str] | set[str]) -> bool:
    """True iff every free variable of *expr* is in *allowed*."""
    return free_vars(expr) <= frozenset(allowed)
