"""Direct interpreter for the SFW expression language.

This interpreter defines the *semantics* of the language, and therefore is
the correctness oracle for every transformation in the library: it evaluates
nested queries by naive nested-loop processing, exactly the strategy the
paper says "gives correct results but may be very inefficient" (Section 6).

Evaluation needs:

* an environment binding iteration variables to values, and
* a table lookup (extension name → set of row tuples), supplied by any
  mapping — typically a :class:`repro.engine.table.Catalog`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ExecutionError, NameError_
from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    And,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    Or,
    PayloadOf,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TagOf,
    TupleExpr,
    UnnestExpr,
    Var,
    VariantExpr,
)
from repro.model.compare import compare, sort_key
from repro.model.values import Null, Tup, Variant

__all__ = ["Env", "evaluate", "evaluate_predicate"]


class Env:
    """An immutable chain of variable bindings."""

    __slots__ = ("_bindings", "_parent")

    def __init__(self, bindings: Mapping[str, Any] | None = None, parent: "Env | None" = None):
        self._bindings = dict(bindings) if bindings else {}
        self._parent = parent

    def bind(self, name: str, value: Any) -> "Env":
        """A child environment with one extra binding."""
        return Env({name: value}, self)

    def lookup(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise NameError_(f"unbound variable {name!r}")

    def __contains__(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env._bindings:
                return True
            env = env._parent
        return False

    @staticmethod
    def empty() -> "Env":
        return Env()


TableLookup = Callable[[str], Any]


def _resolve_var(name: str, env: Env, tables: Mapping[str, Any] | None) -> Any:
    if name in env:
        return env.lookup(name)
    if tables is not None and name in tables:
        value = tables[name]
        # Catalog tables expose .as_set(); plain mappings may hold values.
        as_set = getattr(value, "as_set", None)
        return as_set() if callable(as_set) else value
    raise NameError_(f"unbound variable or unknown table {name!r}")


def evaluate(expr: Expr, env: Env | None = None, tables: Mapping[str, Any] | None = None) -> Any:
    """Evaluate *expr* to a model value.

    ``tables`` maps extension names to either frozensets of rows or objects
    with an ``as_set()`` method (e.g. :class:`repro.engine.table.Table`).
    """
    env = env if env is not None else Env.empty()
    return _eval(expr, env, tables)


def evaluate_predicate(expr: Expr, env: Env, tables: Mapping[str, Any] | None = None) -> bool:
    """Evaluate *expr* and require a boolean result."""
    result = _eval(expr, env, tables)
    if not isinstance(result, bool):
        raise ExecutionError(f"predicate evaluated to non-boolean {result!r}")
    return result


def _eval(e: Expr, env: Env, tables: Mapping[str, Any] | None) -> Any:
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Var):
        return _resolve_var(e.name, env, tables)
    if isinstance(e, Attr):
        base = _eval(e.base, env, tables)
        if not isinstance(base, Tup):
            raise ExecutionError(f"attribute access .{e.label} on non-tuple {base!r}")
        try:
            return base[e.label]
        except KeyError as exc:
            raise ExecutionError(str(exc)) from None
    if isinstance(e, TupleExpr):
        return Tup({label: _eval(v, env, tables) for label, v in e.fields})
    if isinstance(e, SetExpr):
        return frozenset(_eval(item, env, tables) for item in e.items)
    if isinstance(e, ListExpr):
        return tuple(_eval(item, env, tables) for item in e.items)
    if isinstance(e, VariantExpr):
        return Variant(e.tag, _eval(e.value, env, tables))
    if isinstance(e, Not):
        return not _eval_bool(e.operand, env, tables)
    if isinstance(e, And):
        return all(_eval_bool(item, env, tables) for item in e.items)
    if isinstance(e, Or):
        return any(_eval_bool(item, env, tables) for item in e.items)
    if isinstance(e, Cmp):
        return _eval_cmp(e, env, tables)
    if isinstance(e, Arith):
        return _eval_arith(e, env, tables)
    if isinstance(e, Neg):
        v = _eval(e.operand, env, tables)
        _require_number(v, "unary minus")
        return -v
    if isinstance(e, SetOp):
        left = _require_set(_eval(e.left, env, tables), "set operation")
        right = _require_set(_eval(e.right, env, tables), "set operation")
        if e.op == SetOpKind.UNION:
            return left | right
        if e.op == SetOpKind.INTERSECT:
            return left & right
        return left - right
    if isinstance(e, Agg):
        return _eval_agg(e, env, tables)
    if isinstance(e, Quant):
        domain = _eval(e.domain, env, tables)
        members = _iterate(domain, "quantifier domain")
        if e.kind == QuantKind.EXISTS:
            return any(_eval_bool(e.pred, env.bind(e.var, m), tables) for m in members)
        return all(_eval_bool(e.pred, env.bind(e.var, m), tables) for m in members)
    if isinstance(e, SFW):
        source = _eval(e.source, env, tables)
        members = _iterate(source, "FROM clause operand")
        out = set()
        for m in members:
            inner = env.bind(e.var, m)
            if e.where is None or _eval_bool(e.where, inner, tables):
                out.add(_eval(e.select, inner, tables))
        return frozenset(out)
    if isinstance(e, UnnestExpr):
        outer = _require_set(_eval(e.operand, env, tables), "UNNEST")
        out = set()
        for member in outer:
            out |= _require_set(member, "UNNEST member")
        return frozenset(out)
    if isinstance(e, TagOf):
        v = _eval(e.operand, env, tables)
        if not isinstance(v, Variant):
            raise ExecutionError(f"TAG of non-variant {v!r}")
        return v.tag
    if isinstance(e, PayloadOf):
        v = _eval(e.operand, env, tables)
        if not isinstance(v, Variant):
            raise ExecutionError(f"PAYLOAD of non-variant {v!r}")
        return v.value
    raise ExecutionError(f"cannot evaluate {type(e).__name__}")


def _eval_bool(e: Expr, env: Env, tables) -> bool:
    v = _eval(e, env, tables)
    if not isinstance(v, bool):
        raise ExecutionError(f"expected boolean, got {v!r}")
    return v


def _iterate(value: Any, what: str):
    if isinstance(value, frozenset):
        return value
    if isinstance(value, tuple):
        return value
    raise ExecutionError(f"{what} is not a collection: {value!r}")


def _require_set(value: Any, what: str) -> frozenset:
    if isinstance(value, frozenset):
        return value
    raise ExecutionError(f"{what} requires a set, got {value!r}")


def _require_number(value: Any, what: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{what} requires a number, got {value!r}")


def _eval_cmp(e: Cmp, env: Env, tables) -> bool:
    left = _eval(e.left, env, tables)
    right = _eval(e.right, env, tables)
    op = e.op
    if op == CmpOp.EQ:
        return _values_equal(left, right)
    if op == CmpOp.NE:
        return not _values_equal(left, right)
    if op in (CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE):
        _require_ordered(left, right)
        c = compare(left, right)
        if op == CmpOp.LT:
            return c < 0
        if op == CmpOp.LE:
            return c <= 0
        if op == CmpOp.GT:
            return c > 0
        return c >= 0
    if op == CmpOp.IN:
        return left in _iterate(right, "IN operand")
    if op == CmpOp.NOT_IN:
        return left not in _iterate(right, "NOT IN operand")
    lset = _require_set(left, f"{op.value} operand")
    rset = _require_set(right, f"{op.value} operand")
    if op == CmpOp.SUBSETEQ:
        return lset <= rset
    if op == CmpOp.SUBSET:
        return lset < rset
    if op == CmpOp.SUPSETEQ:
        return lset >= rset
    if op == CmpOp.SUPSET:
        return lset > rset
    raise ExecutionError(f"unknown comparison {op}")  # pragma: no cover


def _values_equal(a: Any, b: Any) -> bool:
    # NULL == NULL by design (see values.Null); mixed numeric types compare
    # numerically; everything else is structural equality.
    if isinstance(a, Null) or isinstance(b, Null):
        return isinstance(a, Null) and isinstance(b, Null)
    return a == b


def _require_ordered(a: Any, b: Any) -> None:
    ok_types = (int, float, str)
    a_ok = isinstance(a, ok_types) and not isinstance(a, bool)
    b_ok = isinstance(b, ok_types) and not isinstance(b, bool)
    if not (a_ok and b_ok):
        raise ExecutionError(f"ordering comparison requires numbers or strings, got {a!r} and {b!r}")
    if isinstance(a, str) != isinstance(b, str):
        raise ExecutionError(f"cannot order {a!r} against {b!r}")


def _eval_arith(e: Arith, env: Env, tables) -> Any:
    left = _eval(e.left, env, tables)
    right = _eval(e.right, env, tables)
    op = e.op
    if op == ArithOp.ADD and isinstance(left, str) and isinstance(right, str):
        return left + right
    _require_number(left, f"arithmetic {op.value}")
    _require_number(right, f"arithmetic {op.value}")
    if op == ArithOp.ADD:
        return left + right
    if op == ArithOp.SUB:
        return left - right
    if op == ArithOp.MUL:
        return left * right
    if op == ArithOp.DIV:
        if right == 0:
            raise ExecutionError("division by zero")
        result = left / right
        # Exact integer division stays integral (keeps INT typing honest).
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return left // right
        return result
    if op == ArithOp.MOD:
        if right == 0:
            raise ExecutionError("modulo by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op}")  # pragma: no cover


def _eval_agg(e: Agg, env: Env, tables) -> Any:
    operand = _eval(e.operand, env, tables)
    members = list(_iterate(operand, f"{e.func.value} operand"))
    if e.func == AggFunc.COUNT:
        return len(members)
    if e.func == AggFunc.SUM:
        # SUM(∅) = 0, mirroring COUNT(∅) = 0: both make the dangling-tuple
        # discussion of the paper crisp without a NULL.
        for m in members:
            _require_number(m, "sum")
        return sum(members)
    if not members:
        raise ExecutionError(f"{e.func.value} of an empty collection is undefined")
    if e.func == AggFunc.AVG:
        for m in members:
            _require_number(m, "avg")
        return sum(members) / len(members)
    if e.func == AggFunc.MIN:
        return min(members, key=sort_key)
    return max(members, key=sort_key)
