"""Static type checking for SFW expressions.

:func:`type_of` computes the type of an expression under a variable typing
environment and a table typing (extension name → row type). The translator
runs the checker first: classification of the predicate between query blocks
(Section 7 of the paper) depends on knowing whether attributes are
set-valued, and the algebra typing rules reuse the same machinery.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import TypeCheckError
from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    And,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    Or,
    PayloadOf,
    Quant,
    SetExpr,
    SetOp,
    TagOf,
    TupleExpr,
    UnnestExpr,
    Var,
    VariantExpr,
)
from repro.model.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    ListType,
    NullType,
    SetType,
    TupleType,
    Type,
    VariantType,
    is_numeric,
    type_of_value,
    unify,
)

__all__ = ["TypeEnv", "type_of", "check_boolean"]


class TypeEnv:
    """Immutable chain of variable typings plus a table typing.

    ``tables`` maps extension names to *row* types; a table reference has
    type ``SetType(row_type)``.
    """

    __slots__ = ("_bindings", "_parent", "tables")

    def __init__(
        self,
        bindings: Mapping[str, Type] | None = None,
        parent: "TypeEnv | None" = None,
        tables: Mapping[str, Type] | None = None,
    ):
        self._bindings = dict(bindings) if bindings else {}
        self._parent = parent
        if tables is not None:
            self.tables = dict(tables)
        elif parent is not None:
            self.tables = parent.tables
        else:
            self.tables = {}

    def bind(self, name: str, type_: Type) -> "TypeEnv":
        return TypeEnv({name: type_}, self)

    def lookup(self, name: str) -> Type | None:
        env: TypeEnv | None = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        return None

    @staticmethod
    def with_tables(tables: Mapping[str, Type]) -> "TypeEnv":
        return TypeEnv(tables=tables)


def type_of(expr: Expr, env: TypeEnv | None = None) -> Type:
    """The type of *expr*; raises :class:`TypeCheckError` if ill-typed."""
    env = env if env is not None else TypeEnv()
    return _type(expr, env)


def check_boolean(expr: Expr, env: TypeEnv) -> None:
    t = _type(expr, env)
    if not isinstance(t, AnyType) and t != BOOL:
        raise TypeCheckError(f"expected boolean predicate, got {t!r}")


def _type(e: Expr, env: TypeEnv) -> Type:
    if isinstance(e, Const):
        return type_of_value(e.value)
    if isinstance(e, Var):
        bound = env.lookup(e.name)
        if bound is not None:
            return bound
        if e.name in env.tables:
            return SetType(env.tables[e.name])
        raise TypeCheckError(f"unbound variable or unknown table {e.name!r}")
    if isinstance(e, Attr):
        base = _type(e.base, env)
        if isinstance(base, AnyType):
            return ANY
        if not isinstance(base, TupleType):
            raise TypeCheckError(f"attribute .{e.label} on non-tuple type {base!r}")
        if e.label not in base.fields:
            raise TypeCheckError(f"tuple type {base!r} has no field {e.label!r}")
        return base.fields[e.label]
    if isinstance(e, TupleExpr):
        return TupleType({label: _type(v, env) for label, v in e.fields})
    if isinstance(e, SetExpr):
        return SetType(_element_type(e.items, env, "set literal"))
    if isinstance(e, ListExpr):
        return ListType(_element_type(e.items, env, "list literal"))
    if isinstance(e, VariantExpr):
        return VariantType({e.tag: _type(e.value, env)})
    if isinstance(e, Not):
        check_boolean(e.operand, env)
        return BOOL
    if isinstance(e, (And, Or)):
        for item in e.items:
            check_boolean(item, env)
        return BOOL
    if isinstance(e, Cmp):
        return _type_cmp(e, env)
    if isinstance(e, Arith):
        return _type_arith(e, env)
    if isinstance(e, Neg):
        t = _type(e.operand, env)
        if isinstance(t, AnyType):
            return ANY
        if not is_numeric(t):
            raise TypeCheckError(f"unary minus on non-numeric type {t!r}")
        return t
    if isinstance(e, SetOp):
        lt = _type(e.left, env)
        rt = _type(e.right, env)
        lt = SetType(ANY) if isinstance(lt, AnyType) else lt
        rt = SetType(ANY) if isinstance(rt, AnyType) else rt
        if not isinstance(lt, SetType) or not isinstance(rt, SetType):
            raise TypeCheckError(f"set operation on non-sets: {lt!r}, {rt!r}")
        elem = unify(lt.element, rt.element)
        if elem is None:
            raise TypeCheckError(f"set operation over incompatible elements: {lt!r}, {rt!r}")
        return SetType(elem)
    if isinstance(e, Agg):
        return _type_agg(e, env)
    if isinstance(e, Quant):
        domain = _type(e.domain, env)
        elem = _collection_element(domain, "quantifier domain")
        check_boolean(e.pred, env.bind(e.var, elem))
        return BOOL
    if isinstance(e, SFW):
        source = _type(e.source, env)
        elem = _collection_element(source, "FROM clause operand")
        inner = env.bind(e.var, elem)
        if e.where is not None:
            check_boolean(e.where, inner)
        return SetType(_type(e.select, inner))
    if isinstance(e, TagOf):
        t = _type(e.operand, env)
        if not isinstance(t, (VariantType, AnyType)):
            raise TypeCheckError(f"TAG of non-variant type {t!r}")
        return STRING
    if isinstance(e, PayloadOf):
        t = _type(e.operand, env)
        if isinstance(t, AnyType):
            return ANY
        if not isinstance(t, VariantType):
            raise TypeCheckError(f"PAYLOAD of non-variant type {t!r}")
        payload: Type | None = None
        for case_type in t.cases.values():
            payload = case_type if payload is None else unify(payload, case_type)
            if payload is None:
                return ANY  # incompatible cases: statically unknown
        return payload if payload is not None else ANY
    if isinstance(e, UnnestExpr):
        t = _type(e.operand, env)
        if isinstance(t, AnyType):
            return SetType(ANY)
        if not isinstance(t, SetType):
            raise TypeCheckError(f"UNNEST on non-set type {t!r}")
        inner = t.element
        if isinstance(inner, AnyType):
            return SetType(ANY)
        if not isinstance(inner, SetType):
            raise TypeCheckError(f"UNNEST requires a set of sets, got {t!r}")
        return SetType(inner.element)
    raise TypeCheckError(f"cannot type {type(e).__name__}")


def _element_type(items, env: TypeEnv, what: str) -> Type:
    elem: Type | None = None
    for item in items:
        t = _type(item, env)
        u = t if elem is None else unify(elem, t)
        if u is None:
            raise TypeCheckError(f"{what} mixes incompatible element types {elem!r} and {t!r}")
        elem = u
    return ANY if elem is None else elem


def _collection_element(t: Type, what: str) -> Type:
    if isinstance(t, AnyType):
        return ANY
    if isinstance(t, (SetType, ListType)):
        return t.element
    raise TypeCheckError(f"{what} must be a set or list, got {t!r}")


_ORDER_OPS = (CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE)
_INCLUSION_OPS = (CmpOp.SUBSET, CmpOp.SUBSETEQ, CmpOp.SUPSET, CmpOp.SUPSETEQ)


def _type_cmp(e: Cmp, env: TypeEnv) -> Type:
    lt = _type(e.left, env)
    rt = _type(e.right, env)
    if e.op in (CmpOp.EQ, CmpOp.NE):
        if unify(lt, rt) is None:
            raise TypeCheckError(f"cannot compare {lt!r} with {rt!r}")
        return BOOL
    if e.op in _ORDER_OPS:
        ordered = (
            (is_numeric(lt) or isinstance(lt, (AnyType, NullType)))
            and (is_numeric(rt) or isinstance(rt, (AnyType, NullType)))
        ) or (lt == STRING and rt == STRING)
        if not ordered and not (isinstance(lt, AnyType) or isinstance(rt, AnyType)):
            raise TypeCheckError(f"ordering comparison over {lt!r} and {rt!r}")
        return BOOL
    if e.op in (CmpOp.IN, CmpOp.NOT_IN):
        elem = _collection_element(rt, f"right operand of {e.op.value.upper()}")
        if unify(lt, elem) is None:
            raise TypeCheckError(f"membership of {lt!r} in collection of {elem!r}")
        return BOOL
    if e.op in _INCLUSION_OPS:
        lset = SetType(ANY) if isinstance(lt, AnyType) else lt
        rset = SetType(ANY) if isinstance(rt, AnyType) else rt
        if not isinstance(lset, SetType) or not isinstance(rset, SetType):
            raise TypeCheckError(f"set inclusion over non-sets: {lt!r}, {rt!r}")
        if unify(lset.element, rset.element) is None:
            raise TypeCheckError(f"set inclusion over incompatible elements: {lt!r}, {rt!r}")
        return BOOL
    raise TypeCheckError(f"unknown comparison operator {e.op}")  # pragma: no cover


def _type_arith(e: Arith, env: TypeEnv) -> Type:
    lt = _type(e.left, env)
    rt = _type(e.right, env)
    if e.op == ArithOp.ADD and lt == STRING and rt == STRING:
        return STRING
    for t in (lt, rt):
        if not is_numeric(t) and not isinstance(t, (AnyType, NullType)):
            raise TypeCheckError(f"arithmetic {e.op.value} on non-numeric type {t!r}")
    if e.op == ArithOp.DIV:
        return FLOAT
    if lt == FLOAT or rt == FLOAT:
        return FLOAT
    if isinstance(lt, AnyType) or isinstance(rt, AnyType):
        return ANY
    return INT


def _type_agg(e: Agg, env: TypeEnv) -> Type:
    t = _type(e.operand, env)
    elem = _collection_element(t, f"{e.func.value} operand")
    if e.func == AggFunc.COUNT:
        return INT
    if e.func in (AggFunc.SUM, AggFunc.AVG):
        if not is_numeric(elem) and not isinstance(elem, (AnyType, NullType)):
            raise TypeCheckError(f"{e.func.value} over non-numeric elements {elem!r}")
        return FLOAT if e.func == AggFunc.AVG else (elem if is_numeric(elem) else ANY)
    # MIN/MAX: numeric or string elements
    if not is_numeric(elem) and elem != STRING and not isinstance(elem, (AnyType, NullType)):
        raise TypeCheckError(f"{e.func.value} over unordered elements {elem!r}")
    return elem
