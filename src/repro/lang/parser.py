"""Recursive-descent parser for the TM-like SFW language.

Grammar (precedence from loosest to tightest)::

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := additive (cmp_op additive)?
    cmp_op      := = | <> | != | < | <= | > | >= | IN | NOT IN
                 | SUBSET | SUBSETEQ | SUPSET | SUPSETEQ
    additive    := multiplic ((+ | - | UNION | DIFF) multiplic)*
    multiplic   := unary ((* | / | % | INTERSECT) unary)*
    unary       := - unary | postfix
    postfix     := primary (. IDENT)*
    primary     := literal | IDENT | tuple | set | list | ( expr )
                 | sfw | quantifier | aggregate | UNNEST ( expr )

    sfw         := SELECT expr FROM expr IDENT [WHERE expr]
                   [WITH IDENT = expr (, IDENT = expr)*]
    quantifier  := (EXISTS | FORALL) IDENT IN expr ( expr )
    aggregate   := (COUNT | SUM | AVG | MIN | MAX) ( expr )
    tuple       := ( IDENT = expr (, IDENT = expr)* )
    set         := { [expr (, expr)*] }
    list        := [ [expr (, expr)*] ]

Notes:

* ``( ident = ... )`` parses as a *tuple constructor* (the paper's syntax,
  e.g. ``(s = e.address.street, c = e.address.city)``). To write an equality
  whose left side is a bare variable inside parentheses, put the whole
  comparison elsewhere or use an attribute path — in practice predicates
  compare paths, so the ambiguity does not bite.
* The WITH clause of an SFW block is desugared by substituting each binding
  into the SELECT and WHERE clauses (the paper uses WITH purely for
  notational convenience). Bindings may reference earlier bindings.
* ``A DIFF B`` is set difference; ``-`` between sets is *not* supported
  (minus stays arithmetic).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TupleExpr,
    Var,
    VariantExpr,
    make_and,
    make_or,
    substitute,
)
from repro.lang.ast import PayloadOf, TagOf, UnnestExpr
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.model.values import NULL

__all__ = ["parse", "parse_query"]

_CMP_SYMBOLS = {
    "=": CmpOp.EQ,
    "<>": CmpOp.NE,
    "!=": CmpOp.NE,
    "<": CmpOp.LT,
    "<=": CmpOp.LE,
    ">": CmpOp.GT,
    ">=": CmpOp.GE,
}

_CMP_KEYWORDS = {
    "subset": CmpOp.SUBSET,
    "subseteq": CmpOp.SUBSETEQ,
    "supset": CmpOp.SUPSET,
    "supseteq": CmpOp.SUPSETEQ,
}

_AGG_KEYWORDS = {
    "count": AggFunc.COUNT,
    "sum": AggFunc.SUM,
    "avg": AggFunc.AVG,
    "min": AggFunc.MIN,
    "max": AggFunc.MAX,
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message}, found {tok.kind.value} {tok.text!r}", tok.position, tok.line, tok.column)

    def expect_symbol(self, sym: str) -> Token:
        if not self.peek().is_symbol(sym):
            raise self.error(f"expected {sym!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.peek().is_keyword(word):
            raise self.error(f"expected {word.upper()}")
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise self.error("expected identifier")
        self.advance()
        return tok.text

    def accept_symbol(self, sym: str) -> bool:
        if self.peek().is_symbol(sym):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        items = [self.parse_and()]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else make_or(items)

    def parse_and(self) -> Expr:
        items = [self.parse_not()]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else make_and(items)

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        tok = self.peek()
        if tok.kind == TokenKind.SYMBOL and tok.text in _CMP_SYMBOLS:
            self.advance()
            right = self.parse_additive()
            return Cmp(_CMP_SYMBOLS[tok.text], left, right)
        if tok.kind == TokenKind.KEYWORD and tok.text in _CMP_KEYWORDS:
            self.advance()
            right = self.parse_additive()
            return Cmp(_CMP_KEYWORDS[tok.text], left, right)
        if tok.is_keyword("in"):
            self.advance()
            right = self.parse_additive()
            return Cmp(CmpOp.IN, left, right)
        if tok.is_keyword("not") and self.peek(1).is_keyword("in"):
            self.advance()
            self.advance()
            right = self.parse_additive()
            return Cmp(CmpOp.NOT_IN, left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.is_symbol("+"):
                self.advance()
                left = Arith(ArithOp.ADD, left, self.parse_multiplicative())
            elif tok.is_symbol("-"):
                self.advance()
                left = Arith(ArithOp.SUB, left, self.parse_multiplicative())
            elif tok.is_keyword("union"):
                self.advance()
                left = SetOp(SetOpKind.UNION, left, self.parse_multiplicative())
            elif tok.is_keyword("diff"):
                self.advance()
                left = SetOp(SetOpKind.DIFF, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.is_symbol("*"):
                self.advance()
                left = Arith(ArithOp.MUL, left, self.parse_unary())
            elif tok.is_symbol("/"):
                self.advance()
                left = Arith(ArithOp.DIV, left, self.parse_unary())
            elif tok.is_symbol("%"):
                self.advance()
                left = Arith(ArithOp.MOD, left, self.parse_unary())
            elif tok.is_keyword("intersect"):
                self.advance()
                left = SetOp(SetOpKind.INTERSECT, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept_symbol("-"):
            return Neg(self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.peek().is_symbol("."):
            self.advance()
            label = self.expect_ident()
            expr = Attr(expr, label)
        return expr

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == TokenKind.INT:
            self.advance()
            return Const(int(tok.text))
        if tok.kind == TokenKind.FLOAT:
            self.advance()
            return Const(float(tok.text))
        if tok.kind == TokenKind.STRING:
            self.advance()
            return Const(tok.text)
        if tok.is_keyword("true"):
            self.advance()
            return Const(True)
        if tok.is_keyword("false"):
            self.advance()
            return Const(False)
        if tok.is_keyword("null"):
            self.advance()
            return Const(NULL)
        if tok.is_keyword("select"):
            return self.parse_sfw()
        if tok.is_keyword("exists") or tok.is_keyword("forall"):
            return self.parse_quantifier()
        if tok.kind == TokenKind.KEYWORD and tok.text in _AGG_KEYWORDS:
            self.advance()
            self.expect_symbol("(")
            operand = self.parse_expr()
            self.expect_symbol(")")
            return Agg(_AGG_KEYWORDS[tok.text], operand)
        if tok.is_keyword("unnest"):
            self.advance()
            self.expect_symbol("(")
            operand = self.parse_expr()
            self.expect_symbol(")")
            return UnnestExpr(operand)
        if tok.is_keyword("tag") or tok.is_keyword("payload"):
            self.advance()
            self.expect_symbol("(")
            operand = self.parse_expr()
            self.expect_symbol(")")
            return TagOf(operand) if tok.text == "tag" else PayloadOf(operand)
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return Var(tok.text)
        if (
            tok.is_symbol("<")
            and self.peek(1).kind == TokenKind.IDENT
            and self.peek(2).is_symbol(":")
        ):
            # Variant constructor: < tag : expr >. The payload is parsed at
            # additive precedence so the closing '>' is not mistaken for a
            # comparison; parenthesize boolean payloads: <ok: (a = b)>.
            self.advance()
            tag = self.expect_ident()
            self.expect_symbol(":")
            value = self.parse_additive()
            self.expect_symbol(">")
            return VariantExpr(tag, value)
        if tok.is_symbol("{"):
            return self.parse_set()
        if tok.is_symbol("["):
            return self.parse_list()
        if tok.is_symbol("("):
            # Lookahead: "( ident =" (but not "==") starts a tuple constructor.
            if (
                self.peek(1).kind == TokenKind.IDENT
                and self.peek(2).is_symbol("=")
            ):
                return self.parse_tuple()
            self.advance()
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        raise self.error("expected expression")

    def parse_tuple(self) -> Expr:
        self.expect_symbol("(")
        fields: list[tuple[str, Expr]] = []
        while True:
            label = self.expect_ident()
            self.expect_symbol("=")
            fields.append((label, self.parse_expr()))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return TupleExpr(tuple(fields))

    def parse_set(self) -> Expr:
        self.expect_symbol("{")
        items: list[Expr] = []
        if not self.peek().is_symbol("}"):
            items.append(self.parse_expr())
            while self.accept_symbol(","):
                items.append(self.parse_expr())
        self.expect_symbol("}")
        return SetExpr(tuple(items))

    def parse_list(self) -> Expr:
        self.expect_symbol("[")
        items: list[Expr] = []
        if not self.peek().is_symbol("]"):
            items.append(self.parse_expr())
            while self.accept_symbol(","):
                items.append(self.parse_expr())
        self.expect_symbol("]")
        return ListExpr(tuple(items))

    def parse_quantifier(self) -> Expr:
        kind = QuantKind.EXISTS if self.advance().text == "exists" else QuantKind.FORALL
        var = self.expect_ident()
        self.expect_keyword("in")
        domain = self.parse_additive()
        self.expect_symbol("(")
        pred = self.parse_expr()
        self.expect_symbol(")")
        return Quant(kind, var, domain, pred)

    def parse_sfw(self) -> Expr:
        self.expect_keyword("select")
        select = self.parse_expr()
        self.expect_keyword("from")
        source = self.parse_additive()
        var = self.expect_ident()
        where: Expr | None = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        if self.accept_keyword("with"):
            bindings: list[tuple[str, Expr]] = []
            while True:
                name = self.expect_ident()
                self.expect_symbol("=")
                bindings.append((name, self.parse_expr()))
                if not self.accept_symbol(","):
                    break
            # Substitute bindings (later bindings may use earlier ones).
            for name, value in reversed(bindings):
                select = substitute(select, name, value)
                if where is not None:
                    where = substitute(where, name, value)
        return SFW(select, var, source, where)


def parse(text: str) -> Expr:
    """Parse *text* as a single expression; raises :class:`ParseError`."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.peek().kind != TokenKind.EOF:
        raise parser.error("unexpected trailing input")
    return expr


def parse_query(text: str) -> SFW:
    """Parse *text* and require the result to be an SFW block (or UNNEST of one)."""
    expr = parse(text)
    if isinstance(expr, SFW):
        return expr
    raise ParseError("expected a SELECT-FROM-WHERE query at top level")
