"""Abstract syntax for the TM-like SFW expression language.

The language is *orthogonal* in the sense of the paper (Section 3.2): the
operand of a SELECT-FROM-WHERE block, its result expression, and its
predicate are all arbitrary expressions, so SFW blocks nest freely in the
SELECT clause, the FROM clause, and the WHERE clause.

Every node is an immutable, hashable dataclass; generic traversal
(:func:`children`, :func:`walk`, :func:`transform`) and capture-avoiding
substitution (:func:`substitute`) are provided here so that the normalizer,
the classifier, and the unnesting translator all share one toolkit.

The paper's WITH clause (local definitions) is parsed away by substitution;
it is notational convenience only, so the AST has no Let node.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Iterator

from repro.errors import ValueModelError
from repro.model.values import is_value, make_value, value_repr

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Attr",
    "TupleExpr",
    "SetExpr",
    "ListExpr",
    "VariantExpr",
    "Not",
    "And",
    "Or",
    "Cmp",
    "CmpOp",
    "Arith",
    "ArithOp",
    "Neg",
    "SetOp",
    "SetOpKind",
    "Agg",
    "AggFunc",
    "Quant",
    "QuantKind",
    "SFW",
    "UnnestExpr",
    "TagOf",
    "PayloadOf",
    "TRUE",
    "FALSE",
    "EMPTY_SET",
    "children",
    "walk",
    "transform",
    "substitute",
    "rename_var",
    "conjuncts",
    "make_and",
    "make_or",
    "negate",
    "is_true_const",
    "is_false_const",
    "fresh_name",
    "contains_sfw",
]


class Expr:
    """Abstract base class for expressions."""

    __slots__ = ()


class CmpOp(enum.Enum):
    """Binary comparison and set-predicate operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    NOT_IN = "not in"
    SUBSET = "subset"  # proper subset ⊂
    SUBSETEQ = "subseteq"  # ⊆
    SUPSET = "supset"  # proper superset ⊃
    SUPSETEQ = "supseteq"  # ⊇


#: Negation table for comparison operators (used by the normalizer).
NEGATED_CMP = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.IN: CmpOp.NOT_IN,
    CmpOp.NOT_IN: CmpOp.IN,
}

#: Mirror table: ``a OP b`` ≡ ``b mirror(OP) a`` (comparison operators only).
MIRRORED_CMP = {
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
    CmpOp.LT: CmpOp.GT,
    CmpOp.GT: CmpOp.LT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GE: CmpOp.LE,
    CmpOp.SUBSET: CmpOp.SUPSET,
    CmpOp.SUPSET: CmpOp.SUBSET,
    CmpOp.SUBSETEQ: CmpOp.SUPSETEQ,
    CmpOp.SUPSETEQ: CmpOp.SUBSETEQ,
}


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


class SetOpKind(enum.Enum):
    UNION = "union"
    INTERSECT = "intersect"
    DIFF = "diff"


class AggFunc(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class QuantKind(enum.Enum):
    EXISTS = "exists"
    FORALL = "forall"


@dataclass(frozen=True)
class Const(Expr):
    """A literal model value."""

    value: Any

    def __post_init__(self):
        if not is_value(self.value):
            object.__setattr__(self, "value", make_value(self.value))

    def __repr__(self) -> str:
        return f"Const({value_repr(self.value)})"


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference (an iteration variable or a table extension name)."""

    name: str


@dataclass(frozen=True)
class Attr(Expr):
    """Attribute access ``base.label``."""

    base: Expr
    label: str


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Tuple construction ``(a = e1, b = e2)``."""

    fields: tuple[tuple[str, Expr], ...]

    def __post_init__(self):
        labels = [label for label, _ in self.fields]
        if len(set(labels)) != len(labels):
            raise ValueModelError(f"duplicate labels in tuple expression: {labels}")


@dataclass(frozen=True)
class SetExpr(Expr):
    """Set construction ``{e1, e2, ...}``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class ListExpr(Expr):
    """List construction ``[e1, e2, ...]``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class VariantExpr(Expr):
    """Variant construction ``<tag: e>``."""

    tag: str
    value: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction (empty conjunction is TRUE)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction (empty disjunction is FALSE)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison or set predicate ``left OP right``."""

    op: CmpOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Arith(Expr):
    op: ArithOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Neg(Expr):
    """Unary arithmetic negation."""

    operand: Expr


@dataclass(frozen=True)
class SetOp(Expr):
    """Set algebra: union, intersection, difference."""

    op: SetOpKind
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Agg(Expr):
    """Aggregate function applied to a collection-valued expression."""

    func: AggFunc
    operand: Expr


@dataclass(frozen=True)
class Quant(Expr):
    """Quantified predicate ``EXISTS v IN domain (pred)`` / ``FORALL ...``.

    ``var`` is bound in ``pred`` only.
    """

    kind: QuantKind
    var: str
    domain: Expr
    pred: Expr


@dataclass(frozen=True)
class SFW(Expr):
    """``SELECT select FROM source var WHERE where``; result is a set.

    ``var`` is bound in ``select`` and ``where``. ``where`` may be None
    (no predicate).
    """

    select: Expr
    var: str
    source: Expr
    where: Expr | None = None


@dataclass(frozen=True)
class UnnestExpr(Expr):
    """``UNNEST(e)``: collapse a set of sets, UNNEST(S) = ⋃{s | s ∈ S}."""

    operand: Expr


@dataclass(frozen=True)
class TagOf(Expr):
    """``TAG(e)``: the tag of a variant value, as a string."""

    operand: Expr


@dataclass(frozen=True)
class PayloadOf(Expr):
    """``PAYLOAD(e)``: the payload of a variant value.

    Together with :class:`TagOf` this eliminates variants without binders:
    ``CASE``-style dispatch is written as
    ``TAG(v) = 'ok' AND PAYLOAD(v) > 2``.
    """

    operand: Expr


TRUE = Const(True)
FALSE = Const(False)
EMPTY_SET = Const(frozenset())


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------

def children(expr: Expr) -> tuple[Expr, ...]:
    """Direct sub-expressions of *expr*, in syntactic order."""
    out: list[Expr] = []
    for f in dataclass_fields(expr):  # type: ignore[arg-type]
        v = getattr(expr, f.name)
        if isinstance(v, Expr):
            out.append(v)
        elif isinstance(v, tuple):
            for item in v:
                if isinstance(item, Expr):
                    out.append(item)
                elif (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and isinstance(item[1], Expr)
                ):
                    out.append(item[1])
    return tuple(out)


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of *expr* and all sub-expressions."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def transform(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up rewriting: rebuild *expr* with children transformed, then apply *fn*.

    ``fn`` receives each (already rebuilt) node and returns its replacement.
    """
    rebuilt = _rebuild(expr, lambda child: transform(child, fn))
    return fn(rebuilt)


def _rebuild(expr: Expr, rec: Callable[[Expr], Expr]) -> Expr:
    """Rebuild one node with its direct children mapped through *rec*."""
    kwargs: dict[str, Any] = {}
    changed = False
    for f in dataclass_fields(expr):  # type: ignore[arg-type]
        v = getattr(expr, f.name)
        if isinstance(v, Expr):
            nv = rec(v)
            changed = changed or nv is not v
            kwargs[f.name] = nv
        elif isinstance(v, tuple):
            new_items = []
            item_changed = False
            for item in v:
                if isinstance(item, Expr):
                    ni = rec(item)
                    item_changed = item_changed or ni is not item
                    new_items.append(ni)
                elif (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and isinstance(item[1], Expr)
                ):
                    ni = rec(item[1])
                    item_changed = item_changed or ni is not item[1]
                    new_items.append((item[0], ni))
                else:
                    new_items.append(item)
            kwargs[f.name] = tuple(new_items) if item_changed else v
            changed = changed or item_changed
        else:
            kwargs[f.name] = v
    if not changed:
        return expr
    return type(expr)(**kwargs)


# ---------------------------------------------------------------------------
# Binders, substitution, fresh names
# ---------------------------------------------------------------------------

def binder_of(expr: Expr) -> str | None:
    """The variable bound by *expr*, if it is a binding form."""
    if isinstance(expr, (Quant, SFW)):
        return expr.var
    return None


_fresh_counter = itertools.count()


def fresh_name(prefix: str, avoid: frozenset[str] | set[str] = frozenset()) -> str:
    """A name starting with *prefix* that is not in *avoid*.

    Names carry a global counter so independently generated names never
    collide within one process.
    """
    while True:
        name = f"{prefix}_{next(_fresh_counter)}"
        if name not in avoid:
            return name


def substitute(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution of free occurrences of ``Var(name)``.

    Binders shadow: substitution does not descend into the parts of a
    ``Quant``/``SFW`` where *name* is rebound. Binders whose variable occurs
    free in *replacement* are alpha-renamed first.
    """
    from repro.lang.freevars import free_vars  # local import: freevars imports ast

    repl_free = free_vars(replacement)

    def go(e: Expr) -> Expr:
        if isinstance(e, Var):
            return replacement if e.name == name else e
        bound = binder_of(e)
        if bound is not None:
            if isinstance(e, Quant):
                domain = go(e.domain)
                if bound == name:
                    return Quant(e.kind, bound, domain, e.pred)
                if bound in repl_free:
                    new_var = fresh_name(bound, repl_free | free_vars(e.pred) | {name})
                    pred = substitute(e.pred, bound, Var(new_var))
                    return Quant(e.kind, new_var, domain, go(pred))
                return Quant(e.kind, bound, domain, go(e.pred))
            if isinstance(e, SFW):
                source = go(e.source)
                if bound == name:
                    return SFW(e.select, bound, source, e.where)
                if bound in repl_free:
                    avoid = repl_free | free_vars(e.select) | {name}
                    if e.where is not None:
                        avoid = avoid | free_vars(e.where)
                    new_var = fresh_name(bound, avoid)
                    select = substitute(e.select, bound, Var(new_var))
                    where = None if e.where is None else substitute(e.where, bound, Var(new_var))
                    return SFW(go(select), new_var, source, None if where is None else go(where))
                where = None if e.where is None else go(e.where)
                return SFW(go(e.select), bound, source, where)
        return _rebuild(e, go)

    return go(expr)


def rename_var(expr: Expr, old: str, new: str) -> Expr:
    """Rename a free variable (a special case of substitution)."""
    return substitute(expr, old, Var(new))


# ---------------------------------------------------------------------------
# Boolean helpers
# ---------------------------------------------------------------------------

def is_true_const(expr: Expr | None) -> bool:
    """Strict check for the literal TRUE (``Const(1)`` is *not* TRUE)."""
    return isinstance(expr, Const) and expr.value is True


def is_false_const(expr: Expr | None) -> bool:
    """Strict check for the literal FALSE (``Const(0)`` is *not* FALSE)."""
    return isinstance(expr, Const) and expr.value is False


def conjuncts(expr: Expr | None) -> tuple[Expr, ...]:
    """Flatten nested conjunctions into a tuple of conjuncts (TRUE → ())."""
    if expr is None or is_true_const(expr):
        return ()
    if isinstance(expr, And):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(conjuncts(item))
        return tuple(out)
    return (expr,)


def make_and(items) -> Expr:
    """Conjunction of *items*, simplifying the 0- and 1-ary cases."""
    flat: list[Expr] = []
    for item in items:
        flat.extend(conjuncts(item))
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(items) -> Expr:
    """Disjunction of *items*, simplifying the 0- and 1-ary cases."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, Or):
            flat.extend(item.items)
        elif is_false_const(item):
            continue
        else:
            flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(expr: Expr) -> Expr:
    """Logical negation with shallow simplification (no double NOT)."""
    if isinstance(expr, Not):
        return expr.operand
    if is_true_const(expr):
        return FALSE
    if is_false_const(expr):
        return TRUE
    return Not(expr)


def contains_sfw(expr: Expr) -> bool:
    """True iff a SELECT-FROM-WHERE block occurs anywhere in *expr*."""
    return any(isinstance(e, SFW) for e in walk(expr))
