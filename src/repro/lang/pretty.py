"""Unparser: render an AST back to concrete syntax.

``parse(pretty(e)) == e`` holds for every expression the parser can produce
(tested property-style); the renderer is conservative with parentheses.
"""

from __future__ import annotations

from repro.lang.ast import (
    SFW,
    Agg,
    And,
    Arith,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    Or,
    PayloadOf,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TagOf,
    TupleExpr,
    UnnestExpr,
    Var,
    VariantExpr,
)
from repro.model.compare import sort_key
from repro.model.values import NULL, Tup, Variant

__all__ = ["pretty"]

_CMP_TEXT = {
    CmpOp.EQ: "=",
    CmpOp.NE: "<>",
    CmpOp.LT: "<",
    CmpOp.LE: "<=",
    CmpOp.GT: ">",
    CmpOp.GE: ">=",
    CmpOp.IN: "IN",
    CmpOp.NOT_IN: "NOT IN",
    CmpOp.SUBSET: "SUBSET",
    CmpOp.SUBSETEQ: "SUBSETEQ",
    CmpOp.SUPSET: "SUPSET",
    CmpOp.SUPSETEQ: "SUPSETEQ",
}

_SETOP_TEXT = {
    SetOpKind.UNION: "UNION",
    SetOpKind.INTERSECT: "INTERSECT",
    SetOpKind.DIFF: "DIFF",
}


def pretty(expr: Expr) -> str:
    """Render *expr* as parseable concrete syntax (single line)."""
    return _render(expr)


def _const_text(value) -> str:
    if value is NULL or isinstance(value, type(NULL)):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, frozenset):
        members = sorted(value, key=sort_key)
        return "{" + ", ".join(_const_text(m) for m in members) + "}"
    if isinstance(value, tuple):
        return "[" + ", ".join(_const_text(m) for m in value) + "]"
    if isinstance(value, Tup):
        return "(" + ", ".join(f"{k} = {_const_text(v)}" for k, v in value.items()) + ")"
    if isinstance(value, Variant):  # no parser syntax; render for debugging only
        return f"<{value.tag}: {_const_text(value.value)}>"
    raise TypeError(f"cannot render constant {value!r}")


def _render(e: Expr) -> str:
    if isinstance(e, Const):
        return _const_text(e.value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Attr):
        base = _render(e.base)
        if isinstance(e.base, (Var, Attr)):
            return f"{base}.{e.label}"
        return f"({base}).{e.label}"
    if isinstance(e, TupleExpr):
        return "(" + ", ".join(f"{label} = {_render(v)}" for label, v in e.fields) + ")"
    if isinstance(e, SetExpr):
        return "{" + ", ".join(_render(item) for item in e.items) + "}"
    if isinstance(e, ListExpr):
        return "[" + ", ".join(_render(item) for item in e.items) + "]"
    if isinstance(e, VariantExpr):
        # Payloads parse at additive precedence; parenthesize the rest.
        return f"<{e.tag}: {_paren_operand(e.value)}>"
    if isinstance(e, Not):
        return f"NOT ({_render(e.operand)})"
    if isinstance(e, And):
        return " AND ".join(_paren_bool(item) for item in e.items)
    if isinstance(e, Or):
        return " OR ".join(_paren_bool(item) for item in e.items)
    if isinstance(e, Cmp):
        return f"{_paren_operand(e.left)} {_CMP_TEXT[e.op]} {_paren_operand(e.right)}"
    if isinstance(e, Arith):
        return f"({_render(e.left)} {e.op.value} {_render(e.right)})"
    if isinstance(e, Neg):
        return f"-({_render(e.operand)})"
    if isinstance(e, SetOp):
        return f"({_render(e.left)} {_SETOP_TEXT[e.op]} {_render(e.right)})"
    if isinstance(e, Agg):
        return f"{e.func.value.upper()}({_render(e.operand)})"
    if isinstance(e, Quant):
        kind = "EXISTS" if e.kind == QuantKind.EXISTS else "FORALL"
        return f"{kind} {e.var} IN {_paren_operand(e.domain)} ({_render(e.pred)})"
    if isinstance(e, SFW):
        parts = [f"SELECT {_render(e.select)}", f"FROM {_paren_operand(e.source)} {e.var}"]
        if e.where is not None:
            parts.append(f"WHERE {_render(e.where)}")
        return "(" + " ".join(parts) + ")"
    if isinstance(e, UnnestExpr):
        return f"UNNEST({_render(e.operand)})"
    if isinstance(e, TagOf):
        return f"TAG({_render(e.operand)})"
    if isinstance(e, PayloadOf):
        return f"PAYLOAD({_render(e.operand)})"
    raise TypeError(f"cannot render {type(e).__name__}")


def _paren_bool(e: Expr) -> str:
    text = _render(e)
    if isinstance(e, (Or, And)):
        return f"({text})"
    return text


def _paren_operand(e: Expr) -> str:
    text = _render(e)
    # Comparison operands that are themselves comparisons/booleans need parens.
    if isinstance(e, (Cmp, And, Or, Not, Quant)):
        return f"({text})"
    return text
