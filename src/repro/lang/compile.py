"""Closure compilation of expressions for the physical engine's hot paths.

The tree-walking interpreter (:mod:`repro.lang.eval`) re-dispatches on the
AST for every tuple; joins evaluate the same predicate millions of times.
:func:`compile_expr` translates an expression *once* into nested Python
closures over a plain ``dict`` environment, eliminating the dispatch.

Semantics are identical to the interpreter by construction and by test:
the reference executor keeps using the interpreter, so every differential
test (fuzz suite, Table 2 equivalences, join agreement) cross-checks the
compiler against it.

:func:`compiled` memoises compilation per expression object; plans hold
references to their expressions for as long as they live, so the id-keyed
cache is sound (the cache keeps the expression alive, preventing id
reuse).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ExecutionError, NameError_
from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    And,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    Or,
    PayloadOf,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TagOf,
    TupleExpr,
    UnnestExpr,
    Var,
    VariantExpr,
)
from repro.model.compare import compare, sort_key
from repro.model.values import Null, Tup, Variant

__all__ = ["compile_expr", "compiled", "CompiledExpr"]

#: A compiled expression: (environment dict, table mapping) → value.
CompiledExpr = Callable[[dict, Mapping], Any]

_CACHE: dict[int, tuple[Expr, CompiledExpr]] = {}


def compiled(expr: Expr) -> CompiledExpr:
    """Memoised :func:`compile_expr` (safe: the cache pins the expression)."""
    entry = _CACHE.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    fn = compile_expr(expr)
    _CACHE[id(expr)] = (expr, fn)
    return fn


def _resolve_table(tables: Mapping, name: str) -> Any:
    if tables is not None and name in tables:
        value = tables[name]
        as_set = getattr(value, "as_set", None)
        return as_set() if callable(as_set) else value
    raise NameError_(f"unbound variable or unknown table {name!r}")


def _as_bool(v: Any) -> bool:
    if not isinstance(v, bool):
        raise ExecutionError(f"expected boolean, got {v!r}")
    return v


def _iterate(value: Any, what: str):
    if isinstance(value, (frozenset, tuple)):
        return value
    raise ExecutionError(f"{what} is not a collection: {value!r}")


def _require_set(value: Any, what: str) -> frozenset:
    if isinstance(value, frozenset):
        return value
    raise ExecutionError(f"{what} requires a set, got {value!r}")


def _require_number(value: Any, what: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{what} requires a number, got {value!r}")


def compile_expr(e: Expr) -> CompiledExpr:
    """Translate *e* into a closure (see module docstring)."""
    if isinstance(e, Const):
        value = e.value
        return lambda env, tables: value
    if isinstance(e, Var):
        name = e.name
        def var_fn(env, tables, _name=name):
            if _name in env:
                return env[_name]
            return _resolve_table(tables, _name)
        return var_fn
    if isinstance(e, Attr):
        base = compile_expr(e.base)
        label = e.label
        def attr_fn(env, tables):
            v = base(env, tables)
            if not isinstance(v, Tup):
                raise ExecutionError(f"attribute access .{label} on non-tuple {v!r}")
            try:
                return v[label]
            except KeyError as exc:
                raise ExecutionError(str(exc)) from None
        return attr_fn
    if isinstance(e, TupleExpr):
        parts = [(label, compile_expr(v)) for label, v in e.fields]
        return lambda env, tables: Tup({label: fn(env, tables) for label, fn in parts})
    if isinstance(e, SetExpr):
        items = [compile_expr(i) for i in e.items]
        return lambda env, tables: frozenset(fn(env, tables) for fn in items)
    if isinstance(e, ListExpr):
        items = [compile_expr(i) for i in e.items]
        return lambda env, tables: tuple(fn(env, tables) for fn in items)
    if isinstance(e, VariantExpr):
        tag = e.tag
        value = compile_expr(e.value)
        return lambda env, tables: Variant(tag, value(env, tables))
    if isinstance(e, Not):
        operand = compile_expr(e.operand)
        return lambda env, tables: not _as_bool(operand(env, tables))
    if isinstance(e, And):
        items = [compile_expr(i) for i in e.items]
        def and_fn(env, tables):
            for fn in items:
                if not _as_bool(fn(env, tables)):
                    return False
            return True
        return and_fn
    if isinstance(e, Or):
        items = [compile_expr(i) for i in e.items]
        def or_fn(env, tables):
            for fn in items:
                if _as_bool(fn(env, tables)):
                    return True
            return False
        return or_fn
    if isinstance(e, Cmp):
        return _compile_cmp(e)
    if isinstance(e, Arith):
        return _compile_arith(e)
    if isinstance(e, Neg):
        operand = compile_expr(e.operand)
        def neg_fn(env, tables):
            v = operand(env, tables)
            _require_number(v, "unary minus")
            return -v
        return neg_fn
    if isinstance(e, SetOp):
        left = compile_expr(e.left)
        right = compile_expr(e.right)
        op = e.op
        def setop_fn(env, tables):
            l = _require_set(left(env, tables), "set operation")
            r = _require_set(right(env, tables), "set operation")
            if op == SetOpKind.UNION:
                return l | r
            if op == SetOpKind.INTERSECT:
                return l & r
            return l - r
        return setop_fn
    if isinstance(e, Agg):
        return _compile_agg(e)
    if isinstance(e, Quant):
        domain = compile_expr(e.domain)
        pred = compile_expr(e.pred)
        var = e.var
        exists = e.kind == QuantKind.EXISTS
        def quant_fn(env, tables):
            members = _iterate(domain(env, tables), "quantifier domain")
            for m in members:
                inner = dict(env)
                inner[var] = m
                if _as_bool(pred(inner, tables)):
                    if exists:
                        return True
                elif not exists:
                    return False
            return not exists
        return quant_fn
    if isinstance(e, SFW):
        source = compile_expr(e.source)
        select = compile_expr(e.select)
        where = compile_expr(e.where) if e.where is not None else None
        var = e.var
        def sfw_fn(env, tables):
            members = _iterate(source(env, tables), "FROM clause operand")
            out = set()
            for m in members:
                inner = dict(env)
                inner[var] = m
                if where is None or _as_bool(where(inner, tables)):
                    out.add(select(inner, tables))
            return frozenset(out)
        return sfw_fn
    if isinstance(e, UnnestExpr):
        operand = compile_expr(e.operand)
        def unnest_fn(env, tables):
            outer = _require_set(operand(env, tables), "UNNEST")
            out = set()
            for member in outer:
                out |= _require_set(member, "UNNEST member")
            return frozenset(out)
        return unnest_fn
    if isinstance(e, TagOf):
        operand = compile_expr(e.operand)
        def tag_fn(env, tables):
            v = operand(env, tables)
            if not isinstance(v, Variant):
                raise ExecutionError(f"TAG of non-variant {v!r}")
            return v.tag
        return tag_fn
    if isinstance(e, PayloadOf):
        operand = compile_expr(e.operand)
        def payload_fn(env, tables):
            v = operand(env, tables)
            if not isinstance(v, Variant):
                raise ExecutionError(f"PAYLOAD of non-variant {v!r}")
            return v.value
        return payload_fn
    raise ExecutionError(f"cannot compile {type(e).__name__}")


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, Null) or isinstance(b, Null):
        return isinstance(a, Null) and isinstance(b, Null)
    return a == b


def _require_ordered(a: Any, b: Any) -> None:
    ok = (int, float, str)
    a_ok = isinstance(a, ok) and not isinstance(a, bool)
    b_ok = isinstance(b, ok) and not isinstance(b, bool)
    if not (a_ok and b_ok) or isinstance(a, str) != isinstance(b, str):
        raise ExecutionError(f"ordering comparison requires numbers or strings, got {a!r} and {b!r}")


def _compile_cmp(e: Cmp) -> CompiledExpr:
    left = compile_expr(e.left)
    right = compile_expr(e.right)
    op = e.op
    if op == CmpOp.EQ:
        return lambda env, tables: _values_equal(left(env, tables), right(env, tables))
    if op == CmpOp.NE:
        return lambda env, tables: not _values_equal(left(env, tables), right(env, tables))
    if op in (CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE):
        def order_fn(env, tables, _op=op):
            a = left(env, tables)
            b = right(env, tables)
            _require_ordered(a, b)
            c = compare(a, b)
            if _op == CmpOp.LT:
                return c < 0
            if _op == CmpOp.LE:
                return c <= 0
            if _op == CmpOp.GT:
                return c > 0
            return c >= 0
        return order_fn
    if op == CmpOp.IN:
        return lambda env, tables: left(env, tables) in _iterate(right(env, tables), "IN operand")
    if op == CmpOp.NOT_IN:
        return lambda env, tables: left(env, tables) not in _iterate(right(env, tables), "NOT IN operand")
    def incl_fn(env, tables, _op=op):
        l = _require_set(left(env, tables), f"{_op.value} operand")
        r = _require_set(right(env, tables), f"{_op.value} operand")
        if _op == CmpOp.SUBSETEQ:
            return l <= r
        if _op == CmpOp.SUBSET:
            return l < r
        if _op == CmpOp.SUPSETEQ:
            return l >= r
        return l > r
    return incl_fn


def _compile_arith(e: Arith) -> CompiledExpr:
    left = compile_expr(e.left)
    right = compile_expr(e.right)
    op = e.op
    def arith_fn(env, tables):
        a = left(env, tables)
        b = right(env, tables)
        if op == ArithOp.ADD and isinstance(a, str) and isinstance(b, str):
            return a + b
        _require_number(a, f"arithmetic {op.value}")
        _require_number(b, f"arithmetic {op.value}")
        if op == ArithOp.ADD:
            return a + b
        if op == ArithOp.SUB:
            return a - b
        if op == ArithOp.MUL:
            return a * b
        if op == ArithOp.DIV:
            if b == 0:
                raise ExecutionError("division by zero")
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return a // b
            return a / b
        if b == 0:
            raise ExecutionError("modulo by zero")
        return a % b
    return arith_fn


def _compile_agg(e: Agg) -> CompiledExpr:
    operand = compile_expr(e.operand)
    func = e.func
    def agg_fn(env, tables):
        members = list(_iterate(operand(env, tables), f"{func.value} operand"))
        if func == AggFunc.COUNT:
            return len(members)
        if func == AggFunc.SUM:
            for m in members:
                _require_number(m, "sum")
            return sum(members)
        if not members:
            raise ExecutionError(f"{func.value} of an empty collection is undefined")
        if func == AggFunc.AVG:
            for m in members:
                _require_number(m, "avg")
            return sum(members) / len(members)
        if func == AggFunc.MIN:
            return min(members, key=sort_key)
        return max(members, key=sort_key)
    return agg_fn
