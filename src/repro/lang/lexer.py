"""Tokenizer for the TM-like concrete syntax.

Keywords are case-insensitive; identifiers are case-sensitive. String
literals use single or double quotes with backslash escapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "with",
        "and",
        "or",
        "not",
        "in",
        "exists",
        "forall",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "union",
        "intersect",
        "diff",
        "subset",
        "subseteq",
        "supset",
        "supseteq",
        "unnest",
        "tag",
        "payload",
        "true",
        "false",
        "null",
    }
)

_SYMBOLS = (
    "<>",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ".",
    ":",
    "|",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_symbol(self, sym: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.text == sym

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`LexError` on unrecognised input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        column = i - line_start + 1
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, i, line, column))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i, line, column))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text[i:j], i, line, column))
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            chars: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    esc = text[j + 1]
                    mapped = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}.get(esc)
                    if mapped is None:
                        raise LexError(f"unknown escape \\{esc}", j, line, j - line_start + 1)
                    chars.append(mapped)
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", i, line, column)
            tokens.append(Token(TokenKind.STRING, "".join(chars), i, line, column))
            i = j + 1
            continue
        matched = False
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(TokenKind.SYMBOL, sym, i, line, column))
                i += len(sym)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i, line, column)
    tokens.append(Token(TokenKind.EOF, "", n, line, n - line_start + 1))
    return tokens
