"""A fluent builder for constructing queries programmatically.

String queries are fine for humans; tools composing queries want an API::

    from repro.lang.builder import col, val, sfw, count_, exists

    x, s = col("r"), col("s")
    q = sfw(
        select=x,
        var="r",
        source=col("R"),
        where=x.b == count_(sfw(select=s, var="s", source=col("S"),
                                where=x.c == s.c)),
    )
    # q.expr is exactly the AST parse(COUNT_BUG_NESTED) produces.

Builders wrap :class:`~repro.lang.ast.Expr` values and overload Python
operators: ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=`` build comparisons;
``+ - * / %`` build arithmetic; ``|``, ``&``, ``-`` on set-typed builders
build UNION / INTERSECT / DIFF (binary ``-`` is resolved as set difference
only via the explicit :meth:`E.diff`; the operator stays arithmetic);
attribute access builds paths. Plain Python values auto-wrap via
:func:`val`.

Because ``__eq__`` is overloaded, builder objects must not be used as dict
keys or compared for identity — unwrap with ``.expr`` first.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.lang.ast import (
    SFW,
    Agg,
    AggFunc,
    Arith,
    ArithOp,
    Attr,
    Cmp,
    CmpOp,
    Const,
    Expr,
    ListExpr,
    Neg,
    Not,
    PayloadOf,
    Quant,
    QuantKind,
    SetExpr,
    SetOp,
    SetOpKind,
    TagOf,
    TupleExpr,
    UnnestExpr,
    Var,
    VariantExpr,
    make_and,
    make_or,
)

__all__ = [
    "E",
    "col",
    "val",
    "tup",
    "set_",
    "list_",
    "variant",
    "count_",
    "sum_",
    "avg_",
    "min_",
    "max_",
    "exists",
    "forall",
    "sfw",
    "unnest",
    "tag_",
    "payload_",
    "and_",
    "or_",
    "not_",
]


def _unwrap(value: Any) -> Expr:
    if isinstance(value, E):
        return value.expr
    if isinstance(value, Expr):
        return value
    return Const(value)


class E:
    """A builder wrapping an expression; all operators return builders."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        object.__setattr__(self, "expr", expr)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("builders are immutable")

    # -- paths ---------------------------------------------------------------
    def __getattr__(self, label: str) -> "E":
        if label.startswith("__"):
            raise AttributeError(label)
        return E(Attr(self.expr, label))

    def get(self, label: str) -> "E":
        """Attribute access for labels shadowed by builder methods."""
        return E(Attr(self.expr, label))

    # -- comparisons -----------------------------------------------------------
    def __eq__(self, other: Any) -> "E":  # type: ignore[override]
        return E(Cmp(CmpOp.EQ, self.expr, _unwrap(other)))

    def __ne__(self, other: Any) -> "E":  # type: ignore[override]
        return E(Cmp(CmpOp.NE, self.expr, _unwrap(other)))

    def __lt__(self, other: Any) -> "E":
        return E(Cmp(CmpOp.LT, self.expr, _unwrap(other)))

    def __le__(self, other: Any) -> "E":
        return E(Cmp(CmpOp.LE, self.expr, _unwrap(other)))

    def __gt__(self, other: Any) -> "E":
        return E(Cmp(CmpOp.GT, self.expr, _unwrap(other)))

    def __ge__(self, other: Any) -> "E":
        return E(Cmp(CmpOp.GE, self.expr, _unwrap(other)))

    # -- membership / inclusion -----------------------------------------------
    def in_(self, other: Any) -> "E":
        return E(Cmp(CmpOp.IN, self.expr, _unwrap(other)))

    def not_in(self, other: Any) -> "E":
        return E(Cmp(CmpOp.NOT_IN, self.expr, _unwrap(other)))

    def subseteq(self, other: Any) -> "E":
        return E(Cmp(CmpOp.SUBSETEQ, self.expr, _unwrap(other)))

    def subset(self, other: Any) -> "E":
        return E(Cmp(CmpOp.SUBSET, self.expr, _unwrap(other)))

    def supseteq(self, other: Any) -> "E":
        return E(Cmp(CmpOp.SUPSETEQ, self.expr, _unwrap(other)))

    def supset(self, other: Any) -> "E":
        return E(Cmp(CmpOp.SUPSET, self.expr, _unwrap(other)))

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: Any) -> "E":
        return E(Arith(ArithOp.ADD, self.expr, _unwrap(other)))

    def __radd__(self, other: Any) -> "E":
        return E(Arith(ArithOp.ADD, _unwrap(other), self.expr))

    def __sub__(self, other: Any) -> "E":
        return E(Arith(ArithOp.SUB, self.expr, _unwrap(other)))

    def __rsub__(self, other: Any) -> "E":
        return E(Arith(ArithOp.SUB, _unwrap(other), self.expr))

    def __mul__(self, other: Any) -> "E":
        return E(Arith(ArithOp.MUL, self.expr, _unwrap(other)))

    def __truediv__(self, other: Any) -> "E":
        return E(Arith(ArithOp.DIV, self.expr, _unwrap(other)))

    def __mod__(self, other: Any) -> "E":
        return E(Arith(ArithOp.MOD, self.expr, _unwrap(other)))

    def __neg__(self) -> "E":
        return E(Neg(self.expr))

    # -- set algebra -------------------------------------------------------------
    def __or__(self, other: Any) -> "E":
        return E(SetOp(SetOpKind.UNION, self.expr, _unwrap(other)))

    def __and__(self, other: Any) -> "E":
        return E(SetOp(SetOpKind.INTERSECT, self.expr, _unwrap(other)))

    def diff(self, other: Any) -> "E":
        return E(SetOp(SetOpKind.DIFF, self.expr, _unwrap(other)))

    def __repr__(self) -> str:
        from repro.lang.pretty import pretty

        return f"E({pretty(self.expr)})"


def col(name: str) -> E:
    """A variable or table reference."""
    return E(Var(name))


def val(value: Any) -> E:
    """A constant (plain Python data is coerced to model values)."""
    return E(Const(value))


def tup(**fields: Any) -> E:
    return E(TupleExpr(tuple((k, _unwrap(v)) for k, v in fields.items())))


def set_(*items: Any) -> E:
    return E(SetExpr(tuple(_unwrap(i) for i in items)))


def list_(*items: Any) -> E:
    return E(ListExpr(tuple(_unwrap(i) for i in items)))


def variant(tag: str, value: Any) -> E:
    return E(VariantExpr(tag, _unwrap(value)))


def _agg(func: AggFunc) -> Callable[[Any], E]:
    def build(operand: Any) -> E:
        return E(Agg(func, _unwrap(operand)))

    return build


count_ = _agg(AggFunc.COUNT)
sum_ = _agg(AggFunc.SUM)
avg_ = _agg(AggFunc.AVG)
min_ = _agg(AggFunc.MIN)
max_ = _agg(AggFunc.MAX)


def _quant(kind: QuantKind):
    def build(var: str, domain: Any, pred: Any | Callable[[E], Any]) -> E:
        if callable(pred) and not isinstance(pred, E):
            pred = pred(col(var))
        return E(Quant(kind, var, _unwrap(domain), _unwrap(pred)))

    return build


exists = _quant(QuantKind.EXISTS)
forall = _quant(QuantKind.FORALL)


def sfw(select: Any, var: str, source: Any, where: Any | None = None) -> E:
    """Build a SELECT-FROM-WHERE block."""
    return E(
        SFW(
            _unwrap(select),
            var,
            _unwrap(source),
            _unwrap(where) if where is not None else None,
        )
    )


def unnest(operand: Any) -> E:
    return E(UnnestExpr(_unwrap(operand)))


def tag_(operand: Any) -> E:
    return E(TagOf(_unwrap(operand)))


def payload_(operand: Any) -> E:
    return E(PayloadOf(_unwrap(operand)))


def and_(*items: Any) -> E:
    return E(make_and([_unwrap(i) for i in items]))


def or_(*items: Any) -> E:
    return E(make_or([_unwrap(i) for i in items]))


def not_(item: Any) -> E:
    return E(Not(_unwrap(item)))
