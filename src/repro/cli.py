"""Command-line interface: run and explain queries over JSON catalogs.

Usage::

    python -m repro query  "SELECT r FROM R r WHERE ..." --db data.json
    python -m repro explain "SELECT ..." --db data.json
    python -m repro tables --db data.json
    python -m repro demo

``data.json`` uses the catalog format of :mod:`repro.io`. ``demo`` runs
the COUNT-bug walkthrough on built-in data (no file needed).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.pipeline import explain_query, run_query
from repro.engine.table import Catalog
from repro.errors import ReproError
from repro.io import load_catalog
from repro.model.compare import sort_key
from repro.model.values import Tup, value_repr

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nested-query optimization over complex objects (EDBT'94 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a query against a JSON catalog")
    query.add_argument("text", help="the SELECT-FROM-WHERE query")
    query.add_argument("--db", required=True, help="catalog JSON file")
    query.add_argument("--schema", help="TM DDL file to validate the catalog against")
    query.add_argument(
        "--engine",
        choices=("interpret", "logical", "physical"),
        default="physical",
        help="execution engine (default: physical)",
    )
    query.add_argument("--no-typecheck", action="store_true", help="skip static type checking")
    query.add_argument(
        "--execution",
        choices=("batch", "row", "parallel"),
        default="batch",
        help="physical-engine execution mode: vectorized column batches, "
        "tuple-at-a-time, or multiprocess scatter-gather over hash "
        "partitions (default: batch)",
    )
    query.add_argument(
        "--parts",
        type=int,
        default=4,
        metavar="N",
        help="partition count for --execution parallel (default: 4)",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="instrument execution and print the EXPLAIN ANALYZE operator tree "
        "(per-operator rows in/out, wall time, cache hits, peak group sizes)",
    )
    query.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="serve the query N times through the prepared-plan cache and "
        "report per-call timing and cache counters (default: 1, plain run)",
    )

    explain = sub.add_parser("explain", help="show translation steps and the plan")
    explain.add_argument("text", help="the SELECT-FROM-WHERE query")
    explain.add_argument("--db", required=True, help="catalog JSON file")
    explain.add_argument("--schema", help="TM DDL file to validate the catalog against")
    explain.add_argument(
        "--physical",
        action="store_true",
        help="also compile and show the physical plan with cache counters",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="also execute the query and show the annotated operator tree",
    )

    trace = sub.add_parser(
        "trace",
        help="run a query with end-to-end tracing and dump the trace",
    )
    trace.add_argument("text", help="the SELECT-FROM-WHERE query")
    trace.add_argument("--db", required=True, help="catalog JSON file")
    trace.add_argument("--schema", help="TM DDL file to validate the catalog against")
    trace.add_argument(
        "--format",
        choices=("text", "chrome"),
        default="text",
        help="text (human-readable) or chrome (trace_event JSON for "
        "chrome://tracing / Perfetto; default: text)",
    )
    trace.add_argument(
        "--execution",
        choices=("batch", "row", "parallel"),
        default="batch",
        help="execution mode to trace; parallel merges per-worker spans "
        "into one multi-process timeline (default: batch)",
    )
    trace.add_argument(
        "--parts",
        type=int,
        default=4,
        metavar="N",
        help="partition count for --execution parallel (default: 4)",
    )
    trace.add_argument("--out", metavar="PATH", help="write the dump to PATH instead of stdout")

    tables = sub.add_parser("tables", help="list tables in a JSON catalog")
    tables.add_argument("--db", required=True, help="catalog JSON file")
    tables.add_argument("--schema", help="TM DDL file to validate the catalog against")

    compare = sub.add_parser(
        "compare", help="run a query under every strategy and time them"
    )
    compare.add_argument("text", help="the SELECT-FROM-WHERE query")
    compare.add_argument("--db", required=True, help="catalog JSON file")
    compare.add_argument("--schema", help="TM DDL file to validate the catalog against")
    compare.add_argument("--repeat", type=int, default=3, help="timing repetitions")

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing: random queries on every engine"
    )
    fuzz.add_argument("--n", type=int, default=200, help="number of random queries")
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")

    serve = sub.add_parser(
        "serve-bench",
        help="hammer the concurrent query service with the mixed paper workload",
    )
    serve.add_argument("--workers", type=int, default=8, help="service worker threads")
    serve.add_argument("--requests", type=int, default=400, help="requests in the batch")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=0,
        help="admission queue capacity (0 = unbounded, no shedding)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-request deadline in seconds"
    )
    serve.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the interpreter oracle cross-check (faster)",
    )
    serve.add_argument("--json", metavar="PATH", help="also write the JSON report to PATH")
    serve.add_argument(
        "--cache-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="byte budget per cache (plan/build/result); least-recently-used "
        "entries are evicted past it (0 = unlimited; default: "
        "REPRO_CACHE_BUDGET_MB or unlimited)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run the mixed workload through a query service and dump the "
        "Prometheus exposition text",
    )
    metrics.add_argument("--requests", type=int, default=100, help="requests to serve")
    metrics.add_argument("--seed", type=int, default=0, help="workload seed")
    metrics.add_argument("--workers", type=int, default=4, help="service worker threads")
    metrics.add_argument(
        "--feedback-every",
        type=int,
        default=1,
        metavar="N",
        help="analyze every Nth leader execution for cardinality feedback "
        "(0 disables; default: 1, every leader)",
    )
    metrics.add_argument("--out", metavar="PATH", help="write the text to PATH instead of stdout")
    metrics.add_argument(
        "--listen",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="after the workload, also serve GET /metrics and /healthz for "
        "SECONDS (0 = don't serve, just dump)",
    )
    metrics.add_argument("--port", type=int, default=0, help="scrape endpoint port (0 = ephemeral)")
    metrics.add_argument(
        "--cache-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="byte budget per cache (plan/build/result); least-recently-used "
        "entries are evicted past it (0 = unlimited; default: "
        "REPRO_CACHE_BUDGET_MB or unlimited)",
    )

    top = sub.add_parser(
        "top",
        help="poll a live service's GET /queries endpoint and render an "
        "auto-refreshing table of in-flight queries with progress",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:9100",
        help="base URL of the metrics/admin endpoint (default: %(default)s)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh interval (default: 1s)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until interrupted)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append refreshes instead of clearing the screen (for pipes/CI)",
    )
    top.add_argument(
        "--cancel",
        metavar="QUERY_ID",
        help="POST /queries/<id>/cancel for QUERY_ID and exit",
    )

    caches = sub.add_parser(
        "caches",
        help="poll a live service's GET /caches endpoint and render an "
        "auto-refreshing memory report of every registered cache",
    )
    caches.add_argument(
        "--url",
        default="http://127.0.0.1:9100",
        help="base URL of the metrics/admin endpoint (default: %(default)s)",
    )
    caches.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh interval (default: 1s)",
    )
    caches.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until interrupted)",
    )
    caches.add_argument(
        "--plain",
        action="store_true",
        help="append refreshes instead of clearing the screen (for pipes/CI)",
    )
    caches.add_argument(
        "--top",
        type=int,
        default=3,
        metavar="N",
        help="largest entries to show per cache (0 = none; default: 3)",
    )

    sub.add_parser("demo", help="run the COUNT-bug demo on built-in data")
    return parser


def _load(args: argparse.Namespace) -> Catalog:
    """Load the catalog named by --db, validating against --schema if given."""
    schema = None
    if getattr(args, "schema", None):
        from pathlib import Path

        from repro.model.ddl import parse_schema

        schema = parse_schema(Path(args.schema).read_text(encoding="utf-8"))
    return load_catalog(args.db, schema=schema)


def _demo_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_rows(
        "R", [Tup(a=1, b=2, c=10), Tup(a=2, b=0, c=99), Tup(a=3, b=5, c=20)]
    )
    catalog.add_rows("S", [Tup(c=10, d=1), Tup(c=10, d=2), Tup(c=20, d=3)])
    return catalog


def _serve_repeated(args: argparse.Namespace, catalog: Catalog) -> int:
    """Serve one query ``--repeat`` times through the prepared-plan cache."""
    import time

    from repro.core.pipeline import plan_cache_stats, prepared
    from repro.engine.cache import build_cache_stats
    from repro.server.metrics import Histogram

    latency = Histogram()
    result = None
    for _ in range(args.repeat):
        start = time.perf_counter()
        result = prepared(args.text, catalog, typecheck=not args.no_typecheck).execute(
            catalog, execution=args.execution, parts=args.parts
        )
        latency.observe((time.perf_counter() - start) * 1e3)
    assert result is not None
    for value in sorted(result, key=sort_key):
        print(value_repr(value))
    summary = latency.summary()
    print(
        f"-- {len(result)} rows; {args.repeat} calls: "
        f"mean {summary['mean']:.2f}ms, p50 {summary['p50']:.2f}ms, "
        f"p95 {summary['p95']:.2f}ms, max {summary['max']:.2f}ms",
        file=sys.stderr,
    )
    print(f"-- plan cache: {plan_cache_stats().render()}", file=sys.stderr)
    print(f"-- build cache: {build_cache_stats().render()}", file=sys.stderr)
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    """Run the mixed workload through the service and report throughput."""
    from repro.server.bench import run_serve_bench

    report = run_serve_bench(
        workers=args.workers,
        requests=args.requests,
        seed=args.seed,
        queue_limit=args.queue_limit,
        timeout=args.timeout,
        check_oracle=not args.no_oracle,
        cache_budget_mb=args.cache_budget_mb,
    )
    latency = report["latency_ms"]
    print(
        f"serve-bench: {report['requests']} requests "
        f"({report['distinct_queries']} distinct), {report['workers']} workers"
    )
    print(
        f"  sequential: {report['sequential_seconds'] * 1e3:8.1f}ms "
        f"({report['sequential_rps']:8.0f} req/s)"
    )
    print(
        f"  service:    {report['service_seconds'] * 1e3:8.1f}ms "
        f"({report['service_rps']:8.0f} req/s)  -> {report['speedup']:.2f}x"
    )
    if latency:
        print(
            f"  latency: p50 {latency['p50']:.2f}ms, p95 {latency['p95']:.2f}ms, "
            f"max {latency['max']:.2f}ms"
        )
    print(f"  outcomes: {report['outcomes']}")
    caches = report["stats"]["caches"]
    for name in ("plan", "build", "result"):
        c = caches[name]
        print(
            f"  {name} cache: {c['hits']} hits, {c['misses']} misses "
            f"({c['hit_rate']:.0%} hit rate), {_fmt_bytes(c.get('bytes', 0))}"
        )
    oracle = (
        f"{report['oracle_mismatches']} mismatches"
        if report["oracle_checked"]
        else "skipped"
    )
    print(f"  oracle: {oracle}; lost requests: {report['lost_requests']}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if report["oracle_checked"] and report["oracle_mismatches"]:
        return 1
    return 0


def _metrics_dump(args: argparse.Namespace) -> int:
    """Serve the mixed workload, then dump the Prometheus exposition text."""
    import time

    from repro.parallel.pool import pool_gauges
    from repro.server.exposition import (
        merged_service_snapshot,
        prometheus_text,
        serve_metrics,
    )
    from repro.server.service import QueryService
    from repro.server.workload import make_requests, mixed_catalog

    catalog = mixed_catalog(seed=args.seed)
    with QueryService(
        catalog,
        workers=args.workers,
        feedback_every=args.feedback_every,
        cache_budget_mb=args.cache_budget_mb,
    ) as service:
        responses = service.serve_all(make_requests(args.requests, seed=args.seed))
        if args.listen > 0:
            endpoint = serve_metrics(service, port=args.port)
            print(
                f"-- serving {endpoint.url}/metrics and {endpoint.url}/healthz "
                f"for {args.listen:g}s",
                file=sys.stderr,
            )
            time.sleep(args.listen)
            endpoint.stop()
        text = prometheus_text(
            merged_service_snapshot(service),
            gauges={
                "queue_depth": service._queue.qsize(),
                "workers": service.workers,
                **pool_gauges(),
            },
        )
    ok = sum(1 for r in responses if r.ok)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    print(f"-- {ok}/{len(responses)} requests ok", file=sys.stderr)
    return 0


def _fmt_bytes(n: float | None) -> str:
    """Human-readable byte count (``0B``, ``13.2KiB``, ``4.0MiB``...)."""
    n = n or 0
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    raise AssertionError  # pragma: no cover


def _fetch_json(url: str, timeout: float = 5.0) -> dict:
    import json as json_mod
    from urllib import request as urlrequest

    with urlrequest.urlopen(url, timeout=timeout) as resp:
        return json_mod.loads(resp.read().decode("utf-8"))


def _cache_footprint_line(snap: dict) -> str:
    """One line summarizing every cache's byte footprint (``repro top``)."""
    caches = snap.get("caches", {})
    parts = [
        f"{name} {_fmt_bytes(report.get('bytes', 0))}"
        for name, report in sorted(caches.items())
        if isinstance(report, dict)
    ]
    total = _fmt_bytes(snap.get("total_bytes", 0))
    return f"caches: {' · '.join(parts) or '(none registered)'}  total={total}"


def _cache_entry_summary(entry: dict) -> str:
    """Render one top-k cache entry's identity compactly."""
    parts = []
    for key in ("kind", "uid", "version", "var", "query", "catalog_version"):
        if key in entry:
            parts.append(f"{key}={entry[key]}")
    if entry.get("keys"):
        parts.append(f"keys={','.join(str(k) for k in entry['keys'])}")
    if entry.get("tables"):
        names = ",".join(t.get("name", "?") for t in entry["tables"])
        parts.append(f"tables={names} parts={entry.get('parts', '?')}")
        if entry.get("workers") is not None:
            parts.append(f"workers={entry['workers']}")
    if not parts and "key" in entry:
        parts.append(str(entry["key"]))
    return " ".join(str(p) for p in parts)


def _render_caches(snap: dict, url: str, top: int) -> list[str]:
    """The rendered lines for one ``repro caches`` refresh."""
    caches = snap.get("caches", {})
    lines = [
        f"repro caches — {url}  registered={len(caches)}  "
        f"total={_fmt_bytes(snap.get('total_bytes', 0))}"
    ]
    header = (
        f"{'CACHE': <15}{'BYTES': >10}{'ENTRIES': >9}{'HITS': >9}"
        f"{'MISSES': >9}{'EVICT': >7}  {'HIT%': >5}  BUDGET/REASONS"
    )
    lines.append(header)
    for name in sorted(caches):
        report = caches[name]
        if not isinstance(report, dict) or "error" in report:
            lines.append(f"{name: <15} (error: {report.get('error', report)})")
            continue
        tail = []
        if report.get("max_bytes"):
            tail.append(f"budget={_fmt_bytes(report['max_bytes'])}")
        reasons = report.get("evictions_by_reason") or {}
        if reasons:
            tail.append(
                "evicted "
                + ",".join(f"{r}:{n}" for r, n in sorted(reasons.items()))
            )
        if report.get("memory_pressure"):
            tail.append(f"pressure={report['memory_pressure']}")
        hit_rate = report.get("hit_rate")
        lines.append(
            f"{name: <15}"
            f"{_fmt_bytes(report.get('bytes', 0)): >10}"
            f"{report.get('entries', 0): >9}"
            f"{report.get('hits', 0): >9}"
            f"{report.get('misses', 0): >9}"
            f"{report.get('evictions', 0): >7}  "
            f"{(f'{hit_rate:.0%}' if hit_rate is not None else '-'): >5}  "
            f"{' '.join(tail)}"
        )
        by_kind = report.get("bytes_by_kind") or {}
        if by_kind:
            kinds = "  ".join(
                f"{kind}={_fmt_bytes(size)}" for kind, size in sorted(by_kind.items())
            )
            lines.append(f"{'': <15}by kind: {kinds}")
        if top > 0:
            for entry in (report.get("top_entries") or [])[:top]:
                lines.append(
                    f"{'': <15}• {_fmt_bytes(entry.get('bytes', 0)): >9}  "
                    f"{_cache_entry_summary(entry)}"
                )
    return lines


def _caches(args: argparse.Namespace) -> int:
    """Poll GET /caches and render the memory report (``repro caches``)."""
    import time
    from urllib import error as urlerror

    base = args.url.rstrip("/")
    iteration = 0
    while True:
        iteration += 1
        try:
            snap = _fetch_json(f"{base}/caches")
        except (urlerror.URLError, OSError) as exc:
            print(f"error: cannot reach {base}/caches: {exc}", file=sys.stderr)
            return 1
        lines = [] if args.plain else ["\x1b[2J\x1b[H"]
        lines.extend(_render_caches(snap, base, args.top))
        print("\n".join(lines), flush=True)
        if args.iterations and iteration >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _top_row(entry: dict, width: int) -> str:
    """One rendered table line for an active/recent query snapshot."""
    progress = entry.get("progress") or 0.0
    est = entry.get("estimated_rows")
    query = entry.get("query") or ""
    query_col = max(8, width - 78)
    if len(query) > query_col:
        query = query[: query_col - 1] + "…"
    return (
        f"{entry.get('query_id', '-'): <9}"
        f"{entry.get('state', '-'): <10}"
        f"{(entry.get('exec_mode') or '-'): <9}"
        f"{progress * 100: >5.1f}%  "
        f"{entry.get('rows_processed', 0): >9}"
        f"{('%.0f' % est) if est else '-': >10}  "
        f"{entry.get('elapsed_seconds', 0.0): >7.2f}s  "
        f"{(entry.get('current_op') or '-')[:24]: <25}"
        f"{query}"
    )


def _top(args: argparse.Namespace) -> int:
    """Poll GET /queries and render an auto-refreshing table (``repro top``)."""
    import json as json_mod
    import shutil
    import time
    from urllib import error as urlerror
    from urllib import request as urlrequest

    base = args.url.rstrip("/")
    if args.cancel:
        req = urlrequest.Request(f"{base}/queries/{args.cancel}/cancel", method="POST")
        try:
            with urlrequest.urlopen(req, timeout=5) as resp:
                body = json_mod.loads(resp.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            body = json_mod.loads(exc.read().decode("utf-8"))
        print(json_mod.dumps(body))
        return 0 if body.get("cancelled") else 1
    header = (
        f"{'ID': <9}{'STATE': <10}{'MODE': <9}{'PROG': >6}  "
        f"{'ROWS': >9}{'EST': >10}  {'ELAPSED': >8}  {'OPERATOR': <25}QUERY"
    )
    iteration = 0
    while True:
        iteration += 1
        try:
            with urlrequest.urlopen(f"{base}/queries", timeout=5) as resp:
                snap = json_mod.loads(resp.read().decode("utf-8"))
        except (urlerror.URLError, OSError) as exc:
            print(f"error: cannot reach {base}/queries: {exc}", file=sys.stderr)
            return 1
        width = shutil.get_terminal_size((120, 24)).columns
        lines = []
        if not args.plain:
            lines.append("\x1b[2J\x1b[H")  # clear screen, home cursor
        active = snap.get("active", [])
        recent = snap.get("recent", [])
        lines.append(
            f"repro top — {base}  active={len(active)}  "
            f"refresh={args.interval:g}s  (cancel: repro top --cancel <id>)"
        )
        lines.append(header)
        for entry in active:
            lines.append(_top_row(entry, width))
        if not active:
            lines.append("(no queries in flight)")
        if recent:
            lines.append("")
            lines.append(f"RECENT ({len(recent)} finished)")
            for entry in recent[-10:][::-1]:
                lines.append(_top_row(entry, width))
        try:
            lines.append(_cache_footprint_line(_fetch_json(f"{base}/caches")))
        except (urlerror.URLError, OSError, ValueError):
            pass  # endpoint predates /caches or is mid-restart; skip the line
        print("\n".join(lines), flush=True)
        if args.iterations and iteration >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _trace_query(args: argparse.Namespace) -> int:
    """Run one query with end-to-end tracing and dump the trace."""
    from repro.core.trace import QueryTrace, chrome_trace
    from repro.engine.analyze import explain_analyze

    catalog = _load(args)
    trace = QueryTrace(query=args.text)
    result = run_query(
        args.text,
        catalog,
        analyze=True,
        trace=trace,
        execution=args.execution,
        parts=args.parts,
    )
    if args.format == "chrome":
        import json

        dump = json.dumps(chrome_trace(trace, result.analyzed), indent=2)
    else:
        dump = trace.render()
        if result.analyzed is not None:
            dump += "\n" + explain_analyze(result.analyzed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dump + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(dump)
    print(
        f"-- trace {trace.trace_id}: {len(trace.events)} events, "
        f"{len(result.value)} rows ({result.engine} engine)",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "query":
        catalog = _load(args)
        if args.repeat > 1:
            return _serve_repeated(args, catalog)
        result = run_query(
            args.text,
            catalog,
            engine=args.engine,
            typecheck=not args.no_typecheck,
            analyze=args.analyze and args.engine == "physical",
            execution=args.execution,
            parts=args.parts,
        )
        for value in sorted(result.value, key=sort_key):
            print(value_repr(value))
        print(f"-- {len(result.value)} rows ({result.engine} engine)", file=sys.stderr)
        if result.analyzed is not None:
            from repro.engine.analyze import explain_analyze

            print(explain_analyze(result.analyzed))
        elif args.analyze:
            print(
                f"-- --analyze requires the physical engine (ran {result.engine})",
                file=sys.stderr,
            )
        return 0
    if args.command == "explain":
        catalog = _load(args)
        text = explain_query(args.text, catalog)
        if args.physical:
            from repro.core.pipeline import prepared
            from repro.engine.explain import explain_physical

            pq = prepared(args.text, catalog)
            if pq.plan is not None:
                pq.execute(catalog)  # populate the cache counters
                text += "\nphysical plan:\n" + explain_physical(
                    pq.compile_for(catalog), 1
                )
        if args.analyze:
            from repro.core.pipeline import prepared
            from repro.engine.analyze import explain_analyze

            pq = prepared(args.text, catalog)
            if pq.plan is not None:
                text += "\nanalyze:\n" + explain_analyze(pq.analyze(catalog))
        print(text)
        return 0
    if args.command == "trace":
        return _trace_query(args)
    if args.command == "tables":
        catalog = _load(args)
        for name in sorted(catalog):
            table = catalog[name]
            print(f"{name}: {len(table)} rows, {table.row_type!r}")
        return 0
    if args.command == "compare":
        from repro.bench.compare import compare_strategies

        catalog = _load(args)
        print(compare_strategies(args.text, catalog, repeat=args.repeat).render())
        return 0
    if args.command == "fuzz":
        from repro.testing import fuzz_campaign

        failures = fuzz_campaign(n_queries=args.n, seed=args.seed)
        if failures:
            for case_seed, query, message in failures[:10]:
                print(f"seed {case_seed}: {message}\n  {query}", file=sys.stderr)
            print(f"{len(failures)}/{args.n} queries diverged", file=sys.stderr)
            return 1
        print(f"ok: {args.n} random queries agreed on all engines (seed {args.seed})")
        return 0
    if args.command == "serve-bench":
        return _serve_bench(args)
    if args.command == "metrics":
        return _metrics_dump(args)
    if args.command == "top":
        return _top(args)
    if args.command == "caches":
        return _caches(args)
    if args.command == "demo":
        query = "SELECT r FROM R r WHERE r.b = COUNT(SELECT s FROM S s WHERE r.c = s.c)"
        catalog = _demo_catalog()
        print("query:", query)
        print()
        print(explain_query(query, catalog))
        print()
        result = run_query(query, catalog)
        print("result (note the dangling r with b = 0 survives):")
        for value in sorted(result.value, key=sort_key):
            print(" ", value_repr(value))
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
