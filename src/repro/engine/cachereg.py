"""Process-global cache registry: one place every engine cache reports to.

The engine grew five caches across four layers — the prepared-plan LRU
(:mod:`repro.core.pipeline`), the build-side cache with its hash-build /
sorted-run / group-table / columnar / partition kinds
(:mod:`repro.engine.cache`), each query service's version-keyed result
cache (:mod:`repro.server.service`), and the parallel pool's
coordinator-side view of per-worker shard catalogs
(:mod:`repro.parallel.pool`). Each already keeps hit/miss counters, but
nothing could answer the operational question "how many bytes is this
process holding, and in what?". The registry answers it: caches register
a *provider* — a zero-state callable returning a small report dict — and
:func:`caches_snapshot` collects every report into one JSON-safe
structure that feeds ``GET /caches``, the ``repro caches`` CLI, the
Prometheus ``cache_bytes``/``cache_evictions`` families, and the
``caches`` block of ``QueryService.stats()``.

Providers are *pull*-based on purpose: byte totals are maintained
incrementally by the caches themselves (size computed once per insert —
see :mod:`repro.engine.memsize`), so a snapshot is a handful of dict
reads, cheap enough for a metrics scrape loop. A provider that raises
yields an ``{"error": ...}`` report instead of breaking the scrape.

Registration is last-writer-wins by name: module-level caches register
at import, and per-instance caches (a service's result cache) re-register
on construction so the snapshot always describes the most recent
instance — matching how ``serve_metrics`` binds one service per process.

The registry also owns the **memory-pressure** counters: every
budget-triggered eviction (an insert pushed a cache past its
``max_bytes``) is recorded per cache via :func:`record_memory_pressure`,
surfaced as the ``memory_pressure{cache}`` Prometheus family and in each
snapshot report. This module imports only the stdlib, so every layer —
including worker processes — can use it without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = [
    "CacheRegistry",
    "CACHE_REGISTRY",
    "register_cache",
    "caches_snapshot",
    "record_memory_pressure",
]

#: Report fields every snapshot entry carries (providers may omit them;
#: the registry fills zeros). ``bytes_by_kind``/``top_entries``/
#: ``max_bytes`` are optional extras.
_COUNTER_FIELDS = ("hits", "misses", "evictions", "inserts")


class CacheRegistry:
    """Named cache providers plus per-cache memory-pressure counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._providers: dict[str, Callable[[int], dict]] = {}
        self._pressure: dict[str, int] = {}

    def register(self, name: str, provider: Callable[[int], dict]) -> None:
        """Register *provider* under *name* (replacing any previous one).

        The provider is called as ``provider(top_k)`` and must return a
        dict with at least ``bytes`` and ``entries``; counter fields and
        ``evictions_by_reason``/``bytes_by_kind``/``top_entries``/
        ``max_bytes`` ride along when the cache tracks them.
        """
        with self._lock:
            self._providers[name] = provider

    def unregister(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._providers)

    def record_pressure(self, cache: str, n: int = 1) -> None:
        """Count *n* budget-triggered evictions against *cache*."""
        with self._lock:
            self._pressure[cache] = self._pressure.get(cache, 0) + n

    def pressure_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._pressure)

    def reset_pressure(self) -> None:
        with self._lock:
            self._pressure.clear()

    def snapshot(self, top_k: int = 3) -> dict[str, dict]:
        """Every registered cache's report, normalized, by cache name.

        ``top_k`` bounds the largest-entries list each provider returns.
        A raising provider contributes ``{"error": ...}`` with zeroed
        gauges rather than failing the whole snapshot.
        """
        with self._lock:
            providers = list(self._providers.items())
            pressure = dict(self._pressure)
        out: dict[str, dict] = {}
        for name, provider in providers:
            try:
                report = dict(provider(top_k))
            except Exception as exc:  # pragma: no cover - defensive
                report = {"error": f"{type(exc).__name__}: {exc}"}
            report.setdefault("bytes", 0)
            report.setdefault("entries", 0)
            for field in _COUNTER_FIELDS:
                report.setdefault(field, 0)
            report.setdefault("evictions_by_reason", {})
            lookups = report["hits"] + report["misses"]
            report.setdefault(
                "hit_rate", (report["hits"] / lookups) if lookups else 0.0
            )
            report["memory_pressure"] = pressure.get(name, 0)
            out[name] = report
        return out


#: The process-global registry; every cache registers here.
CACHE_REGISTRY = CacheRegistry()


def register_cache(name: str, provider: Callable[[int], dict]) -> None:
    """Register *provider* with the process-global registry."""
    CACHE_REGISTRY.register(name, provider)


def record_memory_pressure(cache: str, n: int = 1) -> None:
    """Record *n* budget evictions for *cache* on the global registry."""
    CACHE_REGISTRY.record_pressure(cache, n)


def caches_snapshot(top_k: int = 3) -> dict[str, Any]:
    """Global registry snapshot: ``{"caches": {...}, "total_bytes": N}``."""
    caches = CACHE_REGISTRY.snapshot(top_k=top_k)
    return {
        "caches": caches,
        "total_bytes": sum(r.get("bytes", 0) for r in caches.values()),
    }
