"""Physical plan execution entry points."""

from __future__ import annotations

from typing import Mapping

from repro.algebra.plan import Plan
from repro.engine.physical import PhysicalOp, compile_plan
from repro.model.values import Tup

__all__ = ["run_physical", "execute"]


def run_physical(
    plan: Plan, catalog: Mapping, force_algorithm: str | None = None
) -> list[Tup]:
    """Compile *plan* (choosing join algorithms) and run it to a row list."""
    physical = compile_plan(plan, catalog, force_algorithm)
    return list(physical.run(catalog))


def execute(physical: PhysicalOp, catalog: Mapping) -> list[Tup]:
    """Run an already compiled physical operator tree."""
    return list(physical.run(catalog))
