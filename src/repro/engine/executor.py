"""Physical plan execution entry points.

Two execution modes share every compiled plan:

* ``"batch"`` (the default) — operators exchange fixed-size column
  batches through :meth:`~repro.engine.physical.PhysicalOp.run_batches`;
  operators without a batch kernel fall back to their row implementation
  transparently (the base-class ``run_batches`` wraps ``run``).
* ``"row"`` — the original tuple-at-a-time pull loop.

Execution is cooperatively cancellable in both modes: when a
:class:`~repro.engine.cancel.CancelToken` is installed for the current
thread (see :func:`~repro.engine.cancel.cancel_scope`), operators and the
output loops here poll it at batch granularity
(:data:`~repro.engine.cancel.POLL_INTERVAL` rows in row mode, one check
per batch in batch mode), so a deadline set by the query service bounds
how long a plan can run.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.plan import Plan
from repro.engine.batch import DEFAULT_BATCH_SIZE, rows_from_batches
from repro.engine.cancel import POLL_INTERVAL, current_token
from repro.engine.physical import PhysicalOp, compile_plan
from repro.errors import PlanError
from repro.model.values import Tup

__all__ = ["run_physical", "execute", "execute_set", "EXECUTION_MODES"]

#: The supported values of the ``execution`` parameter. ``"parallel"``
#: scatters the plan over hash-partitioned shards on a multiprocess
#: worker pool (see :mod:`repro.parallel`), falling back to sequential
#: batch execution for plans that don't shard.
EXECUTION_MODES = ("batch", "row", "parallel")

#: Partition count for ``execution="parallel"`` when none is passed.
DEFAULT_PARTS = 4


def run_physical(
    plan: Plan,
    catalog: Mapping,
    force_algorithm: str | None = None,
    execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
    parts: int = DEFAULT_PARTS,
) -> list[Tup]:
    """Compile *plan* (choosing join algorithms) and run it to a row list."""
    physical = compile_plan(plan, catalog, force_algorithm)
    return execute(physical, catalog, execution=execution, batch_size=batch_size, parts=parts)


def execute(
    physical: PhysicalOp,
    catalog: Mapping,
    execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
    parts: int = DEFAULT_PARTS,
) -> list[Tup]:
    """Run an already compiled physical operator tree to a row list."""
    token = current_token()
    if execution == "parallel":
        from repro.parallel import run_parallel

        return run_parallel(physical, catalog, parts=parts, batch_size=batch_size)
    if execution == "batch":
        out: list[Tup] = []
        extend = out.extend
        for batch in physical.run_batches(catalog, batch_size):
            if token is not None:
                token.check(batch.live, "output")
            extend(batch.to_tups())
        return out
    if execution != "row":
        raise PlanError(f"unknown execution mode {execution!r}; pick from {EXECUTION_MODES}")
    if token is None:
        return list(physical.run(catalog))
    rows: list[Tup] = []
    append = rows.append
    countdown = 0
    since = 0
    for row in physical.run(catalog):
        if countdown <= 0:
            token.check(since, "output")
            since = POLL_INTERVAL
            countdown = POLL_INTERVAL
        countdown -= 1
        append(row)
    return rows


def execute_set(
    physical: PhysicalOp,
    catalog: Mapping,
    execution: str = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
    parts: int = DEFAULT_PARTS,
) -> frozenset:
    """Run a plan whose rows carry exactly one binding, straight to a set.

    This is the serving path's terminal step: the pipeline collapses
    single-binding rows to the bound values
    (:func:`repro.algebra.interpreter.result_set`). In batch mode the
    values are already a column, so the set is built directly from it —
    no binding tuple is ever constructed for output rows.
    """
    if execution == "parallel":
        from repro.parallel import parallel_set

        return parallel_set(physical, catalog, parts=parts, batch_size=batch_size)
    if execution != "batch":
        from repro.algebra.interpreter import result_set

        return result_set(execute(physical, catalog, execution=execution, batch_size=batch_size))
    token = current_token()
    values: set = set()
    update = values.update
    for batch in physical.run_batches(catalog, batch_size):
        if token is not None:
            token.check(batch.live, "output")
        if len(batch.columns) != 1:
            raise PlanError(
                f"result rows bind {sorted(batch.columns)}; expected exactly one variable"
            )
        (col,) = batch.columns.values()
        sel = batch.sel
        if sel is None:
            update(col)
        else:
            update(col[i] for i in sel)
    return frozenset(values)
