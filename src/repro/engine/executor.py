"""Physical plan execution entry points.

Execution is cooperatively cancellable: when a :class:`~repro.engine.cancel.CancelToken`
is installed for the current thread (see :func:`~repro.engine.cancel.cancel_scope`),
both the scan operators and the output loop here poll it at operator-iteration
boundaries, so a deadline set by the query service bounds how long a plan
can run.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.plan import Plan
from repro.engine.cancel import current_token
from repro.engine.physical import PhysicalOp, compile_plan
from repro.model.values import Tup

__all__ = ["run_physical", "execute"]


def run_physical(
    plan: Plan, catalog: Mapping, force_algorithm: str | None = None
) -> list[Tup]:
    """Compile *plan* (choosing join algorithms) and run it to a row list."""
    physical = compile_plan(plan, catalog, force_algorithm)
    return execute(physical, catalog)


def execute(physical: PhysicalOp, catalog: Mapping) -> list[Tup]:
    """Run an already compiled physical operator tree."""
    token = current_token()
    if token is None:
        return list(physical.run(catalog))
    out: list[Tup] = []
    for row in physical.run(catalog):
        token.check()
        out.append(row)
    return out
